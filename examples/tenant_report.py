#!/usr/bin/env python
"""Attributed telemetry tour: per-tenant stats, health samples, run report.

One bursty multi-tenant scenario runs under SPK3 with tracing, periodic
health sampling and telemetry attribution all enabled.  The script then:

* prints the per-tenant/per-phase attribution table (who caused which
  latency?) and verifies it reconciles exactly with the aggregate metrics,
* prints a unicode sparkline per health metric (was the device ever
  starved for free blocks? how deep did the queue get?),
* writes a self-contained HTML run report next to itself - the same
  document ``python -m repro.obs report`` produces::

    python examples/tenant_report.py
"""

from pathlib import Path

from repro.metrics.attribution import reconcile_attribution
from repro.obs.report import SLOThresholds, slo_verdicts, sparkline, write_run_report
from repro.obs.trace import MemoryTraceSink
from repro.scenarios.library import bursty_multitenant_scenario
from repro.sim.config import SimulationConfig
from repro.sim.ssd import SSDSimulator


def main() -> None:
    scenario = bursty_multitenant_scenario(requests_per_tenant=48, seed=11)
    sink = MemoryTraceSink()
    simulator = SSDSimulator(
        SimulationConfig.small(gc_enabled=True),
        "SPK3",
        trace_sink=sink,
        health_interval_ns=50_000,  # sample health every 50 simulated us
    )
    result = simulator.run(scenario.build(), workload_name=scenario.name)

    attribution = result.attribution
    assert attribution is not None, "scenario requests carry tenant tags"
    print(
        f"workload {result.workload!r} under {result.scheduler}: "
        f"{result.completed_ios} I/Os from tenants "
        f"{', '.join(attribution.tenants())}"
    )

    print("\nper-tenant / per-phase attribution:")
    header = f"{'phase':>5} {'tenant':<10} {'ios':>5} {'mb':>7} {'mean_us':>9} {'p99_us':>9}"
    print(header)
    for row in attribution.rows():
        print(
            f"{row['phase']:>5} {row['tenant']:<10} {row['ios']:>5} "
            f"{row['mb']:>7} {row['mean_us']:>9} {row['p99_us']:>9}"
        )
    problems = reconcile_attribution(result)
    print(f"reconciliation: {'OK' if not problems else problems}")

    print("\nhealth series ({} samples at 50us cadence):".format(len(result.health)))
    for attr, label in (
        ("queue_depth", "queue depth"),
        ("inflight_ios", "inflight I/Os"),
        ("min_free_blocks", "min free blocks"),
        ("chip_busy_fraction", "busy chips"),
    ):
        values = [getattr(sample, attr) for sample in result.health]
        print(f"  {label:<16} {sparkline(values)}")

    slo = SLOThresholds(p99_us=5_000.0)
    print("\nSLO verdicts (p99 < 5ms):")
    for check in slo_verdicts(result, slo):
        status = "PASS" if check.ok else "FAIL"
        print(
            f"  {check.tenant:<10} {check.metric} "
            f"{check.actual_us:.1f}us vs {check.limit_us:.1f}us  {status}"
        )

    out = Path(__file__).resolve().parent / "tenant_report.html"
    write_run_report(
        out, result, slo=slo, sink=sink, title=f"Tenant report: {scenario.name}"
    )
    print(f"\nwrote {out} - open it in any browser")


if __name__ == "__main__":
    main()
