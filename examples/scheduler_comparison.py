#!/usr/bin/env python
"""Compare all five schedulers on data-center traces (Figure 10 in miniature).

Replays synthetic versions of four of the paper's data-center traces (cfs0,
cfs3, msnfs1, proj0) against the same 64-chip SSD under VAS, PAS, SPK1, SPK2
and SPK3 and prints a per-trace comparison table plus the headline speedups
(the paper reports SPK3 at >= 2.2x VAS and >= 1.8x PAS bandwidth).

The grid is declared once as an ``ExperimentSpec`` and executed by the shared
engine, so the twenty simulations parallelise over cores with::

    python examples/scheduler_comparison.py --backend process --workers 8
"""

from repro import SCHEDULER_NAMES, SimulationConfig, format_table
from repro.experiments.engine import engine_from_cli
from repro.experiments.spec import ExperimentSpec, WorkloadSpec

TRACES = ("cfs0", "cfs3", "msnfs1", "proj0")
REQUESTS_PER_TRACE = 200


def main() -> None:
    engine = engine_from_cli("Scheduler comparison (Figure 10 in miniature)")
    spec = ExperimentSpec.matrix(
        "scheduler-comparison",
        [
            WorkloadSpec.datacenter(trace, num_requests=REQUESTS_PER_TRACE, seed=7)
            for trace in TRACES
        ],
        SCHEDULER_NAMES,
        SimulationConfig.paper_scale(num_chips=64),
    )
    results = engine.run(spec)

    rows = []
    speedups = {}
    for trace in TRACES:
        bandwidths = {}
        for scheduler in SCHEDULER_NAMES:
            result = results[(trace, scheduler)]
            bandwidths[scheduler] = result.bandwidth_kb_s
            rows.append(
                {
                    "trace": trace,
                    "scheduler": scheduler,
                    "bandwidth_MB_s": round(result.bandwidth_kb_s / 1024, 1),
                    "IOPS": round(result.iops),
                    "avg_latency_us": round(result.avg_latency_ns / 1000, 1),
                    "chip_util_%": round(100 * result.chip_utilization, 1),
                    "txns": result.transactions,
                }
            )
        speedups[trace] = {
            "SPK3/VAS": round(bandwidths["SPK3"] / bandwidths["VAS"], 2),
            "SPK3/PAS": round(bandwidths["SPK3"] / bandwidths["PAS"], 2),
        }

    print(format_table(rows, title="Scheduler comparison (Figure 10 in miniature)"))
    print()
    print("Bandwidth speedups:")
    for trace, ratios in speedups.items():
        print(f"  {trace:8s} SPK3 over VAS: {ratios['SPK3/VAS']:.2f}x   over PAS: {ratios['SPK3/PAS']:.2f}x")


if __name__ == "__main__":
    main()
