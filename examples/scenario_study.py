#!/usr/bin/env python
"""Compose a scenario with the DSL and compare schedulers on it.

Builds a three-phase, two-tenant scenario by hand - a Poisson warm-up, an
MMPP-style burst with a sequential-writer co-tenant confined to its own
address slice, and a diurnal cool-down - prints the characterization report
stamped onto the built trace, and then runs the scenario against VAS and the
Sprinkler variants through the execution engine.

Run with (add ``--backend process`` to parallelise over cores)::

    python examples/scenario_study.py
"""

from repro import SimulationConfig, format_table
from repro.experiments.engine import engine_from_cli
from repro.experiments.spec import ExperimentSpec, SimJob, WorkloadSpec
from repro.scenarios import (
    BurstyArrivals,
    DiurnalArrivals,
    Phase,
    PoissonArrivals,
    Scenario,
    Tenant,
)

KB = 1024
MB = 1024 * KB

SCHEDULERS = ("VAS", "SPK1", "SPK2", "SPK3")


def build_scenario() -> Scenario:
    reader = Tenant.random(
        "oltp-reader",
        num_requests=48,
        size_bytes=16 * KB,
        address_space_bytes=256 * MB,
        seed=21,
        address_base_bytes=0,
        address_span_bytes=96 * MB,
    )
    writer = Tenant.sequential(
        "log-writer",
        num_requests=48,
        size_bytes=256 * KB,
        read_fraction=0.0,
        seed=22,
        address_base_bytes=96 * MB,
        address_span_bytes=96 * MB,
    )
    return Scenario(
        name="warmup-burst-cooldown",
        seed=21,
        phases=(
            Phase(
                name="warmup",
                tenants=(reader,),
                arrivals=PoissonArrivals(mean_interarrival_ns=5_000),
            ),
            Phase(
                name="burst",
                tenants=(reader, writer),
                arrivals=BurstyArrivals(
                    burst_interarrival_ns=400.0,
                    idle_interarrival_ns=25_000.0,
                    mean_burst_length=10.0,
                ),
            ),
            Phase(
                name="cooldown",
                tenants=(reader,),
                arrivals=DiurnalArrivals(
                    base_interarrival_ns=6_000.0, amplitude=0.7, period_ns=150_000.0
                ),
                time_scale=1.5,
            ),
        ),
    )


def main() -> None:
    engine = engine_from_cli("Scenario study: composed multi-phase workload")
    scenario = build_scenario()
    built = scenario.build_with_report()
    print(f"Scenario {scenario.name!r}: {len(built.requests)} requests, "
          f"fingerprint {scenario.fingerprint()[:12]}")
    print(format_table(built.report.rows(), title="Characterization per phase"))
    print()

    spec = ExperimentSpec(
        "scenario-study",
        tuple(
            SimJob(
                workload=WorkloadSpec.scenario(scenario),
                scheduler=scheduler,
                config=SimulationConfig.paper_scale(num_chips=64).with_overrides(
                    gc_enabled=False
                ),
                key=(scheduler,),
            )
            for scheduler in SCHEDULERS
        ),
    )
    results = engine.run(spec)
    rows = [
        {
            "scheduler": scheduler,
            "bandwidth_MB_s": round(results[(scheduler,)].bandwidth_kb_s / 1024, 1),
            "IOPS": round(results[(scheduler,)].iops),
            "avg_latency_us": round(results[(scheduler,)].avg_latency_ns / 1000, 1),
            "p99_latency_us": round(
                results[(scheduler,)].latency.percentile_ns(0.99) / 1000, 1
            ),
            "chip_util_%": round(100 * results[(scheduler,)].chip_utilization, 1),
        }
        for scheduler in SCHEDULERS
    ]
    print(format_table(rows, title="Scheduler comparison on the composed scenario"))
    vas = next(row for row in rows if row["scheduler"] == "VAS")
    spk3 = next(row for row in rows if row["scheduler"] == "SPK3")
    speedup = spk3["bandwidth_MB_s"] / max(vas["bandwidth_MB_s"], 1e-9)
    print(f"\nSPK3 over VAS on this scenario: {speedup:.2f}x bandwidth")


if __name__ == "__main__":
    main()
