#!/usr/bin/env python
"""Trace one bursty run end to end: spans, counters, windowed tails.

A single bursty multi-tenant scenario runs under SPK3 with a memory trace
sink attached.  The script then reads the run back three ways:

* the ten longest spans (where did simulated time actually go?),
* the counter registry (how much work of each kind happened?),
* the per-window p99/p999 tail table (when was latency bad, not just
  how bad was it on average?).

It also writes the Chrome-trace JSON next to itself so the same run can be
opened visually at https://ui.perfetto.dev::

    python examples/trace_tour.py
"""

from pathlib import Path

from repro.experiments.spec import SimJob, WorkloadSpec
from repro.obs import format_tail_windows, write_chrome_trace
from repro.obs.runner import run_traced
from repro.scenarios.library import bursty_multitenant_scenario
from repro.sim.config import SimulationConfig


def main() -> None:
    scenario = bursty_multitenant_scenario(requests_per_tenant=48, seed=11)
    job = SimJob(
        workload=WorkloadSpec.scenario(scenario),
        scheduler="SPK3",
        config=SimulationConfig.small(gc_enabled=True),
        key=("bursty", "SPK3"),
    )
    result, sink = run_traced(job)

    print(
        f"workload {result.workload!r} under {result.scheduler}: "
        f"{result.completed_ios} I/Os, {result.events_processed} events, "
        f"{sink.total_records} trace records"
    )

    print("\ntop 10 longest spans:")
    print(f"{'name':<10} {'track':<12} {'start_us':>10} {'dur_us':>10}")
    for record in sink.longest(limit=10):
        print(
            f"{record.name:<10} {record.track:<12} "
            f"{record.start_ns / 1000.0:>10.1f} {record.duration_ns / 1000.0:>10.1f}"
        )

    print("\ncounters:")
    width = max(len(name) for name in result.counters)
    for name, value in result.counters.items():
        print(f"  {name:<{width}}  {value}")

    print("\nper-window tail latency:")
    print(format_tail_windows(result.latency_windows))

    out = Path(__file__).resolve().parent / "bursty.trace.json"
    write_chrome_trace(out, sink, {"scenario": scenario.name})
    print(f"\nwrote {out} - open it at https://ui.perfetto.dev")


if __name__ == "__main__":
    main()
