#!/usr/bin/env python
"""Sweep one workload across the device zoo, then a heterogeneous array.

The same pinned-seed probe workload (mixed reads/writes over a 16 MB
window - small enough for every shipped device) runs on three zoo
generations under SPK3, printing a per-device comparison table: the
differences in bandwidth, latency and utilization are purely the *device*,
because the trace bytes are identical.  A fourth run stripes the probe over
a heterogeneous two-device array (mlc-gen2 + tlc-gen3) declared entirely by
zoo ids.

All simulations go through the standard engine, so the sweep parallelises
and caches like any experiment::

    python examples/device_zoo_tour.py --backend process --workers 4
"""

from repro import format_table
from repro.array.host import merge_device_results
from repro.devices import device_model
from repro.experiments.engine import engine_from_cli
from repro.experiments.spec import ArraySpec, SimJob, WorkloadSpec
from repro.scenarios.library import zoo_probe_scenario

DEVICES = ("slc-gen1", "mlc-gen1", "mlc-gen2")
ARRAY_DEVICES = ("mlc-gen2", "tlc-gen3")


def main() -> None:
    engine = engine_from_cli("Device zoo tour: one workload, many devices")
    workload = WorkloadSpec.scenario(zoo_probe_scenario(num_requests=64, seed=11))

    zoo_rows = []
    for name in sorted(set(DEVICES) | set(ARRAY_DEVICES)):
        zoo_rows.append(device_model(name).summary_row())
    print(format_table(zoo_rows, title="The shipped device zoo"))
    print()

    jobs = [
        SimJob(workload=workload, scheduler="SPK3", device=name, key=(name,))
        for name in DEVICES
    ]
    results = dict(zip(DEVICES, engine.run_jobs(jobs)))

    rows = []
    for name in DEVICES:
        result = results[name]
        rows.append(
            {
                "device": name,
                "bandwidth_MB_s": round(result.bandwidth_kb_s / 1024, 1),
                "IOPS": round(result.iops),
                "avg_latency_us": round(result.avg_latency_ns / 1000, 1),
                "p99_latency_us": round(result.latency.percentile_ns(0.99) / 1000, 1),
                "chip_util_%": round(100 * result.chip_utilization, 1),
            }
        )
    print(format_table(rows, title="One probe workload across three zoo devices (SPK3)"))
    print()

    array_spec = ArraySpec(
        workload=workload,
        num_devices=len(ARRAY_DEVICES),
        scheduler="SPK3",
        devices=ARRAY_DEVICES,
        policy="stripe",
        key=("zoo-array",),
    )
    device_results = engine.run_jobs(list(array_spec.device_jobs()))
    array = merge_device_results(
        device_results,
        scheduler="SPK3",
        workload=workload.name,
        policy=array_spec.policy,
    )
    print(
        format_table(
            [array.summary_row()],
            title=f"Heterogeneous array: {' + '.join(ARRAY_DEVICES)} (striped)",
        )
    )


if __name__ == "__main__":
    main()
