#!/usr/bin/env python
"""Garbage-collection stress study (Figure 17 in miniature).

Compares VAS, PAS and SPK3 on a pristine SSD versus a fragmented SSD that was
pre-filled to 90% (with a realistic mix of valid and invalid pages) so that
garbage collection fires constantly.  VAS and PAS run without a readdressing
callback; SPK3 keeps its callback and therefore keeps re-spreading and
re-coalescing memory requests as live data migrates.

Run with (add ``--backend process`` to parallelise over cores)::

    python examples/garbage_collection_study.py
"""

from repro import format_table
from repro.experiments import figure17
from repro.experiments.engine import engine_from_cli


def main() -> None:
    engine = engine_from_cli("Garbage collection impact (Figure 17)")
    rows = figure17.run_figure17(
        chip_counts=(64,),
        transfer_sizes_kb=(16, 64, 256),
        schedulers=("VAS", "PAS", "SPK3"),
        requests_per_point=32,
        engine=engine,
    )
    print(format_table(rows, title="Garbage collection impact (Figure 17)"))
    print()
    print("Bandwidth degradation caused by GC (pristine -> fragmented):")
    for (chips, size, scheduler), value in sorted(figure17.gc_degradation(rows).items()):
        print(f"  {size:4d} KB  {scheduler:4s} : {100 * value:5.1f} %")
    print()
    print("SPK3 bandwidth advantage over VAS while GC is active:")
    for (chips, size), value in sorted(figure17.fragmented_advantage(rows).items()):
        print(f"  {size:4d} KB : {value:.2f}x")


if __name__ == "__main__":
    main()
