#!/usr/bin/env python
"""Chip-utilisation sensitivity to transfer size and SSD size (Figure 15).

Sweeps the host transfer size from 4KB to 1MB on 64-chip and 256-chip SSDs
and reports the chip utilisation achieved by VAS and the three Sprinkler
variants.  The paper's shape: VAS utilisation collapses as the SSD grows,
SPK1 only helps for large transfers, SPK2 only for small ones, and SPK3 is
high and sustainable across the whole sweep.

Run with (add ``--backend process`` to parallelise over cores)::

    python examples/utilization_sweep.py
"""

from repro import format_table
from repro.experiments import figure15
from repro.experiments.engine import engine_from_cli

KB = 1024


def main() -> None:
    engine = engine_from_cli("Chip utilisation vs transfer size (Figure 15)")
    rows = figure15.run_figure15(
        chip_counts=(64, 256),
        transfer_sizes_kb=(4, 16, 64, 256, 1024),
        schedulers=("VAS", "SPK1", "SPK2", "SPK3"),
        requests_per_point=24,
        engine=engine,
    )
    print(format_table(rows, title="Chip utilisation vs transfer size (Figure 15)"))
    print()
    averages = figure15.average_utilization(rows)
    print("Average utilisation across the sweep:")
    for (chips, scheduler), value in sorted(averages.items()):
        print(f"  {chips:4d} chips  {scheduler:5s} : {value:5.1f} %")


if __name__ == "__main__":
    main()
