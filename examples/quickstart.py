#!/usr/bin/env python
"""Quickstart: simulate one workload on a many-chip SSD with Sprinkler.

This is the smallest useful use of the library: build a 64-chip SSD, generate
a synthetic random-read workload, run it under the Sprinkler scheduler (SPK3)
and print the headline metrics the paper reports (bandwidth, IOPS, latency,
chip utilisation, flash-level parallelism).

Run with::

    python examples/quickstart.py

This is the lowest-level, single-simulation API.  For grids of simulations
(many workloads x schedulers x configs) declare an ``ExperimentSpec`` and run
it through ``repro.experiments.engine.ExecutionEngine`` instead - see
``examples/scheduler_comparison.py``.
"""

from repro import SimulationConfig, run_workload
from repro.workloads import generate_random_workload

KB = 1024


def main() -> None:
    # A 64-chip SSD (8 channels x 8 chips, 2 dies x 2 planes per chip) with
    # the paper's NAND timing: 20us reads, 200-2200us MLC programs, ONFI 2.x.
    config = SimulationConfig.paper_scale(num_chips=64)

    # 256 random 16KB reads arriving back-to-back.
    workload = generate_random_workload(
        num_requests=256,
        size_bytes=16 * KB,
        address_space_bytes=256 * 1024 * KB,
        read_fraction=0.8,
        interarrival_ns=2_000,
        seed=42,
    )

    result = run_workload(workload, scheduler="SPK3", config=config, workload_name="quickstart")

    print("Sprinkler (SPK3) on a 64-chip SSD")
    print("-" * 40)
    print(f"completed I/Os        : {result.completed_ios}")
    print(f"bandwidth             : {result.bandwidth_kb_s / 1024:.1f} MB/s")
    print(f"IOPS                  : {result.iops:.0f}")
    print(f"average latency       : {result.avg_latency_ns / 1000:.1f} us")
    print(f"chip utilisation      : {100 * result.chip_utilization:.1f} %")
    print(f"inter-chip idleness   : {100 * result.inter_chip_idleness:.1f} %")
    print(f"intra-chip idleness   : {100 * result.intra_chip_idleness:.1f} %")
    print(f"flash transactions    : {result.transactions}")
    print(f"requests per txn      : {result.coalescing_degree:.2f}")
    print("FLP breakdown         :", {k: f"{100 * v:.0f}%" for k, v in result.flp_fractions().items()})


if __name__ == "__main__":
    main()
