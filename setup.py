"""Setuptools shim.

Kept alongside ``pyproject.toml`` so that ``pip install -e .`` works in
offline environments whose setuptools/pip combination lacks the ``wheel``
package required by PEP 660 editable builds.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Sprinkler (HPCA 2014) reproduction: resource-driven scheduling for "
        "many-chip SSDs"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy"],
)
