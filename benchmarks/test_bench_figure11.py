"""Benchmark: Figure 11 - inter-chip and intra-chip idleness."""

from repro.experiments import figure11


def test_bench_figure11(benchmark, run_once, bench_scale):
    rows = run_once(figure11.run_figure11, scale=bench_scale)
    inter_reduction = figure11.average_reduction(
        rows, "inter_chip_idleness_pct", "VAS", "SPK3"
    )
    intra_reduction_spk1 = figure11.average_reduction(
        rows, "intra_chip_idleness_pct", "VAS", "SPK1"
    )
    # Paper shape: Sprinkler cuts inter-chip idleness sharply; FARO-only cuts
    # intra-chip idleness.
    assert inter_reduction > 0.0
    assert intra_reduction_spk1 > 0.0
    benchmark.extra_info["spk3_inter_chip_idleness_reduction_vs_vas"] = inter_reduction
    benchmark.extra_info["spk1_intra_chip_idleness_reduction_vs_vas"] = intra_reduction_spk1
