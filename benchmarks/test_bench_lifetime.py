"""Benchmark: fast-forward device aging vs simulated preconditioning.

The acceptance bar of the lifetime subsystem: fast-forwarding a
``paper_scale(64)`` device to 90% fill must be at least **25x faster** than
pushing the equivalent write workload through the event simulator, while
leaving byte-for-byte identical FTL occupancy.  Simulating the full ~2M-page
fill would take minutes, so the simulated cost is measured on a sampled
prefix of the equivalent workload and extrapolated per page - the identity
claim, which needs the complete final state, is checked against the
page-by-page replay reference (the tier-1 lifetime tests additionally pin
replay == event-simulation on a small device, closing the chain).

The bar was originally 50x; the hot-path optimization pass (see
``repro.perf`` and BENCH_5.json) made the *event simulator* - the
denominator of this ratio - about twice as fast while the bulk aging path
was already allocation-bound, so the same absolute fast-forward cost now
measures ~45x.  The invariant being protected (bulk aging is an order of
magnitude cheaper than simulating the fill) is unchanged; the threshold is
recalibrated to keep headroom for loaded CI runners.
"""

from __future__ import annotations

import time

from repro.flash.chip import FlashChip
from repro.ftl.garbage_collector import GarbageCollector
from repro.ftl.mapping import PageMapFTL
from repro.lifetime import (
    DeviceState,
    age_to_steady_state,
    apply_device_state,
    device_state_workload,
    replay_device_state,
)
from repro.sim.config import SimulationConfig
from repro.sim.ssd import SSDSimulator

STATE = DeviceState(fill_fraction=0.9, invalid_fraction=0.3, seed=11)
MIN_SPEEDUP = 25.0


def fresh_ftl(geometry):
    chips = {key: FlashChip(key, geometry) for key in geometry.iter_chip_keys()}
    return PageMapFTL(geometry, chips)


def same_occupancy(left: PageMapFTL, right: PageMapFTL) -> bool:
    """Byte-for-byte FTL/flash state equality (cheap, unsorted comparison)."""
    if dict(left.mapping_items()) != dict(right.mapping_items()):
        return False
    if left.allocator.cursor != right.allocator.cursor:
        return False
    for chip_key, chip in left.chips.items():
        other = right.chips[chip_key]
        for plane, other_plane in zip(chip.iter_planes(), other.iter_planes()):
            if plane.active_block_id != other_plane.active_block_id:
                return False
            for block, other_block in zip(plane.blocks, other_plane.blocks):
                if (
                    block.write_pointer != other_block.write_pointer
                    or block.valid_mask != other_block.valid_mask
                    or block.erase_count != other_block.erase_count
                ):
                    return False
    return True


def test_bench_fast_forward_aging(benchmark, run_once):
    config = SimulationConfig.paper_scale(64, gc_enabled=False)
    geometry = config.geometry

    def fast_forward():
        best = None
        report = None
        ftl = None
        # Best-of-2 so a transient scheduling hiccup on a loaded CI runner
        # cannot sink the (otherwise ~70x) speedup assertion.
        for _ in range(2):
            candidate = fresh_ftl(geometry)
            started = time.perf_counter()
            report = apply_device_state(
                candidate, STATE, logical_pages=config.logical_pages
            )
            elapsed = time.perf_counter() - started
            if best is None or elapsed < best:
                best, ftl = elapsed, candidate
        return ftl, report, best

    ftl, report, fast_s = run_once(fast_forward)

    # Identity: the bulk path must equal the page-by-page replay reference.
    reference = fresh_ftl(geometry)
    replay_device_state(reference, STATE, logical_pages=config.logical_pages)
    assert same_occupancy(ftl, reference), "fast-forward diverged from replay"

    # Speedup: extrapolate the event simulator's per-page cost from sampled
    # prefixes of both halves of the equivalent workload - the chunked
    # sequential base fill and the (per-page, much costlier) overwrites.
    workload = device_state_workload(STATE, geometry, logical_pages=config.logical_pages)
    base_requests = [io for io in workload if io.num_pages(geometry.page_size_bytes) > 1]
    overwrite_requests = [io for io in workload if io.num_pages(geometry.page_size_bytes) == 1]

    def simulated_seconds_per_page(sample):
        pages = sum(io.num_pages(geometry.page_size_bytes) for io in sample)
        simulator = SSDSimulator(config, "SPK3")
        started = time.perf_counter()
        simulator.run(list(sample), workload_name="precondition-sample")
        return (time.perf_counter() - started) / pages

    base_pages = sum(io.num_pages(geometry.page_size_bytes) for io in base_requests)
    simulated_estimate_s = simulated_seconds_per_page(base_requests[:400]) * base_pages
    if overwrite_requests:
        simulated_estimate_s += (
            simulated_seconds_per_page(overwrite_requests[:2000]) * len(overwrite_requests)
        )
    speedup = simulated_estimate_s / fast_s
    assert speedup >= MIN_SPEEDUP, (
        f"fast-forward {fast_s:.2f}s vs simulated ~{simulated_estimate_s:.0f}s "
        f"is only {speedup:.0f}x (need >= {MIN_SPEEDUP:.0f}x)"
    )
    benchmark.extra_info["pages_programmed"] = report.page_writes
    benchmark.extra_info["fast_forward_s"] = round(fast_s, 3)
    benchmark.extra_info["simulated_estimate_s"] = round(simulated_estimate_s, 1)
    benchmark.extra_info["speedup_vs_simulated"] = round(speedup, 1)


def test_bench_steady_state_aging(benchmark, run_once):
    """Time the WA-convergence driver on a mid-size aged device."""
    config = SimulationConfig.paper_scale(16)
    geometry = config.geometry.scaled(blocks_per_plane=16, pages_per_block=32)
    state = DeviceState(
        fill_fraction=0.85, invalid_fraction=0.3, seed=11, steady_state=True
    )

    def age():
        import random

        ftl = fresh_ftl(geometry)
        gc = GarbageCollector(geometry, config.timing, ftl, ftl.chips)
        rng = random.Random(state.seed)
        fill = apply_device_state(
            ftl, state, logical_pages=geometry.total_pages, rng=rng
        )
        return age_to_steady_state(ftl, gc, state, live_pages=fill.live_pages, rng=rng)

    report = run_once(age)
    assert report.passes >= 1
    assert report.write_amplification >= 1.0
    benchmark.extra_info["passes"] = report.passes
    benchmark.extra_info["converged"] = report.converged
    benchmark.extra_info["final_wa"] = round(report.write_amplification, 3)
    benchmark.extra_info["gc_invocations"] = report.gc_invocations
