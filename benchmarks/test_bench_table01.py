"""Benchmark: regenerate Table 1 (workload characteristics)."""

from repro.experiments import table01
from repro.experiments.runner import ExperimentScale


def test_bench_table01(benchmark, run_once):
    rows = run_once(table01.run_table01, scale=ExperimentScale(requests_per_trace=120))
    assert len(rows) == 16
    benchmark.extra_info["traces"] = len(rows)
    benchmark.extra_info["example_row"] = {
        key: rows[0][key] for key in ("trace", "read_mb", "write_mb", "locality")
    }
