"""Ablation benchmarks for the design choices called out in DESIGN.md.

These go beyond the paper's figures: they quantify how much each Sprinkler
design decision contributes by toggling it while keeping everything else
fixed.  The grid is declared as :class:`~repro.experiments.spec.SimJob` data
and executed through the shared :class:`~repro.experiments.engine.ExecutionEngine`,
like every figure module.

* FARO over-commitment depth (full over-commitment vs committing one request
  per chip visit).
* RIOS traversal order (channel-striped as the paper argues, vs the
  channel-first order it warns against).
* Device-queue depth sensitivity (Sprinkler needs queued work to sprinkle).
"""

from repro.experiments.engine import ExecutionEngine
from repro.experiments.spec import ExperimentSpec, SimJob, WorkloadSpec
from repro.sim.config import SimulationConfig

KB = 1024


def _trace(num_requests=96):
    return WorkloadSpec.datacenter("cfs3", num_requests=num_requests, seed=13)


def _run_grid(jobs):
    spec = ExperimentSpec("ablation", tuple(jobs))
    return ExecutionEngine().run(spec)


def test_bench_ablation_faro_overcommit(benchmark, run_once):
    """FARO over-commitment vs one-request-per-visit commitment."""
    config = SimulationConfig.paper_scale(64)
    workload = _trace()
    jobs = [
        SimJob(workload=workload, scheduler="SPK3", config=config, key=("full",)),
        SimJob(
            workload=workload,
            scheduler="SPK3",
            config=config,
            scheduler_options=(("overcommit_limit", 1),),
            key=("limit1",),
        ),
    ]

    results = run_once(_run_grid, jobs)
    full, shallow = results[("full",)], results[("limit1",)]
    assert full.coalescing_degree >= shallow.coalescing_degree
    benchmark.extra_info["coalescing_full_overcommit"] = round(full.coalescing_degree, 2)
    benchmark.extra_info["coalescing_limit_1"] = round(shallow.coalescing_degree, 2)
    benchmark.extra_info["bandwidth_ratio_full_vs_limit1"] = round(
        full.bandwidth_kb_s / max(1.0, shallow.bandwidth_kb_s), 2
    )


def test_bench_ablation_rios_traversal(benchmark, run_once):
    """Channel-striped traversal (paper) vs channel-first traversal."""
    config = SimulationConfig.paper_scale(64)
    workload = _trace()
    jobs = [
        SimJob(workload=workload, scheduler="SPK3", config=config, key=("striped",)),
        SimJob(
            workload=workload,
            scheduler="SPK3",
            config=config,
            scheduler_options=(("channel_first_traversal", True),),
            key=("channel_first",),
        ),
    ]

    results = run_once(_run_grid, jobs)
    striped, channel_first = results[("striped",)], results[("channel_first",)]
    # The channel-striped order should never be meaningfully worse: it spreads
    # consecutive commitments over different channels.
    assert striped.bandwidth_kb_s >= 0.9 * channel_first.bandwidth_kb_s
    benchmark.extra_info["bandwidth_striped_kb_s"] = round(striped.bandwidth_kb_s, 1)
    benchmark.extra_info["bandwidth_channel_first_kb_s"] = round(channel_first.bandwidth_kb_s, 1)


def test_bench_ablation_queue_depth(benchmark, run_once):
    """Sprinkler's gains grow with the amount of queued work it can sprinkle."""
    workload = _trace()
    jobs = [
        SimJob(
            workload=workload,
            scheduler="SPK3",
            config=SimulationConfig.paper_scale(64).with_overrides(queue_depth=depth),
            key=(depth,),
        )
        for depth in (4, 64)
    ]

    results = run_once(_run_grid, jobs)
    assert results[(64,)].bandwidth_kb_s >= results[(4,)].bandwidth_kb_s * 0.9
    benchmark.extra_info["bandwidth_by_queue_depth_kb_s"] = {
        depth: round(results[(depth,)].bandwidth_kb_s, 1) for depth in (4, 64)
    }
    benchmark.extra_info["queue_stall_ns_by_depth"] = {
        depth: results[(depth,)].queue_stall_time_ns for depth in (4, 64)
    }
