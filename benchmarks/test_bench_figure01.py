"""Benchmark: Figure 1 - many-chip scaling of a conventional controller."""

from repro.experiments import figure01


def test_bench_figure01(benchmark, run_once):
    rows = run_once(
        figure01.run_figure01,
        die_counts=(16, 64, 256),
        transfer_sizes_kb=(4, 64),
        requests_per_point=16,
    )
    summary = figure01.stagnation_summary(rows)
    # Shape check: 16x more dies must buy far less than 16x bandwidth.
    assert all(gain < 16.0 for gain in summary.values())
    largest = max(row["num_dies"] for row in rows)
    smallest = min(row["num_dies"] for row in rows)
    big = [row for row in rows if row["num_dies"] == largest]
    small = [row for row in rows if row["num_dies"] == smallest]
    assert max(row["chip_utilization_pct"] for row in big) < max(
        row["chip_utilization_pct"] for row in small
    )
    benchmark.extra_info["bandwidth_gain_per_transfer_size"] = summary
    benchmark.extra_info["utilization_pct_smallest_vs_largest"] = {
        "smallest": small[0]["chip_utilization_pct"],
        "largest": big[0]["chip_utilization_pct"],
    }
