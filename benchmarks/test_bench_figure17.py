"""Benchmark: Figure 17 - garbage collection and readdressing-callback impact."""

from repro.experiments import figure17


def test_bench_figure17(benchmark, run_once):
    rows = run_once(
        figure17.run_figure17,
        chip_counts=(64,),
        transfer_sizes_kb=(64, 256),
        schedulers=("VAS", "PAS", "SPK3"),
        requests_per_point=32,
    )
    degradation = figure17.gc_degradation(rows)
    advantage = figure17.fragmented_advantage(rows)
    # Paper shape: every scheduler loses performance once GC fires, but SPK3
    # (with the readdressing callback) stays roughly 2x ahead of VAS.
    assert all(0.0 < value < 1.0 for value in degradation.values())
    assert all(value > 1.2 for value in advantage.values())
    fragmented = [row for row in rows if row["state"] == "fragmented"]
    assert all(row["gc_invocations"] > 0 for row in fragmented)
    benchmark.extra_info["gc_degradation"] = {
        f"{size}KB/{scheduler}": value for (_, size, scheduler), value in degradation.items()
    }
    benchmark.extra_info["spk3_over_vas_under_gc"] = {
        f"{size}KB": value for (_, size), value in advantage.items()
    }
