"""Benchmark: Figure 6 - chip utilisation and improvement potential."""

from repro.experiments import figure06


def test_bench_figure06(benchmark, run_once, bench_scale):
    rows = run_once(figure06.run_figure06, scale=bench_scale)
    averages = figure06.averages(rows)
    # Paper shape: potential (Sprinkler) utilisation well above VAS and PAS.
    assert averages["utilization_potential_pct"] > averages["utilization_pas_pct"]
    assert averages["utilization_potential_pct"] > averages["utilization_vas_pct"]
    benchmark.extra_info["average_utilization_pct"] = averages
    benchmark.extra_info["improvement_over_vas_x"] = round(
        averages["utilization_potential_pct"] / max(0.1, averages["utilization_vas_pct"]), 2
    )
