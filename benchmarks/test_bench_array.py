"""Benchmark: array scaling - device count x placement x scheduler."""

from repro.experiments import array_scaling


def test_bench_array_scaling(benchmark, run_once):
    rows = run_once(
        array_scaling.run_array_scaling,
        device_counts=(1, 2, 4),
        policies=("stripe", "range"),
        schedulers=("VAS", "SPK3"),
        num_requests=16,
        size_kb=128,
        chips_per_device=16,
    )
    by_cell = {
        (row["devices"], row["policy"], row["scheduler"]): row["bandwidth_mb_s"] for row in rows
    }
    # Expected shape: aggregate bandwidth grows with device count, and the
    # paper's scheduler ranking (SPK3 over VAS) survives host-level striping.
    assert by_cell[(4, "stripe", "SPK3")] > by_cell[(1, "stripe", "SPK3")]
    assert by_cell[(4, "stripe", "SPK3")] > by_cell[(4, "stripe", "VAS")]
    benchmark.extra_info["scaling_efficiency"] = {
        f"{policy}/{scheduler}": value
        for (policy, scheduler), value in array_scaling.scaling_efficiency(rows).items()
    }
