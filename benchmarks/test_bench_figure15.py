"""Benchmark: Figure 15 - chip utilisation vs transfer size and SSD size."""

from repro.experiments import figure15


def test_bench_figure15(benchmark, run_once):
    rows = run_once(
        figure15.run_figure15,
        chip_counts=(64, 256),
        transfer_sizes_kb=(4, 16, 64, 256),
        schedulers=("VAS", "SPK1", "SPK2", "SPK3"),
        requests_per_point=16,
    )
    averages = figure15.average_utilization(rows)
    # Paper shape: SPK3 sustains higher utilisation than VAS at both sizes,
    # and utilisation drops as the SSD grows for the conventional scheduler.
    assert averages[(64, "SPK3")] > averages[(64, "VAS")]
    assert averages[(256, "SPK3")] > averages[(256, "VAS")]
    assert averages[(256, "VAS")] < averages[(64, "VAS")]
    benchmark.extra_info["average_utilization_pct"] = {
        f"{chips}chips/{scheduler}": value for (chips, scheduler), value in averages.items()
    }
