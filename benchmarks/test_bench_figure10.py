"""Benchmark: Figure 10 - bandwidth, IOPS, latency, queue stall for all schedulers."""

import statistics

from repro.experiments import figure10


def test_bench_figure10(benchmark, run_once, bench_scale):
    rows = run_once(figure10.run_figure10, scale=bench_scale)
    speedup_vs_vas = figure10.speedups_over(rows, "VAS", "SPK3")
    speedup_vs_pas = figure10.speedups_over(rows, "PAS", "SPK3")
    latency_cut = figure10.latency_reduction(rows, "VAS", "SPK3")
    # Paper shape: SPK3 comfortably above both baselines on every trace.
    assert all(ratio > 1.0 for ratio in speedup_vs_vas.values())
    assert all(ratio >= 1.0 for ratio in speedup_vs_pas.values())
    assert statistics.mean(latency_cut.values()) > 0.2
    benchmark.extra_info["spk3_bandwidth_over_vas"] = speedup_vs_vas
    benchmark.extra_info["spk3_bandwidth_over_pas"] = speedup_vs_pas
    benchmark.extra_info["spk3_latency_reduction_vs_vas"] = latency_cut
