"""Benchmark-suite configuration.

Each benchmark regenerates one table or figure of the paper at a reduced
scale (so the whole suite finishes in minutes on a laptop) and attaches the
headline numbers to ``benchmark.extra_info`` so they appear in the
pytest-benchmark report next to the timing.

Run with::

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import pytest

from repro.experiments.runner import ExperimentScale


@pytest.fixture(scope="session")
def bench_scale() -> ExperimentScale:
    """Scale shared by the trace-driven figure benchmarks."""
    return ExperimentScale(
        requests_per_trace=96,
        requests_per_point=16,
        num_chips=64,
        traces=("cfs0", "cfs3", "msnfs1", "proj0"),
        seed=7,
    )


@pytest.fixture
def run_once(benchmark):
    """Run an experiment exactly once under pytest-benchmark timing."""

    def runner(func, *args, **kwargs):
        return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return runner
