"""Benchmark: Figure 13 - execution time breakdown (PAS vs SPK3)."""

from repro.experiments import figure13


def test_bench_figure13(benchmark, run_once, bench_scale):
    rows = run_once(figure13.run_figure13, scale=bench_scale)
    vs_pas = figure13.idleness_elimination(rows, "PAS", "SPK3")
    vs_vas = figure13.idleness_elimination(rows, "VAS", "SPK3")
    # Paper shape: SPK3 converts system idle time into cell activity.
    assert vs_pas > 0.0
    assert vs_vas > 0.0
    benchmark.extra_info["spk3_idle_reduction_vs_pas"] = vs_pas
    benchmark.extra_info["spk3_idle_reduction_vs_vas"] = vs_vas
