"""Benchmark: scenario matrix - scenario x scheduler x device topology."""

from repro.experiments import scenario_matrix
from repro.scenarios.library import default_scenarios


def test_bench_scenario_matrix(benchmark, run_once):
    scenarios = default_scenarios(scale=0.5, seed=7)
    rows = run_once(
        scenario_matrix.run_scenario_matrix,
        scenarios,
        schedulers=("VAS", "SPK3"),
        device_counts=(1, 2),
        chips_per_device=16,
    )
    by_cell = {
        (row["scenario"], row["devices"], row["scheduler"]): row["bandwidth_mb_s"]
        for row in rows
    }
    # Expected shape: Sprinkler's advantage survives bursty multi-tenant
    # traffic on a single device, and striping adds aggregate bandwidth.
    assert by_cell[("bursty", 1, "SPK3")] > by_cell[("bursty", 1, "VAS")]
    assert by_cell[("steady", 2, "SPK3")] > by_cell[("steady", 1, "SPK3")]
    benchmark.extra_info["ranking"] = {
        f"{scenario}/x{devices}": " > ".join(order)
        for (scenario, devices), order in scenario_matrix.scheduler_ranking(rows).items()
    }
