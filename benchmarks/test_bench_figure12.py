"""Benchmark: Figure 12 - msnfs1 latency time series (VAS vs PAS vs SPK3)."""

from repro.experiments import figure12


def test_bench_figure12(benchmark, run_once):
    data = run_once(
        figure12.run_figure12, trace_name="msnfs1", num_requests=150, num_chips=64
    )
    reductions = data["latency_reduction"]
    # Paper shape: SPK3 latency well below VAS over the replayed window.
    assert reductions["SPK3_vs_VAS"] > 0.2
    assert reductions["SPK3_vs_PAS"] > 0.0
    benchmark.extra_info["latency_reduction"] = reductions
    benchmark.extra_info["mean_latency_us"] = {
        scheduler: round(value / 1000.0, 1)
        for scheduler, value in data["mean_latency_ns"].items()
    }
