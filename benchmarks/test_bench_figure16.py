"""Benchmark: Figure 16 - flash transaction reduction."""

from repro.experiments import figure16


def test_bench_figure16(benchmark, run_once):
    rows = run_once(
        figure16.run_figure16,
        chip_counts=(64,),
        transfer_sizes_kb=(4, 16, 64, 256),
        schedulers=("VAS", "SPK1", "SPK2", "SPK3"),
        requests_per_point=16,
    )
    reductions = figure16.reduction_vs_vas(rows)
    spk3_reductions = [value for key, value in reductions.items() if key[2] == "SPK3"]
    # Paper shape: FARO roughly halves the number of flash transactions.
    assert max(spk3_reductions) > 0.3
    assert all(value >= 0.0 for value in spk3_reductions)
    benchmark.extra_info["transaction_reduction_vs_vas"] = {
        f"{size}KB/{scheduler}": value for (_, size, scheduler), value in reductions.items()
    }
