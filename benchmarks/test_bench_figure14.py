"""Benchmark: Figure 14 - flash-level parallelism breakdown."""

from repro.experiments import figure14


def test_bench_figure14(benchmark, run_once, bench_scale):
    rows = run_once(figure14.run_figure14, scale=bench_scale)
    averages = figure14.average_high_flp(rows)
    # Paper shape: every Sprinkler variant reaches more FLP than PAS, with the
    # FARO-enabled variants (SPK1/SPK3) at the top.
    assert averages["SPK3"] >= averages["PAS"]
    assert averages["SPK1"] >= averages["PAS"]
    benchmark.extra_info["average_high_flp_share_pct"] = averages
