"""Benchmark: execution-engine backends on the quick ablation grid.

Runs the same declarative job grid (``ExperimentScale.quick()`` sized
Sprinkler ablation: two over-commit depths x two traversal orders x two
queue depths) through the serial and process backends, asserts the results
are identical, and reports the wall-clock speedup.  On a >=4-core machine
the process backend is expected to finish the grid at least ~2x faster;
the speedup is recorded in ``extra_info`` (alongside the core count) rather
than hard-asserted so the suite stays green on single-core CI runners.
"""

import os
import pickle
import time

from repro.experiments.engine import ExecutionEngine
from repro.experiments.runner import ExperimentScale
from repro.experiments.spec import ExperimentSpec, SimJob, WorkloadSpec
from repro.sim.config import SimulationConfig


def _quick_ablation_spec() -> ExperimentSpec:
    scale = ExperimentScale.quick()
    workload = WorkloadSpec.datacenter(
        "cfs3", num_requests=scale.requests_per_trace, seed=scale.seed
    )
    jobs = []
    for overcommit in (1, 64):
        for channel_first in (False, True):
            for depth in (4, 64):
                jobs.append(
                    SimJob(
                        workload=workload,
                        scheduler="SPK3",
                        config=SimulationConfig.paper_scale(scale.num_chips).with_overrides(
                            queue_depth=depth
                        ),
                        scheduler_options=(
                            ("channel_first_traversal", channel_first),
                            ("overcommit_limit", overcommit),
                        ),
                        key=(overcommit, channel_first, depth),
                    )
                )
    return ExperimentSpec("ablation-quick", tuple(jobs))


def test_bench_engine_backends(benchmark, run_once):
    spec = _quick_ablation_spec()

    def run_both():
        t0 = time.perf_counter()
        serial = ExecutionEngine("serial").run(spec)
        t1 = time.perf_counter()
        parallel = ExecutionEngine("process").run(spec)
        t2 = time.perf_counter()
        return serial, parallel, t1 - t0, t2 - t1

    serial, parallel, serial_s, parallel_s = run_once(run_both)
    # Hard requirement regardless of core count: identical result values.
    assert list(serial) == list(parallel)
    for key in serial:
        assert pickle.dumps(serial[key]) == pickle.dumps(parallel[key])
    benchmark.extra_info["jobs"] = len(spec)
    benchmark.extra_info["cpu_count"] = os.cpu_count()
    benchmark.extra_info["serial_s"] = round(serial_s, 3)
    benchmark.extra_info["process_s"] = round(parallel_s, 3)
    benchmark.extra_info["speedup_process_over_serial"] = round(
        serial_s / max(1e-9, parallel_s), 2
    )


def test_bench_engine_cache(benchmark, run_once, tmp_path):
    """Warm-cache rerun of the ablation grid should execute zero jobs."""
    spec = _quick_ablation_spec()
    warm = ExecutionEngine("serial", cache_dir=tmp_path)
    warm.run(spec)

    def rerun():
        engine = ExecutionEngine("serial", cache_dir=tmp_path)
        t0 = time.perf_counter()
        results = engine.run(spec)
        return engine, results, time.perf_counter() - t0

    engine, results, cached_s = run_once(rerun)
    assert engine.stats.jobs_executed == 0
    assert engine.stats.cache_hits == len(spec)
    assert len(results) == len(spec)
    benchmark.extra_info["cached_rerun_s"] = round(cached_s, 3)
