"""Benchmark: the canonical perf suite through the trajectory recorder.

Runs the quick-scale canonical suite once under pytest-benchmark timing and
attaches the headline events/sec numbers, so the perf subsystem's own cost
and the simulator's throughput appear in the standard benchmark report.

The machine-independent invariants are asserted here: the recorded cases
must stay comparable with the committed ``BENCH_5.json`` (same workload
fingerprints) and produce bit-identical simulation results (same digests).
The >25% events/sec regression gate is deliberately *not* asserted in the
tier-1 suite - wall-clock speed depends on the host, so that gate lives in
the dedicated ``perf-trajectory`` CI job.  (The committed trajectory
records its host in its ``platform`` field; if CI hardware drifts from it,
re-commit the job's uploaded ``BENCH_current.json`` artifact as the new
``BENCH_5.json`` - digests, which are machine-independent, must not change
in that refresh.)
"""

from __future__ import annotations

from pathlib import Path

from repro.perf.compare import compare_trajectories
from repro.perf.record import load_trajectory, record_trajectory

REPO_ROOT = Path(__file__).resolve().parents[1]


def test_bench_perf_suite(run_once, benchmark):
    trajectory = run_once(record_trajectory, "quick")
    benchmark.extra_info["overall_events_per_sec"] = round(
        trajectory.overall_events_per_sec, 1
    )
    for case in trajectory.cases:
        benchmark.extra_info[f"{case.name}_events_per_sec"] = case.events_per_sec

    committed = load_trajectory(REPO_ROOT / "BENCH_5.json")
    comparison = compare_trajectories(committed, trajectory, require_identical=True)
    benchmark.extra_info["vs_committed"] = round(comparison.overall_ratio, 3)
    assert not comparison.missing, comparison.report()
    assert not comparison.incomparable, (
        "canonical suite workloads diverged from the committed trajectory; "
        "re-record BENCH_5.json together with the suite change\n"
        + comparison.report()
    )
    assert not comparison.digest_mismatches, (
        "simulation results are no longer bit-identical to the committed "
        "trajectory\n" + comparison.report()
    )
