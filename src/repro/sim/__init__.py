"""Simulation engine: discrete-event core, configuration and the SSD model.

:class:`repro.sim.ssd.SSDSimulator` wires every substrate together (device
queue, DMA composer, scheduler, FTL, garbage collector, flash controllers,
channels and chips) and replays a workload against it, producing a
:class:`repro.metrics.report.SimulationResult`.
"""

from repro.sim.events import Event, EventKind, EventQueue
from repro.sim.config import SimulationConfig
from repro.sim.ssd import SSDSimulator, run_workload

__all__ = [
    "Event",
    "EventKind",
    "EventQueue",
    "SimulationConfig",
    "SSDSimulator",
    "run_workload",
]
