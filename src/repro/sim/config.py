"""Simulation configuration.

:class:`SimulationConfig` bundles every knob of the simulated device:
geometry, NAND timing, queue depth, composition cost, the transaction
decision window, garbage collection and the readdressing-callback penalty
model.  The defaults reproduce the paper's evaluation platform (Section 5.1)
at a scale that runs quickly in pure Python; experiments override what they
sweep.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Optional

from repro.flash.geometry import SSDGeometry
from repro.flash.timing import FlashTiming
from repro.flash.transaction import TransactionConstraints
from repro.ftl.allocation import AllocationOrder

if TYPE_CHECKING:  # imported lazily at runtime (repro.lifetime imports us back)
    from repro.lifetime.state import DeviceState


def canonicalize(value) -> object:
    """Reduce a value to a stable, hashable, order-independent form.

    Supports the building blocks simulation specs are made of: (possibly
    nested, possibly frozen) dataclasses, enums, mappings, sequences and
    primitives.  The result's ``repr`` is stable across processes and Python
    sessions, so it can feed a content-addressed cache key.

    Dataclass fields declared with ``metadata={"fingerprint": False}`` are
    excluded from the canonical form.  That is how purely observational
    fields (telemetry counters, windowed tail series) can be added to result
    dataclasses without invalidating every previously recorded digest.
    """
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return (type(value).__name__,) + tuple(
            (f.name, canonicalize(getattr(value, f.name)))
            for f in dataclasses.fields(value)
            if f.metadata.get("fingerprint", True)
        )
    if isinstance(value, enum.Enum):
        return (type(value).__name__, value.name)
    if isinstance(value, dict):
        return ("dict",) + tuple(
            sorted((str(key), canonicalize(val)) for key, val in value.items())
        )
    if isinstance(value, (list, tuple)):
        return ("seq",) + tuple(canonicalize(item) for item in value)
    if isinstance(value, (set, frozenset)):
        # Sets are unordered; sort the canonical forms by repr (every
        # canonical form is a primitive or a tuple of primitives, whose
        # reprs are stable across sessions) so the same membership always
        # produces the same fingerprint.  ``set`` and ``frozenset`` of equal
        # membership are deliberately indistinguishable - device-zoo tag
        # sets thaw as either depending on the loader path.
        return ("set",) + tuple(sorted((canonicalize(item) for item in value), key=repr))
    if value is None or isinstance(value, (str, int, float, bool, bytes)):
        return value
    raise TypeError(f"cannot canonicalize {type(value).__name__} for fingerprinting")


def stable_fingerprint(value) -> str:
    """SHA-256 hex digest of the canonical form of ``value``."""
    return hashlib.sha256(repr(canonicalize(value)).encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class SimulationConfig:
    """All device and policy parameters of one simulation run."""

    geometry: SSDGeometry = field(default_factory=SSDGeometry)
    timing: FlashTiming = field(default_factory=FlashTiming)
    constraints: TransactionConstraints = field(default_factory=TransactionConstraints)
    allocation_order: AllocationOrder = AllocationOrder.CHANNEL_WAY_DIE_PLANE

    #: Device-level queue depth (NCQ tags).
    queue_depth: int = 64
    #: Fixed cost of composing one memory request (tag parse + DMA initiation).
    compose_ns: int = 500
    #: Extra per-byte composition cost (ns per 1000 bytes); 0 disables it.
    compose_per_kb_ns: int = 0
    #: Transaction type decision window: requests committed within this window
    #: of the first one can join the same transaction (temporal locality).
    decision_window_ns: int = 2_000

    #: Garbage collection settings.
    gc_enabled: bool = True
    gc_free_block_watermark: int = 2
    #: Fraction of the logical space pre-written before the run starts
    #: (0.95 reproduces the paper's fragmented-SSD GC experiment).
    prefill_fraction: float = 0.0
    #: Share of the prefilled pages rewritten once more during prefill so the
    #: drive starts with a realistic mix of valid and invalid pages.
    prefill_overwrite_fraction: float = 0.3

    #: Share of the physical capacity reserved as over-provisioning: the
    #: logical space exposed to the host (and to device-state aging) is
    #: ``total_pages * (1 - overprovisioning_fraction)``.  Larger reserves
    #: give garbage collection more slack and lower write amplification -
    #: the trade the steady-state experiment sweeps.
    overprovisioning_fraction: float = 0.0
    #: Aged starting point applied before the run (fast-forward
    #: preconditioning, optionally driven to the steady-state GC plateau).
    #: ``None`` keeps the factory-fresh device.  The state is part of the
    #: config's content fingerprint, so aged jobs cache like fresh ones.
    device_state: Optional["DeviceState"] = None

    #: Readdressing callback: ``None`` means "enabled iff the scheduler is a
    #: Sprinkler variant" (the paper's setup); True/False force it.
    readdressing_callback: Optional[bool] = None
    #: Penalty charged to a stale in-flight request when the callback is off.
    stale_penalty_ns: int = 25_000

    def __post_init__(self) -> None:
        if self.queue_depth <= 0:
            raise ValueError("queue_depth must be positive")
        if self.compose_ns < 0 or self.compose_per_kb_ns < 0:
            raise ValueError("composition costs must be non-negative")
        if self.decision_window_ns < 0:
            raise ValueError("decision_window_ns must be non-negative")
        if not 0.0 <= self.prefill_fraction < 1.0:
            raise ValueError("prefill_fraction must be in [0, 1)")
        if not 0.0 <= self.prefill_overwrite_fraction < 1.0:
            raise ValueError("prefill_overwrite_fraction must be in [0, 1)")
        if not 0.0 <= self.overprovisioning_fraction < 1.0:
            raise ValueError("overprovisioning_fraction must be in [0, 1)")
        if self.stale_penalty_ns < 0:
            raise ValueError("stale_penalty_ns must be non-negative")
        if self.device_state is not None:
            if self.prefill_fraction > 0.0:
                raise ValueError(
                    "device_state and prefill_fraction are alternative "
                    "preconditioners; set only one"
                )
            if self.device_state.steady_state and not self.gc_enabled:
                raise ValueError("steady-state aging requires gc_enabled=True")

    @property
    def logical_pages(self) -> int:
        """Pages of logical space exposed after the over-provisioning reserve."""
        return int(self.geometry.total_pages * (1.0 - self.overprovisioning_fraction))

    def with_overrides(self, **overrides) -> "SimulationConfig":
        """Return a copy with selected fields replaced."""
        return replace(self, **overrides)

    def fingerprint(self) -> str:
        """Stable content hash over every knob (geometry, timing, policies).

        Two configs fingerprint identically iff every field (including the
        nested geometry/timing/constraints dataclasses) is equal, so the
        experiment engine can use it as part of an on-disk cache key.
        """
        return stable_fingerprint(self)

    @classmethod
    def small(cls, **overrides) -> "SimulationConfig":
        """A small, fast configuration for unit tests (8 chips, tiny blocks)."""
        geometry = SSDGeometry(
            num_channels=2,
            chips_per_channel=4,
            dies_per_chip=2,
            planes_per_die=2,
            blocks_per_plane=16,
            pages_per_block=32,
            page_size_bytes=2048,
        )
        config = cls(geometry=geometry)
        if overrides:
            config = config.with_overrides(**overrides)
        return config

    @classmethod
    def paper_scale(cls, num_chips: int = 64, **overrides) -> "SimulationConfig":
        """Configuration matching the paper's evaluation platform.

        ``num_chips`` must be a multiple of 8; the paper uses 64-1024 chips
        on 8-32 channels.  Block counts are scaled down (the paper's 8192
        blocks/die would only matter for capacity, not scheduling behaviour).
        """
        if num_chips % 8 != 0 or num_chips <= 0:
            raise ValueError("num_chips must be a positive multiple of 8")
        num_channels = 8 if num_chips <= 256 else 32
        chips_per_channel = num_chips // num_channels
        geometry = SSDGeometry(
            num_channels=num_channels,
            chips_per_channel=chips_per_channel,
            dies_per_chip=2,
            planes_per_die=2,
            blocks_per_plane=64,
            pages_per_block=128,
            page_size_bytes=2048,
        )
        config = cls(geometry=geometry)
        if overrides:
            config = config.with_overrides(**overrides)
        return config
