"""Discrete-event primitives.

The simulator is a classic discrete-event loop: events are stored in a heap
ordered by (time, sequence number) so that simultaneous events are processed
in insertion order, which keeps runs fully deterministic.
"""

from __future__ import annotations

import enum
import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Iterator, Optional


class EventKind(enum.Enum):
    """Kinds of events the SSD simulator processes."""

    IO_ARRIVAL = "io_arrival"
    COMPOSE_DONE = "compose_done"
    TRANSACTION_DONE = "transaction_done"
    TRANSACTION_DECISION = "transaction_decision"


@dataclass(order=True)
class Event:
    """One scheduled event.  Ordering is (time, sequence)."""

    time_ns: int
    sequence: int
    kind: EventKind = field(compare=False)
    payload: Any = field(compare=False, default=None)


class EventQueue:
    """Deterministic min-heap of events."""

    def __init__(self) -> None:
        self._heap: list = []
        self._sequence = itertools.count()
        self.processed = 0

    def push(self, time_ns: int, kind: EventKind, payload: Any = None) -> Event:
        """Schedule an event at ``time_ns``."""
        if time_ns < 0:
            raise ValueError("event time must be non-negative")
        event = Event(time_ns=time_ns, sequence=next(self._sequence), kind=kind, payload=payload)
        heapq.heappush(self._heap, event)
        return event

    def pop(self) -> Event:
        """Remove and return the earliest event."""
        if not self._heap:
            raise IndexError("pop from an empty event queue")
        self.processed += 1
        return heapq.heappop(self._heap)

    def peek_time(self) -> Optional[int]:
        """Time of the earliest event, or ``None`` when empty."""
        if not self._heap:
            return None
        return self._heap[0].time_ns

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def __iter__(self) -> Iterator[Event]:  # pragma: no cover - debugging helper
        return iter(sorted(self._heap))
