"""Discrete-event primitives.

The simulator is a classic discrete-event loop: events are stored in a heap
ordered by (time, sequence number) so that simultaneous events are processed
in insertion order, which keeps runs fully deterministic.

``Event`` is a :class:`typing.NamedTuple` rather than an ordered dataclass:
the heap then compares plain tuples in C instead of calling a generated
``__lt__`` per sift step, which measurably speeds up the simulator's inner
loop.  The sequence number is unique per queue, so a comparison never falls
through to the (unorderable) ``kind``/``payload`` fields.
"""

from __future__ import annotations

import enum
import heapq
import itertools
from typing import Any, Iterator, List, NamedTuple, Optional


class EventKind(enum.Enum):
    """Kinds of events the SSD simulator processes."""

    IO_ARRIVAL = "io_arrival"
    COMPOSE_DONE = "compose_done"
    TRANSACTION_DONE = "transaction_done"
    TRANSACTION_DECISION = "transaction_decision"


class Event(NamedTuple):
    """One scheduled event.  Ordering is (time, sequence)."""

    time_ns: int
    sequence: int
    kind: EventKind
    payload: Any = None


class EventQueue:
    """Deterministic min-heap of events."""

    def __init__(self) -> None:
        self._heap: List[Event] = []
        self._sequence = itertools.count()
        self.processed = 0

    def push(self, time_ns: int, kind: EventKind, payload: Any = None) -> Event:
        """Schedule an event at ``time_ns``."""
        if time_ns < 0:
            raise ValueError("event time must be non-negative")
        event = Event(time_ns, next(self._sequence), kind, payload)
        heapq.heappush(self._heap, event)
        return event

    def pop(self) -> Event:
        """Remove and return the earliest event."""
        if not self._heap:
            raise IndexError("pop from an empty event queue")
        self.processed += 1
        return heapq.heappop(self._heap)

    def peek_time(self) -> Optional[int]:
        """Time of the earliest event, or ``None`` when empty."""
        if not self._heap:
            return None
        return self._heap[0].time_ns

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def __iter__(self) -> Iterator[Event]:  # pragma: no cover - debugging helper
        return iter(sorted(self._heap))
