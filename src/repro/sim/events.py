"""Discrete-event primitives.

The simulator is a classic discrete-event loop: events are stored in a heap
ordered by (time, sequence number) so that simultaneous events are processed
in insertion order, which keeps runs fully deterministic.

``Event`` is a :class:`typing.NamedTuple` rather than an ordered dataclass:
the heap then compares plain tuples in C instead of calling a generated
``__lt__`` per sift step, which measurably speeds up the simulator's inner
loop.  The sequence number is unique per queue, so a comparison never falls
through to the (unorderable) ``kind``/``payload`` fields.
"""

from __future__ import annotations

import enum
import heapq
import itertools
from typing import Any, Iterator, List, NamedTuple, Optional


class EventKind(enum.Enum):
    """Kinds of events the SSD simulator processes."""

    IO_ARRIVAL = "io_arrival"
    COMPOSE_DONE = "compose_done"
    TRANSACTION_DONE = "transaction_done"
    TRANSACTION_DECISION = "transaction_decision"


class Event(NamedTuple):
    """One scheduled event.  Ordering is (time, sequence)."""

    time_ns: int
    sequence: int
    kind: EventKind
    payload: Any = None


class EventQueue:
    """Deterministic min-heap of events.

    Internally the heap stores plain ``(time_ns, sequence, kind, payload)``
    tuples - value-identical to :class:`Event` (a NamedTuple *is* a tuple)
    but constructed by the C tuple display instead of the generated
    ``__new__`` wrapper, once per scheduled event.  The reading API
    (:meth:`pop`, iteration) still hands out :class:`Event` objects.
    """

    def __init__(self) -> None:
        self._heap: List[tuple] = []
        self._sequence = itertools.count()
        self.processed = 0
        #: Number of same-timestamp batches handed out, and the largest one.
        #: The simulator also folds its merged-in arrival groups into these,
        #: so together they describe every batch the event loop dispatched.
        self.batches = 0
        self.largest_batch = 0

    def push(self, time_ns: int, kind: EventKind, payload: Any = None) -> None:
        """Schedule an event at ``time_ns``.

        Returns ``None`` deliberately: the heap entry is an internal
        representation (callers held onto the raw tuple and compared it
        against drained events, which broke the moment the entry layout
        changed).  Scheduling is fire-and-forget; cancellation does not
        exist in this simulator.
        """
        if time_ns < 0:
            raise ValueError("event time must be non-negative")
        heapq.heappush(self._heap, (time_ns, next(self._sequence), kind, payload))

    def pop_batch(self) -> Optional[tuple]:
        """Pop every event at the earliest timestamp, or ``None`` when empty.

        Non-generator single step of :meth:`drain_batch`: returns
        ``(time_ns, batch)`` with the batch in sequence order and commits
        ``processed``.  Used by callers that interleave heap batches with
        another event source (the simulator merges workload arrivals in from
        a sorted list so the heap never has to hold the whole trace).
        """
        heap = self._heap
        if not heap:
            return None
        pop = heapq.heappop
        time_ns = heap[0][0]
        batch = [pop(heap)]
        append = batch.append
        while heap and heap[0][0] == time_ns:
            append(pop(heap))
        size = len(batch)
        self.processed += size
        self.batches += 1
        if size > self.largest_batch:
            self.largest_batch = size
        return time_ns, batch

    def pop(self) -> Event:
        """Remove and return the earliest event."""
        if not self._heap:
            raise IndexError("pop from an empty event queue")
        self.processed += 1
        return Event._make(heapq.heappop(self._heap))

    def drain(self) -> Iterator[tuple]:
        """Pop raw event tuples in order until the queue is empty.

        The simulator's inner loop: handlers may push new events while the
        generator is live - each ``next()`` re-checks the heap.  Compared
        with calling :meth:`pop` per event this hoists the heap list and
        ``heappop`` lookups out of the loop and skips the Event wrapper,
        which is measurable at millions of events.
        """
        heap = self._heap
        pop = heapq.heappop
        while heap:
            self.processed += 1
            yield pop(heap)

    def drain_batch(self) -> Iterator[tuple]:
        """Pop runs of same-timestamp raw event tuples until the queue is empty.

        Yields ``(time_ns, batch)`` where ``batch`` is every event currently
        scheduled at ``time_ns``, in sequence order.  Equivalent to
        :meth:`drain` - events are still handed out in exact ``(time,
        sequence)`` order - but the caller advances its clock and re-enters
        the dispatch loop once per *timestamp* instead of once per event.

        Re-entrancy contract: handlers may push while a batch is being
        processed.  A push at the current batch timestamp lands in the
        *next* batch (sequence numbers are monotonic, so this is exactly
        where :meth:`drain` would have processed it); a push at an earlier
        timestamp is a contract violation - it is still processed, but only
        after the current batch, i.e. out of timestamp order.  Handlers must
        never schedule into the past.

        ``processed`` is committed per batch, when the batch is handed out.
        """
        while True:
            step = self.pop_batch()
            if step is None:
                return
            yield step

    def peek_time(self) -> Optional[int]:
        """Time of the earliest event, or ``None`` when empty."""
        if not self._heap:
            return None
        return self._heap[0][0]

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def __iter__(self) -> Iterator[Event]:  # pragma: no cover - debugging helper
        return iter(Event._make(entry) for entry in sorted(self._heap))
