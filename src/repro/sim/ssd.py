"""The many-chip SSD simulator.

:class:`SSDSimulator` wires all substrates together and replays a workload:

1. Host I/O requests arrive and are admitted into the device queue (or wait
   in the host-side backlog when the queue is full).
2. A preprocessor splits each admitted tag into page-sized memory requests
   and translates them through the FTL (writes allocate fresh pages and may
   trigger garbage collection).
3. The scheduler (VAS / PAS / SPK1-3) decides the order in which memory
   requests enter the composition/DMA pipeline; each composition commits the
   request to the flash controller of its target channel.
4. The controller coalesces committed requests per chip into flash
   transactions (after a short transaction-decision window) and sequences
   their bus and cell phases on the shared channel.
5. Completions propagate back: memory request -> tag -> host I/O, freeing
   queue slots and waking up the scheduler.

Everything is deterministic: same config + same workload -> same result.
"""

from __future__ import annotations

import random
from collections import deque
from dataclasses import replace
from typing import Deque, Dict, Optional, Sequence

from repro.core.policies import make_scheduler
from repro.core.scheduler import SchedulerBase, SchedulerContext
from repro.flash.channel import Channel
from repro.flash.chip import FlashChip
from repro.flash.commands import FlashOp, ParallelismClass, TransactionKind
from repro.flash.controller import FlashController
from repro.flash.geometry import PhysicalPageAddress
from repro.flash.request import MemoryRequest
from repro.flash.transaction import FlashTransaction, TransactionBuilder
from repro.ftl.callbacks import ReaddressingCallback
from repro.ftl.garbage_collector import GarbageCollector, GCJob
from repro.ftl.mapping import PageMapFTL
from repro.ftl.wear_leveling import wear_stats
from repro.lifetime.accounting import LifetimeAccounting, write_amplification
from repro.lifetime.state import PreconditionReport, apply_device_state
from repro.lifetime.steady import SteadyStateReport, age_to_steady_state
from repro.metrics.collector import MetricsCollector
from repro.metrics.latency import DEFAULT_TAIL_WINDOW_NS
from repro.metrics.report import SimulationResult
from repro.obs.counters import CounterRegistry
from repro.obs.health import DEFAULT_MAX_HEALTH_SAMPLES, HealthSampler
from repro.obs.trace import NULL_SINK, TraceSink
from repro.nvmhc.dma import DmaEngine
from repro.nvmhc.queue import DeviceQueue
from repro.nvmhc.tag import Tag
from repro.sim.config import SimulationConfig
from repro.sim.events import EventKind, EventQueue
from repro.workloads.request import IORequest


class SSDSimulator:
    """Event-driven simulator of a many-chip SSD with a pluggable scheduler."""

    def __init__(
        self,
        config: SimulationConfig,
        scheduler_name: str = "SPK3",
        scheduler_options: Optional[Dict[str, object]] = None,
        *,
        metrics_history: str = "full",
        metrics_window: int = 4096,
        tail_window_ns: int = DEFAULT_TAIL_WINDOW_NS,
        trace_sink: Optional[TraceSink] = None,
        health_interval_ns: Optional[int] = None,
        health_max_samples: int = DEFAULT_MAX_HEALTH_SAMPLES,
    ) -> None:
        # ``metrics_history``/``metrics_window``/``tail_window_ns``/
        # ``trace_sink``/``health_interval_ns`` are deliberately NOT part of
        # SimulationConfig: they change how much telemetry is retained,
        # never the simulated behaviour, and config fields feed the result
        # fingerprints (see repro.sim.config.canonicalize).
        self.config = config
        self.geometry = config.geometry
        self.timing = config.timing

        # --- physical resources -------------------------------------------------
        self.chips: Dict[tuple, FlashChip] = {
            chip_key: FlashChip(chip_key, self.geometry)
            for chip_key in self.geometry.iter_chip_keys()
        }
        self.channels: Dict[int, Channel] = {
            channel: Channel(channel) for channel in range(self.geometry.num_channels)
        }
        builder = TransactionBuilder(self.geometry, self.timing, config.constraints)
        self.controllers: Dict[int, FlashController] = {}
        for channel_id, channel in self.channels.items():
            chips_on_channel = {
                key: chip for key, chip in self.chips.items() if key[0] == channel_id
            }
            self.controllers[channel_id] = FlashController(channel, chips_on_channel, builder)

        # --- firmware ------------------------------------------------------------
        self.ftl = PageMapFTL(self.geometry, self.chips, config.allocation_order)
        self.gc = GarbageCollector(
            self.geometry,
            self.timing,
            self.ftl,
            self.chips,
            free_block_watermark=config.gc_free_block_watermark,
            enabled=config.gc_enabled,
        )

        # --- NVMHC ----------------------------------------------------------------
        self.queue = DeviceQueue(depth=config.queue_depth)
        self.dma = DmaEngine(
            per_request_ns=config.compose_ns, per_byte_ns_x1000=config.compose_per_kb_ns
        )
        context = SchedulerContext(geometry=self.geometry, controllers=self.controllers)
        self.scheduler: SchedulerBase = make_scheduler(
            scheduler_name, context, **(scheduler_options or {})
        )

        callback_enabled = config.readdressing_callback
        if callback_enabled is None:
            callback_enabled = self.scheduler.uses_readdressing_callback
        self.callback = ReaddressingCallback(
            enabled=callback_enabled, stale_penalty_ns=config.stale_penalty_ns
        )
        for channel_id, controller in self.controllers.items():
            self.callback.attach_controller(channel_id, controller)
        self.ftl.add_migration_listener(self.callback.on_migration)
        self.callback.add_listener(self.scheduler.on_migration)

        # --- observability --------------------------------------------------------
        # One sink shared by every component; with the default null sink the
        # ``_tracing`` flag keeps emission branches off the hot paths
        # entirely, so untraced runs execute the pre-tracing instruction
        # stream (the digest-identity contract the perf gate enforces).
        self.sink: TraceSink = trace_sink if trace_sink is not None else NULL_SINK
        self._tracing: bool = self.sink.enabled
        self.scheduler.attach_trace_sink(self.sink)
        for controller in self.controllers.values():
            controller.sink = self.sink
        self.gc.sink = self.sink
        # Periodic health sampling, off by default: the hot loop pays one
        # ``is not None`` test per timestamp batch when disabled.
        self._health: Optional[HealthSampler] = (
            HealthSampler(health_interval_ns, max_samples=health_max_samples)
            if health_interval_ns is not None
            else None
        )

        # --- bookkeeping ----------------------------------------------------------
        self.metrics = MetricsCollector(
            history=metrics_history, window=metrics_window, tail_window_ns=tail_window_ns
        )
        self.events = EventQueue()
        self.now_ns = 0
        self._tags_by_io: Dict[int, Tag] = {}
        self._gc_backlog: Dict[tuple, Deque[GCJob]] = {key: deque() for key in self.chips}
        self._decision_pending: set = set()
        self._requests_composed = 0
        self._workload_size = 0
        # Resumable-run state: the sorted arrival list still to be admitted,
        # the index of the next arrival, and whether a run is in progress
        # (between run(max_events=...) pauses).  See checkpoint()/resume().
        self._pending: list = []
        self._pending_index = 0
        self._workload_name = "workload"
        self._run_active = False

        # --- preconditioning ------------------------------------------------------
        if config.prefill_fraction > 0.0:
            self.ftl.fill(
                config.prefill_fraction,
                overwrite_fraction=config.prefill_overwrite_fraction,
            )
        self.precondition: Optional[PreconditionReport] = None
        self.steady_state: Optional[SteadyStateReport] = None
        if config.device_state is not None:
            state = config.device_state
            # One RNG stream across fill and steady aging, so the whole aged
            # starting point is a function of (config, state.seed) alone.
            rng = random.Random(state.seed)
            self.precondition = apply_device_state(
                self.ftl, state, logical_pages=config.logical_pages, rng=rng
            )
            if state.steady_state:
                self.steady_state = age_to_steady_state(
                    self.ftl,
                    self.gc,
                    state,
                    live_pages=self.precondition.live_pages,
                    rng=rng,
                )
        # Snapshot the firmware counters so results report the measured run
        # only - aging writes/collections stay out of the run's accounting.
        self._ftl_baseline = replace(self.ftl.stats)
        self._gc_baseline = replace(self.gc.stats)

    # ======================================================================
    # Public API
    # ======================================================================
    def run(
        self,
        workload: Sequence[IORequest],
        workload_name: str = "workload",
        *,
        max_events: Optional[int] = None,
    ) -> Optional[SimulationResult]:
        """Replay a workload and return the measured result.

        With ``max_events`` set, the run *pauses* at the first event
        boundary where ``events.processed >= max_events`` and returns
        ``None``; the simulator then holds a resumable in-progress run -
        :meth:`checkpoint` snapshots it, :meth:`run_to_completion` continues
        it.  The pause point is a pure function of ``max_events``, so
        "run to T, snapshot, resume" is bit-identical to an uninterrupted
        run (the checkpoint digest-identity contract).
        """
        if self._run_active:
            raise RuntimeError(
                "a run is already in progress; continue it with run_to_completion()"
            )
        self._pending = sorted(workload, key=lambda io: (io.arrival_ns, io.io_id))
        self._pending_index = 0
        self._workload_size = len(self._pending)
        self._workload_name = workload_name
        self._run_active = True
        return self._advance(max_events)

    def run_to_completion(self, *, max_events: Optional[int] = None) -> Optional[SimulationResult]:
        """Continue a paused run (after ``run(max_events=...)`` or resume).

        Same pause contract as :meth:`run`: returns the finished
        :class:`SimulationResult`, or ``None`` if ``max_events`` paused the
        run again first.
        """
        if not self._run_active:
            raise RuntimeError("no run in progress; start one with run()")
        return self._advance(max_events)

    def _advance(self, max_events: Optional[int]) -> Optional[SimulationResult]:
        # The workload is fed straight from the sorted arrival list instead
        # of being loaded into the event heap: arrivals would all carry lower
        # sequence numbers than any event a handler schedules, so "arrivals
        # at time T run before every dynamic event at time T, in sorted
        # order" is exactly the order the heap would have produced - and the
        # heap never has to hold the whole trace (peak memory stays flat in
        # trace length).  Dynamic events are drained in same-timestamp
        # batches; the clock advances once per timestamp and the
        # identity-test dispatch (ordered by event frequency, with kind
        # constants and handlers bound once) runs flat over each batch.
        compose_done = EventKind.COMPOSE_DONE
        transaction_done = EventKind.TRANSACTION_DONE
        decision = EventKind.TRANSACTION_DECISION
        handle_compose = self._handle_compose_done
        handle_done = self._handle_transaction_done
        handle_decision = self._handle_decision
        handle_arrival = self._handle_arrival
        health = self._health
        ordered = self._pending
        events = self.events
        pop_batch = events.pop_batch
        peek_time = events.peek_time
        index = self._pending_index
        total = len(ordered)
        while True:
            if max_events is not None and events.processed >= max_events:
                self._pending_index = index
                return None
            arrival_ns = ordered[index].arrival_ns if index < total else None
            batch_ns = peek_time()
            if arrival_ns is not None and (batch_ns is None or arrival_ns <= batch_ns):
                self.now_ns = arrival_ns
                if health is not None and arrival_ns >= health.next_due_ns:
                    health.sample(self, arrival_ns)
                admitted = 0
                while index < total and ordered[index].arrival_ns == arrival_ns:
                    handle_arrival(ordered[index])
                    index += 1
                    admitted += 1
                events.processed += admitted
                events.batches += 1
                if admitted > events.largest_batch:
                    events.largest_batch = admitted
                continue
            if batch_ns is None:
                break
            time_ns, batch = pop_batch()
            self.now_ns = time_ns
            if health is not None and time_ns >= health.next_due_ns:
                health.sample(self, time_ns)
            for event in batch:
                kind = event[2]
                if kind is compose_done:
                    handle_compose(event[3])
                elif kind is transaction_done:
                    handle_done(event[3])
                elif kind is decision:
                    handle_decision(event[3])
                else:
                    handle_arrival(event[3])
        self._pending = []
        self._pending_index = 0
        self._run_active = False
        return self._build_result(self._workload_name)

    # ======================================================================
    # Checkpoint / restore
    # ======================================================================
    def checkpoint(self):
        """Snapshot the paused in-progress run as a portable checkpoint.

        Valid between :meth:`run`/:meth:`run_to_completion` pauses (i.e.
        after a ``max_events`` pause returned ``None``): the returned
        :class:`~repro.checkpoint.snapshot.SimulatorCheckpoint` captures the
        *complete* simulator state - FTL map and base-layout overlay,
        per-plane/block counters and wear, GC state and backlog, the event
        heap, queue and scheduler internals, metrics accumulators, and the
        not-yet-admitted tail of the workload - in one serialized object
        graph, so shared references survive the round trip.
        :meth:`resume` reconstructs a simulator that continues bit-identically.
        """
        from repro.checkpoint.snapshot import capture_checkpoint

        return capture_checkpoint(self)

    @classmethod
    def resume(cls, checkpoint) -> "SSDSimulator":
        """Reconstruct a paused simulator from a :meth:`checkpoint` snapshot.

        The returned simulator is mid-run; continue it with
        :meth:`run_to_completion`.  The snapshot is schema-checked
        (version, payload digest, field-by-field state types) before any
        state is installed.
        """
        from repro.checkpoint.snapshot import restore_simulator

        return restore_simulator(cls, checkpoint)

    # ======================================================================
    # Event handlers
    # ======================================================================
    def _handle_arrival(self, io: IORequest) -> None:
        self.metrics.on_io_arrival(io)
        tag = self.queue.submit(io, self.now_ns)
        if tag is not None:
            self._admit_tag(tag)
        self._pump()

    def _handle_compose_done(self, request: MemoryRequest) -> None:
        address = request.address
        controller = self.controllers[address.channel]
        controller.commit(request, self.now_ns)
        self.callback.track_request(request)
        self._requests_composed += 1
        if self._tracing:
            self.sink.span(
                "compose",
                category="nvmhc",
                track="nvmhc",
                start_ns=request.composed_at_ns,
                duration_ns=self.now_ns - request.composed_at_ns,
                io_id=request.io_id,
                lpn=request.lpn,
                channel=address.channel,
                chip=address.chip,
            )
        self._maybe_schedule_decision((address.channel, address.chip))
        self._pump()

    def _handle_decision(self, chip_key: tuple) -> None:
        self._decision_pending.discard(chip_key)
        self._try_start_chip(chip_key, immediate=True)
        self._pump()

    def _handle_transaction_done(self, chip_key: tuple) -> None:
        controller = self.controllers[chip_key[0]]
        transaction = controller.finish_transaction(chip_key, self.now_ns)
        self.metrics.on_transaction_complete(transaction)
        if not transaction.is_gc:
            self._retire_requests(transaction)
        self.scheduler.on_transaction_complete(chip_key, transaction, self.now_ns)
        self._try_start_chip(chip_key, immediate=True)
        self._pump()

    # ======================================================================
    # Tag admission and preprocessing
    # ======================================================================
    def _admit_tag(self, tag: Tag) -> None:
        """Split the tag into memory requests and identify their layout."""
        io = tag.io
        is_write = io.is_write
        op = FlashOp.PROGRAM if is_write else FlashOp.READ
        io_id = io.io_id
        page_size = self.geometry.page_size_bytes
        translate_write = self.ftl.translate_write
        translate_read = self.ftl.translate_read
        gc_enabled = self.config.gc_enabled
        requests = tag.memory_requests
        by_chip = tag.by_chip
        for lpn in io.logical_pages(page_size):
            if is_write:
                address = translate_write(lpn)
                if gc_enabled:
                    self._collect_garbage(address)
            else:
                address = translate_read(lpn)
            request = MemoryRequest(
                io_id=io_id,
                op=op,
                lpn=lpn,
                size_bytes=page_size,
                address=address,
            )
            requests.append(request)
            chip_key = (address.channel, address.chip)
            bucket = by_chip.get(chip_key)
            if bucket is None:
                by_chip[chip_key] = [request]
            else:
                bucket.append(request)
        self._tags_by_io[io_id] = tag
        self.scheduler.register_tag(tag, self.now_ns)

    def _collect_garbage(self, address: PhysicalPageAddress) -> None:
        """Run GC bookkeeping for the plane a write just consumed a page on."""
        job = self.gc.collect_plane_if_needed(
            address.chip_key, address.die, address.plane, self.now_ns
        )
        if job is None:
            return
        self._gc_backlog[address.chip_key].append(job)
        self._try_start_chip(address.chip_key, immediate=True)

    # ======================================================================
    # Composition pipeline and chip activation
    # ======================================================================
    def _pump(self) -> None:
        """Keep the composition pipeline busy while the scheduler has work."""
        now_ns = self.now_ns
        if now_ns < self.dma.busy_until_ns:  # inline DmaEngine.is_busy
            return
        request = self.scheduler.next_composition(now_ns)
        if request is None:
            return
        request.composed_at_ns = now_ns
        tag = self._tags_by_io.get(request.io_id)
        if tag is not None:
            tag.composed_count += 1
        done_ns = self.dma.begin(now_ns, request.size_bytes)
        self.events.push(done_ns, EventKind.COMPOSE_DONE, request)

    def _maybe_schedule_decision(self, chip_key: tuple) -> None:
        """Arm the transaction-decision window for a chip that just got work."""
        controller = self.controllers[chip_key[0]]
        if not controller.chip_available(chip_key, self.now_ns):
            return
        if chip_key in self._decision_pending:
            return
        if controller.pending_count(chip_key) == 0:
            return
        self._decision_pending.add(chip_key)
        self.events.push(
            self.now_ns + self.config.decision_window_ns,
            EventKind.TRANSACTION_DECISION,
            chip_key,
        )

    def _try_start_chip(self, chip_key: tuple, immediate: bool = False) -> None:
        """Start GC or a host transaction on a chip if it is available."""
        controller = self.controllers[chip_key[0]]
        if not controller.chip_available(chip_key, self.now_ns):
            return
        backlog = self._gc_backlog[chip_key]
        if backlog:
            job = backlog.popleft()
            schedule = controller.execute_prebuilt(
                chip_key, self._gc_transaction(job), self.now_ns
            )
            if schedule is not None:
                self.events.push(schedule.complete_ns, EventKind.TRANSACTION_DONE, chip_key)
            return
        if controller.pending_count(chip_key) == 0:
            return
        if not immediate:
            self._maybe_schedule_decision(chip_key)
            return
        schedule = controller.start_transaction(chip_key, self.now_ns)
        if schedule is not None:
            for request in schedule.transaction.requests:
                self.callback.untrack_request(request)
            self.events.push(schedule.complete_ns, EventKind.TRANSACTION_DONE, chip_key)

    def _gc_transaction(self, job: GCJob) -> FlashTransaction:
        """Wrap a GC job into a chip-occupying transaction."""
        channel, chip = job.chip_key
        placeholder = MemoryRequest(
            io_id=-1,
            op=FlashOp.ERASE,
            lpn=0,
            size_bytes=self.geometry.page_size_bytes,
            address=PhysicalPageAddress(
                channel=channel,
                chip=chip,
                die=job.die,
                plane=job.plane,
                block=job.victim_block,
                page=0,
            ),
            is_gc=True,
        )
        transaction = FlashTransaction(
            chip_key=job.chip_key,
            requests=[placeholder],
            kind=TransactionKind.ERASE,
            parallelism=ParallelismClass.NON_PAL,
        )
        transaction.is_gc = True
        transaction.bus_time_ns = 0
        transaction.cell_time_ns = job.duration_ns
        return transaction

    # ======================================================================
    # Completion propagation
    # ======================================================================
    def _retire_requests(self, transaction: FlashTransaction) -> None:
        # No untrack here: every host transaction passed through
        # _try_start_chip, which already untracked its requests when they
        # started executing - a second untrack per request was pure no-op
        # bucket probing on the hottest completion path.
        tags_by_io = self._tags_by_io
        for request in transaction.requests:
            tag = tags_by_io.get(request.io_id)
            if tag is None:
                continue
            completed = tag.completed_count + 1
            tag.completed_count = completed
            # Inline Tag.fully_completed (every request retires through here).
            if completed >= len(tag.memory_requests) and tag.memory_requests:
                self._complete_io(tag)

    def _complete_io(self, tag: Tag) -> None:
        io = tag.io
        io.completed_at_ns = self.now_ns
        self.metrics.on_io_complete(io, self.now_ns)
        if self._tracing:
            enqueued = io.enqueued_at_ns
            self.sink.span(
                "io",
                category="host",
                track="host",
                start_ns=io.arrival_ns,
                duration_ns=self.now_ns - io.arrival_ns,
                io_id=io.io_id,
                kind=io.kind.name,
                bytes=io.size_bytes,
                queue_wait_ns=(enqueued - io.arrival_ns) if enqueued is not None else 0,
            )
        self.queue.retire(io.io_id)
        self.scheduler.on_tag_retired(tag)
        del self._tags_by_io[io.io_id]
        for admitted in self.queue.admit_from_backlog(self.now_ns):
            self._admit_tag(admitted)

    # ======================================================================
    # Result assembly
    # ======================================================================
    def _build_result(self, workload_name: str) -> SimulationResult:
        transactions = sum(
            controller.total_transactions for controller in self.controllers.values()
        )
        gc_run = self.gc.stats.delta(self._gc_baseline)
        host_writes = self.ftl.stats.host_writes - self._ftl_baseline.host_writes
        relocated = self.ftl.stats.migrations - self._ftl_baseline.migrations
        flash_writes = host_writes + relocated
        lifetime = LifetimeAccounting(
            host_writes=host_writes,
            flash_writes=flash_writes,
            write_amplification=write_amplification(host_writes, flash_writes),
            pages_relocated=relocated,
            host_reads=self.ftl.stats.host_reads - self._ftl_baseline.host_reads,
            precondition_writes=self.precondition.page_writes if self.precondition else 0,
            steady_state_passes=self.steady_state.passes if self.steady_state else 0,
            steady_state_converged=(
                self.steady_state.converged if self.steady_state else False
            ),
            steady_state_wa=(
                self.steady_state.write_amplification if self.steady_state else 0.0
            ),
        )
        # Counter registry: mostly derived here from stats the run already
        # kept (so the event loop never touches the registry), plus the
        # handful of live counters components maintain on cold branches.
        counters = CounterRegistry(
            {
                "arrivals.backlogged": self.queue.stats.stalled_requests,
                "callback.requests_penalized": self.callback.stats.requests_penalized,
                "callback.requests_retargeted": self.callback.stats.requests_retargeted,
                "chip.busy_transitions": sum(
                    controller.busy_transitions for controller in self.controllers.values()
                ),
                "events.batches": self.events.batches,
                "events.largest_batch": self.events.largest_batch,
                "events.processed": self.events.processed,
                "gc.blocks_erased": gc_run.blocks_erased,
                "gc.pages_migrated": gc_run.pages_migrated,
                "gc.triggers": gc_run.invocations,
                "io.completed": self.metrics.completed_ios,
                "requests.composed": self._requests_composed,
                "trace.spans": getattr(self.sink, "total_records", 0),
                "transactions.gc": self.metrics.gc_transactions,
                "transactions.host": self.metrics.flp.total_transactions,
            }
        )
        counters.update(self.scheduler.observability_counters())
        attribution = self.metrics.attribution.finish(
            total_ios=self.metrics.completed_ios, total_bytes=self.metrics.total_bytes
        )
        if attribution is not None:
            counters.update(attribution.counter_slices())
        result = SimulationResult(
            scheduler=self.scheduler.name,
            workload=workload_name,
            num_ios=self._workload_size,
            completed_ios=self.metrics.completed_ios,
            total_bytes=self.metrics.total_bytes,
            makespan_ns=self.metrics.makespan_ns,
            latency=self.metrics.latency,
            utilization=self.metrics.utilization_report(self.chips),
            idleness=self.metrics.idleness_report(self.chips),
            flp=self.metrics.flp,
            breakdown=self.metrics.execution_breakdown(self.chips, self.channels),
            queue_stall_time_ns=self.queue.stats.total_backlog_wait_ns,
            memory_requests_composed=self._requests_composed,
            memory_requests_served=self.metrics.memory_requests_served,
            transactions=self.metrics.flp.total_transactions,
            gc_transactions=self.metrics.gc_transactions,
            gc_time_ns=self.metrics.gc_time_ns,
            time_series=self.metrics.time_series,
            extra={
                "all_transactions_including_gc": float(transactions),
                "stalled_requests": float(self.queue.stats.stalled_requests),
                "requests_retargeted": float(self.callback.stats.requests_retargeted),
                "requests_penalized": float(self.callback.stats.requests_penalized),
                "gc_invocations": float(gc_run.invocations),
                "gc_pages_migrated": float(gc_run.pages_migrated),
            },
            gc_stats=gc_run,
            wear=wear_stats(self.chips),
            lifetime=lifetime,
            events_processed=self.events.processed,
            event_batches=self.events.batches,
            largest_event_batch=self.events.largest_batch,
            counters=counters.snapshot(),
            latency_windows=self.metrics.tail.finish(),
            attribution=attribution,
            health=self._health.finish() if self._health is not None else (),
        )
        return result


def run_workload(
    workload: Sequence[IORequest],
    *,
    scheduler: str = "SPK3",
    config: Optional[SimulationConfig] = None,
    workload_name: str = "workload",
    scheduler_options: Optional[Dict[str, object]] = None,
    metrics_history: str = "full",
    metrics_window: int = 4096,
    tail_window_ns: int = DEFAULT_TAIL_WINDOW_NS,
    trace_sink: Optional[TraceSink] = None,
    health_interval_ns: Optional[int] = None,
    health_max_samples: int = DEFAULT_MAX_HEALTH_SAMPLES,
) -> SimulationResult:
    """Convenience wrapper: build a simulator, run one workload, return the result."""
    simulator = SSDSimulator(
        config or SimulationConfig(),
        scheduler,
        scheduler_options=scheduler_options,
        metrics_history=metrics_history,
        metrics_window=metrics_window,
        tail_window_ns=tail_window_ns,
        trace_sink=trace_sink,
        health_interval_ns=health_interval_ns,
        health_max_samples=health_max_samples,
    )
    return simulator.run(workload, workload_name=workload_name)
