"""Cluster placement: assigning whole tenants to fleet nodes.

Placement happens *before* simulation, on the demand profile of the built
scenario (per-tenant request and byte counts), and assigns each tenant to
exactly one node - the cloud "shard by customer" shape, which keeps every
tenant's stream intact so per-node admission and attribution stay exact.

Four policies (:data:`~repro.fleet.spec.FLEET_PLACEMENT_POLICIES`):

* ``round-robin`` - tenants in declaration order onto nodes ``i % N``.
* ``least-loaded`` - greedy: tenants by descending byte demand onto the
  node with the lowest weighted load (``assigned bytes / weight``), ties
  broken by node order.
* ``tenant-affinity`` - honour :class:`~repro.fleet.spec.TenantPolicy`
  ``affinity`` pins; unpinned tenants fall back to ``hash``.
* ``hash`` - a stable SHA-256-derived hash of the tenant name modulo the
  node count (process- and run-independent, unlike builtin ``hash``).

Everything here is deterministic pure data, so a placement plan is part of
the reproducible fleet recipe rather than a runtime accident.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.fleet.spec import FleetSpec
from repro.workloads.request import IORequest


@dataclass(frozen=True)
class TenantDemand:
    """Offered load of one tenant over the whole scenario."""

    tenant: str
    requests: int
    bytes: int


@dataclass(frozen=True)
class PlacementPlan:
    """The placement decision: tenant name -> node index."""

    policy: str
    #: ``(tenant, node index)`` in tenant declaration order.
    assignments: Tuple[Tuple[str, int], ...]

    def node_of(self, tenant: str) -> int:
        """The node index serving one tenant."""
        for name, node in self.assignments:
            if name == tenant:
                return node
        raise KeyError(f"tenant {tenant!r} is not placed")

    def tenants_on(self, node: int) -> Tuple[str, ...]:
        """Tenants assigned to one node, in declaration order."""
        return tuple(name for name, index in self.assignments if index == node)

    def rows(self) -> List[Dict[str, object]]:
        """Printable rows (one per tenant)."""
        return [
            {"tenant": name, "node": index} for name, index in self.assignments
        ]


def tenant_demands(
    tenants: Sequence[str], trace: Sequence[IORequest]
) -> Tuple[TenantDemand, ...]:
    """Per-tenant request/byte demand of a built (tagged) scenario trace."""
    counts = {tenant: 0 for tenant in tenants}
    volumes = {tenant: 0 for tenant in tenants}
    for io in trace:
        if io.tenant in counts:
            counts[io.tenant] += 1
            volumes[io.tenant] += io.size_bytes
    return tuple(
        TenantDemand(tenant=tenant, requests=counts[tenant], bytes=volumes[tenant])
        for tenant in tenants
    )


def stable_tenant_hash(tenant: str) -> int:
    """A process-independent 64-bit hash of a tenant name.

    Builtin ``hash`` on strings is salted per process, which would make
    ``hash`` placement differ between runs; SHA-256 is stable everywhere.
    """
    digest = hashlib.sha256(tenant.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


def plan_placement(spec: FleetSpec, demands: Sequence[TenantDemand]) -> PlacementPlan:
    """Assign every tenant to one node under the spec's placement policy."""
    num_nodes = len(spec.nodes)
    order = [demand.tenant for demand in demands]
    assignment: Dict[str, int] = {}

    if spec.placement == "round-robin":
        for index, tenant in enumerate(order):
            assignment[tenant] = index % num_nodes
    elif spec.placement == "least-loaded":
        loads = [0.0] * num_nodes
        weights = [node.weight for node in spec.nodes]
        # Largest demand first: the classic greedy LPT bound on imbalance.
        for demand in sorted(demands, key=lambda d: (-d.bytes, d.tenant)):
            node = min(range(num_nodes), key=lambda i: (loads[i] / weights[i], i))
            assignment[demand.tenant] = node
            loads[node] += demand.bytes
    elif spec.placement == "tenant-affinity":
        names = spec.node_names()
        for tenant in order:
            policy = spec.policy_for(tenant)
            if policy is not None and policy.affinity is not None:
                assignment[tenant] = names.index(policy.affinity)
            else:
                assignment[tenant] = stable_tenant_hash(tenant) % num_nodes
    else:  # "hash" - FleetSpec already validated the policy name
        for tenant in order:
            assignment[tenant] = stable_tenant_hash(tenant) % num_nodes

    return PlacementPlan(
        policy=spec.placement,
        assignments=tuple((tenant, assignment[tenant]) for tenant in order),
    )
