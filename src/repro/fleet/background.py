"""Deferrable background work scheduled into load valleys.

Real fleets run scrubs, rebuilds and GC-debt repayment *around* tenant
traffic.  This module does the same, deterministically: the node's
foreground arrival series is histogrammed into equal time windows, windows
are ranked emptiest-first, and each background job's requests are spread
uniformly across the best window still compatible with its deadline
(earliest-deadline-first across jobs, one window per job so the placement
is easy to reason about and test).  Best effort, not admission control: a
job whose only eligible windows are busy still runs, and the stats record
whether its deadline held.

Background requests are ordinary :class:`~repro.workloads.request.
IORequest` objects tagged ``bg:<kind>``, so they flow through placement,
simulation and attribution like a tenant - but fleet SLO accounting skips
``bg:``-prefixed slices by construction.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.fleet.spec import BackgroundJob
from repro.workloads.request import IOKind, IORequest

KB = 1024


@dataclass(frozen=True)
class LoadWindow:
    """One slot of the foreground load histogram."""

    start_ns: int
    end_ns: int
    #: Foreground arrivals inside ``[start_ns, end_ns)``.
    arrivals: int


@dataclass(frozen=True)
class BackgroundStats:
    """Scheduling outcome of one background job."""

    kind: str
    node: str
    requests: int
    bytes: int
    #: Arrival window the job was scheduled into.
    start_ns: int
    end_ns: int
    deadline_ns: Optional[int]
    #: Whether the last scheduled arrival beat the deadline (``True`` when
    #: the job has no deadline).
    met_deadline: bool

    def rows(self) -> Dict[str, object]:
        """One printable row of the background table."""
        return {
            "job": self.kind,
            "node": self.node,
            "requests": self.requests,
            "mb": round(self.bytes / (1024.0 * 1024.0), 2),
            "window_ms": f"{self.start_ns / 1e6:.2f}-{self.end_ns / 1e6:.2f}",
            "deadline_ms": "-" if self.deadline_ns is None else round(self.deadline_ns / 1e6, 2),
            "met_deadline": "yes" if self.met_deadline else "NO",
        }


def find_load_valleys(
    arrival_times: Sequence[int], num_windows: int
) -> List[LoadWindow]:
    """Histogram foreground arrivals into equal windows, emptiest first.

    Windows tile ``[first arrival, last arrival]``; ties rank earlier
    windows first, so the result is fully deterministic.  An empty
    foreground yields one unbounded zero-load window starting at 0.
    """
    if not arrival_times:
        return [LoadWindow(start_ns=0, end_ns=num_windows * 1_000_000, arrivals=0)]
    first = min(arrival_times)
    last = max(arrival_times)
    width = max((last - first + num_windows) // num_windows, 1)
    counts = [0] * num_windows
    for t in arrival_times:
        counts[min((t - first) // width, num_windows - 1)] += 1
    windows = [
        LoadWindow(
            start_ns=first + index * width,
            end_ns=first + (index + 1) * width,
            arrivals=count,
        )
        for index, count in enumerate(counts)
    ]
    return sorted(windows, key=lambda w: (w.arrivals, w.start_ns))


def _job_requests(job: BackgroundJob, window: LoadWindow) -> List[IORequest]:
    """Materialise one job's requests, spread uniformly over its window."""
    span_ns = max(window.end_ns - window.start_ns, 1)
    step_ns = max(span_ns // (job.num_requests + 1), 1)
    span_slots = job.address_span_bytes // job.size_bytes
    if job.kind == "gc-debt":
        rng = random.Random(job.seed * 0x9E3779B9 + len(job.node))
        offsets = [rng.randrange(span_slots) * job.size_bytes for _ in range(job.num_requests)]
        kind = IOKind.WRITE
    elif job.kind == "rebuild":
        # Dense sequential reads from the start of the span (reconstruction).
        offsets = [(i % span_slots) * job.size_bytes for i in range(job.num_requests)]
        kind = IOKind.READ
    else:  # "scrub": strided reads sampling the whole span (media scan)
        stride = max(span_slots // job.num_requests, 1)
        offsets = [((i * stride) % span_slots) * job.size_bytes for i in range(job.num_requests)]
        kind = IOKind.READ
    return [
        IORequest(
            kind=kind,
            offset_bytes=offset,
            size_bytes=job.size_bytes,
            arrival_ns=window.start_ns + (i + 1) * step_ns,
            tenant=job.tag,
            phase_index=None,
        )
        for i, offset in enumerate(offsets)
    ]


def schedule_background(
    foreground: Sequence[IORequest],
    jobs: Sequence[BackgroundJob],
    *,
    num_windows: int,
) -> Tuple[List[List[IORequest]], List[BackgroundStats]]:
    """Slot each job's requests into a load valley of one node's traffic.

    Jobs are processed earliest-deadline-first (deadline-free jobs last, in
    declaration order); each takes the emptiest unclaimed window whose
    start precedes its deadline, falling back to the emptiest eligible
    window when every one is claimed.  Returns one request stream per job
    (in the *declaration* order of ``jobs``) plus the matching stats.
    """
    valleys = find_load_valleys([io.arrival_ns for io in foreground], num_windows)
    claimed: set = set()
    streams: List[List[IORequest]] = [[] for _ in jobs]
    stats: List[Optional[BackgroundStats]] = [None] * len(jobs)

    def deadline_key(item: Tuple[int, BackgroundJob]) -> Tuple[int, int]:
        index, job = item
        return (job.deadline_ns if job.deadline_ns is not None else 1 << 62, index)

    for index, job in sorted(enumerate(jobs), key=deadline_key):
        eligible = [
            w for w in valleys
            if job.deadline_ns is None or w.start_ns < job.deadline_ns
        ] or valleys
        window = next((w for w in eligible if w.start_ns not in claimed), eligible[0])
        claimed.add(window.start_ns)
        requests = _job_requests(job, window)
        streams[index] = requests
        last_arrival = requests[-1].arrival_ns if requests else window.start_ns
        stats[index] = BackgroundStats(
            kind=job.kind,
            node=job.node,
            requests=len(requests),
            bytes=sum(io.size_bytes for io in requests),
            start_ns=window.start_ns,
            end_ns=window.end_ns,
            deadline_ns=job.deadline_ns,
            met_deadline=job.deadline_ns is None or last_arrival <= job.deadline_ns,
        )
    return streams, [s for s in stats if s is not None]
