"""Declarative fleet specifications: N arrays behind one cluster scheduler.

A :class:`FleetSpec` is the cluster-level analogue of
:class:`~repro.experiments.spec.ArraySpec`: pure frozen data describing a
multi-tenant :class:`~repro.scenarios.scenario.Scenario` served by a fleet
of heterogeneous array nodes (:class:`FleetNodeSpec`, device-zoo ids
welcome), a placement policy assigning tenants to nodes, per-tenant
admission limits and SLO targets (:class:`TenantPolicy`), and deferrable
background work (:class:`BackgroundJob`) scheduled into load valleys.

Like every spec layer below it, a fleet spec is hashable, picklable and
content-fingerprintable; :func:`repro.fleet.run.run_fleet` expands it into
ordinary cache-aware device jobs, so serial and process runs of the same
spec are bit-identical and memoize per device.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional, Tuple

from repro.experiments.spec import SPEC_VERSION, ArraySpec, WorkloadSpec
from repro.obs.report import SLOThresholds
from repro.scenarios.scenario import Scenario
from repro.sim.config import SimulationConfig, stable_fingerprint

KB = 1024
MB = 1024 * KB

#: Bump when fleet-building semantics change in a cache-invalidating way.
FLEET_VERSION = 1

#: Cluster-level placement policies understood by
#: :func:`repro.fleet.placement.plan_placement`.
FLEET_PLACEMENT_POLICIES = ("round-robin", "least-loaded", "tenant-affinity", "hash")

#: Background job kinds understood by :mod:`repro.fleet.background`.
BACKGROUND_KINDS = ("scrub", "rebuild", "gc-debt")


@dataclass(frozen=True)
class TenantPolicy:
    """Cluster-level controls for one tenant.

    ``affinity`` pins the tenant to a named node (used by the
    ``tenant-affinity`` placement policy; other policies ignore it).
    ``max_iops`` paces admissions to a minimum inter-arrival gap and
    ``max_queue_depth`` rejects arrivals that would exceed the tenant's
    virtual in-flight window (see :mod:`repro.fleet.admission`).  ``slo``
    overrides the fleet's ``default_slo`` for this tenant's verdicts.
    """

    affinity: Optional[str] = None
    max_iops: Optional[float] = None
    max_queue_depth: Optional[int] = None
    slo: Optional[SLOThresholds] = None

    def __post_init__(self) -> None:
        """Validate the limit fields."""
        if self.max_iops is not None and self.max_iops <= 0:
            raise ValueError("max_iops must be positive when given")
        if self.max_queue_depth is not None and self.max_queue_depth <= 0:
            raise ValueError("max_queue_depth must be positive when given")


@dataclass(frozen=True)
class BackgroundJob:
    """One deferrable maintenance job targeted at one node.

    ``kind`` selects the request shape (``scrub``/``rebuild`` issue reads,
    ``gc-debt`` issues seeded random overwrites); the job's requests are
    injected into the emptiest load valley of the node's foreground traffic
    that still meets ``deadline_ns`` (best effort - the result records
    whether the deadline held).  Background requests carry the provenance
    tag ``bg:<kind>``, so they show up as their own attribution slice and
    are excluded from tenant SLO accounting.
    """

    kind: str
    node: str
    num_requests: int = 16
    size_bytes: int = 64 * KB
    #: Absolute scenario-time deadline for the last request (``None`` = none).
    deadline_ns: Optional[int] = None
    #: Address window the job touches (``gc-debt`` scatters inside it).
    address_span_bytes: int = 16 * MB
    seed: int = 0

    def __post_init__(self) -> None:
        """Validate the job shape."""
        if self.kind not in BACKGROUND_KINDS:
            raise ValueError(
                f"unknown background kind {self.kind!r}; expected one of {BACKGROUND_KINDS}"
            )
        if self.num_requests <= 0:
            raise ValueError("num_requests must be positive")
        if self.size_bytes <= 0:
            raise ValueError("size_bytes must be positive")
        if self.deadline_ns is not None and self.deadline_ns <= 0:
            raise ValueError("deadline_ns must be positive when given")
        if self.address_span_bytes < self.size_bytes:
            raise ValueError("address_span_bytes must cover at least one request")

    @property
    def tag(self) -> str:
        """The provenance tag stamped on this job's requests."""
        return f"bg:{self.kind}"


@dataclass(frozen=True)
class FleetNodeSpec:
    """One array node of the fleet: a named, weighted ArraySpec recipe.

    Mirrors :class:`~repro.experiments.spec.ArraySpec`'s device setup -
    exactly one of ``config`` (homogeneous slots) or ``devices`` (one
    device-zoo id per slot) - plus a cluster-facing ``weight`` used by the
    ``least-loaded`` placement policy (a node of weight 2 absorbs twice the
    bytes before looking as loaded as a weight-1 node).
    """

    name: str
    scheduler: str = "SPK3"
    config: Optional[SimulationConfig] = None
    devices: Tuple[str, ...] = ()
    num_devices: int = 1
    policy: str = "stripe"
    chunk_bytes: int = 64 * KB
    shard_bytes: Optional[int] = None
    scheduler_options: Tuple[Tuple[str, Any], ...] = ()
    weight: float = 1.0

    def __post_init__(self) -> None:
        """Validate the device setup and weight."""
        if (self.config is None) == (not self.devices):
            raise ValueError(
                f"node {self.name!r}: set exactly one of config= or devices="
            )
        if self.devices and len(self.devices) != self.num_devices:
            raise ValueError(
                f"node {self.name!r}: devices= lists {len(self.devices)} ids "
                f"for {self.num_devices} slots"
            )
        if self.weight <= 0:
            raise ValueError(f"node {self.name!r}: weight must be positive")

    def array_spec(self, workload: WorkloadSpec, key: Tuple[Any, ...] = ()) -> ArraySpec:
        """The :class:`ArraySpec` running ``workload`` on this node."""
        return ArraySpec(
            workload=workload,
            num_devices=self.num_devices,
            scheduler=self.scheduler,
            config=self.config,
            policy=self.policy,
            chunk_bytes=self.chunk_bytes,
            shard_bytes=self.shard_bytes,
            scheduler_options=self.scheduler_options,
            key=key,
            devices=self.devices,
        )

    def resolved_configs(self) -> Tuple[SimulationConfig, ...]:
        """Per-slot resolved configurations (zoo ids looked up)."""
        if self.config is not None:
            return tuple(self.config for _ in range(self.num_devices))
        from repro.devices import device_config

        return tuple(device_config(device) for device in self.devices)

    def fingerprint(self) -> str:
        """Content hash over the node recipe (zoo ids enter by content)."""
        return stable_fingerprint(
            (
                "fleet-node",
                SPEC_VERSION,
                self.name,
                self.scheduler,
                self.num_devices,
                self.policy,
                self.chunk_bytes,
                self.shard_bytes,
                tuple(sorted(self.scheduler_options)),
                self.resolved_configs(),
                self.weight,
            )
        )


@dataclass(frozen=True)
class FleetSpec:
    """A multi-tenant scenario served by a fleet of array nodes.

    The scenario is built once; tenants are assigned whole to nodes by the
    ``placement`` policy, each tenant's stream passes its
    :class:`TenantPolicy` admission limits, background jobs are slotted
    into per-node load valleys, and every node then runs as an ordinary
    :class:`~repro.experiments.spec.ArraySpec` through the execution
    engine.  ``default_slo`` applies to tenants without a policy-level
    override; ``nominal_service_ns`` is the service-time model of the
    virtual queue-depth limiter and ``valley_windows`` the granularity of
    the background scheduler's load histogram.
    """

    name: str
    scenario: Scenario
    nodes: Tuple[FleetNodeSpec, ...]
    placement: str = "round-robin"
    #: ``(tenant name, policy)`` pairs - a frozen mapping.
    tenant_policies: Tuple[Tuple[str, TenantPolicy], ...] = ()
    default_slo: Optional[SLOThresholds] = None
    background: Tuple[BackgroundJob, ...] = ()
    nominal_service_ns: int = 100_000
    valley_windows: int = 32

    def __post_init__(self) -> None:
        """Validate node names, placement policy and background targets."""
        if not self.nodes:
            raise ValueError(f"fleet {self.name!r} needs at least one node")
        names = [node.name for node in self.nodes]
        if len(set(names)) != len(names):
            raise ValueError(f"fleet {self.name!r} has duplicate node names")
        if self.placement not in FLEET_PLACEMENT_POLICIES:
            raise ValueError(
                f"unknown placement policy {self.placement!r}; "
                f"expected one of {FLEET_PLACEMENT_POLICIES}"
            )
        for job in self.background:
            if job.node not in names:
                raise ValueError(
                    f"background job {job.kind!r} targets unknown node {job.node!r}"
                )
        for tenant, policy in self.tenant_policies:
            if policy.affinity is not None and policy.affinity not in names:
                raise ValueError(
                    f"tenant {tenant!r} pins unknown node {policy.affinity!r}"
                )
        if self.nominal_service_ns <= 0:
            raise ValueError("nominal_service_ns must be positive")
        if self.valley_windows <= 0:
            raise ValueError("valley_windows must be positive")

    def node_names(self) -> Tuple[str, ...]:
        """Node names in declaration order."""
        return tuple(node.name for node in self.nodes)

    def tenants(self) -> Tuple[str, ...]:
        """Distinct scenario tenant names, in declaration order.

        A tenant appearing in several phases counts once; placement treats
        it as one entity (all its phases land on the same node).
        """
        seen: List[str] = []
        for phase in self.scenario.phases:
            for tenant in phase.tenants:
                if tenant.name not in seen:
                    seen.append(tenant.name)
        return tuple(seen)

    def policy_for(self, tenant: str) -> Optional[TenantPolicy]:
        """The :class:`TenantPolicy` of one tenant (``None`` when unset)."""
        for name, policy in self.tenant_policies:
            if name == tenant:
                return policy
        return None

    def slo_for(self, tenant: str) -> Optional[SLOThresholds]:
        """The SLO checked for one tenant (policy override, else default)."""
        policy = self.policy_for(tenant)
        if policy is not None and policy.slo is not None:
            return policy.slo
        return self.default_slo

    def fingerprint(self) -> str:
        """Content hash over everything that influences the fleet outcome."""
        return stable_fingerprint(
            (
                "fleet",
                FLEET_VERSION,
                SPEC_VERSION,
                self.name,
                self.scenario.fingerprint(),
                tuple(node.fingerprint() for node in self.nodes),
                self.placement,
                self.tenant_policies,
                self.default_slo,
                self.background,
                self.nominal_service_ns,
                self.valley_windows,
            )
        )
