"""Per-tenant admission control at the cluster edge.

Two limits, both from :class:`~repro.fleet.spec.TenantPolicy` and both
deterministic pure functions of the tenant's arrival stream:

* ``max_iops`` - token-bucket pacing: arrivals closer together than the
  implied minimum gap (``1e9 / max_iops`` nanoseconds) are *delayed* to the
  gap boundary (counted as throttled), never dropped.  This models an
  ingress shaper smoothing a bursty tenant.
* ``max_queue_depth`` - a virtual in-flight window: each admitted request
  occupies a slot for ``nominal_service_ns`` (the same first-order service
  model :func:`repro.scenarios.characterize.characterize` uses); an arrival
  finding every slot occupied is *rejected* (dropped before simulation).
  This models load-shedding at the cluster front end.

Pacing applies before the depth check, so a rate-limited tenant's
smoothed stream is what the depth window sees - the composition order an
edge proxy implements.  Rejected requests never reach a device, which is
why fleet results report offered vs admitted counts per tenant.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.fleet.spec import TenantPolicy
from repro.scenarios.transforms import copy_request
from repro.workloads.request import IORequest

NS_PER_S = 1_000_000_000


@dataclass(frozen=True)
class AdmissionStats:
    """Admission accounting for one tenant on one node."""

    tenant: str
    node: str
    #: Requests the scenario offered for this tenant.
    offered: int
    #: Requests that passed admission (``offered - rejected``).
    admitted: int
    #: Admitted requests whose arrival was delayed by rate pacing.
    throttled: int
    #: Requests dropped by the queue-depth limit.
    rejected: int

    def rows(self) -> Dict[str, object]:
        """One printable row of the admission table."""
        return {
            "tenant": self.tenant,
            "node": self.node,
            "offered": self.offered,
            "admitted": self.admitted,
            "throttled": self.throttled,
            "rejected": self.rejected,
        }


def admit_stream(
    requests: Sequence[IORequest],
    policy: Optional[TenantPolicy],
    *,
    nominal_service_ns: int,
) -> Tuple[List[IORequest], int, int]:
    """Apply one tenant's admission limits to its arrival-ordered stream.

    Returns ``(admitted requests, throttled count, rejected count)``.  The
    output requests are fresh copies (tags preserved) with possibly shifted
    arrivals; without limits the stream passes through copied but
    unchanged.  Deterministic: same stream and policy, same result, in any
    process.
    """
    if policy is None or (policy.max_iops is None and policy.max_queue_depth is None):
        return [copy_request(io) for io in requests], 0, 0

    min_gap_ns = int(NS_PER_S / policy.max_iops) if policy.max_iops else 0
    depth = policy.max_queue_depth
    admitted: List[IORequest] = []
    throttled = 0
    rejected = 0
    next_free_ns = 0
    busy_until: List[int] = []  # min-heap of virtual completion times

    for io in requests:
        arrival_ns = io.arrival_ns
        if min_gap_ns:
            if arrival_ns < next_free_ns:
                arrival_ns = next_free_ns
                throttled += 1
            next_free_ns = arrival_ns + min_gap_ns
        if depth is not None:
            while busy_until and busy_until[0] <= arrival_ns:
                heapq.heappop(busy_until)
            if len(busy_until) >= depth:
                rejected += 1
                continue
            heapq.heappush(busy_until, arrival_ns + nominal_service_ns)
        admitted.append(copy_request(io, arrival_ns=arrival_ns))
    return admitted, throttled, rejected
