"""Fleet-level result merging and exact reconciliation.

A :class:`FleetResult` folds per-node :class:`~repro.array.host.ArrayResult`
objects into cluster aggregates the same way the array layer folds device
results: throughput figures add (nodes run concurrently and
independently), latency percentiles pool the union sample population, and
attribution merges exactly - per-tenant counts, bytes and (full-history)
percentile inputs at fleet level are precisely the sums of the per-array
slices.  :func:`reconcile_fleet` asserts that chain end to end, which is
what makes per-tenant SLO verdicts at fleet scale trustworthy rather than
approximate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.array.host import ArrayResult
from repro.fleet.admission import AdmissionStats
from repro.fleet.background import BackgroundStats
from repro.fleet.placement import PlacementPlan
from repro.fleet.spec import FleetSpec
from repro.metrics.attribution import (
    AttributionReport,
    merge_attribution_reports,
    reconcile_attribution,
    untagged_report,
)
from repro.metrics.latency import LatencyStats, merge_latency_stats
from repro.obs.report import SLOCheck


def _max_to_mean(values: Sequence[float]) -> float:
    """Max-to-mean imbalance ratio with the 0.0 empty/idle sentinel."""
    if not values:
        return 0.0
    mean = sum(values) / len(values)
    if mean <= 0.0:
        return 0.0
    return max(values) / mean


@dataclass
class FleetResult:
    """Merged outcome of one fleet run across every node."""

    name: str
    placement: str
    node_names: Tuple[str, ...]
    node_results: Tuple[ArrayResult, ...]
    plan: PlacementPlan
    latency: LatencyStats = field(default_factory=LatencyStats)
    #: Per-tenant/per-phase attribution pooled across the whole fleet.
    attribution: Optional[AttributionReport] = None
    admission: Tuple[AdmissionStats, ...] = ()
    background: Tuple[BackgroundStats, ...] = ()
    #: Per-tenant SLO verdicts (policy override else fleet default; ``bg:``
    #: maintenance slices are never checked).
    slo_checks: Tuple[SLOCheck, ...] = ()

    # ------------------------------------------------------------------
    # Aggregate throughput (nodes run concurrently -> figures add up)
    # ------------------------------------------------------------------
    @property
    def aggregate_bandwidth_kb_s(self) -> float:
        """Fleet bandwidth: the sum of per-node array bandwidths."""
        return sum(result.aggregate_bandwidth_kb_s for result in self.node_results)

    @property
    def aggregate_iops(self) -> float:
        """Fleet IOPS: the sum of per-node array IOPS."""
        return sum(result.aggregate_iops for result in self.node_results)

    @property
    def total_bytes(self) -> int:
        """Bytes served across the fleet."""
        return sum(result.total_bytes for result in self.node_results)

    @property
    def completed_ios(self) -> int:
        """Device commands completed across the fleet (split fragments)."""
        return sum(result.completed_ios for result in self.node_results)

    @property
    def makespan_ns(self) -> int:
        """Fleet wall-clock: the slowest node's makespan."""
        return max((result.makespan_ns for result in self.node_results), default=0)

    # ------------------------------------------------------------------
    # Placement balance
    # ------------------------------------------------------------------
    def byte_imbalance(self) -> float:
        """Max-to-mean ratio of bytes served per node; 1.0 is balanced."""
        return _max_to_mean([result.total_bytes for result in self.node_results])

    def iops_imbalance(self) -> float:
        """Max-to-mean ratio of per-node IOPS; 1.0 is balanced."""
        return _max_to_mean([result.aggregate_iops for result in self.node_results])

    # ------------------------------------------------------------------
    # SLO accounting
    # ------------------------------------------------------------------
    def slo_violations(self) -> Dict[str, int]:
        """Failed SLO checks per tenant (tenants with none map to 0)."""
        violations: Dict[str, int] = {}
        for check in self.slo_checks:
            violations.setdefault(check.tenant, 0)
            if not check.ok:
                violations[check.tenant] += 1
        return violations

    @property
    def slo_violations_total(self) -> int:
        """Failed SLO checks across every tenant."""
        return sum(1 for check in self.slo_checks if not check.ok)

    # ------------------------------------------------------------------
    # Admission / background roll-ups
    # ------------------------------------------------------------------
    @property
    def offered_ios(self) -> int:
        """Host requests the scenario offered (before admission)."""
        return sum(stats.offered for stats in self.admission)

    @property
    def rejected_ios(self) -> int:
        """Host requests dropped by admission control."""
        return sum(stats.rejected for stats in self.admission)

    @property
    def throttled_ios(self) -> int:
        """Host requests delayed by rate pacing."""
        return sum(stats.throttled for stats in self.admission)

    @property
    def background_ios(self) -> int:
        """Background requests injected across the fleet."""
        return sum(stats.requests for stats in self.background)

    # ------------------------------------------------------------------
    # Presentation
    # ------------------------------------------------------------------
    def summary_row(self) -> Dict[str, object]:
        """One row of the fleet-comparison tables."""
        return {
            "fleet": self.name,
            "placement": self.placement,
            "nodes": len(self.node_results),
            "bandwidth_mb_s": round(self.aggregate_bandwidth_kb_s / 1024.0, 1),
            "iops": round(self.aggregate_iops, 1),
            "p99_latency_us": round(self.latency.percentile_ns(0.99) / 1_000.0, 1),
            "slo_violations": self.slo_violations_total,
            "byte_imbalance": round(self.byte_imbalance(), 3),
            "iops_imbalance": round(self.iops_imbalance(), 3),
            "throttled": self.throttled_ios,
            "rejected": self.rejected_ios,
            "bg_ios": self.background_ios,
        }

    def node_rows(self) -> List[Dict[str, object]]:
        """Per-node rows (the array summary prefixed with the node name)."""
        return [
            {"node": name, **result.summary_row()}
            for name, result in zip(self.node_names, self.node_results)
        ]


def merge_node_results(
    spec: FleetSpec,
    plan: PlacementPlan,
    node_results: Sequence[ArrayResult],
    admission: Sequence[AdmissionStats] = (),
    background: Sequence[BackgroundStats] = (),
) -> FleetResult:
    """Fold per-node :class:`ArrayResult`s into one :class:`FleetResult`.

    Attribution merges exactly across nodes (nodes without tagged traffic
    count toward the untagged remainder); SLO checks are evaluated on the
    merged per-tenant latency populations, skipping ``bg:`` maintenance
    slices.
    """
    if any(result.attribution is not None for result in node_results):
        attribution = merge_attribution_reports(
            [
                result.attribution
                if result.attribution is not None
                else untagged_report(result.completed_ios, result.total_bytes)
                for result in node_results
            ]
        )
    else:
        attribution = None

    slo_checks: List[SLOCheck] = []
    if attribution is not None:
        for entry in attribution.tenant_totals():
            if entry.tenant.startswith("bg:"):
                continue
            slo = spec.slo_for(entry.tenant)
            if slo:
                slo_checks.extend(slo.check(entry.tenant, entry.latency))

    return FleetResult(
        name=spec.name,
        placement=spec.placement,
        node_names=spec.node_names(),
        node_results=tuple(node_results),
        plan=plan,
        latency=merge_latency_stats([result.latency for result in node_results]),
        attribution=attribution,
        admission=tuple(admission),
        background=tuple(background),
        slo_checks=tuple(slo_checks),
    )


def reconcile_fleet(fleet: FleetResult) -> List[str]:
    """Check the fleet's attribution chain end to end; empty = exact.

    Two layers of invariants:

    1. :func:`~repro.metrics.attribution.reconcile_attribution` on the
       fleet aggregate (tagged + untagged == totals, per-slice sample
       counts, pooled percentile population).
    2. The merge itself: every fleet-level per-tenant slice must equal the
       *sum* of that tenant's per-array slices - counts, bytes and (full
       history) the latency sample population, compared exactly.
    """
    problems = list(reconcile_attribution(fleet))
    if fleet.attribution is None:
        return problems
    for tenant in fleet.attribution.tenants():
        merged = fleet.attribution.by_tenant(tenant)
        node_slices = [
            result.attribution.by_tenant(tenant)
            for result in fleet.node_results
            if result.attribution is not None
            and tenant in result.attribution.tenants()
        ]
        ios = sum(entry.completed_ios for entry in node_slices)
        volume = sum(entry.total_bytes for entry in node_slices)
        if ios != merged.completed_ios:
            problems.append(
                f"tenant {tenant!r}: fleet slice counts {merged.completed_ios} "
                f"I/Os but per-array slices sum to {ios}"
            )
        if volume != merged.total_bytes:
            problems.append(
                f"tenant {tenant!r}: fleet slice counts {merged.total_bytes} "
                f"bytes but per-array slices sum to {volume}"
            )
        pooled: List[int] = []
        for entry in node_slices:
            pooled.extend(entry.latency.samples_ns)
        if len(pooled) == ios and sorted(pooled) != sorted(merged.latency.samples_ns):
            problems.append(
                f"tenant {tenant!r}: fleet latency population does not match "
                "the union of per-array samples"
            )
    return problems
