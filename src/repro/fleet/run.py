"""Executing a fleet spec through the engine, one device job at a time.

:func:`run_fleet` is deliberately a thin deterministic pipeline:

1. build the (tagged) scenario trace once,
2. measure per-tenant demand and :func:`~repro.fleet.placement.
   plan_placement` tenants onto nodes,
3. per node: apply per-tenant admission, find load valleys and slot the
   node's background jobs in, interleave everything back into one stream
   (:func:`~repro.scenarios.transforms.merge_streams`' deterministic
   tie-break), and freeze it - tags intact - into the node's
   :class:`~repro.experiments.spec.ArraySpec`,
4. flatten every node's device jobs into ONE
   :meth:`~repro.experiments.engine.ExecutionEngine.run_jobs` batch, so
   backend choice, the fingerprint cache, checkpointing and ``--trace-dir``
   all apply per device job,
5. regroup results per node and merge them into a
   :class:`~repro.fleet.result.FleetResult`.

Every step is a pure function of the spec, so serial and process runs are
bit-identical and a repeated run is served entirely from the result cache.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.array.host import merge_device_results
from repro.experiments.spec import SimJob, WorkloadSpec
from repro.fleet.admission import AdmissionStats, admit_stream
from repro.fleet.background import BackgroundStats, schedule_background
from repro.fleet.placement import PlacementPlan, plan_placement, tenant_demands
from repro.fleet.result import FleetResult, merge_node_results
from repro.fleet.spec import FleetSpec
from repro.scenarios.transforms import merge_streams
from repro.workloads.request import IORequest


@dataclass(frozen=True)
class FleetWorkloads:
    """The materialised per-node inputs of one fleet run."""

    #: One interleaved (admitted foreground + background) stream per node.
    node_traces: Tuple[Tuple[IORequest, ...], ...]
    plan: PlacementPlan
    admission: Tuple[AdmissionStats, ...]
    background: Tuple[BackgroundStats, ...]


def build_fleet_workloads(spec: FleetSpec) -> FleetWorkloads:
    """Materialise the placement, admission and background decisions.

    Pure data-plane work - nothing here touches a simulator, so tests can
    assert on placement/admission/valley behaviour without running devices.
    """
    trace = spec.scenario.build()
    tenants = spec.tenants()
    plan = plan_placement(spec, tenant_demands(tenants, trace))

    node_traces: List[Tuple[IORequest, ...]] = []
    admission: List[AdmissionStats] = []
    background: List[BackgroundStats] = []
    for node_index, node in enumerate(spec.nodes):
        streams: List[List[IORequest]] = []
        for tenant in plan.tenants_on(node_index):
            offered = [io for io in trace if io.tenant == tenant]
            admitted, throttled, rejected = admit_stream(
                offered,
                spec.policy_for(tenant),
                nominal_service_ns=spec.nominal_service_ns,
            )
            streams.append(admitted)
            admission.append(
                AdmissionStats(
                    tenant=tenant,
                    node=node.name,
                    offered=len(offered),
                    admitted=len(admitted),
                    throttled=throttled,
                    rejected=rejected,
                )
            )
        foreground = merge_streams(streams) if streams else []
        node_jobs = [job for job in spec.background if job.node == node.name]
        bg_streams, bg_stats = schedule_background(
            foreground, node_jobs, num_windows=spec.valley_windows
        )
        background.extend(bg_stats)
        merged = (
            merge_streams([foreground, *bg_streams]) if bg_streams else foreground
        )
        node_traces.append(tuple(merged))
    return FleetWorkloads(
        node_traces=tuple(node_traces),
        plan=plan,
        admission=tuple(admission),
        background=tuple(background),
    )


def fleet_jobs(
    spec: FleetSpec, workloads: Optional[FleetWorkloads] = None
) -> Tuple[List[SimJob], FleetWorkloads]:
    """Expand a fleet spec into its flat, ordered device-job list.

    Jobs are ordered node by node (node order = spec order), each node
    contributing ``num_devices`` jobs keyed ``(fleet, node, device)``; the
    per-node sub-traces are frozen with their provenance tags so device
    results carry attribution.
    """
    if workloads is None:
        workloads = build_fleet_workloads(spec)
    jobs: List[SimJob] = []
    for node, trace in zip(spec.nodes, workloads.node_traces):
        workload = WorkloadSpec.inline(
            f"{spec.name}@{node.name}", list(trace), keep_tags=True
        )
        array = node.array_spec(workload, key=(spec.name, node.name))
        jobs.extend(array.device_jobs())
    return jobs, workloads


def run_fleet(spec: FleetSpec, engine=None) -> FleetResult:
    """Run a whole fleet spec and merge everything into a FleetResult.

    ``engine`` defaults to a serial
    :class:`~repro.experiments.engine.ExecutionEngine`; pass a configured
    one (process backend, cache dir, checkpointing, tracing) and every
    device job inherits it.
    """
    from repro.experiments.engine import ExecutionEngine

    jobs, workloads = fleet_jobs(spec)
    results = (engine or ExecutionEngine()).run_jobs(jobs)

    node_results = []
    cursor = 0
    for node in spec.nodes:
        device_results = results[cursor : cursor + node.num_devices]
        cursor += node.num_devices
        node_results.append(
            merge_device_results(
                device_results,
                scheduler=node.scheduler,
                workload=f"{spec.name}@{node.name}",
                policy=node.policy,
            )
        )
    return merge_node_results(
        spec,
        workloads.plan,
        node_results,
        admission=workloads.admission,
        background=workloads.background,
    )
