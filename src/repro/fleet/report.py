"""Fleet run reports: cluster summary, placement, SLOs, admission, valleys.

The fleet analogue of :mod:`repro.obs.report`: one self-contained markdown
or HTML artifact per fleet run, sharing the run report's table renderers
and page chrome so every report in the repo reads the same.  The report
always ends with the exact-reconciliation verdict of
:func:`~repro.fleet.result.reconcile_fleet` - a fleet report that renders
"FAILED" is telling you the merge math broke, not the workload.
"""

from __future__ import annotations

import html
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.fleet.result import FleetResult, reconcile_fleet
from repro.obs.report import html_document, render_html_table, render_markdown_table


def _summary_items(fleet: FleetResult) -> List[tuple]:
    row = fleet.summary_row()
    return [
        ("fleet", row["fleet"]),
        ("placement", row["placement"]),
        ("nodes", row["nodes"]),
        ("completed I/Os", fleet.completed_ios),
        ("total MB", round(fleet.total_bytes / (1024.0 * 1024.0), 2)),
        ("makespan (ms)", round(fleet.makespan_ns / 1_000_000.0, 3)),
        ("bandwidth (MB/s)", row["bandwidth_mb_s"]),
        ("IOPS", row["iops"]),
        ("p99 latency (us)", row["p99_latency_us"]),
        ("byte imbalance", row["byte_imbalance"]),
        ("IOPS imbalance", row["iops_imbalance"]),
        ("SLO violations", row["slo_violations"]),
        ("throttled / rejected", f"{fleet.throttled_ios} / {fleet.rejected_ios}"),
        ("background I/Os", fleet.background_ios),
    ]


def _tenant_rows(fleet: FleetResult) -> List[Dict[str, object]]:
    report = fleet.attribution
    if report is None:
        return []
    rows = [entry.summary_row() for entry in report.entries]
    for entry in report.tenant_totals():
        row = entry.summary_row()
        row["phase"] = "(all)"
        rows.append(row)
    if report.untagged_ios:
        rows.append(
            {
                "phase": "-",
                "tenant": "(untagged)",
                "ios": report.untagged_ios,
                "mb": round(report.untagged_bytes / (1024.0 * 1024.0), 2),
            }
        )
    return rows


def _slo_rows(fleet: FleetResult) -> List[Dict[str, object]]:
    return [
        {
            "tenant": check.tenant,
            "metric": check.metric,
            "limit_us": check.limit_us,
            "actual_us": check.actual_us,
            "verdict": "PASS" if check.ok else "FAIL",
        }
        for check in fleet.slo_checks
    ]


def fleet_report_markdown(fleet: FleetResult, *, title: Optional[str] = None) -> str:
    """Render one fleet run as a self-contained markdown report."""
    lines = [f"# {title or f'Fleet report: {fleet.name} [{fleet.placement}]'}", ""]
    lines += [f"- **{name}**: {value}" for name, value in _summary_items(fleet)]

    lines += ["", "## Placement", ""]
    lines += render_markdown_table(
        [
            {"tenant": tenant, "node": fleet.node_names[index]}
            for tenant, index in fleet.plan.assignments
        ]
    )

    lines += ["", "## Nodes", ""]
    lines += render_markdown_table(fleet.node_rows())

    tenant_rows = _tenant_rows(fleet)
    if tenant_rows:
        lines += ["", "## Tenants", ""]
        lines += render_markdown_table(tenant_rows)

    slo_rows = _slo_rows(fleet)
    if slo_rows:
        lines += ["", "## SLO checks", ""]
        lines += render_markdown_table(slo_rows)

    if fleet.admission:
        lines += ["", "## Admission", ""]
        lines += render_markdown_table([stats.rows() for stats in fleet.admission])

    if fleet.background:
        lines += ["", "## Background work", ""]
        lines += render_markdown_table([stats.rows() for stats in fleet.background])

    problems = reconcile_fleet(fleet)
    lines.append("")
    lines.append("## Reconciliation")
    lines.append("")
    if problems:
        lines.append("**Reconciliation FAILED:**")
        lines += [f"- {problem}" for problem in problems]
    else:
        lines.append(
            "Per-tenant counts, bytes and pooled percentile inputs match the "
            "summed per-array attribution exactly."
        )
    return "\n".join(lines) + "\n"


def fleet_report_html(fleet: FleetResult, *, title: Optional[str] = None) -> str:
    """Render one fleet run as a single self-contained HTML page."""
    heading = title or f"Fleet report: {fleet.name} [{fleet.placement}]"
    parts: List[str] = []
    parts += render_html_table([{str(k): v for k, v in _summary_items(fleet)}])

    parts.append("<h2>Placement</h2>")
    parts += render_html_table(
        [
            {"tenant": tenant, "node": fleet.node_names[index]}
            for tenant, index in fleet.plan.assignments
        ]
    )

    parts.append("<h2>Nodes</h2>")
    parts += render_html_table(fleet.node_rows())

    tenant_rows = _tenant_rows(fleet)
    if tenant_rows:
        parts.append("<h2>Tenants</h2>")
        parts += render_html_table(tenant_rows)

    slo_rows = _slo_rows(fleet)
    if slo_rows:
        parts.append("<h2>SLO checks</h2>")
        parts += render_html_table(slo_rows)

    if fleet.admission:
        parts.append("<h2>Admission</h2>")
        parts += render_html_table([stats.rows() for stats in fleet.admission])

    if fleet.background:
        parts.append("<h2>Background work</h2>")
        parts += render_html_table([stats.rows() for stats in fleet.background])

    parts.append("<h2>Reconciliation</h2>")
    problems = reconcile_fleet(fleet)
    if problems:
        parts.append('<p class="fail">Reconciliation FAILED:</p><ul>')
        parts += [f"<li>{html.escape(problem)}</li>" for problem in problems]
        parts.append("</ul>")
    else:
        parts.append(
            '<p class="pass">Per-tenant counts, bytes and pooled percentile '
            "inputs match the summed per-array attribution exactly.</p>"
        )
    return html_document(heading, parts)


def write_fleet_report(
    path: Union[str, Path],
    fleet: FleetResult,
    *,
    title: Optional[str] = None,
    fmt: Optional[str] = None,
) -> Path:
    """Write a fleet report to ``path``; format from ``fmt`` or the suffix.

    Mirrors :func:`repro.obs.report.write_run_report`: ``.html``/``.htm``
    produce the HTML page, anything else markdown.
    """
    target = Path(path)
    if fmt is None:
        fmt = "html" if target.suffix.lower() in (".html", ".htm") else "markdown"
    if fmt == "html":
        content = fleet_report_html(fleet, title=title)
    elif fmt in ("markdown", "md"):
        content = fleet_report_markdown(fleet, title=title)
    else:
        raise ValueError(f"unknown report format {fmt!r}; expected html or markdown")
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(content, encoding="utf-8")
    return target
