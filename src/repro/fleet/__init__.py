"""Fleet-scale simulation: many arrays behind one cluster scheduler.

The layer above :mod:`repro.array`: a :class:`FleetSpec` composes N
heterogeneous array nodes (device-zoo ids welcome) serving one multi-tenant
:class:`~repro.scenarios.scenario.Scenario`, with pluggable tenant
placement (:mod:`~repro.fleet.placement`), per-tenant admission control
(:mod:`~repro.fleet.admission`) and deferrable background work slotted
into load valleys (:mod:`~repro.fleet.background`).  :func:`run_fleet`
fans every node's devices through the existing
:class:`~repro.experiments.engine.ExecutionEngine` - cache, process
backend, checkpointing and tracing all apply per device job - and
:class:`FleetResult` merges the per-array results with *exact* per-tenant
attribution, SLO verdicts and placement-balance metrics
(:func:`reconcile_fleet` asserts the whole chain).
"""

from repro.fleet.admission import AdmissionStats, admit_stream
from repro.fleet.background import (
    BackgroundStats,
    LoadWindow,
    find_load_valleys,
    schedule_background,
)
from repro.fleet.placement import (
    PlacementPlan,
    TenantDemand,
    plan_placement,
    stable_tenant_hash,
    tenant_demands,
)
from repro.fleet.report import (
    fleet_report_html,
    fleet_report_markdown,
    write_fleet_report,
)
from repro.fleet.result import FleetResult, merge_node_results, reconcile_fleet
from repro.fleet.run import FleetWorkloads, build_fleet_workloads, fleet_jobs, run_fleet
from repro.fleet.spec import (
    BACKGROUND_KINDS,
    FLEET_PLACEMENT_POLICIES,
    FLEET_VERSION,
    BackgroundJob,
    FleetNodeSpec,
    FleetSpec,
    TenantPolicy,
)

__all__ = [
    "AdmissionStats",
    "admit_stream",
    "BackgroundStats",
    "LoadWindow",
    "find_load_valleys",
    "schedule_background",
    "PlacementPlan",
    "TenantDemand",
    "plan_placement",
    "stable_tenant_hash",
    "tenant_demands",
    "fleet_report_html",
    "fleet_report_markdown",
    "write_fleet_report",
    "FleetResult",
    "merge_node_results",
    "reconcile_fleet",
    "FleetWorkloads",
    "build_fleet_workloads",
    "fleet_jobs",
    "run_fleet",
    "BACKGROUND_KINDS",
    "FLEET_PLACEMENT_POLICIES",
    "FLEET_VERSION",
    "BackgroundJob",
    "FleetNodeSpec",
    "FleetSpec",
    "TenantPolicy",
]
