"""Host-side array simulation: N independent SSDs behind one volume manager.

:class:`ArraySimulation` is the array analogue of
:class:`~repro.sim.ssd.SSDSimulator`: it takes a placement layout plus a
per-device ``(scheduler, config)`` setup, expands a workload into one
:class:`~repro.experiments.spec.SimJob` per device (via
:class:`~repro.experiments.spec.ArraySpec`) and runs those jobs through the
existing :class:`~repro.experiments.engine.ExecutionEngine`.  Because every
device is an ordinary cache-aware job, arrays parallelize over the process
backend and memoize per device for free.

Device results merge into an :class:`ArrayResult`.  Devices operate
concurrently and independently (their event clocks never interact), so the
array aggregate bandwidth/IOPS is *by definition* the sum of the per-device
figures, while latency percentiles and chip utilisation are computed over
the pooled array-wide populations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Sequence, Tuple

from repro.array.layout import ArrayLayout
from repro.metrics.attribution import (
    AttributionReport,
    merge_attribution_reports,
    untagged_report,
)
from repro.metrics.latency import LatencyStats, merge_latency_stats
from repro.metrics.report import SimulationResult
from repro.metrics.utilization import UtilizationReport, merge_utilization_reports
from repro.obs.counters import merge_counter_snapshots


@dataclass
class ArrayResult:
    """Merged outcome of one workload run across every device of an array."""

    scheduler: str
    workload: str
    policy: str
    num_devices: int
    device_results: Tuple[SimulationResult, ...]
    latency: LatencyStats = field(default_factory=LatencyStats)
    utilization: UtilizationReport = field(default_factory=UtilizationReport)
    #: Per-device counter snapshots merged under device-namespaced keys
    #: (``dev3.gc.triggers``), mirroring how merge_utilization_reports
    #: namespaces chip keys - no cross-device aggregation surprises.
    counters: Dict[str, int] = field(default_factory=dict)
    #: Per-tenant/per-phase attribution pooled across devices (``None`` when
    #: no device recorded any tagged completion).  Devices without tags
    #: contribute their totals to the untagged remainder, so
    #: :func:`repro.metrics.attribution.reconcile_attribution` holds exactly
    #: at array level too.
    attribution: Optional[AttributionReport] = None

    # ------------------------------------------------------------------
    # Aggregate throughput (devices run concurrently -> figures add up)
    # ------------------------------------------------------------------
    @property
    def aggregate_bandwidth_kb_s(self) -> float:
        """Array bandwidth: the sum of per-device bandwidths."""
        return sum(result.bandwidth_kb_s for result in self.device_results)

    @property
    def aggregate_iops(self) -> float:
        """Array IOPS: the sum of per-device IOPS."""
        return sum(result.iops for result in self.device_results)

    @property
    def total_bytes(self) -> int:
        """Bytes served across the whole array (conserved by placement)."""
        return sum(result.total_bytes for result in self.device_results)

    @property
    def completed_ios(self) -> int:
        """Per-device commands completed (fragments of split host requests)."""
        return sum(result.completed_ios for result in self.device_results)

    @property
    def makespan_ns(self) -> int:
        """Wall-clock of the array run: the slowest device's makespan."""
        return max((result.makespan_ns for result in self.device_results), default=0)

    # ------------------------------------------------------------------
    # Cross-device balance
    # ------------------------------------------------------------------
    @property
    def device_utilization_spread(self) -> float:
        """Max minus min of the per-device mean chip utilisations."""
        means = [result.chip_utilization for result in self.device_results]
        if not means:
            return 0.0
        return max(means) - min(means)

    def byte_imbalance(self) -> float:
        """Max-to-mean ratio of bytes served per device; 1.0 is balanced.

        Returns the ``0.0`` sentinel when the array served no bytes (mirrors
        :meth:`UtilizationReport.imbalance`).
        """
        bytes_per_device = [result.total_bytes for result in self.device_results]
        mean = sum(bytes_per_device) / len(bytes_per_device) if bytes_per_device else 0.0
        if mean <= 0.0:
            return 0.0
        return max(bytes_per_device) / mean

    @property
    def chip_utilization(self) -> float:
        """Mean chip utilisation over every chip of every device."""
        return self.utilization.mean

    def aggregate_counters(self) -> Dict[str, int]:
        """Counters summed across devices (un-namespaced dotted names)."""
        return merge_counter_snapshots(
            [result.counters for result in self.device_results]
        )

    @property
    def avg_latency_ns(self) -> float:
        """Mean per-command latency over the pooled array population."""
        return self.latency.mean_ns

    # ------------------------------------------------------------------
    # Presentation
    # ------------------------------------------------------------------
    def summary_row(self) -> Dict[str, object]:
        """One row of the array-comparison tables."""
        return {
            "scheduler": self.scheduler,
            "workload": self.workload,
            "policy": self.policy,
            "devices": self.num_devices,
            "bandwidth_mb_s": round(self.aggregate_bandwidth_kb_s / 1024.0, 1),
            "iops": round(self.aggregate_iops, 1),
            "avg_latency_us": round(self.avg_latency_ns / 1_000.0, 1),
            "p99_latency_us": round(self.latency.percentile_ns(0.99) / 1_000.0, 1),
            "chip_utilization": round(self.chip_utilization, 4),
            "util_spread": round(self.device_utilization_spread, 4),
            "byte_imbalance": round(self.byte_imbalance(), 3),
        }


def merge_device_results(
    results: Sequence[SimulationResult],
    *,
    scheduler: str,
    workload: str,
    policy: str,
) -> ArrayResult:
    """Fold per-device :class:`SimulationResult`s into one :class:`ArrayResult`.

    Attribution merges exactly: per-(tenant, phase) slices sum across
    devices, and devices that saw no tagged traffic count toward the
    untagged remainder.  The merged report is ``None`` only when *no*
    device carries attribution (fully untagged workloads).
    """
    if any(result.attribution is not None for result in results):
        attribution = merge_attribution_reports(
            [
                result.attribution
                if result.attribution is not None
                else untagged_report(result.completed_ios, result.total_bytes)
                for result in results
            ]
        )
    else:
        attribution = None
    return ArrayResult(
        scheduler=scheduler,
        workload=workload,
        policy=policy,
        num_devices=len(results),
        device_results=tuple(results),
        latency=merge_latency_stats([result.latency for result in results]),
        utilization=merge_utilization_reports([result.utilization for result in results]),
        # Namespacing by device index before the merge keeps every device's
        # snapshot intact (merge_counter_snapshots would otherwise sum
        # same-named counters across devices and silently lose the split).
        counters=merge_counter_snapshots(
            [
                {
                    f"dev{index}.{name}": value
                    for name, value in result.counters.items()
                }
                for index, result in enumerate(results)
            ]
        ),
        attribution=attribution,
    )


class ArraySimulation:
    """Runs one workload across a multi-SSD array through the engine."""

    def __init__(
        self,
        layout: ArrayLayout,
        config=None,
        scheduler: str = "SPK3",
        scheduler_options: Optional[Dict[str, Any]] = None,
        *,
        devices: Sequence[str] = (),
    ) -> None:
        """``config`` is the shared per-device configuration (homogeneous
        arrays); ``devices`` is one device-zoo id per slot (heterogeneous
        arrays).  Exactly one of the two must be given - the constraint is
        enforced by :class:`~repro.experiments.spec.ArraySpec` when the spec
        is built.
        """
        self.layout = layout
        self.config = config
        self.scheduler = scheduler
        self.scheduler_options = scheduler_options or {}
        self.devices = tuple(devices)

    def spec(self, workload, key: Tuple[Any, ...] = ()):
        """The :class:`~repro.experiments.spec.ArraySpec` for one workload."""
        # Imported lazily: repro.experiments imports this package back (the
        # array_scaling experiment), so the edge must not exist at load time.
        from repro.experiments.spec import ArraySpec

        return ArraySpec(
            workload=workload,
            num_devices=self.layout.num_devices,
            scheduler=self.scheduler,
            config=self.config,
            policy=self.layout.policy,
            chunk_bytes=self.layout.chunk_bytes,
            shard_bytes=self.layout.shard_bytes,
            scheduler_options=tuple(sorted(self.scheduler_options.items())),
            key=key,
            devices=self.devices,
        )

    def run(self, workload, engine=None) -> ArrayResult:
        """Simulate ``workload`` on every device and merge the results.

        ``workload`` is a :class:`~repro.experiments.spec.WorkloadSpec`;
        ``engine`` defaults to a serial :class:`ExecutionEngine`.  Device
        jobs go through ``engine.run_jobs``, so backend choice and result
        caching apply per device.
        """
        from repro.experiments.engine import ExecutionEngine

        spec = self.spec(workload)
        jobs = list(spec.device_jobs())
        results = (engine or ExecutionEngine()).run_jobs(jobs)
        return merge_device_results(
            results,
            scheduler=self.scheduler,
            workload=workload.name,
            # The bare policy name, matching run_array_specs, so rows from
            # either entry point group together; layout.describe() remains
            # the human-facing label.
            policy=self.layout.policy,
        )
