"""Data placement across a multi-SSD array.

An :class:`ArrayLayout` describes how a host spreads one logical address
space over ``num_devices`` independent SSDs, and :func:`split_trace` applies
it: a single host I/O trace becomes one sub-trace per device, with offsets
translated into each device's local address space and I/O ids renumbered
``0..n-1`` per device.  The layer is pure bookkeeping - byte counts, request
kinds, arrival times and trace order are preserved exactly, so array-level
aggregates can be reconciled against the input trace.

Three placement policies are supported:

* ``stripe`` - RAID-0-style striping: the address space is cut into
  ``chunk_bytes`` stripe units assigned round-robin (unit ``u`` lives on
  device ``u % N`` at local unit ``u // N``).  Large requests fan out over
  many devices; small ones land on a single device.
* ``range`` - contiguous range sharding: the space is cut into ``N`` equal
  shards and each device owns one, so spatial locality stays intact but a
  skewed trace loads devices unevenly.
* ``hash`` - hashed chunk placement: each ``chunk_bytes`` chunk is assigned
  by a deterministic integer hash of its index, breaking up pathological
  striding.  Chunks are packed densely into each device's local space in
  ascending chunk order.

A request that crosses a placement boundary is split into per-device
fragments (adjacent fragments on the same device are re-merged), mirroring
what a host volume manager does before queueing per-device commands.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.workloads.request import IORequest

KB = 1024

#: Placement policies understood by :func:`split_trace`.
PLACEMENT_POLICIES = ("stripe", "range", "hash")

_MASK64 = (1 << 64) - 1


def _mix64(value: int) -> int:
    """SplitMix64 finaliser: a deterministic, well-spread 64-bit hash.

    Python's builtin ``hash`` is identity on small ints (terrible spread for
    sequential chunk indices) and salted for other types, so the array layer
    carries its own mixer to keep placement stable across processes.
    """
    value = (value + 0x9E3779B97F4A7C15) & _MASK64
    value = ((value ^ (value >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    value = ((value ^ (value >> 27)) * 0x94D049BB133111EB) & _MASK64
    return value ^ (value >> 31)


@dataclass(frozen=True)
class ArrayLayout:
    """How one logical address space maps onto ``num_devices`` SSDs."""

    num_devices: int
    policy: str = "stripe"
    #: Stripe unit (``stripe``) or placement chunk (``hash``) in bytes.
    chunk_bytes: int = 64 * KB
    #: Shard size for ``range`` placement; ``None`` derives it from the trace
    #: (the smallest equal split covering the highest touched offset).
    shard_bytes: int | None = None

    def __post_init__(self) -> None:
        if self.num_devices <= 0:
            raise ValueError("num_devices must be positive")
        if self.policy not in PLACEMENT_POLICIES:
            raise ValueError(
                f"unknown placement policy {self.policy!r}; expected one of {PLACEMENT_POLICIES}"
            )
        if self.chunk_bytes <= 0:
            raise ValueError("chunk_bytes must be positive")
        if self.shard_bytes is not None and self.shard_bytes <= 0:
            raise ValueError("shard_bytes must be positive when given")

    def describe(self) -> str:
        """Short human label used in tables (``stripe(4x64KB)``)."""
        if self.policy == "range":
            return f"range({self.num_devices})"
        return f"{self.policy}({self.num_devices}x{self.chunk_bytes // KB}KB)"


#: One placement fragment: ``(device, device_local_offset, size_bytes)``.
_Fragment = Tuple[int, int, int]


def _stripe_fragments(io: IORequest, layout: ArrayLayout) -> List[_Fragment]:
    """Cut a request at stripe-unit boundaries, round-robin across devices."""
    fragments: List[_Fragment] = []
    chunk = layout.chunk_bytes
    offset = io.offset_bytes
    remaining = io.size_bytes
    while remaining > 0:
        unit = offset // chunk
        within = offset - unit * chunk
        take = min(remaining, chunk - within)
        device = unit % layout.num_devices
        local = (unit // layout.num_devices) * chunk + within
        fragments.append((device, local, take))
        offset += take
        remaining -= take
    return fragments


def _range_fragments(io: IORequest, layout: ArrayLayout, shard_bytes: int) -> List[_Fragment]:
    """Cut a request at shard boundaries; offsets past the last shard clamp."""
    fragments: List[_Fragment] = []
    last = layout.num_devices - 1
    offset = io.offset_bytes
    remaining = io.size_bytes
    while remaining > 0:
        device = min(offset // shard_bytes, last)
        shard_start = device * shard_bytes
        if device == last:
            take = remaining
        else:
            take = min(remaining, shard_start + shard_bytes - offset)
        fragments.append((device, offset - shard_start, take))
        offset += take
        remaining -= take
    return fragments


def _hash_fragments(
    io: IORequest, layout: ArrayLayout, local_chunk_index: Dict[int, int]
) -> List[_Fragment]:
    """Cut a request at chunk boundaries, placing each chunk by its hash."""
    fragments: List[_Fragment] = []
    chunk = layout.chunk_bytes
    offset = io.offset_bytes
    remaining = io.size_bytes
    while remaining > 0:
        unit = offset // chunk
        within = offset - unit * chunk
        take = min(remaining, chunk - within)
        device = _mix64(unit) % layout.num_devices
        local = local_chunk_index[unit] * chunk + within
        fragments.append((device, local, take))
        offset += take
        remaining -= take
    return fragments


def _merge_adjacent(fragments: Iterable[_Fragment], num_devices: int) -> List[_Fragment]:
    """Re-merge fragments of one request that are byte-adjacent on a device.

    Striped fragments alternate devices, but a request's fragments on any
    single device form an ascending local-offset sequence, so merging is
    done per device (e.g. stripe units ``0,2`` of one request on device 0
    become one contiguous local extent).
    """
    per_device: List[List[_Fragment]] = [[] for _ in range(num_devices)]
    order: List[int] = []
    for device, local, size in fragments:
        bucket = per_device[device]
        if bucket and bucket[-1][1] + bucket[-1][2] == local:
            _, prev_local, prev_size = bucket[-1]
            bucket[-1] = (device, prev_local, prev_size + size)
        else:
            if not bucket:
                order.append(device)
            bucket.append((device, local, size))
    return [fragment for device in order for fragment in per_device[device]]


def _derived_shard_bytes(requests: Sequence[IORequest], layout: ArrayLayout) -> int:
    """Smallest equal split of the touched address range, chunk-aligned up."""
    if layout.shard_bytes is not None:
        return layout.shard_bytes
    highest = max((io.end_offset_bytes for io in requests), default=0)
    shard = -(-max(highest, 1) // layout.num_devices)  # ceil division
    # Round up to a chunk multiple so shard edges line up with stripe units.
    return -(-shard // layout.chunk_bytes) * layout.chunk_bytes


def _hash_chunk_directory(
    requests: Sequence[IORequest], layout: ArrayLayout
) -> Dict[int, int]:
    """Dense per-device local index for every chunk the trace touches.

    Chunks assigned to a device are packed in ascending global chunk order,
    so consecutive chunks that hash to the same device stay contiguous in
    its local space and the directory is identical for any process that
    sees the same trace.
    """
    chunk = layout.chunk_bytes
    touched = set()
    for io in requests:
        touched.update(range(io.offset_bytes // chunk, (io.end_offset_bytes - 1) // chunk + 1))
    next_local = [0] * layout.num_devices
    directory: Dict[int, int] = {}
    for unit in sorted(touched):
        device = _mix64(unit) % layout.num_devices
        directory[unit] = next_local[device]
        next_local[device] += 1
    return directory


def split_trace(requests: Sequence[IORequest], layout: ArrayLayout) -> List[List[IORequest]]:
    """Split one host trace into per-device sub-traces.

    Returns ``layout.num_devices`` request lists (some possibly empty).  Each
    sub-trace preserves the original arrival order and timestamps, carries
    device-local offsets, and is renumbered ``io_id = 0..n-1`` so every
    device run is independent of how the trace was split.  Total bytes and
    request kinds are conserved: a boundary-crossing request contributes one
    fragment request per (device, contiguous local extent) it touches.
    """
    if layout.policy == "range":
        shard_bytes = _derived_shard_bytes(requests, layout)
    if layout.policy == "hash":
        directory = _hash_chunk_directory(requests, layout)

    per_device: List[List[IORequest]] = [[] for _ in range(layout.num_devices)]
    for io in requests:
        if layout.policy == "stripe":
            fragments = _stripe_fragments(io, layout)
        elif layout.policy == "range":
            fragments = _range_fragments(io, layout, shard_bytes)
        else:
            fragments = _hash_fragments(io, layout, directory)
        for device, local, size in _merge_adjacent(fragments, layout.num_devices):
            per_device[device].append(
                IORequest(
                    kind=io.kind,
                    offset_bytes=local,
                    size_bytes=size,
                    arrival_ns=io.arrival_ns,
                    force_unit_access=io.force_unit_access,
                    # Provenance tags survive the split so per-device
                    # attribution can be merged back per tenant (the tags
                    # are observational and never enter fingerprints).
                    tenant=io.tenant,
                    phase_index=io.phase_index,
                )
            )
    for sub_trace in per_device:
        for index, io in enumerate(sub_trace):
            io.io_id = index
    return per_device
