"""Host-level multi-SSD array layer.

The paper's Sprinkler scheduler maximises utilisation *inside* one many-chip
SSD; this package adds the next layer up: many independently simulated SSDs
behind one host.  :mod:`repro.array.layout` splits a host I/O trace across
devices (striping, range sharding or hashed placement) and
:mod:`repro.array.host` runs the per-device sub-traces through the shared
execution engine and merges the results.

The device-count axis this opens is swept by
:mod:`repro.experiments.array_scaling`.
"""

from repro.array.layout import KB, PLACEMENT_POLICIES, ArrayLayout, split_trace
from repro.array.host import ArrayResult, ArraySimulation, merge_device_results

__all__ = [
    "KB",
    "PLACEMENT_POLICIES",
    "ArrayLayout",
    "split_trace",
    "ArrayResult",
    "ArraySimulation",
    "merge_device_results",
]
