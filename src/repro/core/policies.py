"""Scheduler registry / factory.

``make_scheduler`` builds any of the five schedulers evaluated in the paper
by name.  Experiment code and benchmarks use this single entry point so that
adding a new policy (or an ablation variant) only requires registering it
here.
"""

from __future__ import annotations

from typing import Dict

from repro.core.pas import PhysicalAddressScheduler
from repro.core.scheduler import SchedulerBase, SchedulerContext
from repro.core.sprinkler import Sprinkler
from repro.core.vas import VirtualAddressScheduler

#: Names of the five schedulers compared throughout the paper's evaluation.
SCHEDULER_NAMES = ("VAS", "PAS", "SPK1", "SPK2", "SPK3")


def make_scheduler(
    name: str,
    context: SchedulerContext,
    **kwargs,
) -> SchedulerBase:
    """Build a scheduler by its paper name.

    ``kwargs`` are forwarded to the Sprinkler constructor for the SPK
    variants (e.g. ``overcommit_limit`` or ``channel_first_traversal`` for
    ablations); VAS and PAS accept no extra options.
    """
    normalized = name.strip().upper()
    if normalized == "VAS":
        _reject_kwargs(normalized, kwargs)
        return VirtualAddressScheduler(context)
    if normalized == "PAS":
        _reject_kwargs(normalized, kwargs)
        return PhysicalAddressScheduler(context)
    if normalized == "SPK1":
        return Sprinkler(context, use_rios=False, use_faro=True, **kwargs)
    if normalized == "SPK2":
        return Sprinkler(context, use_rios=True, use_faro=False, **kwargs)
    if normalized == "SPK3":
        return Sprinkler(context, use_rios=True, use_faro=True, **kwargs)
    raise ValueError(
        f"unknown scheduler {name!r}; expected one of {', '.join(SCHEDULER_NAMES)}"
    )


def _reject_kwargs(name: str, kwargs: Dict[str, object]) -> None:
    if kwargs:
        raise TypeError(f"scheduler {name} accepts no extra options, got {sorted(kwargs)}")
