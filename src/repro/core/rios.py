"""RIOS: Resource-driven I/O Scheduling traversal order.

RIOS (paper Section 4.1) composes and commits memory requests *per flash
chip*, not per I/O request.  To avoid system-level contention it does not
visit chips in channel-first order (which would serialise bus activity on one
channel); instead it visits the chips that share the same offset within each
channel, across different channels, then increments the chip offset:

    C0 (ch0, offset0), C1 (ch1, offset0), ..., C(n-1) (ch n-1, offset0),
    Cn (ch0, offset1), ...

so consecutive commitments stripe across channels (channel striping) and
consecutive offsets pipeline within each channel (channel pipelining).

:class:`RiosTraversal` maintains a cyclic cursor over that order; Sprinkler
asks it for the next chip that currently has composable work.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

from repro.flash.geometry import SSDGeometry


class RiosTraversal:
    """Cyclic chip traversal in channel-striped, offset-major order."""

    def __init__(self, geometry: SSDGeometry, channel_first: bool = False) -> None:
        """``channel_first=True`` produces the *bad* order (all chips of one
        channel before moving to the next) that the paper warns against; it
        is kept as an option for the ablation benchmark."""
        self.geometry = geometry
        self.channel_first = channel_first
        self._order: List[tuple] = list(self._build_order())
        self._index = {chip_key: index for index, chip_key in enumerate(self._order)}
        self._cursor = 0
        #: Successful chip selections handed out (observability counter).
        self.visits = 0

    def _build_order(self):
        if self.channel_first:
            for channel in range(self.geometry.num_channels):
                for chip in range(self.geometry.chips_per_channel):
                    yield (channel, chip)
        else:
            yield from self.geometry.iter_chip_keys()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def order(self) -> Sequence[tuple]:
        """The full traversal order of chip keys."""
        return tuple(self._order)

    @property
    def cursor(self) -> int:
        """Current position of the traversal cursor."""
        return self._cursor

    def reset(self) -> None:
        """Move the cursor back to the first chip."""
        self._cursor = 0

    # ------------------------------------------------------------------
    # Traversal
    # ------------------------------------------------------------------
    def next_chip(self, has_work: Callable[[tuple], bool]) -> Optional[tuple]:
        """Return the next chip (in traversal order) for which ``has_work``.

        Scans at most one full cycle starting at the cursor; the cursor is
        left pointing *after* the returned chip so successive calls visit
        different chips before revisiting (breadth-first across the SSD).
        Returns ``None`` when no chip currently has work.
        """
        total = len(self._order)
        for step in range(total):
            index = (self._cursor + step) % total
            chip_key = self._order[index]
            if has_work(chip_key):
                self._cursor = (index + 1) % total
                self.visits += 1
                return chip_key
        return None

    def index_of(self, chip_key: tuple) -> int:
        """Position of a chip in the traversal order."""
        return self._index[chip_key]

    def next_chip_indexed(self, indices) -> Optional[tuple]:
        """Next chip at a traversal index in ``indices``, cyclically from the cursor.

        Equivalent to :meth:`next_chip` with ``has_work = index in indices``
        but O(len(indices)) instead of a scan over every chip of the SSD:
        the caller (Sprinkler) maintains the set of traversal indices that
        currently hold composable work, so an SSD with work on 3 of 1024
        chips inspects 3 candidates, not 1024.
        """
        if not indices:
            return None
        total = len(self._order)
        cursor = self._cursor
        best = total
        for index in indices:
            offset = index - cursor
            if offset < 0:
                offset += total
            if offset < best:
                best = offset
        index = cursor + best
        if index >= total:
            index -= total
        self._cursor = index + 1 if index + 1 < total else 0
        self.visits += 1
        return self._order[index]

    def __len__(self) -> int:
        return len(self._order)
