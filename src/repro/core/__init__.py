"""Device-level I/O schedulers: the paper's contribution and its baselines.

Five schedulers are provided, matching Section 5.1 of the paper:

* :class:`VirtualAddressScheduler` (``VAS``) - FIFO over I/O requests,
  unaware of the physical layout.
* :class:`PhysicalAddressScheduler` (``PAS``) - coarse-grain out-of-order at
  I/O granularity, aware of physical addresses.
* :class:`Sprinkler` with ``use_rios``/``use_faro`` flags:
  ``SPK1`` (FARO only), ``SPK2`` (RIOS only), ``SPK3`` (RIOS + FARO).

``make_scheduler`` builds any of them by name.
"""

from repro.core.scheduler import SchedulerBase, SchedulerContext
from repro.core.vas import VirtualAddressScheduler
from repro.core.pas import PhysicalAddressScheduler
from repro.core.faro import FaroPolicy, overlap_depth, connectivity
from repro.core.rios import RiosTraversal
from repro.core.sprinkler import Sprinkler
from repro.core.policies import SCHEDULER_NAMES, make_scheduler

__all__ = [
    "SchedulerBase",
    "SchedulerContext",
    "VirtualAddressScheduler",
    "PhysicalAddressScheduler",
    "FaroPolicy",
    "overlap_depth",
    "connectivity",
    "RiosTraversal",
    "Sprinkler",
    "SCHEDULER_NAMES",
    "make_scheduler",
]
