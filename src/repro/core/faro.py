"""FARO: Flash-level-parallelism Aware Request Over-commitment.

FARO (paper Section 4.2) decides *which* memory requests to over-commit to a
chip, and in what order, so that the flash controller can coalesce them into
a single high-FLP transaction.  Two metrics drive the priority:

* **overlap depth** - the number of memory requests targeting *different
  planes and dies* of the same flash chip.  A chip with a high overlap depth
  can be served by a die-interleaved / multiplane transaction, so its
  requests are committed first.
* **connectivity** - the maximum number of memory requests that belong to
  the same I/O request.  Used as a tie-breaker: committing highly-connected
  requests together shortens that I/O's latency.

The helpers here are deliberately free functions over plain request lists so
both Sprinkler variants (SPK1 and SPK3) and the unit/property tests can use
them directly.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.flash.commands import FlashOp
from repro.flash.request import MemoryRequest


def overlap_depth(requests: Sequence[MemoryRequest]) -> int:
    """Number of distinct (die, plane) targets among ``requests``.

    This is FARO's FLP-oriented metric: requests covering different planes
    and dies of a chip can be folded into a single interleaved/multiplane
    transaction, so more distinct targets means more parallelism available.
    """
    targets = {
        (req.address.die, req.address.plane)
        for req in requests
        if req.address is not None
    }
    return len(targets)


def connectivity(requests: Sequence[MemoryRequest]) -> int:
    """Largest number of requests that belong to one I/O request."""
    if not requests:
        return 0
    counts = Counter(req.io_id for req in requests)
    return max(counts.values())


@dataclass(frozen=True)
class ChipPriority:
    """FARO priority of one chip's pending (uncomposed) requests."""

    chip_key: tuple
    overlap_depth: int
    connectivity: int

    @property
    def sort_key(self) -> tuple:
        """Higher overlap depth wins; ties broken by higher connectivity."""
        return (self.overlap_depth, self.connectivity)


class FaroPolicy:
    """Orders chips and requests according to FARO's dynamic priority."""

    def __init__(self, read_before_write: bool = True) -> None:
        #: Hazard control (paper Section 4.4): serve reads before writes when
        #: both target the same plane, so a write-after-read never observes
        #: the new data early.
        self.read_before_write = read_before_write

    # ------------------------------------------------------------------
    # Chip-level priority
    # ------------------------------------------------------------------
    def chip_priority(self, chip_key: tuple, requests: Sequence[MemoryRequest]) -> ChipPriority:
        """Compute the FARO priority of one chip's candidate requests."""
        return ChipPriority(
            chip_key=chip_key,
            overlap_depth=overlap_depth(requests),
            connectivity=connectivity(requests),
        )

    def best_chip(
        self, candidates: Dict[tuple, List[MemoryRequest]]
    ) -> Optional[tuple]:
        """Chip whose pending requests have the highest FARO priority.

        Ties on ``(overlap_depth, connectivity)`` go to the lowest chip key,
        in one pass - sorting the whole candidate map per composition (as an
        earlier revision did) is a redundant O(n log n) step the profiler
        flagged.
        """
        best_key: Optional[tuple] = None
        best_sort_key: Optional[tuple] = None
        for chip_key, requests in candidates.items():
            if not requests:
                continue
            priority = self.chip_priority(chip_key, requests)
            sort_key = priority.sort_key
            if (
                best_key is None
                or sort_key > best_sort_key
                or (sort_key == best_sort_key and chip_key < best_key)
            ):
                best_sort_key = sort_key
                best_key = chip_key
        return best_key

    # ------------------------------------------------------------------
    # Request ordering inside one chip
    # ------------------------------------------------------------------
    def order_requests(self, requests: Sequence[MemoryRequest]) -> List[MemoryRequest]:
        """Order a chip's requests for commitment.

        The goal is to place requests that *extend* the die/plane coverage
        first, so that even if the transaction decision window closes early
        the transaction already spans as many dies and planes as possible.
        Within the same coverage step, reads go before writes (hazard
        control) and older I/Os before newer ones (fairness).
        """
        remaining = [req for req in requests if req.address is not None]
        ordered: List[MemoryRequest] = []
        covered: set = set()
        # Stable base order: hazard rule, then I/O id, then request id.
        remaining.sort(key=self._base_key)
        while remaining:
            pick_index = None
            for index, req in enumerate(remaining):
                target = (req.address.die, req.address.plane)
                if target not in covered:
                    pick_index = index
                    break
            if pick_index is None:
                # No request extends coverage; take them in base order.
                ordered.extend(remaining)
                break
            req = remaining.pop(pick_index)
            covered.add((req.address.die, req.address.plane))
            ordered.append(req)
        return ordered

    def _base_key(self, req: MemoryRequest) -> tuple:
        read_rank = 0 if (self.read_before_write and req.op is FlashOp.READ) else 1
        return (read_rank, req.io_id, req.request_id)
