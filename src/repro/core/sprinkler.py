"""Sprinkler: the paper's proposed device-level scheduler.

Sprinkler combines two techniques (paper Section 4):

* **RIOS** - compose and commit memory requests per *flash chip*, visiting
  chips in the channel-striped traversal order, instead of per I/O request.
  This relaxes parallelism dependency and activates as many chips as
  possible regardless of the incoming access pattern.
* **FARO** - over-commit memory requests to each chip, prioritised by
  overlap depth then connectivity, so the flash controller can coalesce them
  into a single high-FLP transaction.

The two flags ``use_rios`` / ``use_faro`` produce the three variants the
evaluation studies:

======  ==========  ==========
name    use_rios    use_faro
======  ==========  ==========
SPK1    False       True
SPK2    True        False
SPK3    True        True
======  ==========  ==========

*SPK1* still composes within the arrival-order window of the queue (it has
no resource-driven traversal), so it inherits the parallelism-dependency
problem; *SPK2* spreads single requests breadth-first across chips but does
not group them for FLP; *SPK3* does both.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Sequence

from repro.core.faro import FaroPolicy
from repro.core.rios import RiosTraversal
from repro.core.scheduler import SchedulerBase, SchedulerContext
from repro.flash.geometry import PhysicalPageAddress
from repro.flash.request import MemoryRequest
from repro.flash.transaction import FlashTransaction
from repro.nvmhc.tag import Tag


class Sprinkler(SchedulerBase):
    """RIOS + FARO device-level scheduler (SPK1/SPK2/SPK3)."""

    uses_physical_layout = True
    uses_readdressing_callback = True

    def __init__(
        self,
        context: SchedulerContext,
        *,
        use_rios: bool = True,
        use_faro: bool = True,
        faro_lookahead_tags: int = 8,
        rios_batch_per_visit: int = 1,
        overcommit_limit: int = 64,
        channel_first_traversal: bool = False,
    ) -> None:
        super().__init__(context)
        self.use_rios = use_rios
        self.use_faro = use_faro
        self.faro_lookahead_tags = max(1, faro_lookahead_tags)
        self.rios_batch_per_visit = max(1, rios_batch_per_visit)
        self.overcommit_limit = max(1, overcommit_limit)
        self.faro = FaroPolicy()
        self.traversal = RiosTraversal(context.geometry, channel_first=channel_first_traversal)
        self._burst: Deque[MemoryRequest] = deque()
        #: Incremental per-chip index of not-yet-handed-out memory requests,
        #: so RIOS traversal does not rescan the whole queue per composition.
        #: Invariant: every present key maps to a non-empty list.
        self._chip_queues: Dict[tuple, List[MemoryRequest]] = {}
        #: Traversal indices of the chips present in ``_chip_queues`` - the
        #: precomputed candidate set ``next_chip_indexed`` selects from, so a
        #: traversal step inspects only chips that hold work instead of
        #: rescanning the whole SSD per composition.
        self._work_indices: set = set()
        self.allows_overcommit = use_faro
        self.name = self._variant_name()
        #: Observability counters: over-commit bursts handed to the DMA
        #: pipeline and the requests they carried (maintained once per burst,
        #: not per request).
        self._bursts = 0
        self._burst_requests = 0

    def _variant_name(self) -> str:
        if self.use_rios and self.use_faro:
            return "SPK3"
        if self.use_rios:
            return "SPK2"
        if self.use_faro:
            return "SPK1"
        return "SPK0"

    # ------------------------------------------------------------------
    # Queue events
    # ------------------------------------------------------------------
    def register_tag(self, tag: Tag, now_ns: int) -> None:
        """Index the tag's memory requests per target chip (RIOS step i)."""
        super().register_tag(tag, now_ns)
        if self.use_rios:
            queues = self._chip_queues
            for chip_key, requests in tag.by_chip.items():
                queue = queues.get(chip_key)
                if queue is None:
                    queues[chip_key] = list(requests)
                    self._work_indices.add(self.traversal.index_of(chip_key))
                else:
                    queue.extend(requests)

    # ------------------------------------------------------------------
    # Composition policy
    # ------------------------------------------------------------------
    def next_composition(self, now_ns: int) -> Optional[MemoryRequest]:
        """Return the next memory request according to the active variant."""
        while self._burst:
            head = self._burst.popleft()
            if head.composed_at_ns is None:
                return head
        if self.use_rios and not self._fua_live:
            # Fast path (the overwhelmingly common one): RIOS schedules from
            # the per-chip candidate index alone, so with no force-unit-access
            # tag alive there is no reason to materialise the pending-tag
            # list on every composition.
            return self._next_rios(())
        pending = self._pending_tags()
        if not pending:
            return None
        if any(tag.io.force_unit_access for tag in pending):
            # Hazard control: a force-unit-access request disables reordering;
            # fall back to strict arrival order until it drains.
            self._fua_barriers += 1
            if self.sink.enabled:
                self.sink.instant(
                    "fua.barrier",
                    category="nvmhc",
                    track="nvmhc",
                    ts_ns=now_ns,
                    pending_tags=len(pending),
                )
            return self._next_fifo(pending)
        if self.use_rios:
            return self._next_rios(pending)
        return self._next_faro_only(pending)

    # -- strict order fallback -----------------------------------------
    def _next_fifo(self, pending: List[Tag]) -> Optional[MemoryRequest]:
        for tag in pending:
            uncomposed = tag.uncomposed_requests()
            if uncomposed:
                return uncomposed[0]
        return None

    # -- SPK2 / SPK3: resource-driven traversal --------------------------
    def _next_rios(self, pending: Sequence[Tag]) -> Optional[MemoryRequest]:
        # Visit chips in traversal order; each visit drains either one request
        # (SPK2) or a FARO-ordered over-commit burst (SPK3) for that chip.
        for _ in range(len(self.traversal)):
            chip_key = self.traversal.next_chip_indexed(self._work_indices)
            if chip_key is None:
                return None
            chip_requests = self._drain_chip_queue(chip_key)
            if not chip_requests:
                continue
            if self.use_faro:
                ordered = self.faro.order_requests(chip_requests)
                burst = ordered[: self.overcommit_limit]
            else:
                ordered = sorted(chip_requests, key=lambda req: (req.io_id, req.request_id))
                burst = ordered[: self.rios_batch_per_visit]
            # Requests beyond the burst limit return to the chip's queue for
            # a later traversal visit.
            leftover = ordered[len(burst):]
            if leftover:
                existing = self._chip_queues.get(chip_key)
                if existing is None:
                    self._chip_queues[chip_key] = leftover
                    self._work_indices.add(self.traversal.index_of(chip_key))
                else:
                    self._chip_queues[chip_key] = leftover + existing
            head, rest = burst[0], burst[1:]
            self._burst = deque(rest)
            self._bursts += 1
            self._burst_requests += len(burst)
            return head
        return None

    def _drain_chip_queue(self, chip_key: tuple) -> List[MemoryRequest]:
        """Remove and return the uncomposed requests indexed for a chip."""
        queue = self._chip_queues.pop(chip_key, None)
        if queue is None:
            return []
        self._work_indices.discard(self.traversal.index_of(chip_key))
        return [req for req in queue if req.composed_at_ns is None]

    # -- SPK1: FARO within the arrival-order window ----------------------
    def _next_faro_only(self, pending: List[Tag]) -> Optional[MemoryRequest]:
        window = pending[: self.faro_lookahead_tags]
        candidates = self._candidates_by_chip(window)
        if not candidates:
            return None
        chip_key = self.faro.best_chip(candidates)
        if chip_key is None:
            return None
        ordered = self.faro.order_requests(candidates[chip_key])
        burst = ordered[: self.overcommit_limit]
        head, rest = burst[0], burst[1:]
        self._burst = deque(rest)
        self._bursts += 1
        self._burst_requests += len(burst)
        return head

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _candidates_by_chip(self, tags: List[Tag]) -> Dict[tuple, List[MemoryRequest]]:
        """Uncomposed memory requests of ``tags`` grouped by target chip."""
        by_chip: Dict[tuple, List[MemoryRequest]] = {}
        for tag in tags:
            for chip_key, requests in tag.by_chip.items():
                for req in requests:
                    if req.composed_at_ns is None:
                        by_chip.setdefault(chip_key, []).append(req)
        return by_chip

    # ------------------------------------------------------------------
    # Migration handling (readdressing callback)
    # ------------------------------------------------------------------
    def on_migration(
        self, lpn: int, old: PhysicalPageAddress, new: PhysicalPageAddress
    ) -> None:
        """Update the per-tag chip grouping after a live data migration.

        Sprinkler schedules against the internal resource layout, so the
        callback only has to act when the data moved between different flash
        internal resources (different chip, die or plane).
        """
        if old.same_plane_as(new):
            return
        if self.use_rios and old.chip_key != new.chip_key:
            # Move not-yet-handed-out requests between the per-chip indexes
            # (keeping the non-empty-queue/work-index invariant intact).
            old_chip = old.chip_key
            old_queue = self._chip_queues.get(old_chip, [])
            moved = [
                req
                for req in old_queue
                if req.composed_at_ns is None and req.address == new
            ]
            if moved:
                moved_ids = {req.request_id for req in moved}
                remaining = [req for req in old_queue if req.request_id not in moved_ids]
                if remaining:
                    self._chip_queues[old_chip] = remaining
                else:
                    self._chip_queues.pop(old_chip, None)
                    self._work_indices.discard(self.traversal.index_of(old_chip))
                new_chip = new.chip_key
                queue = self._chip_queues.get(new_chip)
                if queue is None:
                    self._chip_queues[new_chip] = moved
                    self._work_indices.add(self.traversal.index_of(new_chip))
                else:
                    queue.extend(moved)
        for tag in self.tags:
            moved: List[MemoryRequest] = []
            old_bucket = tag.by_chip.get(old.chip_key)
            if not old_bucket:
                continue
            remaining: List[MemoryRequest] = []
            for req in old_bucket:
                if req.composed_at_ns is None and req.address == new:
                    # The request was already retargeted by the readdressing
                    # callback; move it to the new chip's bucket.
                    moved.append(req)
                else:
                    remaining.append(req)
            if moved:
                tag.by_chip[old.chip_key] = remaining
                tag.by_chip.setdefault(new.chip_key, []).extend(moved)

    def on_transaction_complete(
        self, chip_key: tuple, transaction: FlashTransaction, now_ns: int
    ) -> None:
        """Nothing to do: Sprinkler does not gate composition on completions."""

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def observability_counters(self) -> Dict[str, int]:
        counters = super().observability_counters()
        counters["scheduler.bursts"] = self._bursts
        counters["scheduler.burst_requests"] = self._burst_requests
        counters["scheduler.rios_visits"] = self.traversal.visits
        return counters
