"""Scheduler interface shared by VAS, PAS and Sprinkler.

A scheduler lives inside the NVMHC.  The simulator drives it through a small
interface:

* :meth:`SchedulerBase.register_tag` - a host I/O was admitted into the
  device queue and (for layout-aware schedulers) its physical footprint has
  been identified by the preprocessor.
* :meth:`SchedulerBase.next_composition` - the composition/DMA pipeline is
  idle; return the next memory request to compose and commit, or ``None`` if
  the policy has nothing eligible right now (e.g. VAS blocked on a chip
  conflict).
* :meth:`SchedulerBase.on_transaction_complete` - a chip finished a
  transaction; conflict-based policies may now have new eligible work.
* :meth:`SchedulerBase.on_tag_retired` - an I/O fully completed and left the
  device queue.

The *order* in which ``next_composition`` returns requests is the scheduler
policy; everything downstream (controllers, transaction building, timing) is
identical across schedulers, exactly as in the paper.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.flash.controller import FlashController
from repro.flash.geometry import PhysicalPageAddress, SSDGeometry
from repro.flash.request import MemoryRequest
from repro.flash.transaction import FlashTransaction
from repro.nvmhc.tag import Tag
from repro.obs.trace import NULL_SINK, TraceSink


@dataclass
class SchedulerContext:
    """Everything a scheduler needs to know about the device it runs on."""

    geometry: SSDGeometry
    controllers: Dict[int, FlashController]

    def controller_for(self, chip_key: tuple) -> FlashController:
        """Flash controller responsible for a chip."""
        channel, _ = chip_key
        return self.controllers[channel]

    def outstanding(self, chip_key: tuple) -> int:
        """Committed-but-uncompleted memory requests currently on a chip."""
        return self.controller_for(chip_key).outstanding_count(chip_key)

    def chip_has_outstanding(self, chip_key: tuple) -> bool:
        """True when the chip already holds committed or in-flight work."""
        return self.controller_for(chip_key).has_outstanding(chip_key)


class SchedulerBase(abc.ABC):
    """Base class for device-level I/O schedulers."""

    #: Human-readable scheduler name (``VAS``, ``PAS``, ``SPK1`` ...).
    name: str = "base"
    #: True when the scheduler uses physical layout information.
    uses_physical_layout: bool = False
    #: True when the scheduler may over-commit requests to busy chips.
    allows_overcommit: bool = False
    #: True when the scheduler registers the readdressing callback.
    uses_readdressing_callback: bool = False

    def __init__(self, context: SchedulerContext) -> None:
        self.context = context
        self.tags: List[Tag] = []
        #: Registered force-unit-access tags not yet retired.  Zero almost
        #: always, which lets hot paths skip the per-composition FUA scan.
        self._fua_live = 0
        #: Observability: trace sink plus FUA counters, all maintained on
        #: the (cold) FUA branches only.
        self.sink: TraceSink = NULL_SINK
        self._fua_seen = 0
        self._fua_barriers = 0

    def attach_trace_sink(self, sink: TraceSink) -> None:
        """Install the simulator's trace sink (default: the null sink)."""
        self.sink = sink

    def observability_counters(self) -> Dict[str, int]:
        """Scheduler-specific counter snapshot folded into the registry.

        Subclasses extend the base dict with their policy-specific counters
        (RIOS traversal visits, VAS head-of-line stalls, PAS conflict skips,
        Sprinkler bursts).
        """
        return {
            "scheduler.fua_tags": self._fua_seen,
            "scheduler.fua_barriers": self._fua_barriers,
        }

    # ------------------------------------------------------------------
    # Queue events
    # ------------------------------------------------------------------
    def register_tag(self, tag: Tag, now_ns: int) -> None:
        """A new tag entered the device queue."""
        self.tags.append(tag)
        if tag.io.force_unit_access:
            self._fua_live += 1
            self._fua_seen += 1
            if self.sink.enabled:
                self.sink.instant(
                    "fua.tag",
                    category="nvmhc",
                    track="nvmhc",
                    ts_ns=now_ns,
                    io_id=tag.io_id,
                )

    def on_tag_retired(self, tag: Tag) -> None:
        """A tag completed and left the device queue."""
        self.tags = [existing for existing in self.tags if existing.io_id != tag.io_id]
        if tag.io.force_unit_access:
            self._fua_live -= 1

    # ------------------------------------------------------------------
    # Composition policy (the heart of each scheduler)
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def next_composition(self, now_ns: int) -> Optional[MemoryRequest]:
        """Return the next memory request to compose/commit, or ``None``."""

    # ------------------------------------------------------------------
    # Downstream notifications
    # ------------------------------------------------------------------
    def on_transaction_complete(
        self, chip_key: tuple, transaction: FlashTransaction, now_ns: int
    ) -> None:
        """A chip finished a transaction (default: nothing to update)."""

    #: Migration-listener contract: ``on_migration`` is a no-op for moves
    #: that stay on the same plane (the paper only requires readdressing
    #: when data moves between different flash internal resources).  The
    #: readdressing callback batches same-plane GC copyback past listeners
    #: that keep this True; a subclass whose ``on_migration`` reacts to
    #: same-plane moves must override it with False.
    migration_ignores_same_plane = True

    def on_migration(
        self, lpn: int, old: PhysicalPageAddress, new: PhysicalPageAddress
    ) -> None:
        """Live data migration observed (only layout-aware schedulers care)."""

    # ------------------------------------------------------------------
    # Shared helpers
    # ------------------------------------------------------------------
    def _pending_tags(self) -> List[Tag]:
        """Tags that still have uncomposed memory requests, in arrival order."""
        # Inline ``not tag.fully_composed`` as plain attribute reads: this
        # comprehension runs once per composition over the whole queue, and
        # the property/descriptor machinery dominated its profile.
        return [tag for tag in self.tags if tag.composed_count < len(tag.memory_requests)]

    def _has_fua_barrier(self, tags: List[Tag], tag: Tag) -> bool:
        """True when an earlier force-unit-access tag forbids reordering past it.

        The paper's hazard control (Section 4.4): when the host issues a
        force-unit-access command, I/Os are served without any reordering.
        With no live FUA tag (the overwhelmingly common case) the scan is
        skipped outright.
        """
        if not self._fua_live:
            return False
        tag_io_id = tag.io_id
        for earlier in tags:
            if earlier.io_id == tag_io_id:
                return False
            if earlier.io.force_unit_access and not earlier.fully_composed:
                self._fua_barriers += 1
                return True
        return False

    def has_backlog(self) -> bool:
        """True while any registered tag still has uncomposed requests."""
        return any(not tag.fully_composed for tag in self.tags)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"{type(self).__name__}(tags={len(self.tags)})"
