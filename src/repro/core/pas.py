"""Physical Address Scheduler (PAS).

PAS (paper Section 3, Figure 5) schedules I/O requests with knowledge of the
physical addresses exposed by a hardware-assisted preprocessor (Ozone) or a
software translation unit (PAQ).  It can therefore *reorder* I/O requests to
avoid request collisions and execute them in a coarse-grain out-of-order
fashion: an I/O is committed only when none of its target chips holds
outstanding work, and I/Os that would collide are skipped until the conflict
clears.

Its two remaining weaknesses (which Sprinkler removes) are preserved here:

* composition and commitment happen at *I/O request* granularity and in
  arrival order among the eligible requests, so the achievable parallelism
  still depends on the incoming access pattern (parallelism dependency);
* it never over-commits - a chip holds the requests of at most one I/O at a
  time - so the flash controller rarely sees enough requests to build a
  high-FLP transaction across I/O boundaries.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.scheduler import SchedulerBase
from repro.flash.request import MemoryRequest
from repro.nvmhc.tag import Tag


class PhysicalAddressScheduler(SchedulerBase):
    """Coarse-grain out-of-order scheduler at I/O granularity."""

    name = "PAS"
    uses_physical_layout = True
    allows_overcommit = False
    uses_readdressing_callback = False

    def __init__(self, context) -> None:
        super().__init__(context)
        #: The I/O currently being composed.  PAS commits one I/O atomically
        #: before considering the next, so at most one tag is partially
        #: composed at any instant - remembering it saves the "find the
        #: started I/O" scan over the whole queue on every composition.
        self._current: Optional[Tag] = None
        #: Queued I/Os bypassed because a target chip held outstanding work
        #: (each skip is one out-of-order reordering decision).
        self._conflict_skips = 0

    def observability_counters(self) -> Dict[str, int]:
        counters = super().observability_counters()
        counters["scheduler.conflict_skips"] = self._conflict_skips
        return counters

    def next_composition(self, now_ns: int) -> Optional[MemoryRequest]:
        """Continue a partially-composed I/O, else start a conflict-free one."""
        current = self._current
        if current is not None:
            request = current.next_uncomposed()
            if request is not None:
                return request
            self._current = None
        pending = self._pending_tags()
        if not pending:
            return None
        # Defensive re-scan: if some path other than this method composed a
        # request, finish that I/O first (arrival order), as the pre-cache
        # implementation did.
        for tag in pending:
            if tag.composed_count > 0:
                request = tag.next_uncomposed()
                if request is not None:
                    self._current = tag
                    return request
        # Otherwise pick the first queued I/O whose chips are all free.
        # Probe the controllers' busy sets directly: this loop runs for every
        # chip of every queued I/O per composition, and the set containment
        # is a C-level check where the method call was a Python frame.
        controllers = self.context.controllers
        for tag in pending:
            if self._has_fua_barrier(pending, tag):
                break
            for chip_key in tag.by_chip:
                if chip_key in controllers[chip_key[0]].busy:
                    self._conflict_skips += 1
                    break  # collision: try the next queued I/O
            else:
                request = tag.next_uncomposed()
                if request is not None:
                    self._current = tag
                    return request
            if tag.io.force_unit_access:
                # A force-unit-access request must not be bypassed.
                break
        return None

    def on_tag_retired(self, tag: Tag) -> None:
        super().on_tag_retired(tag)
        if self._current is not None and self._current.io_id == tag.io_id:
            self._current = None

    def _conflicts(self, tag: Tag) -> bool:
        """True when any chip targeted by the I/O still holds outstanding work."""
        controllers = self.context.controllers
        for chip_key in tag.by_chip:
            if chip_key in controllers[chip_key[0]].busy:
                return True
        return False
