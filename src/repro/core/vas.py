"""Virtual Address Scheduler (VAS).

VAS (paper Section 3, Figure 4) decides the order of I/O requests purely in
the device-level queue and builds/commits memory requests relying only on the
virtual addresses of the I/O requests.  Two consequences:

* it processes I/O requests strictly in arrival (FIFO) order - it never
  reorders around a request collision,
* when the next I/O in line collides with outstanding work on any of its
  target chips, the whole composition pipeline stalls until that work
  completes ("VAS has to wait for the completion of the previously-committed
  request", Figure 4a), leaving other chips idle.

Within one I/O the memory requests are composed back-to-back; across I/Os
the head-of-line blocking rule applies.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.scheduler import SchedulerBase, SchedulerContext
from repro.flash.request import MemoryRequest
from repro.nvmhc.tag import Tag


class VirtualAddressScheduler(SchedulerBase):
    """FIFO scheduler with head-of-line blocking on chip conflicts."""

    name = "VAS"
    uses_physical_layout = False
    allows_overcommit = False
    uses_readdressing_callback = False

    def __init__(self, context: SchedulerContext) -> None:
        super().__init__(context)
        #: Compositions refused because the head I/O collided with
        #: outstanding chip work (the paper's Figure 4a stall).
        self._hol_stalls = 0

    def observability_counters(self) -> Dict[str, int]:
        counters = super().observability_counters()
        counters["scheduler.hol_stalls"] = self._hol_stalls
        return counters

    def next_composition(self, now_ns: int) -> Optional[MemoryRequest]:
        """Compose the head-of-queue I/O, stalling on chip conflicts."""
        # Strict FIFO only ever looks at the first tag with uncomposed work,
        # so scan for it directly instead of materialising the whole pending
        # list on every composition.
        head = None
        for tag in self.tags:
            if tag.composed_count < len(tag.memory_requests):
                head = tag
                break
        if head is None:
            return None
        if head.composed_count == 0 and self._conflicts(head):
            # The head I/O collides with outstanding work; VAS is unaware of
            # the physical layout, so it simply waits - nothing else may be
            # composed in the meantime (strict FIFO).
            self._hol_stalls += 1
            return None
        return head.next_uncomposed()

    def _conflicts(self, tag: Tag) -> bool:
        """True when any chip targeted by the I/O still holds outstanding work."""
        # Set containment against the controller's busy set instead of a
        # has_outstanding call: this runs for every target chip of the head
        # I/O on every composition attempt while VAS is blocked.
        controllers = self.context.controllers
        for chip_key in tag.by_chip:
            if chip_key in controllers[chip_key[0]].busy:
                return True
        return False
