"""The device registry: a directory of definitions, loaded and indexed.

:class:`DeviceRegistry` loads every ``*.toml``/``*.json`` file of a zoo
directory (by default the shipped ``repro/devices/zoo/``) through the
validating loader and indexes the resulting :class:`DeviceModel`s by name.
Experiment specs refer to devices by id (``SimJob(device="mlc-gen2")``);
resolution goes through :func:`default_registry`, and the *content* of the
resolved definition - not the id - is what enters job fingerprints, so
editing a zoo file invalidates exactly the cached results computed against
that device.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Optional, Tuple, Union

from repro.devices.loader import DeviceConfigError, load_device_file
from repro.devices.model import DeviceModel

#: The shipped zoo: the device definitions this repository versions.
ZOO_DIR = Path(__file__).resolve().parent / "zoo"


class DeviceRegistry:
    """An indexed set of device models loaded from one zoo directory."""

    def __init__(self, directory: Union[str, Path, None] = None) -> None:
        self.directory = Path(directory) if directory is not None else ZOO_DIR
        if not self.directory.is_dir():
            raise DeviceConfigError(self.directory, None, "zoo directory does not exist")
        self._models: Dict[str, DeviceModel] = {}
        paths = sorted(
            [*self.directory.glob("*.toml"), *self.directory.glob("*.json")],
            key=lambda p: p.name,
        )
        if not paths:
            raise DeviceConfigError(
                self.directory, None, "zoo directory holds no .toml/.json device files"
            )
        for path in paths:
            model = load_device_file(path)
            if model.name in self._models:
                raise DeviceConfigError(
                    path,
                    "device.name",
                    f"duplicate device name {model.name!r} "
                    f"(already defined by {self._models[model.name].source})",
                )
            self._models[model.name] = model

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def names(self) -> Tuple[str, ...]:
        """Every registered device id, sorted."""
        return tuple(sorted(self._models))

    def models(self) -> Tuple[DeviceModel, ...]:
        """Every registered model, in name order."""
        return tuple(self._models[name] for name in self.names())

    def get(self, name: str) -> DeviceModel:
        """The model registered under ``name``; unknown ids list the zoo."""
        try:
            return self._models[name]
        except KeyError:
            known = ", ".join(self.names())
            raise DeviceConfigError(
                self.directory, name, f"unknown device (registered devices: {known})"
            ) from None

    def config(self, name: str, **overrides):
        """Resolve a device id straight to its :class:`SimulationConfig`."""
        return self.get(name).to_config(**overrides)

    def __len__(self) -> int:
        return len(self._models)

    def __contains__(self, name: str) -> bool:
        return name in self._models


_DEFAULT: Optional[DeviceRegistry] = None


def default_registry(refresh: bool = False) -> DeviceRegistry:
    """The registry over the shipped zoo, loaded once per process.

    ``refresh=True`` re-reads the directory (tests that edit zoo files use
    it; production sweeps treat the zoo as immutable for the process).
    """
    global _DEFAULT
    if _DEFAULT is None or refresh:
        _DEFAULT = DeviceRegistry(ZOO_DIR)
    return _DEFAULT


def device_config(name: str, **overrides):
    """Shorthand: resolve a device id from the shipped zoo to a config."""
    return default_registry().config(name, **overrides)


def device_model(name: str) -> DeviceModel:
    """Shorthand: the shipped zoo's model for a device id."""
    return default_registry().get(name)
