"""The validated, fingerprintable form of one zoo device definition."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, FrozenSet, Tuple

from repro.flash.geometry import SSDGeometry
from repro.flash.timing import FlashTiming

#: Bump when the mapping from device files to SimulationConfig changes in a
#: way that must invalidate results computed against zoo devices.
DEVICE_ZOO_VERSION = 1


@dataclass(frozen=True)
class DeviceModel:
    """One device of the zoo: identity, shape, timing and device-level knobs.

    The model is the in-memory form of a ``zoo/*.toml`` (or ``.json``)
    definition, already validated field-by-field by
    :func:`repro.devices.loader.load_device_file`.  :meth:`to_config`
    composes it into the :class:`~repro.sim.config.SimulationConfig` the
    simulator runs, and :meth:`fingerprint` hashes the *content* of the
    definition - so any edit to a zoo file changes the fingerprint of
    exactly the jobs that resolve that device, and nothing else.
    """

    name: str
    description: str
    cell: str
    generation: int
    tags: FrozenSet[str]
    geometry: SSDGeometry
    timing: FlashTiming
    #: Sorted ``(field, value)`` pairs for the device-level SimulationConfig
    #: knobs ([config] section): queue depth, GC settings, OP fraction ...
    settings: Tuple[Tuple[str, Any], ...] = ()
    #: Path the definition was loaded from; error-message context only -
    #: deliberately excluded from the fingerprint so moving a file between
    #: zoo directories does not invalidate cached results.
    source: str = ""

    def to_config(self, **overrides):
        """Compose the full :class:`~repro.sim.config.SimulationConfig`.

        ``overrides`` replace device-level fields (including ``geometry`` /
        ``timing``) for experiments that sweep one knob of a zoo device.
        """
        from repro.sim.config import SimulationConfig  # lazy: avoids import cycle

        fields = dict(self.settings)
        fields.update(overrides)
        fields.setdefault("geometry", self.geometry)
        fields.setdefault("timing", self.timing)
        return SimulationConfig(**fields)

    def fingerprint(self) -> str:
        """Stable content hash of the whole definition (identity + knobs)."""
        from repro.sim.config import stable_fingerprint

        return stable_fingerprint(
            (
                "device-model",
                DEVICE_ZOO_VERSION,
                self.name,
                self.cell,
                self.generation,
                self.tags,
                self.geometry,
                self.timing,
                self.settings,
            )
        )

    def summary_row(self) -> dict:
        """One row of the zoo listing tables (README / example output)."""
        geometry = self.geometry
        return {
            "name": self.name,
            "cell": self.cell,
            "generation": self.generation,
            "chips": geometry.num_chips,
            "channels": geometry.num_channels,
            "planes": geometry.num_planes,
            "capacity_mb": geometry.capacity_bytes // (1024 * 1024),
            "page_kb": geometry.page_size_bytes / 1024.0,
            "read_us": self.timing.read_ns / 1000.0,
            "program_us": self.timing.program_fast_ns / 1000.0,
            "tags": ",".join(sorted(self.tags)),
        }
