"""Declarative device-definition loader.

A device file is a small TOML (or JSON) document with four sections::

    [device]                      # identity + free-form tags
    name = "mlc-gen2"
    description = "..."
    cell = "MLC"
    generation = 2
    tags = ["mlc", "gen2"]

    [geometry]                    # -> repro.flash.geometry.SSDGeometry
    num_channels = 8
    ...

    [timing]                      # -> repro.flash.timing.FlashTiming
    read_ns = 20000
    ...

    [config]                      # device-level SimulationConfig knobs
    queue_depth = 64
    overprovisioning_fraction = 0.07
    ...

Every key is validated field-by-field against the dataclass it configures:
unknown keys are rejected, values are type-checked against the dataclass
annotation, and any failure raises a single :class:`DeviceConfigError`
naming the file, the offending key and the expected type - no bare
``KeyError``/``TypeError``/``ValueError`` escapes the loader.

TOML parsing uses :mod:`tomllib` where available (Python >= 3.11) and falls
back to a strict built-in parser for the declarative subset device files
use (sections, scalar assignments, inline arrays of scalars) on 3.10.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Tuple, Union

from repro.devices.model import DeviceModel
from repro.flash.geometry import SSDGeometry
from repro.flash.timing import FlashTiming
from repro.ftl.allocation import AllocationOrder

try:  # Python >= 3.11
    import tomllib
except ImportError:  # pragma: no cover - exercised only on 3.10
    tomllib = None


class DeviceConfigError(Exception):
    """A device definition file failed to parse or validate.

    Carries the file, the offending key (dotted ``section.key`` form, or
    ``None`` for file-level problems) and a human description of what was
    expected, so a zoo of dozens of files stays debuggable from the message
    alone.
    """

    def __init__(self, source: Union[str, Path], key: Optional[str], expected: str) -> None:
        self.source = str(source)
        self.key = key
        self.expected = expected
        location = f"{self.source}" if key is None else f"{self.source}: key {key!r}"
        super().__init__(f"{location}: {expected}")


# ----------------------------------------------------------------------
# Minimal strict TOML subset parser (tomllib fallback for Python 3.10)
# ----------------------------------------------------------------------
def _parse_scalar(text: str, source, key: str):
    text = text.strip()
    if text.startswith('"') and text.endswith('"') and len(text) >= 2:
        body = text[1:-1]
        if '"' in body or "\\" in body:
            raise DeviceConfigError(
                source, key, "string values must not contain escapes or embedded quotes"
            )
        return body
    if text == "true":
        return True
    if text == "false":
        return False
    try:
        return int(text, 10)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        raise DeviceConfigError(
            source, key, f"unparseable TOML value {text!r} (string/int/float/bool/array expected)"
        ) from None


def _parse_toml_minimal(text: str, source) -> Dict[str, Dict[str, Any]]:
    """Parse the declarative TOML subset device files are written in.

    Supports ``[section]`` headers, ``key = value`` scalar assignments and
    single-line arrays of scalars; ``#`` comments and blank lines are
    ignored.  Anything fancier (multi-line arrays, inline tables, dotted
    keys) is rejected - device files are meant to stay trivially diffable.
    """
    document: Dict[str, Dict[str, Any]] = {}
    section: Optional[str] = None
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        if line.startswith("[") and line.endswith("]"):
            section = line[1:-1].strip()
            if not section or "." in section:
                raise DeviceConfigError(
                    source, None, f"line {lineno}: malformed section header {line!r}"
                )
            if section in document:
                raise DeviceConfigError(source, None, f"line {lineno}: duplicate section [{section}]")
            document[section] = {}
            continue
        if "=" not in line:
            raise DeviceConfigError(
                source, None, f"line {lineno}: expected 'key = value', got {line!r}"
            )
        if section is None:
            raise DeviceConfigError(
                source, None, f"line {lineno}: assignment before any [section] header"
            )
        key, _, value_text = line.partition("=")
        key = key.strip()
        value_text = value_text.strip()
        # Strip a trailing comment (only safe outside strings; device files
        # keep comments on their own lines, so be conservative).
        if value_text.startswith("[") and value_text.endswith("]"):
            body = value_text[1:-1].strip()
            items: List[Any] = []
            if body:
                for part in body.split(","):
                    items.append(_parse_scalar(part, source, f"{section}.{key}"))
            value: Any = items
        else:
            value = _parse_scalar(value_text, source, f"{section}.{key}")
        if key in document[section]:
            raise DeviceConfigError(
                source, f"{section}.{key}", f"line {lineno}: duplicate key"
            )
        document[section][key] = value
    return document


def _load_document(path: Path) -> Dict[str, Any]:
    """Read a ``.toml``/``.json`` device file into a plain dict of sections."""
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as exc:
        raise DeviceConfigError(path, None, f"unreadable device file ({exc})") from exc
    if path.suffix == ".json":
        try:
            document = json.loads(text)
        except json.JSONDecodeError as exc:
            raise DeviceConfigError(path, None, f"invalid JSON ({exc})") from exc
    elif path.suffix == ".toml":
        if tomllib is not None:
            try:
                document = tomllib.loads(text)
            except tomllib.TOMLDecodeError as exc:
                raise DeviceConfigError(path, None, f"invalid TOML ({exc})") from exc
        else:  # pragma: no cover - Python 3.10 fallback
            document = _parse_toml_minimal(text, path)
    else:
        raise DeviceConfigError(
            path, None, f"unsupported device file suffix {path.suffix!r} (.toml or .json)"
        )
    if not isinstance(document, dict):
        raise DeviceConfigError(path, None, "device file must be a table of sections")
    return document


# ----------------------------------------------------------------------
# Field-by-field validation against the config dataclasses
# ----------------------------------------------------------------------
#: SimulationConfig fields a device file's [config] section may set.  The
#: excluded fields are exactly the ones a declarative device must not carry:
#: geometry/timing/constraints have their own sections, device_state is a
#: per-experiment precondition, and allocation_order is accepted as a string
#: and converted below.
_CONFIG_FIELDS = (
    "queue_depth",
    "compose_ns",
    "compose_per_kb_ns",
    "decision_window_ns",
    "gc_enabled",
    "gc_free_block_watermark",
    "prefill_fraction",
    "prefill_overwrite_fraction",
    "overprovisioning_fraction",
    "readdressing_callback",
    "stale_penalty_ns",
    "allocation_order",
)

_SECTIONS = ("device", "geometry", "timing", "config")

_DEVICE_CELLS = ("SLC", "MLC", "TLC")


def _type_name(expected) -> str:
    if isinstance(expected, tuple):
        return "/".join(t.__name__ for t in expected)
    return expected.__name__


def _check_value(source, dotted_key: str, value, expected) -> Any:
    """Type-check one scalar; ints are accepted where floats are expected."""
    # bool is a subclass of int: reject it explicitly for numeric fields.
    if isinstance(value, bool) and expected in (int, float, (int, float)):
        raise DeviceConfigError(
            source, dotted_key, f"expected {_type_name(expected)}, got bool {value!r}"
        )
    if expected is float:
        expected = (int, float)
    if not isinstance(value, expected):
        raise DeviceConfigError(
            source,
            dotted_key,
            f"expected {_type_name(expected)}, got {type(value).__name__} {value!r}",
        )
    return float(value) if expected == (int, float) else value


def _dataclass_field_types(cls) -> Dict[str, type]:
    """Map a config dataclass's field names to their primitive types."""
    types: Dict[str, type] = {}
    for f in dataclasses.fields(cls):
        default = f.default if f.default is not dataclasses.MISSING else None
        if isinstance(default, bool):
            types[f.name] = bool
        elif isinstance(default, int):
            types[f.name] = int
        elif isinstance(default, float):
            types[f.name] = float
        else:
            types[f.name] = str
    return types


_GEOMETRY_TYPES = _dataclass_field_types(SSDGeometry)
_TIMING_TYPES = _dataclass_field_types(FlashTiming)


def _validate_section(
    source, section: str, raw: Mapping[str, Any], types: Mapping[str, type]
) -> Dict[str, Any]:
    """Validate one section against a field->type map, rejecting unknown keys."""
    if not isinstance(raw, Mapping):
        raise DeviceConfigError(source, section, "section must be a table of key = value pairs")
    validated: Dict[str, Any] = {}
    for key, value in raw.items():
        dotted = f"{section}.{key}"
        if key not in types:
            known = ", ".join(sorted(types))
            raise DeviceConfigError(source, dotted, f"unknown key (known keys: {known})")
        validated[key] = _check_value(source, dotted, value, types[key])
    return validated


def _validate_device_section(source, raw: Mapping[str, Any]) -> Dict[str, Any]:
    types = {"name": str, "description": str, "cell": str, "generation": int, "tags": list}
    if not isinstance(raw, Mapping):
        raise DeviceConfigError(source, "device", "section must be a table of key = value pairs")
    for required in ("name", "cell"):
        if required not in raw:
            raise DeviceConfigError(source, f"device.{required}", "required key is missing")
    validated = _validate_section(source, "device", raw, types)
    if validated["cell"] not in _DEVICE_CELLS:
        raise DeviceConfigError(
            source, "device.cell", f"expected one of {_DEVICE_CELLS}, got {validated['cell']!r}"
        )
    tags = validated.get("tags", [])
    for index, tag in enumerate(tags):
        if not isinstance(tag, str):
            raise DeviceConfigError(
                source, "device.tags", f"expected str at index {index}, got {type(tag).__name__}"
            )
    validated["tags"] = frozenset(tags)
    validated.setdefault("description", "")
    validated.setdefault("generation", 0)
    return validated


def _validate_config_section(source, raw: Mapping[str, Any]) -> Dict[str, Any]:
    from repro.sim.config import SimulationConfig  # lazy: avoids import cycles

    types = {
        name: kind
        for name, kind in _dataclass_field_types(SimulationConfig).items()
        if name in _CONFIG_FIELDS
    }
    # Fields whose defaults are not primitives need their types pinned by hand.
    types["readdressing_callback"] = bool
    types["allocation_order"] = str
    validated = _validate_section(source, "config", raw, types)
    if "allocation_order" in validated:
        name = validated["allocation_order"]
        try:
            validated["allocation_order"] = AllocationOrder[name.upper()]
        except KeyError:
            members = ", ".join(member.name.lower() for member in AllocationOrder)
            raise DeviceConfigError(
                source, "config.allocation_order", f"expected one of: {members}; got {name!r}"
            ) from None
    return validated


def _build_dataclass(source, section: str, cls, fields: Dict[str, Any]):
    """Instantiate a frozen config dataclass, mapping its ValueErrors back."""
    try:
        return cls(**fields)
    except (ValueError, TypeError) as exc:
        raise DeviceConfigError(source, section, f"invalid {cls.__name__}: {exc}") from exc


def load_device_file(path: Union[str, Path]) -> DeviceModel:
    """Load and validate one device definition file into a :class:`DeviceModel`."""
    path = Path(path)
    document = _load_document(path)
    for section in document:
        if section not in _SECTIONS:
            raise DeviceConfigError(
                path, section, f"unknown section (known sections: {', '.join(_SECTIONS)})"
            )
    if "device" not in document:
        raise DeviceConfigError(path, "device", "required section is missing")
    identity = _validate_device_section(path, document["device"])
    geometry_fields = _validate_section(
        path, "geometry", document.get("geometry", {}), _GEOMETRY_TYPES
    )
    timing_fields = _validate_section(path, "timing", document.get("timing", {}), _TIMING_TYPES)
    settings = _validate_config_section(path, document.get("config", {}))

    geometry = _build_dataclass(path, "geometry", SSDGeometry, geometry_fields)
    timing = _build_dataclass(path, "timing", FlashTiming, timing_fields)
    model = DeviceModel(
        name=identity["name"],
        description=identity["description"],
        cell=identity["cell"],
        generation=identity["generation"],
        tags=identity["tags"],
        geometry=geometry,
        timing=timing,
        settings=tuple(sorted(settings.items())),
        source=str(path),
    )
    # Prove the whole definition composes into a valid SimulationConfig now,
    # at load time, so a bad combination is a loader error naming the file -
    # not a ValueError three layers down when a job first resolves it.
    try:
        model.to_config()
    except (ValueError, TypeError) as exc:
        raise DeviceConfigError(path, "config", f"invalid device configuration: {exc}") from exc
    return model
