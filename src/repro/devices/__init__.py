"""The device zoo: declarative, fingerprinted device definitions.

The paper's evaluation hand-codes one device; this package externalizes
device models into small TOML/JSON files (``repro/devices/zoo/``) so
experiments can name devices (``SimJob(device="mlc-gen2")``), arrays can mix
heterogeneous generations, and a zoo edit invalidates exactly the cached
results computed against the edited device.
"""

from repro.devices.loader import DeviceConfigError, load_device_file
from repro.devices.model import DEVICE_ZOO_VERSION, DeviceModel
from repro.devices.registry import (
    ZOO_DIR,
    DeviceRegistry,
    default_registry,
    device_config,
    device_model,
)

__all__ = [
    "DEVICE_ZOO_VERSION",
    "DeviceConfigError",
    "DeviceModel",
    "DeviceRegistry",
    "ZOO_DIR",
    "default_registry",
    "device_config",
    "device_model",
    "load_device_file",
]
