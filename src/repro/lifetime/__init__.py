"""Device aging and lifetime accounting.

The paper's utilization/idleness story bites hardest on *deployed* devices:
full, fragmented, garbage-collecting constantly.  This package makes that
regime a first-class, reproducible starting point:

* :class:`~repro.lifetime.state.DeviceState` - a frozen, fingerprinted spec
  of an aged device (fill, fragmentation, overwrite skew, seed) with a
  fast-forward constructor that programs FTL and block bookkeeping directly
  instead of simulating millions of write events;
* :func:`~repro.lifetime.steady.age_to_steady_state` - write passes until
  write amplification converges, leaving the device on its GC plateau;
* :class:`~repro.lifetime.accounting.LifetimeAccounting` - host vs flash
  writes, write amplification and relocation counters, stamped onto every
  :class:`~repro.metrics.report.SimulationResult`.

``DeviceState`` plugs into :class:`~repro.sim.config.SimulationConfig`
(``device_state=...``, alongside ``overprovisioning_fraction``) and from
there into the execution engine's content fingerprints, so aged-device
sweeps cache and parallelise exactly like fresh-device ones.
"""

from repro.lifetime.accounting import LifetimeAccounting, write_amplification
from repro.lifetime.state import (
    LIFETIME_VERSION,
    DeviceState,
    PreconditionReport,
    apply_device_state,
    device_state_workload,
    occupancy_fingerprint,
    occupancy_snapshot,
    replay_device_state,
)
from repro.lifetime.steady import SteadyStateReport, age_to_steady_state

__all__ = [
    "LIFETIME_VERSION",
    "DeviceState",
    "LifetimeAccounting",
    "PreconditionReport",
    "SteadyStateReport",
    "age_to_steady_state",
    "apply_device_state",
    "device_state_workload",
    "occupancy_fingerprint",
    "occupancy_snapshot",
    "replay_device_state",
    "write_amplification",
]
