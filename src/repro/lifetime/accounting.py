"""Lifetime accounting: host vs flash writes and write amplification.

An SSD's firmware writes more pages than the host asks for: garbage
collection, wear levelling and bad-block replacement all relocate live data,
and every relocation is an extra flash program.  The ratio

    write_amplification = flash_writes / host_writes

is the single number that summarises how hard the device is working beyond
the host's demand; it is ~1.0 on a fresh drive and climbs as the drive fills
and fragments (which is exactly the regime the steady-state experiments
probe).  :class:`LifetimeAccounting` is a plain scalar snapshot of that
bookkeeping for one simulation run, kept free of any simulator imports so it
can ride inside :class:`~repro.metrics.report.SimulationResult` across
process boundaries and the engine's on-disk cache.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class LifetimeAccounting:
    """Write-amplification and relocation bookkeeping for one run.

    All counters describe the *measured run only*: when a device is
    preconditioned (``prefill_fraction`` or a
    :class:`~repro.lifetime.state.DeviceState`), the writes spent building
    that starting state are reported separately in ``precondition_writes``
    and the steady-state fields, never mixed into the run's amplification.
    """

    #: Host page programs performed during the run (FTL ``translate_write``).
    host_writes: int = 0
    #: Total flash page programs: host writes plus every live-page relocation
    #: (GC migrations, wear levelling, bad-block replacement).
    flash_writes: int = 0
    #: ``flash_writes / host_writes`` (1.0 when the run performed no writes).
    write_amplification: float = 1.0
    #: Live-page relocations during the run (all migration sources).
    pages_relocated: int = 0
    #: Host page reads translated during the run.
    host_reads: int = 0
    #: Page programs spent fast-forwarding the device into its starting
    #: state (base fill + scattered overwrites), before the run began.
    precondition_writes: int = 0
    #: Steady-state aging driver: write passes executed before the run.
    steady_state_passes: int = 0
    #: True when the aging driver's write-amplification converged within
    #: tolerance (False when it hit the pass limit, or never ran).
    steady_state_converged: bool = False
    #: Write amplification of the final aging pass (0.0 when aging never ran).
    steady_state_wa: float = 0.0


def write_amplification(host_writes: int, flash_writes: int) -> float:
    """WA ratio with the no-writes convention (``1.0`` when nothing was written)."""
    if host_writes <= 0:
        return 1.0
    return flash_writes / host_writes
