"""Steady-state aging: write passes until write amplification converges.

Fast-forward filling (:mod:`repro.lifetime.state`) leaves a device full and
fragmented, but not yet in the *converged GC regime*: the first few
collection rounds still harvest the easy, invalid-heavy victims the fill
pass scattered.  Real devices are measured after sustained writing has
pushed write amplification onto its plateau - the state SNIA-style
preconditioning ("write the device several times over until throughput
stabilises") aims for.

:func:`age_to_steady_state` reproduces that plateau at bookkeeping speed:
it issues hot/cold-skewed overwrite passes straight through the FTL,
triggering garbage collection exactly the way the simulator does (per plane,
on the plane each write consumed a page on), and measures per-pass write
amplification until two consecutive passes agree within a relative
tolerance.  No events, no scheduler - a pass over millions of pages runs in
seconds, and the resulting device state is deterministic for the seed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.ftl.garbage_collector import GarbageCollector
from repro.ftl.mapping import PageMapFTL
from repro.lifetime.state import DeviceState, draw_skewed_lpn, hot_cold_split


@dataclass
class SteadyStateReport:
    """Outcome of one :func:`age_to_steady_state` run."""

    passes: int
    converged: bool
    #: Write amplification of each pass, in order (host + migrated) / host.
    wa_history: Tuple[float, ...] = ()
    host_writes: int = 0
    pages_migrated: int = 0
    gc_invocations: int = 0
    blocks_erased: int = 0

    @property
    def write_amplification(self) -> float:
        """WA of the final (converged) pass; 1.0 when no pass ran."""
        return self.wa_history[-1] if self.wa_history else 1.0


def age_to_steady_state(
    ftl: PageMapFTL,
    gc: GarbageCollector,
    state: DeviceState,
    *,
    live_pages: int,
    rng: Optional[random.Random] = None,
) -> SteadyStateReport:
    """Run skewed write passes until per-pass write amplification converges.

    Each pass issues ``live_pages * state.steady_pass_fraction`` overwrites
    of live LPNs (hot/cold skew as in the fill recipe), collecting garbage
    through ``gc.collect_plane_if_needed`` after every write - the same
    trigger discipline :class:`~repro.sim.ssd.SSDSimulator` uses, so the
    wear and fragmentation produced here match what sustained simulated
    writing would produce, minus the event machinery.  Convergence: the WA
    of two consecutive passes differs by at most ``steady_tolerance``
    relative; gives up (``converged=False``) after ``steady_max_passes``.

    Requires an enabled garbage collector: without reclamation a full
    device would simply run out of pages mid-pass.
    """
    if not gc.enabled:
        raise ValueError("steady-state aging requires an enabled garbage collector")
    if rng is None:
        rng = random.Random(state.seed)
    if live_pages <= 0:
        return SteadyStateReport(passes=0, converged=True)
    pass_size = max(1, int(live_pages * state.steady_pass_fraction))
    hot, cold = hot_cold_split(live_pages, state.hot_fraction)

    wa_history = []
    converged = False
    invocations_before = gc.stats.invocations
    erased_before = gc.stats.blocks_erased
    migrated_total_before = gc.stats.pages_migrated
    host_total = 0
    previous: Optional[float] = None
    for _ in range(state.steady_max_passes):
        migrated_before = gc.stats.pages_migrated
        for _ in range(pass_size):
            lpn = draw_skewed_lpn(rng, hot, cold, state.hot_write_share)
            address = ftl.translate_write(lpn)
            gc.collect_plane_if_needed(address.chip_key, address.die, address.plane)
        migrated = gc.stats.pages_migrated - migrated_before
        wa = (pass_size + migrated) / pass_size
        wa_history.append(wa)
        host_total += pass_size
        if previous is not None and abs(wa - previous) <= state.steady_tolerance * previous:
            converged = True
            break
        previous = wa
    return SteadyStateReport(
        passes=len(wa_history),
        converged=converged,
        wa_history=tuple(wa_history),
        host_writes=host_total,
        pages_migrated=gc.stats.pages_migrated - migrated_total_before,
        gc_invocations=gc.stats.invocations - invocations_before,
        blocks_erased=gc.stats.blocks_erased - erased_before,
    )
