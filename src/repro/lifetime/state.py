"""Device aging state: fingerprinted specs and fast-forward preconditioning.

Every experiment in the seed repository ran against a factory-fresh SSD, so
the GC-dominated steady-state regime - the one deployed many-chip devices
actually live in - was unreachable.  :class:`DeviceState` fixes that: it is a
frozen, content-fingerprintable description of an *aged* device (how full,
how fragmented, how skewed the overwrite traffic that got it there), and
:func:`apply_device_state` is a **fast-forward constructor** that programs
the FTL mapping and the per-block valid/erase bookkeeping directly - no
event simulation, no per-page allocator walk for the base fill - so aging a
multi-hundred-chip device takes a tiny fraction of the time the equivalent
write workload would need through the event simulator.

Three views of the same aging recipe are kept bit-compatible, and the test
suite holds them together:

* :func:`apply_device_state` - the fast path (bulk block programming plus a
  bulk FTL map install for the sequential base fill, bookkeeping-only
  overwrites for the fragmentation pass);
* :func:`replay_device_state` - the reference path, issuing every write
  through ``PageMapFTL.translate_write`` one page at a time;
* :func:`device_state_workload` - the equivalent *host workload*, which run
  through :class:`~repro.sim.ssd.SSDSimulator` (GC off) leaves the FTL in
  the same occupancy, verifiable via :func:`occupancy_fingerprint`.

The aging recipe itself: write the first ``live`` logical pages
sequentially, then perform ``overwrites`` seeded-random rewrites of already
live pages - hot/cold skewed, so invalid pages concentrate in the blocks
holding the hot set, exactly the fragmentation profile a skewed random-write
workload produces on a real drive.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.flash.geometry import SSDGeometry
from repro.ftl.mapping import PageMapFTL
from repro.workloads.request import IOKind, IORequest

#: Bump when aging semantics change in a way that must invalidate every
#: cached result computed against a preconditioned device.
LIFETIME_VERSION = 1


@dataclass(frozen=True)
class DeviceState:
    """A reproducible aged-device starting point.

    ``fill_fraction`` is the share of the *logical* space (physical capacity
    minus over-provisioning) holding live data; ``invalid_fraction`` the
    share of programmed physical pages whose contents have been superseded
    (the fragmentation GC feeds on); ``hot_fraction``/``hot_write_share``
    shape the overwrite skew (80% of overwrites hitting 20% of the data by
    default).  ``seed`` makes the overwrite scatter - and therefore the
    entire device state - deterministic.

    With ``steady_state=True`` the fast-forward fill is followed by the
    :func:`~repro.lifetime.steady.age_to_steady_state` driver, which keeps
    issuing skewed write passes (with garbage collection live) until write
    amplification converges within ``steady_tolerance``, leaving the device
    in the converged GC regime rather than the just-filled one.

    The dataclass is frozen primitives only, so it pickles, hashes and
    canonicalizes: embedded in a ``SimulationConfig`` it rides into the
    execution engine's job fingerprints, making aged-device sweeps fully
    cacheable.
    """

    fill_fraction: float = 0.9
    invalid_fraction: float = 0.30
    hot_fraction: float = 0.2
    hot_write_share: float = 0.8
    seed: int = 2014
    steady_state: bool = False
    steady_tolerance: float = 0.05
    steady_max_passes: int = 8
    steady_pass_fraction: float = 0.05
    #: Aging-semantics version, stamped as a (non-init) field so it enters
    #: every canonical form the state appears in - including
    #: ``SimulationConfig.fingerprint()`` and therefore the execution
    #: engine's cache keys.  Bumping ``LIFETIME_VERSION`` invalidates every
    #: cached result computed against a preconditioned device.
    version: int = field(init=False, default=LIFETIME_VERSION)

    def __post_init__(self) -> None:
        if not 0.0 <= self.fill_fraction <= 1.0:
            raise ValueError("fill_fraction must be in [0, 1]")
        if not 0.0 <= self.invalid_fraction < 1.0:
            raise ValueError("invalid_fraction must be in [0, 1)")
        if not 0.0 <= self.hot_fraction <= 1.0:
            raise ValueError("hot_fraction must be in [0, 1]")
        if not 0.0 <= self.hot_write_share <= 1.0:
            raise ValueError("hot_write_share must be in [0, 1]")
        if self.steady_tolerance <= 0.0:
            raise ValueError("steady_tolerance must be positive")
        if self.steady_max_passes < 1:
            raise ValueError("steady_max_passes must be at least 1")
        if not 0.0 < self.steady_pass_fraction <= 1.0:
            raise ValueError("steady_pass_fraction must be in (0, 1]")

    def fingerprint(self) -> str:
        """Stable content hash over the whole aging recipe (incl. version)."""
        # Imported lazily: repro.sim.config is reachable from modules that
        # this package imports during its own initialisation.
        from repro.sim.config import stable_fingerprint

        return stable_fingerprint(("device-state", self))

    # ------------------------------------------------------------------
    # Plan arithmetic
    # ------------------------------------------------------------------
    def precondition_plan(self, geometry: SSDGeometry, logical_pages: int) -> Tuple[int, int]:
        """``(live_pages, overwrites)`` this state implies for a geometry.

        ``live = logical * fill_fraction`` pages end up valid; overwrites
        are sized so invalid pages are ``invalid_fraction`` of all
        *programmed* pages, clamped so preconditioning always leaves at
        least one erased block per plane.  That headroom is what lets
        garbage collection bootstrap on the aged device: the first
        post-aging write can allocate, and victim migrations have somewhere
        to land before the erase frees more space.
        """
        total_pages = geometry.total_pages
        if logical_pages > total_pages:
            raise ValueError("logical_pages cannot exceed total_pages")
        live = int(logical_pages * self.fill_fraction)
        if live <= 0 or self.invalid_fraction <= 0.0:
            return max(0, live), 0
        headroom = geometry.num_planes * geometry.pages_per_block
        programmed = int(round(live / (1.0 - self.invalid_fraction)))
        overwrites = min(programmed - live, total_pages - headroom - live)
        return live, max(0, overwrites)


def hot_cold_split(live: int, hot_fraction: float) -> Tuple[int, int]:
    """``(hot, cold)`` LPN-range sizes of a skewed live set."""
    hot = min(live, int(live * hot_fraction))
    return hot, live - hot


def draw_skewed_lpn(
    rng: random.Random, hot: int, cold: int, hot_write_share: float
) -> int:
    """One hot/cold-skewed overwrite target (hot LPNs first, cold after).

    The single definition of the skew model: the fill/replay/workload
    overwrite passes *and* the steady-state aging driver all draw through
    here, so the RNG stream and the skew semantics cannot drift apart.
    """
    if hot and (cold == 0 or rng.random() < hot_write_share):
        return rng.randrange(hot)
    return hot + rng.randrange(cold)


def _overwrite_sequence(
    rng: random.Random,
    live: int,
    count: int,
    hot_fraction: float,
    hot_write_share: float,
) -> List[int]:
    """The seeded hot/cold-skewed overwrite targets, in issue order.

    Shared by the fast-forward path, the replay reference and the
    equivalent-workload builder, so all three consume the RNG identically.
    """
    if live <= 0 or count <= 0:
        return []
    hot, cold = hot_cold_split(live, hot_fraction)
    return [draw_skewed_lpn(rng, hot, cold, hot_write_share) for _ in range(count)]


@dataclass
class PreconditionReport:
    """What a preconditioning pass did to the device."""

    live_pages: int
    overwrites: int

    @property
    def page_writes(self) -> int:
        """Host-equivalent page writes (= physical pages programmed)."""
        return self.live_pages + self.overwrites


def _require_pristine(ftl: PageMapFTL) -> None:
    if ftl.mapped_pages > 0 or ftl.allocator.cursor != 0:
        raise ValueError("device state must be applied to a factory-fresh device")
    for chip in ftl.chips.values():
        for plane in chip.iter_planes():
            for block in plane.blocks:
                if block.is_bad or not block.is_free:
                    raise ValueError(
                        "fast-forward aging requires a pristine device "
                        "(no bad or programmed blocks); use replay_device_state"
                    )


def apply_device_state(
    ftl: PageMapFTL,
    state: DeviceState,
    *,
    logical_pages: int,
    rng: Optional[random.Random] = None,
) -> PreconditionReport:
    """Fast-forward a pristine device into ``state`` (bookkeeping only).

    The sequential base fill is *computed*, not replayed: on a fresh device
    the round-robin allocator stripes write ``i`` onto plane ``i % P`` and
    fills that plane's blocks in order, so every address is arithmetic.
    Blocks are bulk-programmed (one operation per block instead of one per
    page) and the logical map is declared as an implicit base layout
    (:meth:`~repro.ftl.mapping.PageMapFTL.install_base_layout`) - O(blocks)
    total, no per-page work at all.  Only the overwrite pass - whose
    allocation pattern depends on the RNG - runs through the regular
    ``translate_write`` bookkeeping.

    Bit-identical to :func:`replay_device_state` (and to running
    :func:`device_state_workload` through the event simulator with GC off):
    same mapping, same block bits, same allocator cursor, same FTL counters.
    """
    _require_pristine(ftl)
    geometry = ftl.geometry
    live, overwrites = state.precondition_plan(geometry, logical_pages)
    if rng is None:
        rng = random.Random(state.seed)

    sequence = ftl.allocator.plane_sequence
    num_planes = len(sequence)
    pages_per_block = geometry.pages_per_block
    base, extra = divmod(live, num_planes)
    for index, (channel, chip, die, plane) in enumerate(sequence):
        count = base + (1 if index < extra else 0)
        if count == 0:
            continue
        plane_obj = ftl.chips[(channel, chip)].plane(die, plane)
        full_blocks, remainder = divmod(count, pages_per_block)
        for block_id in range(full_blocks):
            plane_obj.blocks[block_id].program_bulk(pages_per_block)
        if remainder:
            plane_obj.blocks[full_blocks].program_bulk(remainder)
        plane_obj.active_block_id = (count - 1) // pages_per_block
    ftl.install_base_layout(live)
    if live:
        ftl.allocator.cursor = live % num_planes

    for lpn in _overwrite_sequence(
        rng, live, overwrites, state.hot_fraction, state.hot_write_share
    ):
        ftl.translate_write(lpn)
    return PreconditionReport(live_pages=live, overwrites=overwrites)


def replay_device_state(
    ftl: PageMapFTL,
    state: DeviceState,
    *,
    logical_pages: int,
    rng: Optional[random.Random] = None,
) -> PreconditionReport:
    """Reference preconditioner: every write through ``translate_write``.

    Semantically *defines* what :func:`apply_device_state` fast-forwards;
    the equivalence tests compare the two occupancy fingerprints.  Also the
    correct fallback for non-pristine devices (e.g. factory bad blocks),
    where the base-fill layout is no longer arithmetic.
    """
    geometry = ftl.geometry
    live, overwrites = state.precondition_plan(geometry, logical_pages)
    if rng is None:
        rng = random.Random(state.seed)
    for lpn in range(live):
        ftl.translate_write(lpn)
    for lpn in _overwrite_sequence(
        rng, live, overwrites, state.hot_fraction, state.hot_write_share
    ):
        ftl.translate_write(lpn)
    return PreconditionReport(live_pages=live, overwrites=overwrites)


def device_state_workload(
    state: DeviceState,
    geometry: SSDGeometry,
    *,
    logical_pages: int,
    chunk_pages: int = 32,
    interarrival_ns: int = 1,
) -> List[IORequest]:
    """The host write workload equivalent to fast-forwarding into ``state``.

    Sequential base fill as ``chunk_pages``-sized writes followed by
    page-sized overwrite writes, arrival times strictly increasing so the
    simulator admits (and therefore FTL-translates) pages in exactly the
    fast-forward order.  Run it through :class:`~repro.sim.ssd.SSDSimulator`
    with ``gc_enabled=False`` and the FTL occupancy matches
    :func:`apply_device_state` byte for byte - the equivalence (and the
    fast-forward speedup) are asserted in the lifetime benchmark.
    """
    if chunk_pages <= 0:
        raise ValueError("chunk_pages must be positive")
    live, overwrites = state.precondition_plan(geometry, logical_pages)
    rng = random.Random(state.seed)
    page = geometry.page_size_bytes
    requests: List[IORequest] = []
    now = 0
    for start in range(0, live, chunk_pages):
        pages = min(chunk_pages, live - start)
        requests.append(
            IORequest(
                kind=IOKind.WRITE,
                offset_bytes=start * page,
                size_bytes=pages * page,
                arrival_ns=now,
            )
        )
        now += interarrival_ns
    for lpn in _overwrite_sequence(
        rng, live, overwrites, state.hot_fraction, state.hot_write_share
    ):
        requests.append(
            IORequest(
                kind=IOKind.WRITE,
                offset_bytes=lpn * page,
                size_bytes=page,
                arrival_ns=now,
            )
        )
        now += interarrival_ns
    return requests


# ----------------------------------------------------------------------
# Occupancy verification
# ----------------------------------------------------------------------
def occupancy_snapshot(ftl: PageMapFTL) -> tuple:
    """Canonical value capturing the complete FTL/flash occupancy state.

    Covers the logical map (as flat PPNs), every block's write pointer,
    valid bitmask, erase count and bad flag, each plane's active block and
    the allocator cursor - everything that influences future allocation and
    collection.  Two devices with equal snapshots are behaviourally
    indistinguishable.
    """
    geometry = ftl.geometry
    mapping = tuple(
        sorted((lpn, geometry.address_to_ppn(address)) for lpn, address in ftl.mapping_items())
    )
    planes = []
    for chip_key in sorted(ftl.chips):
        chip = ftl.chips[chip_key]
        for die in range(geometry.dies_per_chip):
            for plane in range(geometry.planes_per_die):
                plane_obj = chip.plane(die, plane)
                planes.append(
                    (
                        chip_key,
                        die,
                        plane,
                        plane_obj.active_block_id,
                        tuple(
                            (block.write_pointer, block.valid_mask, block.erase_count, block.is_bad)
                            for block in plane_obj.blocks
                        ),
                    )
                )
    return ("occupancy", mapping, tuple(planes), ftl.allocator.cursor)


def occupancy_fingerprint(ftl: PageMapFTL) -> str:
    """SHA-256 digest of :func:`occupancy_snapshot` (byte-for-byte identity)."""
    return hashlib.sha256(repr(occupancy_snapshot(ftl)).encode("utf-8")).hexdigest()
