"""Compare two benchmark trajectories with a regression threshold.

The comparison is case-by-case on events/sec.  A case *regresses* when the
current run processes events more than ``threshold`` slower than the
baseline (strict inequality: landing exactly on the threshold passes, so a
"25% threshold" genuinely tolerates a 25% dip).  Cases present in the
baseline but absent from the current trajectory are failures too - a
regression cannot be hidden by deleting its case.

Comparability is checked before arithmetic: a case whose workload
fingerprint changed between the two files is reported as ``incomparable``
rather than silently diffed, and (optionally) result digests can be required
to match, turning the comparison into a behaviour-preservation gate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

from repro.perf.record import Trajectory

DEFAULT_THRESHOLD = 0.25

#: Tolerated peak-RSS growth fraction.  Memory regressions get their own,
#: tighter threshold: throughput on a noisy host wobbles run to run, but the
#: resident-set high-water mark of a pinned-seed suite is nearly
#: deterministic, so a large tolerance would only hide leaks.
DEFAULT_RSS_THRESHOLD = 0.15


@dataclass(frozen=True)
class CaseDelta:
    """Events/sec movement of one case between two trajectories."""

    name: str
    baseline_eps: float
    current_eps: float
    comparable: bool
    digests_match: bool
    baseline_rss_mb: float = 0.0
    current_rss_mb: float = 0.0

    @property
    def ratio(self) -> float:
        """current / baseline events-per-second (1.0 = unchanged)."""
        if self.baseline_eps <= 0.0:
            return 0.0
        return self.current_eps / self.baseline_eps

    def regressed(self, threshold: float) -> bool:
        """True when the case got more than ``threshold`` slower."""
        return self.current_eps < self.baseline_eps * (1.0 - threshold)

    def rss_regressed(self, rss_threshold: float) -> bool:
        """True when peak RSS grew more than ``rss_threshold`` over baseline.

        A baseline without RSS data (0.0, from a pre-RSS trajectory) gates
        nothing - growth against an unknown baseline is meaningless.
        """
        if self.baseline_rss_mb <= 0.0:
            return False
        return self.current_rss_mb > self.baseline_rss_mb * (1.0 + rss_threshold)


@dataclass(frozen=True)
class Comparison:
    """Outcome of diffing two trajectories."""

    threshold: float
    deltas: Tuple[CaseDelta, ...]
    missing: Tuple[str, ...]
    new: Tuple[str, ...]
    require_identical: bool = False
    notes: Tuple[str, ...] = field(default_factory=tuple)
    rss_threshold: float = DEFAULT_RSS_THRESHOLD

    @property
    def regressions(self) -> Tuple[CaseDelta, ...]:
        return tuple(d for d in self.deltas if d.comparable and d.regressed(self.threshold))

    @property
    def rss_regressions(self) -> Tuple[CaseDelta, ...]:
        return tuple(
            d for d in self.deltas if d.comparable and d.rss_regressed(self.rss_threshold)
        )

    @property
    def incomparable(self) -> Tuple[CaseDelta, ...]:
        return tuple(d for d in self.deltas if not d.comparable)

    @property
    def digest_mismatches(self) -> Tuple[CaseDelta, ...]:
        return tuple(d for d in self.deltas if d.comparable and not d.digests_match)

    @property
    def ok(self) -> bool:
        """True when the current trajectory passes the gate."""
        if self.missing or self.regressions or self.incomparable:
            return False
        if self.rss_regressions:
            return False
        if self.require_identical and self.digest_mismatches:
            return False
        return True

    @property
    def overall_ratio(self) -> float:
        """Aggregate events/sec ratio over the comparable cases."""
        base = sum(d.baseline_eps for d in self.deltas if d.comparable)
        curr = sum(d.current_eps for d in self.deltas if d.comparable)
        if base <= 0.0:
            return 0.0
        return curr / base

    def failure_reasons(self) -> Tuple[str, ...]:
        """Every reason the gate fails, naming the offending cases.

        Empty when :attr:`ok`.  These are what ``report`` prints next to the
        FAIL verdict, so a CI log states *which* cases are missing, slower,
        or incomparable instead of leaving only counts to act on.
        """
        reasons: List[str] = []
        if self.missing:
            reasons.append(
                "missing from current trajectory: " + ", ".join(self.missing)
            )
        if self.regressions:
            reasons.append(
                "events/sec regressed: "
                + ", ".join(f"{d.name} ({d.ratio:.2f}x)" for d in self.regressions)
            )
        if self.rss_regressions:
            reasons.append(
                "peak RSS regressed: "
                + ", ".join(
                    f"{d.name} ({d.baseline_rss_mb:.1f} -> {d.current_rss_mb:.1f} MiB)"
                    for d in self.rss_regressions
                )
            )
        if self.incomparable:
            reasons.append(
                "workload fingerprint changed: "
                + ", ".join(d.name for d in self.incomparable)
            )
        if self.require_identical and self.digest_mismatches:
            reasons.append(
                "result digests differ: "
                + ", ".join(d.name for d in self.digest_mismatches)
            )
        return tuple(reasons)

    def report(self) -> str:
        """Human-readable multi-line summary."""
        lines: List[str] = [
            f"perf comparison (threshold {self.threshold:.0%} events/sec regression, "
            f"{self.rss_threshold:.0%} peak-RSS growth)"
        ]
        for delta in self.deltas:
            if not delta.comparable:
                status = "INCOMPARABLE (workload fingerprint changed)"
            elif delta.regressed(self.threshold):
                status = "REGRESSED"
            elif delta.rss_regressed(self.rss_threshold):
                status = (
                    f"RSS REGRESSED ({delta.baseline_rss_mb:.1f} -> "
                    f"{delta.current_rss_mb:.1f} MiB)"
                )
            else:
                status = "ok"
            identity = "identical" if delta.digests_match else "results differ"
            lines.append(
                f"  {delta.name:<10} {delta.baseline_eps:>12.1f} -> "
                f"{delta.current_eps:>12.1f} ev/s  ({delta.ratio:5.2f}x, {identity})  {status}"
            )
        for name in self.missing:
            lines.append(f"  {name:<10} MISSING from current trajectory")
        for name in self.new:
            lines.append(f"  {name:<10} new case (no baseline; not gated)")
        for note in self.notes:
            lines.append(f"  note: {note}")
        for reason in self.failure_reasons():
            lines.append(f"  FAIL: {reason}")
        lines.append(
            f"overall: {self.overall_ratio:.2f}x events/sec vs baseline -> "
            f"{'PASS' if self.ok else 'FAIL'}"
        )
        return "\n".join(lines)


def compare_trajectories(
    baseline: Trajectory,
    current: Trajectory,
    *,
    threshold: float = DEFAULT_THRESHOLD,
    rss_threshold: float = DEFAULT_RSS_THRESHOLD,
    require_identical: bool = False,
) -> Comparison:
    """Diff ``current`` against ``baseline`` case by case."""
    if not 0.0 <= threshold < 1.0:
        raise ValueError("threshold must be in [0, 1)")
    if not 0.0 <= rss_threshold < 1.0:
        raise ValueError("rss_threshold must be in [0, 1)")
    notes: List[str] = []
    if baseline.scale != current.scale:
        notes.append(
            f"suite scales differ (baseline {baseline.scale!r}, current {current.scale!r})"
        )
    current_by_name = {case.name: case for case in current.cases}
    deltas: List[CaseDelta] = []
    missing: List[str] = []
    for base_case in baseline.cases:
        case = current_by_name.pop(base_case.name, None)
        if case is None:
            missing.append(base_case.name)
            continue
        comparable = (
            not base_case.fingerprint
            or not case.fingerprint
            or base_case.fingerprint == case.fingerprint
        )
        digests_match = (
            bool(base_case.result_digest)
            and base_case.result_digest == case.result_digest
        )
        deltas.append(
            CaseDelta(
                name=base_case.name,
                baseline_eps=base_case.events_per_sec,
                current_eps=case.events_per_sec,
                comparable=comparable,
                digests_match=digests_match,
                baseline_rss_mb=base_case.peak_rss_mb,
                current_rss_mb=case.peak_rss_mb,
            )
        )
    return Comparison(
        threshold=threshold,
        deltas=tuple(deltas),
        missing=tuple(missing),
        new=tuple(current_by_name.keys()),
        require_identical=require_identical,
        notes=tuple(notes),
        rss_threshold=rss_threshold,
    )
