"""``python -m repro.perf`` - record, compare and list benchmark trajectories."""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.perf.compare import (
    DEFAULT_RSS_THRESHOLD,
    DEFAULT_THRESHOLD,
    compare_trajectories,
)
from repro.perf.record import (
    BENCH_ID,
    load_trajectory,
    profile_case,
    record_trajectory,
    write_trajectory,
)
from repro.perf.suite import SUITE_SCALES, canonical_suite


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.perf",
        description="Benchmark-trajectory tooling: record and compare simulator throughput.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    rec = sub.add_parser("record", help="run the canonical suite and write a trajectory")
    rec.add_argument("--scale", choices=SUITE_SCALES, default="quick")
    rec.add_argument(
        "-o", "--output", default=f"{BENCH_ID}.json", help="trajectory file to write"
    )
    rec.add_argument(
        "--case",
        action="append",
        default=None,
        help="restrict to the named case(s); repeatable",
    )
    rec.add_argument(
        "--note",
        action="append",
        default=None,
        help="key=value metadata stamped into the trajectory; repeatable",
    )
    rec.add_argument(
        "--repeat",
        type=int,
        default=1,
        help="run each case N times and report the fastest pass (default 1)",
    )
    rec.add_argument(
        "--profile",
        action="store_true",
        help=(
            "additionally run each case once under cProfile and write a "
            "top-25 cumulative table next to the trajectory"
        ),
    )

    cmp_ = sub.add_parser("compare", help="diff a current trajectory against a baseline")
    cmp_.add_argument("baseline", help="baseline trajectory JSON")
    cmp_.add_argument("current", help="current trajectory JSON")
    cmp_.add_argument(
        "--threshold",
        type=float,
        default=DEFAULT_THRESHOLD,
        help="tolerated events/sec regression fraction (default %(default)s)",
    )
    cmp_.add_argument(
        "--rss-threshold",
        type=float,
        default=DEFAULT_RSS_THRESHOLD,
        help="tolerated peak-RSS growth fraction (default %(default)s)",
    )
    cmp_.add_argument(
        "--require-identical",
        action="store_true",
        help="also fail when result digests differ (behaviour-preservation gate)",
    )

    lst = sub.add_parser("list", help="show the canonical suite")
    lst.add_argument("--scale", choices=SUITE_SCALES, default="quick")
    return parser


def _cmd_record(args: argparse.Namespace) -> int:
    cases = None
    if args.case:
        by_name = {case.name: case for case in canonical_suite(args.scale)}
        unknown = [name for name in args.case if name not in by_name]
        if unknown:
            print(f"unknown case(s): {', '.join(unknown)}", file=sys.stderr)
            return 2
        cases = [by_name[name] for name in args.case]
    meta = {}
    for note in args.note or ():
        key, _, value = note.partition("=")
        meta[key] = value
    trajectory = record_trajectory(args.scale, cases=cases, meta=meta, repeat=args.repeat)
    path = write_trajectory(trajectory, args.output)
    for case in trajectory.cases:
        print(
            f"{case.name:<10} {case.events:>9} events  {case.sim_wall_s:>8.3f}s  "
            f"{case.events_per_sec:>12.1f} ev/s  rss {case.peak_rss_kb} KiB"
        )
    print(
        f"wrote {path} ({len(trajectory.cases)} cases, "
        f"{trajectory.overall_events_per_sec:.1f} ev/s overall)"
    )
    if args.profile:
        suite = cases if cases is not None else list(canonical_suite(args.scale))
        for case in suite:
            profile_path = path.with_name(f"{path.stem}.profile.{case.name}.txt")
            profile_path.write_text(profile_case(case))
            print(f"wrote {profile_path} (cProfile, top cumulative)")
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    baseline = load_trajectory(args.baseline)
    current = load_trajectory(args.current)
    comparison = compare_trajectories(
        baseline,
        current,
        threshold=args.threshold,
        rss_threshold=args.rss_threshold,
        require_identical=args.require_identical,
    )
    print(comparison.report())
    return 0 if comparison.ok else 1


def _cmd_list(args: argparse.Namespace) -> int:
    for case in canonical_suite(args.scale):
        print(f"{case.name:<10} {len(case.jobs):>3} job(s)  {case.description}")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "record":
        return _cmd_record(args)
    if args.command == "compare":
        return _cmd_compare(args)
    return _cmd_list(args)


if __name__ == "__main__":
    raise SystemExit(main())
