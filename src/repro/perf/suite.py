"""The canonical performance suite.

Seven pinned-seed workloads chosen to cover every layer the simulator's hot
path flows through, at two sizes:

========  =============================================================
case      exercises
========  =============================================================
figure06  the trace-driven figure grid (3 traces x VAS/PAS/SPK3)
transfer  large sequential transfers - long per-I/O request chains
array4    a 4-device array cell - many small per-device simulations
bursty    the MMPP multi-tenant scenario - queue backlog + FARO bursts
aged      a steady-state aged device - GC firing on every write
gcheavy   a 95%-prefilled fragmented device under random overwrites
zoo       a heterogeneous 2-device zoo array (mlc-gen2 + tlc-gen3)
========  =============================================================

Every case is a tuple of ordinary :class:`~repro.experiments.spec.SimJob`
objects, so the recorded numbers measure exactly the code path the
experiment engine runs in production.  Seeds, geometry and request counts
are pinned: a trajectory recorded today is comparable, case by case, with
one recorded at any other commit (``repro.perf.compare`` enforces that via
the per-case workload fingerprints stamped into the trajectory).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.experiments import figure06
from repro.experiments.runner import ExperimentScale
from repro.experiments.spec import ArraySpec, SimJob, WorkloadSpec
from repro.scenarios.library import (
    aged_device_state,
    bursty_multitenant_scenario,
    sustained_write_scenario,
    zoo_probe_scenario,
)
from repro.sim.config import SimulationConfig

KB = 1024
MB = 1024 * KB

#: Recognised suite sizes.  ``quick`` is the CI gate (seconds per case);
#: ``full`` is the committed-trajectory scale (tens of seconds per case).
SUITE_SCALES = ("quick", "full")


@dataclass(frozen=True)
class PerfCase:
    """One named, pinned-seed member of the canonical suite."""

    name: str
    description: str
    jobs: Tuple[SimJob, ...]

    def fingerprint(self) -> str:
        """Stable content hash over every job in the case.

        Two trajectories are comparable case-by-case only when the
        fingerprints match - i.e. the workloads, configs and schedulers
        behind the numbers are the same.
        """
        from repro.sim.config import stable_fingerprint

        return stable_fingerprint(
            ("perf-case", self.name, tuple(job.fingerprint() for job in self.jobs))
        )


def _scale_factor(scale: str) -> int:
    if scale not in SUITE_SCALES:
        raise ValueError(f"unknown suite scale {scale!r}; expected one of {SUITE_SCALES}")
    return 1 if scale == "quick" else 4


def _figure06_case(factor: int) -> PerfCase:
    spec = figure06.build_spec(
        ExperimentScale(
            requests_per_trace=40 * factor,
            requests_per_point=12,
            num_chips=64,
            traces=("cfs0", "msnfs1", "proj0"),
            seed=7,
        )
    )
    return PerfCase(
        name="figure06",
        description="trace grid: 3 datacenter traces x VAS/PAS/SPK3, 64 chips",
        jobs=spec.jobs,
    )


def _transfer_case(factor: int) -> PerfCase:
    config = SimulationConfig.paper_scale(64)
    workload = WorkloadSpec.random(
        "transfer-512k",
        num_requests=24 * factor,
        size_bytes=512 * KB,
        seed=7,
    )
    jobs = tuple(
        SimJob(workload=workload, scheduler=scheduler, config=config, key=(scheduler,))
        for scheduler in ("VAS", "SPK3")
    )
    return PerfCase(
        name="transfer",
        description="512 KB random transfers under VAS and SPK3, 64 chips",
        jobs=jobs,
    )


def _array_case(factor: int) -> PerfCase:
    config = SimulationConfig.paper_scale(16)
    workload = WorkloadSpec.random(
        "array-base",
        num_requests=48 * factor,
        size_bytes=128 * KB,
        seed=7,
    )
    spec = ArraySpec(
        workload=workload,
        num_devices=4,
        scheduler="SPK3",
        config=config,
        policy="stripe",
        key=("array4",),
    )
    return PerfCase(
        name="array4",
        description="4-device striped array, SPK3, 16 chips per device",
        jobs=spec.device_jobs(),
    )


def _bursty_case(factor: int) -> PerfCase:
    config = SimulationConfig.paper_scale(64)
    scenario = bursty_multitenant_scenario(requests_per_tenant=32 * factor, seed=11)
    job = SimJob(
        workload=WorkloadSpec.scenario(scenario),
        scheduler="SPK3",
        config=config,
        key=("bursty",),
    )
    return PerfCase(
        name="bursty",
        description="MMPP multi-tenant burst scenario under SPK3, 64 chips",
        jobs=(job,),
    )


def _aged_case(factor: int) -> PerfCase:
    base = SimulationConfig.paper_scale(64)
    geometry = base.geometry.scaled(blocks_per_plane=16, pages_per_block=32)
    state = aged_device_state(steady_state=True, seed=11)
    logical = int(geometry.total_pages * (1.0 - 0.15))
    live_bytes = int(logical * state.fill_fraction * geometry.page_size_bytes)
    scenario = sustained_write_scenario(
        num_requests=64 * factor,
        size_bytes=16 * KB,
        address_space_bytes=max(live_bytes, 64 * KB),
        seed=11,
    )
    config = base.with_overrides(
        geometry=geometry,
        gc_enabled=True,
        overprovisioning_fraction=0.15,
        device_state=state,
    )
    job = SimJob(
        workload=WorkloadSpec.scenario(scenario),
        scheduler="SPK3",
        config=config,
        key=("aged",),
    )
    return PerfCase(
        name="aged",
        description="steady-state aged device, sustained overwrites, SPK3",
        jobs=(job,),
    )


def _gc_heavy_case(factor: int) -> PerfCase:
    base = SimulationConfig.paper_scale(64)
    geometry = base.geometry.scaled(blocks_per_plane=16, pages_per_block=32)
    config = base.with_overrides(
        geometry=geometry,
        gc_enabled=True,
        prefill_fraction=0.95,
    )
    address_space = int(geometry.total_pages * geometry.page_size_bytes * 0.5)
    workload = WorkloadSpec.mixed(
        "gc-overwrites",
        num_requests=64 * factor,
        size_bytes=16 * KB,
        address_space_bytes=address_space,
        read_fraction=0.1,
        randomness=1.0,
        interarrival_ns=2_000,
        seed=7,
    )
    job = SimJob(workload=workload, scheduler="SPK3", config=config, key=("gcheavy",))
    return PerfCase(
        name="gcheavy",
        description="95%-prefilled fragmented device, write-heavy random I/O",
        jobs=(job,),
    )


def _zoo_case(factor: int) -> PerfCase:
    spec = ArraySpec(
        workload=WorkloadSpec.scenario(
            zoo_probe_scenario(num_requests=48 * factor, seed=11)
        ),
        num_devices=2,
        scheduler="SPK3",
        devices=("mlc-gen2", "tlc-gen3"),
        policy="stripe",
        key=("zoo",),
    )
    return PerfCase(
        name="zoo",
        description="heterogeneous zoo array: mlc-gen2 + tlc-gen3 under SPK3",
        jobs=spec.device_jobs(),
    )


def canonical_suite(scale: str = "quick") -> Tuple[PerfCase, ...]:
    """The seven canonical cases at the requested ``quick``/``full`` size."""
    factor = _scale_factor(scale)
    return (
        _figure06_case(factor),
        _transfer_case(factor),
        _array_case(factor),
        _bursty_case(factor),
        _aged_case(factor),
        _gc_heavy_case(factor),
        _zoo_case(factor),
    )


def tiny_suite() -> Tuple[PerfCase, ...]:
    """Miniature pinned-seed cases used by the bit-identity regression tests.

    Same layers as the canonical suite (scheduler grid, array, scenario,
    aged device, GC pressure, heterogeneous zoo array) but sized to run in
    well under a second each:
    their result digests are recorded as goldens
    (``tests/data/perf_golden.json``) so any change to simulation semantics
    - intended or not - shows up as a digest mismatch in the test suite,
    not just in a slow benchmark run.
    """
    grid_config = SimulationConfig.paper_scale(16)
    mixed = WorkloadSpec.mixed(
        "tiny-mixed",
        num_requests=16,
        size_bytes=64 * KB,
        read_fraction=0.5,
        seed=7,
    )
    grid = PerfCase(
        name="tiny-grid",
        description="16-request mixed workload under VAS/PAS/SPK3, 16 chips",
        jobs=tuple(
            SimJob(workload=mixed, scheduler=scheduler, config=grid_config, key=(scheduler,))
            for scheduler in ("VAS", "PAS", "SPK3")
        ),
    )
    array = PerfCase(
        name="tiny-array",
        description="2-device striped array over 12 random requests",
        jobs=ArraySpec(
            workload=WorkloadSpec.random(
                "tiny-array-base", num_requests=12, size_bytes=64 * KB, seed=7
            ),
            num_devices=2,
            scheduler="SPK3",
            config=SimulationConfig.paper_scale(8),
            key=("tiny-array",),
        ).device_jobs(),
    )
    scenario = PerfCase(
        name="tiny-bursty",
        description="8-request-per-tenant bursty scenario under SPK3",
        jobs=(
            SimJob(
                workload=WorkloadSpec.scenario(
                    bursty_multitenant_scenario(requests_per_tenant=8, seed=11)
                ),
                scheduler="SPK3",
                config=SimulationConfig.paper_scale(16),
                key=("tiny-bursty",),
            ),
        ),
    )
    base = SimulationConfig.paper_scale(8)
    aged_geometry = base.geometry.scaled(blocks_per_plane=8, pages_per_block=16)
    state = aged_device_state(steady_state=False, seed=11)
    live_bytes = int(
        aged_geometry.total_pages * 0.85 * state.fill_fraction * aged_geometry.page_size_bytes
    )
    aged = PerfCase(
        name="tiny-aged",
        description="aged 8-chip device under 16 sustained overwrites",
        jobs=(
            SimJob(
                workload=WorkloadSpec.scenario(
                    sustained_write_scenario(
                        num_requests=16,
                        size_bytes=4 * KB,
                        address_space_bytes=max(live_bytes, 16 * KB),
                        seed=11,
                    )
                ),
                scheduler="SPK3",
                config=base.with_overrides(
                    geometry=aged_geometry,
                    gc_enabled=True,
                    overprovisioning_fraction=0.15,
                    device_state=state,
                ),
                key=("tiny-aged",),
            ),
        ),
    )
    gc_config = base.with_overrides(
        geometry=aged_geometry, gc_enabled=True, prefill_fraction=0.95
    )
    zoo = PerfCase(
        name="tiny-zoo",
        description="heterogeneous slc-gen1 + mlc-gen1 array over 12 requests",
        jobs=ArraySpec(
            workload=WorkloadSpec.random(
                "tiny-zoo-base",
                num_requests=12,
                size_bytes=64 * KB,
                address_space_bytes=64 * MB,
                seed=7,
            ),
            num_devices=2,
            scheduler="SPK3",
            devices=("slc-gen1", "mlc-gen1"),
            key=("tiny-zoo",),
        ).device_jobs(),
    )
    gc_pressure = PerfCase(
        name="tiny-gc",
        description="95%-prefilled 8-chip device under 16 random overwrites",
        jobs=(
            SimJob(
                workload=WorkloadSpec.mixed(
                    "tiny-gc-overwrites",
                    num_requests=16,
                    size_bytes=4 * KB,
                    address_space_bytes=int(
                        aged_geometry.total_pages * aged_geometry.page_size_bytes * 0.5
                    ),
                    read_fraction=0.1,
                    seed=7,
                ),
                scheduler="SPK3",
                config=gc_config,
                key=("tiny-gc",),
            ),
        ),
    )
    return (grid, array, scenario, aged, gc_pressure, zoo)
