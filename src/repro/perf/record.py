"""Record a benchmark trajectory: run the suite, measure, emit JSON.

A *trajectory* is the unit of performance history: one JSON document holding,
for every case of the canonical suite, the wall time spent inside the event
loop, the number of discrete events processed, the derived events/sec, the
peak resident set size, and a content digest of every simulation result.

The digest is the load-bearing half: an optimization that changes any field
of any :class:`~repro.metrics.report.SimulationResult` changes the digest, so
"2x faster" claims carry their own bit-identity proof.  The comparison tool
(:mod:`repro.perf.compare`) refuses to attribute a speedup to a case whose
workload fingerprint changed, and can additionally require digests to match.
"""

from __future__ import annotations

import json
import platform
import resource
import sys
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.obs.counters import merge_counter_snapshots
from repro.perf.suite import PerfCase, canonical_suite
from repro.sim.config import stable_fingerprint
from repro.sim.ssd import SSDSimulator

#: Trajectory document schema.  Bump on any incompatible change to the JSON
#: layout; ``load_trajectory`` rejects documents from a different major
#: schema instead of mis-reading them.
SCHEMA_VERSION = 1

#: File-name stem of the committed trajectory for this PR sequence.
BENCH_ID = "BENCH_6"

#: Number of entries in the per-case cProfile tables written by ``--profile``.
PROFILE_TOP_N = 25


def _peak_rss_kb() -> int:
    """Peak resident set size of this process, in KiB (Linux semantics)."""
    usage = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # ru_maxrss is KiB on Linux, bytes on macOS.
    if sys.platform == "darwin":  # pragma: no cover - CI runs Linux
        return usage // 1024
    return usage


@dataclass(frozen=True)
class CaseRecord:
    """Measured numbers for one suite case."""

    name: str
    description: str
    fingerprint: str
    jobs: int
    ios_completed: int
    events: int
    #: Wall time of the whole case: workload build + simulator construction
    #: (including any preconditioning) + the event loop.
    wall_s: float
    #: Wall time spent inside ``SSDSimulator.run`` only - the event loop.
    sim_wall_s: float
    events_per_sec: float
    #: Process-wide resident-set high-water mark (KiB) observed *by the end
    #: of* this case.  ``ru_maxrss`` is monotonic over the process lifetime,
    #: so within one recording run the values are cumulative: a case can
    #: only raise the number, never lower it.  Compare like positions
    #: across trajectories (the suite order is fixed), not cases within one.
    peak_rss_kb: int
    #: Stable content digest over every SimulationResult of the case, in job
    #: order.  Equal digests mean bit-identical results.
    result_digest: str
    #: ``wall_s`` restated under its plain name, and ``peak_rss_kb`` in MiB -
    #: the units the memory gate (``compare --rss-threshold``) reasons in.
    #: Derived from the same measurements; kept as explicit JSON fields so
    #: downstream tooling does not need to know the KiB convention.
    wall_time_s: float = 0.0
    peak_rss_mb: float = 0.0
    #: Counter-registry snapshots of the case's results, summed across jobs
    #: (``*.largest_batch`` names take the max).  Purely informational in the
    #: trajectory JSON - the comparison gate ignores it.
    counters: Dict[str, int] = field(default_factory=dict)


@dataclass(frozen=True)
class Trajectory:
    """One recorded pass over the suite."""

    schema_version: int
    bench_id: str
    scale: str
    python: str
    platform: str
    cases: Tuple[CaseRecord, ...]
    meta: Dict[str, str] = field(default_factory=dict)

    @property
    def total_events(self) -> int:
        return sum(case.events for case in self.cases)

    @property
    def total_sim_wall_s(self) -> float:
        return sum(case.sim_wall_s for case in self.cases)

    @property
    def overall_events_per_sec(self) -> float:
        wall = self.total_sim_wall_s
        if wall <= 0.0:
            return 0.0
        return self.total_events / wall

    def case(self, name: str) -> Optional[CaseRecord]:
        for case in self.cases:
            if case.name == name:
                return case
        return None

    def to_dict(self) -> Dict[str, object]:
        return {
            "schema_version": self.schema_version,
            "bench_id": self.bench_id,
            "scale": self.scale,
            "python": self.python,
            "platform": self.platform,
            "meta": dict(self.meta),
            "cases": [asdict(case) for case in self.cases],
            "summary": {
                "total_events": self.total_events,
                "total_sim_wall_s": round(self.total_sim_wall_s, 6),
                "overall_events_per_sec": round(self.overall_events_per_sec, 1),
            },
        }


def _run_case_once(case: PerfCase) -> CaseRecord:
    events = 0
    ios = 0
    sim_wall = 0.0
    results = []
    start = time.perf_counter()
    for job in case.jobs:
        workload = job.workload.build()
        simulator = SSDSimulator(
            job.resolved_config, job.scheduler, scheduler_options=job.options_dict
        )
        run_start = time.perf_counter()
        result = simulator.run(workload, workload_name=job.workload.name)
        sim_wall += time.perf_counter() - run_start
        # The result itself carries the event-loop stats now; no need to
        # reach back into the simulator.
        events += result.events_processed
        ios += result.completed_ios
        results.append(result)
    wall = time.perf_counter() - start
    digest = stable_fingerprint(("perf-results", tuple(results)))
    rss_kb = _peak_rss_kb()
    return CaseRecord(
        name=case.name,
        description=case.description,
        fingerprint=case.fingerprint(),
        jobs=len(case.jobs),
        ios_completed=ios,
        events=events,
        wall_s=round(wall, 6),
        sim_wall_s=round(sim_wall, 6),
        events_per_sec=round(events / sim_wall, 1) if sim_wall > 0 else 0.0,
        peak_rss_kb=rss_kb,
        result_digest=digest,
        wall_time_s=round(wall, 6),
        peak_rss_mb=round(rss_kb / 1024.0, 2),
        counters=merge_counter_snapshots([result.counters for result in results]),
    )


def profile_case(case: PerfCase, top_n: int = PROFILE_TOP_N) -> str:
    """Run a case once under cProfile and return a top-N cumulative table.

    This is a separate diagnostic pass: the measured trajectory numbers come
    from unprofiled runs (the profiler's per-call hook would distort them),
    and this pass is executed additionally when ``record --profile`` asks
    for it.
    """
    import cProfile
    import io
    import pstats

    profiler = cProfile.Profile()
    profiler.enable()
    _run_case_once(case)
    profiler.disable()
    buffer = io.StringIO()
    stats = pstats.Stats(profiler, stream=buffer)
    stats.sort_stats("cumulative").print_stats(top_n)
    return buffer.getvalue()


def run_case(case: PerfCase, *, repeat: int = 1) -> CaseRecord:
    """Execute one suite case serially and measure it.

    Jobs run exactly the way :meth:`repro.experiments.spec.SimJob.execute`
    runs them; the event-loop statistics come straight from each
    :class:`~repro.metrics.report.SimulationResult`
    (``events_processed``/``counters``), not from simulator internals.

    With ``repeat > 1`` the case runs several times and the *fastest* pass
    is reported (standard best-of-N to suppress scheduler/allocator noise);
    the runs must agree on the result digest, which a noisy machine cannot
    fake.
    """
    if repeat <= 0:
        raise ValueError("repeat must be positive")
    best: Optional[CaseRecord] = None
    for _ in range(repeat):
        record = _run_case_once(case)
        if best is not None and record.result_digest != best.result_digest:
            raise RuntimeError(
                f"case {case.name!r}: repeated runs produced different results"
            )
        if best is None or record.sim_wall_s < best.sim_wall_s:
            best = record
    assert best is not None
    return best


def record_trajectory(
    scale: str = "quick",
    *,
    cases: Optional[Sequence[PerfCase]] = None,
    meta: Optional[Dict[str, str]] = None,
    repeat: int = 1,
) -> Trajectory:
    """Run the canonical suite (or an explicit case list) and collect records."""
    suite = tuple(cases) if cases is not None else canonical_suite(scale)
    records = tuple(run_case(case, repeat=repeat) for case in suite)
    return Trajectory(
        schema_version=SCHEMA_VERSION,
        bench_id=BENCH_ID,
        scale=scale,
        python=platform.python_version(),
        platform=platform.platform(),
        cases=records,
        meta=dict(meta or {}),
    )


def write_trajectory(trajectory: Trajectory, path: Union[str, Path]) -> Path:
    """Serialise a trajectory to ``path`` as indented, sorted JSON."""
    path = Path(path)
    path.write_text(json.dumps(trajectory.to_dict(), indent=2, sort_keys=True) + "\n")
    return path


def load_trajectory(path: Union[str, Path]) -> Trajectory:
    """Parse a trajectory file, validating its schema version."""
    document = json.loads(Path(path).read_text())
    version = document.get("schema_version")
    if version != SCHEMA_VERSION:
        raise ValueError(
            f"{path}: trajectory schema {version!r} is not supported "
            f"(expected {SCHEMA_VERSION})"
        )
    cases: List[CaseRecord] = []
    for raw in document.get("cases", []):
        cases.append(
            CaseRecord(
                name=raw["name"],
                description=raw.get("description", ""),
                fingerprint=raw.get("fingerprint", ""),
                jobs=int(raw.get("jobs", 0)),
                ios_completed=int(raw.get("ios_completed", 0)),
                events=int(raw["events"]),
                wall_s=float(raw["wall_s"]),
                sim_wall_s=float(raw["sim_wall_s"]),
                events_per_sec=float(raw["events_per_sec"]),
                peak_rss_kb=int(raw.get("peak_rss_kb", 0)),
                result_digest=raw.get("result_digest", ""),
                wall_time_s=float(raw.get("wall_time_s", raw["wall_s"])),
                peak_rss_mb=float(
                    raw.get("peak_rss_mb", round(int(raw.get("peak_rss_kb", 0)) / 1024.0, 2))
                ),
                counters={
                    name: int(value)
                    for name, value in raw.get("counters", {}).items()
                },
            )
        )
    return Trajectory(
        schema_version=version,
        bench_id=document.get("bench_id", BENCH_ID),
        scale=document.get("scale", "quick"),
        python=document.get("python", ""),
        platform=document.get("platform", ""),
        cases=tuple(cases),
        meta=dict(document.get("meta", {})),
    )
