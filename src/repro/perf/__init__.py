"""Benchmark-trajectory subsystem: measure, record and compare simulator speed.

The simulator's throughput (discrete events processed per second of wall
time) is a first-class, continuously-measured property of this repository:

* :mod:`repro.perf.suite` declares the canonical pinned-seed workload suite
  spanning the figure grids, multi-SSD arrays, bursty scenarios and aged
  steady-state devices;
* :mod:`repro.perf.record` runs the suite and emits a schema-versioned
  *trajectory* file (``BENCH_5.json``) with wall time, events/sec, peak RSS
  and a content digest of every :class:`~repro.metrics.report.SimulationResult`
  (so speedups are provably behaviour-preserving);
* :mod:`repro.perf.compare` diffs two trajectory files with a configurable
  regression threshold - the CI gate.

Command line::

    PYTHONPATH=src python -m repro.perf record --scale quick -o BENCH_5.json
    PYTHONPATH=src python -m repro.perf compare BENCH_5.json current.json
"""

from repro.perf.compare import CaseDelta, Comparison, compare_trajectories
from repro.perf.record import (
    SCHEMA_VERSION,
    CaseRecord,
    Trajectory,
    load_trajectory,
    record_trajectory,
    run_case,
    write_trajectory,
)
from repro.perf.suite import PerfCase, SUITE_SCALES, canonical_suite

__all__ = [
    "SCHEMA_VERSION",
    "SUITE_SCALES",
    "CaseDelta",
    "CaseRecord",
    "Comparison",
    "PerfCase",
    "Trajectory",
    "canonical_suite",
    "compare_trajectories",
    "load_trajectory",
    "record_trajectory",
    "run_case",
    "write_trajectory",
]
