"""Shared workload-generator dispatch.

Both :class:`repro.experiments.spec.WorkloadSpec` and
:class:`repro.scenarios.scenario.Tenant` describe workloads as a
``(generator name, frozen params)`` pair; this module is the single place
that maps those names onto the generator functions, so the two spec layers
cannot drift apart.  It also owns the value-freezing of request lists
(:func:`freeze_requests`/:func:`thaw_requests`) used by both ``inline``
spec kinds.
"""

from __future__ import annotations

from typing import Any, Dict, List, Sequence, Tuple

from repro.workloads.datacenter import generate_datacenter_trace
from repro.workloads.request import IOKind, IORequest
from repro.workloads.synthetic import (
    SyntheticWorkloadConfig,
    generate_mixed_workload,
    generate_random_workload,
    generate_sequential_workload,
)

#: One frozen request: (kind value, offset, size, arrival, force_unit_access).
#: Tagged freezes (``freeze_requests(..., keep_tags=True)``) append
#: ``(tenant, phase_index)``, widening the tuple to 7 entries.
FrozenRequest = Tuple[Any, ...]


def freeze_requests(
    requests: Sequence[IORequest], *, keep_tags: bool = False
) -> Tuple[FrozenRequest, ...]:
    """Reduce requests to hashable value tuples (for inline specs).

    With ``keep_tags=True`` the observational provenance tags
    (``tenant``/``phase_index``) ride along as two extra tuple entries so a
    frozen scenario sub-trace can still be attributed after thawing.  Tagged
    tuples must never enter a fingerprint directly - hash
    :func:`strip_request_tags` of them instead, so a tagged freeze stays
    cache-compatible with the identical untagged trace.
    """
    if keep_tags:
        return tuple(
            (
                io.kind.value,
                io.offset_bytes,
                io.size_bytes,
                io.arrival_ns,
                io.force_unit_access,
                io.tenant,
                io.phase_index,
            )
            for io in requests
        )
    return tuple(
        (io.kind.value, io.offset_bytes, io.size_bytes, io.arrival_ns, io.force_unit_access)
        for io in requests
    )


def strip_request_tags(frozen: Sequence[FrozenRequest]) -> Tuple[FrozenRequest, ...]:
    """Drop the tag entries of tagged frozen tuples (identity on untagged)."""
    return tuple(tuple(entry[:5]) for entry in frozen)


def thaw_requests(frozen: Sequence[FrozenRequest]) -> List[IORequest]:
    """Rebuild fresh request objects from :func:`freeze_requests` tuples.

    Accepts both the 5-entry untagged and the 7-entry tagged form.
    """
    requests: List[IORequest] = []
    for entry in frozen:
        kind, offset, size, arrival, fua = entry[:5]
        io = IORequest(
            kind=IOKind(kind),
            offset_bytes=offset,
            size_bytes=size,
            arrival_ns=arrival,
            force_unit_access=fua,
        )
        if len(entry) > 5:
            io.tenant = entry[5]
            io.phase_index = entry[6]
        requests.append(io)
    return requests


def build_generator(generator: str, params: Dict[str, Any]) -> List[IORequest]:
    """Run the named generator with its (already thawed) keyword params.

    Handles the kinds shared by every spec layer: ``random``,
    ``sequential``, ``mixed``, ``datacenter`` and ``inline``.  Layer-specific
    kinds (``scenario`` on :class:`WorkloadSpec`, ``msr`` on
    :class:`Tenant`) stay with their layer.  ``params`` is consumed
    destructively; pass a copy.
    """
    if generator == "random":
        return generate_random_workload(
            params.pop("num_requests"), params.pop("size_bytes"), **params
        )
    if generator == "sequential":
        return generate_sequential_workload(
            params.pop("num_requests"), params.pop("size_bytes"), **params
        )
    if generator == "mixed":
        return generate_mixed_workload(SyntheticWorkloadConfig(**params))
    if generator == "datacenter":
        return generate_datacenter_trace(params.pop("name"), **params)
    if generator == "inline":
        return thaw_requests(params["requests"])
    raise ValueError(f"unknown workload generator {generator!r}")
