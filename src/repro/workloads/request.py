"""Host-side I/O requests.

An :class:`IORequest` is what the host driver pushes over the storage
interface: an operation (read/write), a byte offset, a length and an arrival
time.  The NVMHC stores these as queue *tags* and splits them into
page-sized memory requests during composition (paper Figure 3).
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Optional

_io_ids = itertools.count()


def reset_io_ids() -> None:
    """Reset the global I/O id counter (used by tests)."""
    global _io_ids
    _io_ids = itertools.count()


class IOKind(enum.Enum):
    """Direction of a host I/O request."""

    READ = "read"
    WRITE = "write"

    @property
    def is_write(self) -> bool:
        """True for writes."""
        return self is IOKind.WRITE


@dataclass(slots=True)
class IORequest:
    """One host I/O request (a queue tag, in NVMHC terminology)."""

    kind: IOKind
    offset_bytes: int
    size_bytes: int
    arrival_ns: int
    io_id: int = field(default_factory=lambda: next(_io_ids))
    force_unit_access: bool = False

    # Lifecycle timestamps, filled in by the simulator.
    enqueued_at_ns: Optional[int] = None
    completed_at_ns: Optional[int] = None

    # Provenance tags, stamped by the scenario engine at build time (see
    # Phase.build).  Purely observational: the simulator never reads them,
    # freeze_requests drops them, and they stay out of every content
    # fingerprint - a tagged run is digest-identical to an untagged one.
    tenant: Optional[str] = None
    phase_index: Optional[int] = None

    def __post_init__(self) -> None:
        if self.offset_bytes < 0:
            raise ValueError("offset_bytes must be non-negative")
        if self.size_bytes <= 0:
            raise ValueError("size_bytes must be positive")
        if self.arrival_ns < 0:
            raise ValueError("arrival_ns must be non-negative")

    @property
    def is_write(self) -> bool:
        """True for write requests."""
        return self.kind.is_write

    @property
    def end_offset_bytes(self) -> int:
        """First byte past the end of the request."""
        return self.offset_bytes + self.size_bytes

    def num_pages(self, page_size_bytes: int) -> int:
        """Number of flash pages the request spans for a given page size."""
        if page_size_bytes <= 0:
            raise ValueError("page_size_bytes must be positive")
        first = self.offset_bytes // page_size_bytes
        last = (self.end_offset_bytes - 1) // page_size_bytes
        return last - first + 1

    def logical_pages(self, page_size_bytes: int) -> range:
        """Range of logical page numbers the request touches."""
        first = self.offset_bytes // page_size_bytes
        last = (self.end_offset_bytes - 1) // page_size_bytes
        return range(first, last + 1)

    @property
    def latency_ns(self) -> Optional[int]:
        """Device-level latency (arrival to completion), if completed."""
        if self.completed_at_ns is None:
            return None
        return self.completed_at_ns - self.arrival_ns

    @property
    def queue_latency_ns(self) -> Optional[int]:
        """Time from arrival to admission into the device queue."""
        if self.enqueued_at_ns is None:
            return None
        return self.enqueued_at_ns - self.arrival_ns

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"IORequest(id={self.io_id}, {self.kind.value}, offset={self.offset_bytes}, "
            f"size={self.size_bytes}, t={self.arrival_ns})"
        )
