"""Synthetic workload generators.

These generators drive the sensitivity studies of the paper:

* Figure 1 and Figure 15/16/17 sweep the *data transfer size* from 4 KB to
  4 MB with back-to-back requests;
* the motivational examples use small bursts of mixed-size requests.

All generators are deterministic for a given seed so experiments are
reproducible.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.workloads.request import IOKind, IORequest

KB = 1024
MB = 1024 * KB


@dataclass
class SyntheticWorkloadConfig:
    """Parameters of a synthetic workload.

    ``address_space_bytes`` bounds the logical address range; offsets are
    aligned to ``align_bytes`` (page size by default).  ``read_fraction``
    selects the read/write mix and ``randomness`` the fraction of requests
    whose offset is drawn uniformly at random (the rest continue
    sequentially from the previous request).
    """

    num_requests: int = 256
    size_bytes: int = 16 * KB
    address_space_bytes: int = 256 * MB
    align_bytes: int = 2 * KB
    read_fraction: float = 1.0
    randomness: float = 1.0
    interarrival_ns: int = 2_000
    seed: int = 42

    def __post_init__(self) -> None:
        if self.num_requests <= 0:
            raise ValueError("num_requests must be positive")
        if self.size_bytes <= 0:
            raise ValueError("size_bytes must be positive")
        if not 0.0 <= self.read_fraction <= 1.0:
            raise ValueError("read_fraction must be in [0, 1]")
        if not 0.0 <= self.randomness <= 1.0:
            raise ValueError("randomness must be in [0, 1]")
        if self.align_bytes <= 0:
            raise ValueError("align_bytes must be positive")
        if self.interarrival_ns < 0:
            raise ValueError("interarrival_ns must be non-negative")
        if self.address_space_bytes < self.size_bytes:
            raise ValueError("address space must be at least one request large")


def _aligned(offset: int, align: int) -> int:
    return (offset // align) * align


def generate_mixed_workload(config: SyntheticWorkloadConfig) -> List[IORequest]:
    """Generate a workload according to ``config`` (the general generator)."""
    rng = random.Random(config.seed)
    requests: List[IORequest] = []
    max_offset = config.address_space_bytes - config.size_bytes
    cursor = 0
    now = 0
    for _ in range(config.num_requests):
        kind = IOKind.READ if rng.random() < config.read_fraction else IOKind.WRITE
        if rng.random() < config.randomness or cursor > max_offset:
            offset = _aligned(rng.randint(0, max_offset), config.align_bytes)
        else:
            offset = _aligned(cursor, config.align_bytes)
        cursor = offset + config.size_bytes
        requests.append(
            IORequest(
                kind=kind,
                offset_bytes=offset,
                size_bytes=config.size_bytes,
                arrival_ns=now,
            )
        )
        now += config.interarrival_ns
    return requests


def generate_random_workload(
    num_requests: int,
    size_bytes: int,
    *,
    address_space_bytes: int = 256 * MB,
    read_fraction: float = 1.0,
    interarrival_ns: int = 2_000,
    seed: int = 42,
) -> List[IORequest]:
    """Uniform-random-offset workload (the paper's default stress pattern)."""
    config = SyntheticWorkloadConfig(
        num_requests=num_requests,
        size_bytes=size_bytes,
        address_space_bytes=address_space_bytes,
        read_fraction=read_fraction,
        randomness=1.0,
        interarrival_ns=interarrival_ns,
        seed=seed,
    )
    return generate_mixed_workload(config)


def generate_sequential_workload(
    num_requests: int,
    size_bytes: int,
    *,
    start_offset_bytes: int = 0,
    read_fraction: float = 1.0,
    interarrival_ns: int = 2_000,
    address_space_bytes: Optional[int] = None,
    seed: int = 42,
) -> List[IORequest]:
    """Back-to-back sequential workload used for the bandwidth sweeps."""
    # This generator bypasses SyntheticWorkloadConfig, so repeat the checks
    # that would otherwise fire at declaration time.
    if num_requests <= 0:
        raise ValueError("num_requests must be positive")
    if size_bytes <= 0:
        raise ValueError("size_bytes must be positive")
    if interarrival_ns < 0:
        raise ValueError("interarrival_ns must be non-negative")
    if start_offset_bytes < 0:
        raise ValueError("start_offset_bytes must be non-negative")
    rng = random.Random(seed)
    requests: List[IORequest] = []
    offset = start_offset_bytes
    now = 0
    space = address_space_bytes or (start_offset_bytes + num_requests * size_bytes)
    for _ in range(num_requests):
        if offset + size_bytes > space:
            offset = 0
        kind = IOKind.READ if rng.random() < read_fraction else IOKind.WRITE
        requests.append(
            IORequest(kind=kind, offset_bytes=offset, size_bytes=size_bytes, arrival_ns=now)
        )
        offset += size_bytes
        now += interarrival_ns
    return requests


def generate_transfer_size_sweep(
    transfer_sizes_bytes: Sequence[int],
    *,
    requests_per_size: int = 64,
    read_fraction: float = 1.0,
    randomness: float = 1.0,
    address_space_bytes: int = 512 * MB,
    interarrival_ns: int = 2_000,
    seed: int = 42,
) -> List[tuple]:
    """Generate one workload per transfer size (Figures 1, 15, 16, 17).

    Returns a list of ``(size_bytes, [IORequest, ...])`` tuples.
    """
    sweeps: List[tuple] = []
    for index, size in enumerate(transfer_sizes_bytes):
        config = SyntheticWorkloadConfig(
            num_requests=requests_per_size,
            size_bytes=size,
            address_space_bytes=max(address_space_bytes, 4 * size),
            read_fraction=read_fraction,
            randomness=randomness,
            interarrival_ns=interarrival_ns,
            seed=seed + index,
        )
        sweeps.append((size, generate_mixed_workload(config)))
    return sweeps
