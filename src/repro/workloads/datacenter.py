"""Synthetic data-center traces matching Table 1 of the paper.

The paper evaluates sixteen block traces from public repositories
(MSR Cambridge via SNIA IOTTA): corporate mail file server (cfs0-4),
hardware monitor (hm0-1), MSN file storage server (msnfs0-3) and project
directory service (proj0-4).  The raw traces are many GB and not
redistributable, so this module synthesises traces whose *summary
statistics* match the ones Table 1 reports:

* total transfer size split between reads and writes,
* number of read/write instructions (hence average request sizes),
* randomness of the issued reads and writes,
* a qualitative transactional-locality class (low / medium / high) that we
  map onto the probability that a request lands in the address neighbourhood
  of a recent request (which, after striping, creates same-chip /
  different-die-or-plane accesses - precisely what FARO exploits).

Volumes are scaled down (default 1/2048 of the paper's byte counts) so a
full 16-trace scheduler comparison finishes in minutes of CPU time; the
scale factor is a parameter, so the full-size traces can be generated when
time permits.
"""

from __future__ import annotations

import random
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional

from repro.workloads.request import IOKind, IORequest

KB = 1024
MB = 1024 * KB

#: Locality class -> probability that a request clusters near a recent one.
LOCALITY_PROBABILITY = {"low": 0.10, "medium": 0.35, "high": 0.65}


@dataclass(frozen=True)
class TraceProfile:
    """Summary statistics of one trace, straight out of Table 1."""

    name: str
    read_mb: float
    write_mb: float
    read_instructions: int
    write_instructions: int
    read_randomness: float
    write_randomness: float
    locality: str

    @property
    def total_instructions(self) -> int:
        """Total I/O instruction count of the (unscaled) trace."""
        return self.read_instructions + self.write_instructions

    @property
    def read_fraction(self) -> float:
        """Fraction of instructions that are reads."""
        if self.total_instructions == 0:
            return 0.0
        return self.read_instructions / self.total_instructions

    @property
    def avg_read_bytes(self) -> int:
        """Average read request size implied by Table 1."""
        if self.read_instructions == 0:
            return 4 * KB
        return max(2 * KB, int(self.read_mb * MB / self.read_instructions))

    @property
    def avg_write_bytes(self) -> int:
        """Average write request size implied by Table 1."""
        if self.write_instructions == 0:
            return 4 * KB
        return max(2 * KB, int(self.write_mb * MB / self.write_instructions))

    @property
    def locality_probability(self) -> float:
        """Clustering probability corresponding to the locality class."""
        return LOCALITY_PROBABILITY[self.locality]


# Table 1 of the paper.  Instruction counts are given in thousands in the
# table ("Numbers of Instructions"); we keep them in thousands here and
# scale when generating.
_TABLE1: Dict[str, TraceProfile] = {
    profile.name: profile
    for profile in [
        TraceProfile("cfs0", 3607, 1692, 406_000, 135_000, 0.9279, 0.8659, "low"),
        TraceProfile("cfs1", 2955, 1773, 385_000, 130_000, 0.9401, 0.8612, "medium"),
        TraceProfile("cfs2", 2904, 1845, 384_000, 135_000, 0.9428, 0.8595, "low"),
        TraceProfile("cfs3", 3143, 1649, 387_000, 132_000, 0.9397, 0.8670, "high"),
        TraceProfile("cfs4", 3600, 1660, 401_000, 132_000, 0.9260, 0.8659, "high"),
        TraceProfile("hm0", 10445, 21471, 1_417_000, 2_575_000, 0.9420, 0.9284, "medium"),
        TraceProfile("hm1", 8670, 567, 580_000, 28_000, 0.9829, 0.9859, "medium"),
        TraceProfile("msnfs0", 1971, 30519, 41_000, 1_467_000, 0.9979, 0.8723, "low"),
        TraceProfile("msnfs1", 17661, 17722, 121_000, 2_100_000, 0.8880, 0.6671, "low"),
        TraceProfile("msnfs2", 92772, 24835, 9_624_000, 3_003_000, 0.9813, 0.9997, "high"),
        TraceProfile("msnfs3", 5, 2387, 1_000, 5_000, 0.2252, 0.6479, "high"),
        TraceProfile("proj0", 9407, 151274, 527_000, 3_697_000, 0.9205, 0.7931, "medium"),
        TraceProfile("proj1", 786810, 2496, 2_496_000, 21_142_000, 0.8234, 0.9688, "medium"),
        TraceProfile("proj2", 1065308, 176879, 25_641_000, 3_624_000, 0.7874, 0.9393, "low"),
        TraceProfile("proj3", 19123, 2754, 2_128_000, 116_000, 0.7501, 0.8837, "medium"),
        TraceProfile("proj4", 150604, 1058, 6_369_000, 95_000, 0.8439, 0.9552, "medium"),
    ]
}

DATACENTER_TRACE_NAMES = tuple(_TABLE1.keys())


def datacenter_profile(name: str) -> TraceProfile:
    """Look up the Table 1 profile for a trace name."""
    try:
        return _TABLE1[name]
    except KeyError as exc:
        raise KeyError(
            f"unknown trace {name!r}; available traces: {', '.join(DATACENTER_TRACE_NAMES)}"
        ) from exc


def trace_table_row(name: str) -> Dict[str, object]:
    """Return a Table 1 row as a dictionary (used by the table 1 experiment)."""
    profile = datacenter_profile(name)
    return {
        "trace": profile.name,
        "read_mb": profile.read_mb,
        "write_mb": profile.write_mb,
        "read_instructions": profile.read_instructions,
        "write_instructions": profile.write_instructions,
        "read_randomness_pct": round(profile.read_randomness * 100.0, 2),
        "write_randomness_pct": round(profile.write_randomness * 100.0, 2),
        "locality": profile.locality,
    }


def _choose_size(rng: random.Random, avg_bytes: int, align: int) -> int:
    """Draw a request size around the trace's average, aligned to pages."""
    # Log-normal-ish spread: most requests near the average, a tail of large ones.
    factor = rng.choice((0.5, 0.75, 1.0, 1.0, 1.0, 1.5, 2.0, 4.0))
    size = max(align, int(avg_bytes * factor))
    return ((size + align - 1) // align) * align


def generate_datacenter_trace(
    name: str,
    *,
    num_requests: int = 512,
    address_space_bytes: int = 512 * MB,
    page_size_bytes: int = 2 * KB,
    interarrival_ns: int = 3_000,
    locality_window_bytes: int = 512 * KB,
    seed: Optional[int] = None,
) -> List[IORequest]:
    """Synthesise ``num_requests`` I/Os whose statistics follow Table 1.

    ``num_requests`` replaces the paper's full instruction counts (which run
    into the millions); the read/write mix, size distribution, randomness and
    locality all follow the per-trace profile.  ``locality_window_bytes``
    bounds how far a "local" request may stray from the request it clusters
    around - after channel/way striping this keeps local requests on the same
    chip but on different dies/planes.
    """
    profile = datacenter_profile(name)
    rng = random.Random(seed if seed is not None else hash(name) & 0xFFFF)
    requests: List[IORequest] = []
    max_offset = address_space_bytes - 8 * MB
    read_cursor = _aligned(rng.randint(0, max_offset), page_size_bytes)
    write_cursor = _aligned(rng.randint(0, max_offset), page_size_bytes)
    recent_offsets: Deque[int] = deque(maxlen=16)
    now = 0
    for _ in range(num_requests):
        is_read = rng.random() < profile.read_fraction
        kind = IOKind.READ if is_read else IOKind.WRITE
        randomness = profile.read_randomness if is_read else profile.write_randomness
        avg_bytes = profile.avg_read_bytes if is_read else profile.avg_write_bytes
        size = _choose_size(rng, avg_bytes, page_size_bytes)
        size = min(size, 4 * MB)

        if recent_offsets and rng.random() < profile.locality_probability:
            # Cluster near a recent request: same stripe group, different page.
            anchor = rng.choice(recent_offsets)
            delta = rng.randint(1, max(1, locality_window_bytes // page_size_bytes))
            offset = anchor + delta * page_size_bytes
        elif rng.random() < randomness:
            offset = rng.randint(0, max_offset)
        else:
            offset = read_cursor if is_read else write_cursor
        offset = _aligned(max(0, min(offset, max_offset)), page_size_bytes)

        if is_read:
            read_cursor = offset + size
        else:
            write_cursor = offset + size

        recent_offsets.append(offset)

        requests.append(
            IORequest(kind=kind, offset_bytes=offset, size_bytes=size, arrival_ns=now)
        )
        now += interarrival_ns
    return requests


def _aligned(offset: int, align: int) -> int:
    return (offset // align) * align
