"""Workload substrate: host I/O requests, synthetic generators and traces.

The paper evaluates Sprinkler with sixteen data-center block traces (MSR
Cambridge / SNIA IOTTA) plus synthetic transfer-size sweeps.  Production
traces are not redistributable, so :mod:`repro.workloads.datacenter`
synthesises traces whose summary statistics match Table 1 of the paper, and
:mod:`repro.workloads.traces` can parse real MSR-format CSV files when they
are available locally.
"""

from repro.workloads.request import IORequest, IOKind
from repro.workloads.synthetic import (
    SyntheticWorkloadConfig,
    generate_mixed_workload,
    generate_random_workload,
    generate_sequential_workload,
    generate_transfer_size_sweep,
)
from repro.workloads.datacenter import (
    DATACENTER_TRACE_NAMES,
    TraceProfile,
    datacenter_profile,
    generate_datacenter_trace,
    trace_table_row,
)
from repro.workloads.traces import (
    TraceFormatError,
    TraceRecord,
    load_msr_trace,
    parse_msr_line,
    records_to_requests,
)

__all__ = [
    "IORequest",
    "IOKind",
    "SyntheticWorkloadConfig",
    "generate_mixed_workload",
    "generate_random_workload",
    "generate_sequential_workload",
    "generate_transfer_size_sweep",
    "DATACENTER_TRACE_NAMES",
    "TraceProfile",
    "datacenter_profile",
    "generate_datacenter_trace",
    "trace_table_row",
    "TraceFormatError",
    "TraceRecord",
    "load_msr_trace",
    "parse_msr_line",
    "records_to_requests",
]
