"""MSR-Cambridge-format block trace parsing.

The public MSR Cambridge traces (and many SNIA IOTTA traces) are CSV files
with one record per line::

    Timestamp,Hostname,DiskNumber,Type,Offset,Size,ResponseTime

* ``Timestamp`` is in Windows filetime units (100 ns ticks),
* ``Type`` is ``Read`` or ``Write``,
* ``Offset`` and ``Size`` are in bytes,
* ``ResponseTime`` is the measured service time (ignored here).

When a real trace file is available locally this module turns it into the
:class:`~repro.workloads.request.IORequest` stream the simulator consumes;
otherwise the synthetic generator in :mod:`repro.workloads.datacenter`
provides statistically equivalent traffic.
"""

from __future__ import annotations

import csv
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, List, Optional, Union

from repro.workloads.request import IOKind, IORequest

#: Windows filetime tick length in nanoseconds.
FILETIME_TICK_NS = 100


@dataclass(frozen=True)
class TraceRecord:
    """One parsed line of an MSR-format trace."""

    timestamp_ns: int
    hostname: str
    disk_number: int
    kind: IOKind
    offset_bytes: int
    size_bytes: int
    response_time_ns: int


class TraceFormatError(ValueError):
    """Raised when a trace line cannot be parsed."""


def _parse_int(field: str) -> int:
    """Parse an integer field, tolerating a decimal point without losing
    precision on the 18+ digit Windows filetime timestamps (a float
    round-trip would corrupt them: 53 mantissa bits cover only 16 digits)."""
    try:
        return int(field)
    except ValueError:
        whole, _, _fraction = field.partition(".")
        return int(whole)


def parse_msr_line(line: Union[str, List[str]]) -> TraceRecord:
    """Parse one MSR CSV line (either a raw string or pre-split fields)."""
    if isinstance(line, str):
        fields = [field.strip() for field in line.strip().split(",")]
    else:
        fields = [field.strip() for field in line]
    if len(fields) < 7:
        raise TraceFormatError(f"expected 7 comma-separated fields, got {len(fields)}")
    try:
        timestamp_ticks = _parse_int(fields[0])
        disk_number = int(fields[2])
        offset = int(fields[4])
        size = int(fields[5])
        response_ticks = _parse_int(fields[6])
    except ValueError as exc:
        raise TraceFormatError(f"malformed numeric field in line {fields!r}") from exc
    type_field = fields[3].lower()
    if type_field.startswith("r"):
        kind = IOKind.READ
    elif type_field.startswith("w"):
        kind = IOKind.WRITE
    else:
        raise TraceFormatError(f"unknown request type {fields[3]!r}")
    if size <= 0:
        raise TraceFormatError(f"non-positive request size {size}")
    if offset < 0:
        raise TraceFormatError(f"negative offset {offset}")
    return TraceRecord(
        timestamp_ns=timestamp_ticks * FILETIME_TICK_NS,
        hostname=fields[1],
        disk_number=disk_number,
        kind=kind,
        offset_bytes=offset,
        size_bytes=size,
        response_time_ns=response_ticks * FILETIME_TICK_NS,
    )


def load_msr_trace(
    path: Union[str, Path],
    *,
    max_records: Optional[int] = None,
    disk_number: Optional[int] = None,
    skip_malformed: bool = True,
) -> List[TraceRecord]:
    """Load an MSR-format CSV trace from disk."""
    records: List[TraceRecord] = []
    path = Path(path)
    with path.open("r", newline="") as handle:
        reader = csv.reader(handle)
        for row in reader:
            if not row or (len(row) == 1 and not row[0].strip()):
                continue
            try:
                record = parse_msr_line(row)
            except TraceFormatError:
                if skip_malformed:
                    continue
                raise
            if disk_number is not None and record.disk_number != disk_number:
                continue
            records.append(record)
            if max_records is not None and len(records) >= max_records:
                break
    return records


def wrap_clamp(offset: int, size: int, space_bytes: int, align_bytes: int) -> tuple:
    """Wrap ``offset`` into ``[0, space_bytes)`` and clamp ``size`` to fit.

    The wrapped offset is aligned down to an ``align_bytes`` boundary and the
    clamped size is a whole number of alignment units (never less than one),
    so block-trace replay and address-slice remapping can never manufacture
    sub-sector requests.  ``space_bytes`` must be a multiple of
    ``align_bytes``; returns the ``(offset, size)`` pair.
    """
    if align_bytes <= 0:
        raise ValueError("align_bytes must be positive")
    if space_bytes < align_bytes or space_bytes % align_bytes != 0:
        raise ValueError("address space must be a positive multiple of align_bytes")
    offset = offset % space_bytes // align_bytes * align_bytes
    if offset + size > space_bytes:
        remaining = space_bytes - offset
        size = max(align_bytes, remaining // align_bytes * align_bytes)
    return offset, size


def records_to_requests(
    records: Iterable[TraceRecord],
    *,
    address_space_bytes: Optional[int] = None,
    rebase_time: bool = True,
    time_scale: float = 1.0,
    align_bytes: int = 512,
) -> List[IORequest]:
    """Convert parsed trace records into simulator I/O requests.

    ``address_space_bytes`` (when given) wraps offsets into the simulated
    SSD's capacity; a request poking past the end of the space is clamped to
    the remaining bytes in whole ``align_bytes`` units (block traces are
    sector-aligned; clamping must not manufacture sub-sector requests), so
    ``address_space_bytes`` must be a multiple of ``align_bytes``.
    ``rebase_time`` shifts arrival times so the first request arrives at
    t=0; ``time_scale`` compresses or stretches inter-arrival gaps (useful
    for accelerating replay of long traces).  Records sharing a (possibly
    scale-collapsed) arrival instant keep their trace-file order - the sort
    key is ``(arrival_ns, original record index)``, so replay is fully
    deterministic.
    """
    records = list(records)
    if not records:
        return []
    if align_bytes <= 0:
        raise ValueError("align_bytes must be positive")
    base = records[0].timestamp_ns if rebase_time else 0
    requests: List[IORequest] = []
    for record in records:
        offset = record.offset_bytes
        size = record.size_bytes
        if address_space_bytes is not None:
            offset, size = wrap_clamp(offset, size, address_space_bytes, align_bytes)
        arrival = max(0, int((record.timestamp_ns - base) * time_scale))
        requests.append(
            IORequest(
                kind=record.kind,
                offset_bytes=offset,
                size_bytes=size,
                arrival_ns=arrival,
            )
        )
    # Stable sort + append-in-record-order == (arrival_ns, record index):
    # equal arrivals (e.g. a scale-collapsed replay) keep the file order.
    requests.sort(key=lambda req: req.arrival_ns)
    return requests
