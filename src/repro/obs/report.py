"""Self-contained run reports: tenant tables, SLO checks, health sparklines.

:func:`write_run_report` turns one finished
:class:`~repro.metrics.report.SimulationResult` into a single artifact a
human can open - GitHub-flavoured markdown or a dependency-free HTML page
with inline SVG sparklines - covering:

* the run summary (bandwidth, IOPS, latency aggregates),
* the per-(tenant, phase) attribution table with tail percentiles, the
  per-tenant roll-up, and an exact reconciliation check against the
  aggregate stats,
* per-tenant SLO threshold verdicts (:class:`SLOThresholds`),
* sparklines over the periodic health series (event backlog, queue depth,
  GC pressure, chip busyness),
* the counter-registry snapshot and (when a trace sink is supplied) the
  longest recorded spans.

The module is a *consumer* of finished runs (it imports :mod:`repro.metrics`),
so :mod:`repro.obs` re-exports it lazily - the simulator-importable leaves
stay cycle-free.
"""

from __future__ import annotations

import html
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.metrics.attribution import reconcile_attribution
from repro.obs.trace import MemoryTraceSink

_SPARK_BLOCKS = "▁▂▃▄▅▆▇█"

#: Health metrics rendered as sparklines, in display order.
_HEALTH_METRICS = (
    ("event_backlog", "event backlog"),
    ("queue_depth", "device queue depth"),
    ("host_backlog", "host backlog"),
    ("inflight_ios", "in-flight I/Os"),
    ("gc_backlog", "GC backlog"),
    ("planes_below_watermark", "planes below GC watermark"),
    ("min_free_blocks", "min free blocks"),
    ("chip_busy_fraction", "chip busy fraction"),
)


@dataclass(frozen=True)
class SLOCheck:
    """One threshold verdict for one tenant."""

    tenant: str
    metric: str
    limit_us: float
    actual_us: float

    @property
    def ok(self) -> bool:
        """True when the tenant met the threshold."""
        return self.actual_us <= self.limit_us


@dataclass(frozen=True)
class SLOThresholds:
    """Latency ceilings checked per tenant (microseconds; ``None`` = unchecked)."""

    mean_us: Optional[float] = None
    p99_us: Optional[float] = None
    p999_us: Optional[float] = None
    max_us: Optional[float] = None

    def __bool__(self) -> bool:
        return any(
            limit is not None
            for limit in (self.mean_us, self.p99_us, self.p999_us, self.max_us)
        )

    def check(self, tenant: str, latency) -> List[SLOCheck]:
        """Verdicts for one tenant's pooled latency distribution."""
        gauges = (
            ("mean", self.mean_us, latency.mean_ns / 1_000.0),
            ("p99", self.p99_us, latency.percentile_ns(0.99) / 1_000.0),
            ("p999", self.p999_us, latency.percentile_ns(0.999) / 1_000.0),
            ("max", self.max_us, latency.max_ns / 1_000.0),
        )
        return [
            SLOCheck(tenant=tenant, metric=metric, limit_us=limit, actual_us=round(actual, 1))
            for metric, limit, actual in gauges
            if limit is not None
        ]


def slo_verdicts(result, slo: SLOThresholds) -> List[SLOCheck]:
    """Every tenant's verdicts against ``slo`` (empty without attribution)."""
    if result.attribution is None or not slo:
        return []
    checks: List[SLOCheck] = []
    for entry in result.attribution.tenant_totals():
        checks.extend(slo.check(entry.tenant, entry.latency))
    return checks


def sparkline(values: Sequence[float]) -> str:
    """Render a numeric series as a unicode block sparkline."""
    if not values:
        return ""
    low = min(values)
    span = max(values) - low
    top = len(_SPARK_BLOCKS) - 1
    if span <= 0:
        return _SPARK_BLOCKS[0] * len(values)
    return "".join(
        _SPARK_BLOCKS[int((value - low) / span * top)] for value in values
    )


def svg_sparkline(values: Sequence[float], *, width: int = 240, height: int = 32) -> str:
    """Render a numeric series as a self-contained inline SVG polyline."""
    if not values:
        return "<svg></svg>"
    low = min(values)
    span = max(values) - low
    n = max(len(values) - 1, 1)
    points = []
    for index, value in enumerate(values):
        x = index / n * (width - 2) + 1
        y = height - 2 - ((value - low) / span * (height - 4) if span > 0 else 0)
        points.append(f"{x:.1f},{y:.1f}")
    return (
        f'<svg width="{width}" height="{height}" viewBox="0 0 {width} {height}" '
        'xmlns="http://www.w3.org/2000/svg">'
        f'<polyline fill="none" stroke="#2a6" stroke-width="1.5" '
        f'points="{" ".join(points)}"/></svg>'
    )


# ----------------------------------------------------------------------
# Section assembly (shared by both renderers)
# ----------------------------------------------------------------------
def _summary_rows(result) -> List[Tuple[str, object]]:
    return [
        ("workload", result.workload),
        ("scheduler", result.scheduler),
        ("completed I/Os", result.completed_ios),
        ("total MB", round(result.total_bytes / (1024.0 * 1024.0), 2)),
        ("makespan (ms)", round(result.makespan_ns / 1_000_000.0, 3)),
        ("bandwidth (MB/s)", round(result.bandwidth_kb_s / 1024.0, 1)),
        ("IOPS", round(result.iops, 1)),
        ("mean latency (us)", round(result.latency.mean_ns / 1_000.0, 1)),
        ("p99 latency (us)", round(result.latency.percentile_ns(0.99) / 1_000.0, 1)),
        ("events processed", result.events_processed),
    ]


def _tenant_rows(result) -> List[Dict[str, object]]:
    report = result.attribution
    rows = [entry.summary_row() for entry in report.entries]
    for entry in report.tenant_totals():
        row = entry.summary_row()
        row["phase"] = "(all)"
        rows.append(row)
    if report.untagged_ios:
        rows.append(
            {
                "phase": "-",
                "tenant": "(untagged)",
                "ios": report.untagged_ios,
                "mb": round(report.untagged_bytes / (1024.0 * 1024.0), 2),
            }
        )
    return rows


def _health_series(result) -> List[Tuple[str, List[float]]]:
    samples = result.health
    if not samples:
        return []
    return [
        (label, [float(getattr(sample, name)) for sample in samples])
        for name, label in _HEALTH_METRICS
    ]


def _top_spans(sink: MemoryTraceSink, count: int) -> List[Dict[str, object]]:
    spans = [record for record in sink.records if record.phase == "X"]
    spans.sort(key=lambda r: (-r.duration_ns, r.start_ns))
    return [
        {
            "name": record.name,
            "track": record.track,
            "start_us": round(record.start_ns / 1_000.0, 1),
            "dur_us": round(record.duration_ns / 1_000.0, 1),
        }
        for record in spans[:count]
    ]


# ----------------------------------------------------------------------
# Markdown
# ----------------------------------------------------------------------
def render_markdown_table(rows: Sequence[Dict[str, object]]) -> List[str]:
    """Render dict rows as GitHub-flavoured markdown table lines.

    Columns come from the first row's keys; missing cells render empty.
    Public so sibling report producers (the fleet report) share one table
    idiom with the run reports.
    """
    return _md_table(rows)


def _md_table(rows: Sequence[Dict[str, object]]) -> List[str]:
    if not rows:
        return []
    columns = list(rows[0].keys())
    lines = [
        "| " + " | ".join(str(col) for col in columns) + " |",
        "| " + " | ".join("---" for _ in columns) + " |",
    ]
    for row in rows:
        lines.append("| " + " | ".join(str(row.get(col, "")) for col in columns) + " |")
    return lines


def run_report_markdown(
    result,
    *,
    slo: Optional[SLOThresholds] = None,
    sink: Optional[MemoryTraceSink] = None,
    title: Optional[str] = None,
    top_span_count: int = 10,
) -> str:
    """Render one run as a self-contained markdown report."""
    lines = [f"# {title or f'Run report: {result.workload} [{result.scheduler}]'}", ""]
    lines += [f"- **{name}**: {value}" for name, value in _summary_rows(result)]

    lines += ["", "## Tenants", ""]
    if result.attribution is None:
        lines.append("No provenance tags recorded (not a scenario-built workload).")
    else:
        lines += _md_table(_tenant_rows(result))
        problems = reconcile_attribution(result)
        lines.append("")
        if problems:
            lines.append("**Reconciliation FAILED:**")
            lines += [f"- {problem}" for problem in problems]
        else:
            lines.append(
                "Reconciliation: per-tenant counts, bytes and pooled "
                "percentile inputs match the aggregate exactly."
            )

    checks = slo_verdicts(result, slo) if slo else []
    if checks:
        lines += ["", "## SLO checks", ""]
        lines += _md_table(
            [
                {
                    "tenant": check.tenant,
                    "metric": check.metric,
                    "limit_us": check.limit_us,
                    "actual_us": check.actual_us,
                    "verdict": "PASS" if check.ok else "FAIL",
                }
                for check in checks
            ]
        )

    series = _health_series(result)
    if series:
        first, last = result.health[0].t_ns, result.health[-1].t_ns
        lines += [
            "",
            "## Health",
            "",
            f"{len(result.health)} samples over "
            f"{round((last - first) / 1_000_000.0, 3)} ms of simulated time.",
            "",
        ]
        width = max(len(label) for label, _ in series)
        lines.append("```")
        for label, values in series:
            lines.append(
                f"{label:<{width}}  {sparkline(values)}  "
                f"min={min(values):g} max={max(values):g} last={values[-1]:g}"
            )
        lines.append("```")

    if result.counters:
        lines += ["", "## Counters", ""]
        lines += _md_table(
            [{"counter": name, "value": result.counters[name]} for name in sorted(result.counters)]
        )

    if sink is not None:
        spans = _top_spans(sink, top_span_count)
        if spans:
            lines += ["", "## Top spans", ""]
            lines += _md_table(spans)

    return "\n".join(lines) + "\n"


# ----------------------------------------------------------------------
# HTML
# ----------------------------------------------------------------------
_HTML_STYLE = (
    "body{font:14px/1.5 system-ui,sans-serif;margin:2em auto;max-width:60em;"
    "color:#222}table{border-collapse:collapse;margin:0.5em 0}"
    "td,th{border:1px solid #ccc;padding:0.25em 0.6em;text-align:right}"
    "th{background:#f0f0f0}td:first-child,th:first-child{text-align:left}"
    ".pass{color:#2a6;font-weight:bold}.fail{color:#c33;font-weight:bold}"
    "h2{border-bottom:1px solid #ddd;padding-bottom:0.2em}"
)


def render_html_table(rows: Sequence[Dict[str, object]], css_class: str = "") -> List[str]:
    """Render dict rows as HTML table lines (``verdict`` cells colourised).

    Public counterpart of :func:`render_markdown_table` for HTML reports.
    """
    return _html_table(rows, css_class)


def html_document(title: str, body_parts: Sequence[str]) -> str:
    """Wrap body fragments into the self-contained report page chrome.

    Shares the run report's inline CSS so every report artifact of the repo
    looks the same; ``body_parts`` are pre-rendered HTML fragments.
    """
    parts = [
        "<!DOCTYPE html>",
        '<html lang="en"><head><meta charset="utf-8">',
        f"<title>{html.escape(title)}</title>",
        f"<style>{_HTML_STYLE}</style></head><body>",
        f"<h1>{html.escape(title)}</h1>",
        *body_parts,
        "</body></html>",
    ]
    return "\n".join(parts) + "\n"


def _html_table(rows: Sequence[Dict[str, object]], css_class: str = "") -> List[str]:
    if not rows:
        return []
    columns = list(rows[0].keys())
    attr = f' class="{css_class}"' if css_class else ""
    lines = [f"<table{attr}>", "<tr>" + "".join(f"<th>{html.escape(str(c))}</th>" for c in columns) + "</tr>"]
    for row in rows:
        cells = []
        for col in columns:
            value = row.get(col, "")
            text = html.escape(str(value))
            if col == "verdict":
                text = f'<span class="{"pass" if value == "PASS" else "fail"}">{text}</span>'
            cells.append(f"<td>{text}</td>")
        lines.append("<tr>" + "".join(cells) + "</tr>")
    lines.append("</table>")
    return lines


def run_report_html(
    result,
    *,
    slo: Optional[SLOThresholds] = None,
    sink: Optional[MemoryTraceSink] = None,
    title: Optional[str] = None,
    top_span_count: int = 10,
) -> str:
    """Render one run as a single self-contained HTML page (inline SVG)."""
    heading = title or f"Run report: {result.workload} [{result.scheduler}]"
    parts = [
        "<!DOCTYPE html>",
        '<html lang="en"><head><meta charset="utf-8">',
        f"<title>{html.escape(heading)}</title>",
        f"<style>{_HTML_STYLE}</style></head><body>",
        f"<h1>{html.escape(heading)}</h1>",
    ]
    parts += _html_table([{str(k): v for k, v in _summary_rows(result)}])

    parts.append("<h2>Tenants</h2>")
    if result.attribution is None:
        parts.append("<p>No provenance tags recorded (not a scenario-built workload).</p>")
    else:
        parts += _html_table(_tenant_rows(result))
        problems = reconcile_attribution(result)
        if problems:
            parts.append('<p class="fail">Reconciliation FAILED:</p><ul>')
            parts += [f"<li>{html.escape(problem)}</li>" for problem in problems]
            parts.append("</ul>")
        else:
            parts.append(
                '<p class="pass">Reconciliation: per-tenant counts, bytes and '
                "pooled percentile inputs match the aggregate exactly.</p>"
            )

    checks = slo_verdicts(result, slo) if slo else []
    if checks:
        parts.append("<h2>SLO checks</h2>")
        parts += _html_table(
            [
                {
                    "tenant": check.tenant,
                    "metric": check.metric,
                    "limit_us": check.limit_us,
                    "actual_us": check.actual_us,
                    "verdict": "PASS" if check.ok else "FAIL",
                }
                for check in checks
            ]
        )

    series = _health_series(result)
    if series:
        first, last = result.health[0].t_ns, result.health[-1].t_ns
        parts.append("<h2>Health</h2>")
        parts.append(
            f"<p>{len(result.health)} samples over "
            f"{round((last - first) / 1_000_000.0, 3)} ms of simulated time.</p>"
        )
        parts.append("<table>")
        parts.append("<tr><th>gauge</th><th>series</th><th>min</th><th>max</th><th>last</th></tr>")
        for label, values in series:
            parts.append(
                f"<tr><td>{html.escape(label)}</td><td>{svg_sparkline(values)}</td>"
                f"<td>{min(values):g}</td><td>{max(values):g}</td>"
                f"<td>{values[-1]:g}</td></tr>"
            )
        parts.append("</table>")

    if result.counters:
        parts.append("<h2>Counters</h2>")
        parts += _html_table(
            [{"counter": name, "value": result.counters[name]} for name in sorted(result.counters)]
        )

    if sink is not None:
        spans = _top_spans(sink, top_span_count)
        if spans:
            parts.append("<h2>Top spans</h2>")
            parts += _html_table(spans)

    parts.append("</body></html>")
    return "\n".join(parts) + "\n"


def write_run_report(
    path: Union[str, Path],
    result,
    *,
    slo: Optional[SLOThresholds] = None,
    sink: Optional[MemoryTraceSink] = None,
    title: Optional[str] = None,
    fmt: Optional[str] = None,
) -> Path:
    """Write a run report to ``path``; format from ``fmt`` or the suffix.

    ``.html``/``.htm`` produce the HTML page, anything else markdown
    (``fmt`` in ``{"html", "markdown", "md"}`` overrides the suffix).
    """
    target = Path(path)
    if fmt is None:
        fmt = "html" if target.suffix.lower() in (".html", ".htm") else "markdown"
    if fmt == "html":
        content = run_report_html(result, slo=slo, sink=sink, title=title)
    elif fmt in ("markdown", "md"):
        content = run_report_markdown(result, slo=slo, sink=sink, title=title)
    else:
        raise ValueError(f"unknown report format {fmt!r}; expected html or markdown")
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(content, encoding="utf-8")
    return target
