"""Windowed tail-latency helpers: reference implementation and formatting.

The streaming tracker lives next to the other latency accumulators
(:class:`repro.metrics.latency.WindowedTailTracker`); this module provides
the *independent* full-history reference the tracker is validated against -
a plain group-by over a completed run's time series - plus a small table
formatter for CLIs and examples.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple

from repro.metrics.collector import TimeSeriesPoint
from repro.metrics.latency import (
    DEFAULT_TAIL_WINDOW_NS,
    TailWindow,
    WindowedTailTracker,
    percentile,
)

__all__ = [
    "DEFAULT_TAIL_WINDOW_NS",
    "TailWindow",
    "WindowedTailTracker",
    "reference_tail_windows",
    "format_tail_windows",
]


def reference_tail_windows(
    time_series: Iterable[TimeSeriesPoint], window_ns: int = DEFAULT_TAIL_WINDOW_NS
) -> Tuple[TailWindow, ...]:
    """Windowed tail series recomputed from a full completion history.

    Deliberately *not* implemented via the streaming tracker: this is the
    brute-force reference (bucket every completion by ``completion_ns //
    window_ns``, then take percentiles per bucket with the shared
    nearest-rank :func:`~repro.metrics.latency.percentile`) that the
    tracker's output must match exactly.  Only meaningful for results
    recorded with the collector's ``"full"`` history mode - a truncated
    history would silently drop early windows.
    """
    if window_ns <= 0:
        raise ValueError("window_ns must be positive")
    buckets: Dict[int, List[int]] = {}
    for point in time_series:
        buckets.setdefault(point.completion_ns // window_ns, []).append(point.latency_ns)
    windows = []
    for index in sorted(buckets):
        samples = buckets[index]
        windows.append(
            TailWindow(
                index=index,
                start_ns=index * window_ns,
                end_ns=(index + 1) * window_ns,
                count=len(samples),
                p50_ns=percentile(samples, 0.50),
                p99_ns=percentile(samples, 0.99),
                p999_ns=percentile(samples, 0.999),
                max_ns=max(samples),
            )
        )
    return tuple(windows)


def format_tail_windows(windows: Sequence[TailWindow]) -> str:
    """Aligned plain-text table of a windowed tail series (times in us)."""
    lines = [
        f"{'window':>8}  {'start_ms':>9}  {'count':>6}  "
        f"{'p50_us':>9}  {'p99_us':>9}  {'p999_us':>9}  {'max_us':>9}"
    ]
    for window in windows:
        lines.append(
            f"{window.index:>8}  {window.start_ns / 1e6:>9.3f}  {window.count:>6}  "
            f"{window.p50_ns / 1e3:>9.1f}  {window.p99_ns / 1e3:>9.1f}  "
            f"{window.p999_ns / 1e3:>9.1f}  {window.max_ns / 1e3:>9.1f}"
        )
    return "\n".join(lines)
