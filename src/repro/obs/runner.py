"""Convenience entry point for running one job with tracing enabled.

Kept separate from :mod:`repro.obs.trace` (a leaf module the simulator
imports) because running a job needs :mod:`repro.sim.ssd`; importing this
module from ``repro.obs.__init__`` would create a cycle.
"""

from __future__ import annotations

from typing import Tuple

from repro.metrics.report import SimulationResult
from repro.obs.trace import MemoryTraceSink
from repro.sim.ssd import SSDSimulator


def run_traced(job) -> Tuple[SimulationResult, MemoryTraceSink]:
    """Execute a :class:`~repro.experiments.spec.SimJob` with a memory sink.

    Mirrors ``SimJob.execute`` exactly except for the attached sink, so the
    returned result is value-identical to an untraced run of the same job
    (the digest-identity contract the tests enforce).
    """
    sink = MemoryTraceSink()
    workload = job.workload.build()
    simulator = SSDSimulator(
        job.resolved_config,
        job.scheduler,
        scheduler_options=job.options_dict,
        trace_sink=sink,
    )
    result = simulator.run(workload, workload_name=job.workload.name)
    return result, sink
