"""Periodic simulator health sampling.

The :class:`HealthSampler` rides inside a running
:class:`~repro.sim.ssd.SSDSimulator` and, on a configurable *simulated-time*
cadence, records one :class:`HealthSample` of the pressure gauges a long run
needs watched: event backlog, host/device queue depths, GC debt and
free-block pressure, and instantaneous chip busyness.  Samples land at the
first clock advance at or past each interval boundary, so the series is a
pure function of the event stream - a checkpointed-and-resumed run produces
the identical series an uninterrupted run does, and the sampler itself is
plain picklable state that rides inside checkpoints.

This module is an import leaf (no :mod:`repro` imports), so both the
simulator and the result container can depend on it without cycles.  The
series is observational only: it is carried on the result as a
fingerprint-excluded field and never influences simulated behaviour.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, NamedTuple, Tuple

#: Default sampling cadence: 1 ms of simulated time (matches the default
#: tail-latency window, so health and tail series line up).
DEFAULT_HEALTH_INTERVAL_NS = 1_000_000

#: Default bound on retained samples: old samples are dropped first, so the
#: series stays memory-flat on arbitrarily long replays.
DEFAULT_MAX_HEALTH_SAMPLES = 4096


class HealthSample(NamedTuple):
    """One instantaneous snapshot of simulator pressure gauges."""

    #: Simulated time the sample was taken at.
    t_ns: int
    #: Events processed so far (ties the sample to run progress).
    events_processed: int
    #: Dynamic events waiting in the event heap.
    event_backlog: int
    #: Tags occupying the device queue (NCQ occupancy).
    queue_depth: int
    #: Host-side requests waiting for a free queue slot.
    host_backlog: int
    #: Host I/Os admitted but not yet fully served.
    inflight_ios: int
    #: GC jobs queued behind busy chips (the GC debt).
    gc_backlog: int
    #: Planes currently below the GC free-block watermark.
    planes_below_watermark: int
    #: Free blocks on the tightest plane (the free-block pressure gauge).
    min_free_blocks: int
    #: Free blocks across every plane of every chip.
    total_free_blocks: int
    #: Chips executing a transaction at the sample instant.
    busy_chips: int
    #: ``busy_chips`` over the chip population.
    chip_busy_fraction: float


class HealthSampler:
    """Samples a simulator's health on a fixed simulated-time cadence.

    The simulator calls :meth:`sample` whenever its clock advances to or
    past :attr:`next_due_ns`; the sampler snapshots the gauges and arms the
    next boundary strictly after ``now_ns`` (idle gaps produce no backfilled
    samples).  ``max_samples`` bounds retention ring-buffer style.
    """

    def __init__(
        self,
        interval_ns: int = DEFAULT_HEALTH_INTERVAL_NS,
        max_samples: int = DEFAULT_MAX_HEALTH_SAMPLES,
    ) -> None:
        if interval_ns <= 0:
            raise ValueError("interval_ns must be positive")
        if max_samples <= 0:
            raise ValueError("max_samples must be positive")
        self.interval_ns = interval_ns
        self.max_samples = max_samples
        self.next_due_ns = interval_ns
        self.taken = 0
        self.samples: Deque[HealthSample] = deque(maxlen=max_samples)

    def sample(self, simulator, now_ns: int) -> HealthSample:
        """Record one sample from ``simulator`` state at ``now_ns``."""
        chips = simulator.chips
        busy_chips = 0
        for chip in chips.values():
            if now_ns < chip.busy_until:
                busy_chips += 1
        watermark = simulator.gc.free_block_watermark
        min_free = -1
        total_free = 0
        below = 0
        for chip in chips.values():
            for plane in chip.planes.values():
                free = plane.free_blocks
                total_free += free
                if free < watermark:
                    below += 1
                if min_free < 0 or free < min_free:
                    min_free = free
        record = HealthSample(
            t_ns=now_ns,
            events_processed=simulator.events.processed,
            event_backlog=len(simulator.events),
            queue_depth=simulator.queue.occupancy,
            host_backlog=simulator.queue.backlog_size,
            inflight_ios=len(simulator._tags_by_io),
            gc_backlog=sum(len(jobs) for jobs in simulator._gc_backlog.values()),
            planes_below_watermark=below,
            min_free_blocks=max(min_free, 0),
            total_free_blocks=total_free,
            busy_chips=busy_chips,
            chip_busy_fraction=busy_chips / len(chips) if chips else 0.0,
        )
        self.samples.append(record)
        self.taken += 1
        # Arm the first boundary strictly after now; long idle stretches
        # skip straight to the next live instant instead of backfilling.
        self.next_due_ns = (now_ns // self.interval_ns + 1) * self.interval_ns
        return record

    def finish(self) -> Tuple[HealthSample, ...]:
        """The retained series, oldest first (most recent ``max_samples``)."""
        return tuple(self.samples)
