"""Request-lifecycle trace sinks.

The simulator and its components (schedulers, flash controllers, the garbage
collector) emit *spans* - named, timed intervals such as one host I/O from
arrival to completion, one memory-request composition, one flash transaction
with its bus/cell phase split, or one GC pass - through a :class:`TraceSink`.

The sink contract is deliberately tiny so the zero-overhead-when-off promise
holds: every instrumented component keeps a ``sink`` attribute that defaults
to the shared :data:`NULL_SINK`, and every hot-path emission site is guarded
by a single ``sink.enabled`` (or a precomputed boolean) truth test.  With the
null sink the simulator executes exactly the same instruction stream it did
before tracing existed - the perf digest gate (``repro.perf.compare
--require-identical``) proves the results stay byte-identical.

:class:`MemoryTraceSink` records spans in memory as plain picklable tuples,
so a traced simulator can still be checkpointed (the sink rides inside the
single-graph snapshot and resumes with its history intact).  The Chrome
trace-event / Perfetto export lives in :mod:`repro.obs.export`.
"""

from __future__ import annotations

from typing import Dict, List, NamedTuple

#: ``phase`` values of a :class:`SpanRecord`, matching the Chrome trace-event
#: phases they export to: ``"X"`` complete (duration) events, ``"i"`` instant
#: events.
SPAN_PHASES = ("X", "i")


class SpanRecord(NamedTuple):
    """One recorded span or instant event.

    A NamedTuple rather than a dataclass: traced runs emit one per I/O,
    memory request and transaction, and the tuple constructor keeps the
    tracing tax on hot completion paths as small as possible.  ``args`` is a
    plain dict of JSON-serialisable annotation values.
    """

    name: str
    category: str
    track: str
    start_ns: int
    duration_ns: int
    phase: str
    args: dict


class TraceSink:
    """Base sink: the protocol components emit request-lifecycle spans into.

    ``enabled`` is a class attribute so emission sites can gate on a plain
    attribute load; subclasses that record anything set it to True.  The base
    class *is* the null implementation - both methods discard their input.
    """

    enabled: bool = False

    def span(
        self,
        name: str,
        *,
        category: str,
        track: str,
        start_ns: int,
        duration_ns: int,
        **args,
    ) -> None:
        """Record a completed interval (arrival -> completion style)."""

    def instant(self, name: str, *, category: str, track: str, ts_ns: int, **args) -> None:
        """Record a point event (a GC trigger, a FUA barrier engaging)."""


class NullTraceSink(TraceSink):
    """Discards everything; the default sink of every instrumented component."""

    enabled = False


#: Shared default sink.  Components compare ``sink.enabled`` rather than
#: identity, so restored checkpoints (which unpickle their own NullTraceSink
#: instance) behave identically.
NULL_SINK = NullTraceSink()


class MemoryTraceSink(TraceSink):
    """Records every span in memory, in emission order.

    Plain list of :class:`SpanRecord` tuples: picklable (checkpoints carry
    the sink inside the simulator state graph), deterministic, and cheap to
    post-process into Chrome trace JSON or top-N tables.
    """

    enabled = True

    def __init__(self) -> None:
        self.records: List[SpanRecord] = []

    def span(
        self,
        name: str,
        *,
        category: str,
        track: str,
        start_ns: int,
        duration_ns: int,
        **args,
    ) -> None:
        self.records.append(
            SpanRecord(name, category, track, start_ns, duration_ns, "X", args)
        )

    def instant(self, name: str, *, category: str, track: str, ts_ns: int, **args) -> None:
        self.records.append(SpanRecord(name, category, track, ts_ns, 0, "i", args))

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def total_records(self) -> int:
        """Spans plus instants emitted so far."""
        return len(self.records)

    def counts_by_name(self) -> Dict[str, int]:
        """Emission count per span name (reconciles with the counter registry)."""
        counts: Dict[str, int] = {}
        for record in self.records:
            counts[record.name] = counts.get(record.name, 0) + 1
        return counts

    def longest(self, limit: int = 10) -> List[SpanRecord]:
        """The ``limit`` longest duration spans, longest first.

        Ties break on (start time, name) so the table is deterministic.
        """
        spans = [record for record in self.records if record.phase == "X"]
        spans.sort(key=lambda r: (-r.duration_ns, r.start_ns, r.name))
        return spans[:limit]
