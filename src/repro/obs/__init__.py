"""Observability: request-lifecycle tracing, counters, windowed tails.

The package splits into leaves the simulator may import (:mod:`~repro.obs.trace`,
:mod:`~repro.obs.counters`) and consumers of finished runs
(:mod:`~repro.obs.export`, :mod:`~repro.obs.windows`, the ``python -m
repro.obs`` CLI).  :mod:`repro.obs.runner` is deliberately *not* imported
here - it needs :mod:`repro.sim.ssd`, which itself imports the trace leaf -
and the :mod:`~repro.obs.windows` symbols resolve lazily for the same
reason: they pull in :mod:`repro.metrics`, which sits *above* the leaves in
the import graph, so an eager import here would close a cycle whenever a
leaf consumer (say :mod:`repro.flash.controller`) is the first to touch
this package.
"""

from repro.obs.counters import CounterRegistry, merge_counter_snapshots
from repro.obs.export import (
    chrome_trace_document,
    load_trace,
    span_event_count,
    validate_chrome_trace,
    write_chrome_trace,
    write_job_trace,
    write_skipped_trace_marker,
)
from repro.obs.health import (
    DEFAULT_HEALTH_INTERVAL_NS,
    DEFAULT_MAX_HEALTH_SAMPLES,
    HealthSample,
    HealthSampler,
)
from repro.obs.trace import (
    NULL_SINK,
    MemoryTraceSink,
    NullTraceSink,
    SpanRecord,
    TraceSink,
)

_WINDOW_EXPORTS = (
    "DEFAULT_TAIL_WINDOW_NS",
    "TailWindow",
    "WindowedTailTracker",
    "format_tail_windows",
    "reference_tail_windows",
)

#: Run-report symbols, lazy for the same reason as the window exports:
#: :mod:`repro.obs.report` consumes finished results (repro.metrics), which
#: sits above the simulator-importable leaves in the import graph.
_REPORT_EXPORTS = (
    "SLOCheck",
    "SLOThresholds",
    "html_document",
    "render_html_table",
    "render_markdown_table",
    "run_report_html",
    "run_report_markdown",
    "slo_verdicts",
    "sparkline",
    "svg_sparkline",
    "write_run_report",
)


def __getattr__(name: str):
    """Resolve the lazily exported window/report symbols on first touch."""
    if name in _WINDOW_EXPORTS:
        from repro.obs import windows

        return getattr(windows, name)
    if name in _REPORT_EXPORTS:
        from repro.obs import report

        return getattr(report, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "CounterRegistry",
    "merge_counter_snapshots",
    "chrome_trace_document",
    "load_trace",
    "span_event_count",
    "validate_chrome_trace",
    "write_chrome_trace",
    "write_job_trace",
    "write_skipped_trace_marker",
    "DEFAULT_HEALTH_INTERVAL_NS",
    "DEFAULT_MAX_HEALTH_SAMPLES",
    "HealthSample",
    "HealthSampler",
    "NULL_SINK",
    "MemoryTraceSink",
    "NullTraceSink",
    "SpanRecord",
    "TraceSink",
    "DEFAULT_TAIL_WINDOW_NS",
    "TailWindow",
    "WindowedTailTracker",
    "format_tail_windows",
    "reference_tail_windows",
    "SLOCheck",
    "SLOThresholds",
    "html_document",
    "render_html_table",
    "render_markdown_table",
    "run_report_html",
    "run_report_markdown",
    "slo_verdicts",
    "sparkline",
    "svg_sparkline",
    "write_run_report",
]
