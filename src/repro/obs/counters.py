"""Counter registry: named monotonic counters snapshotted into results.

The design keeps the hot paths free of registry machinery: components count
with plain integer attributes on branches they already own (the FUA branch of
``register_tag``, the busy-set discard in ``finish_transaction``, the batch
loop of ``EventQueue.pop_batch``), and the simulator folds everything into
one :class:`CounterRegistry` only when the final
:class:`~repro.metrics.report.SimulationResult` is assembled.  The registry
is therefore an aggregation and naming vehicle, not a live dependency of the
event loop - the zero-overhead-when-off contract of :mod:`repro.obs.trace`
extends to counters.

Counter names are dotted, ``subsystem.metric`` style (``gc.triggers``,
``events.largest_batch``, ``chip.busy_transitions``); snapshots are plain
``{name: int}`` dicts in sorted key order, so results stay picklable,
value-comparable and deterministic across backends.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Tuple


class CounterRegistry:
    """Named integer counters with a deterministic snapshot."""

    __slots__ = ("_values",)

    def __init__(self, initial: Mapping[str, int] | None = None) -> None:
        self._values: Dict[str, int] = {}
        if initial:
            self.update(initial)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def increment(self, name: str, amount: int = 1) -> None:
        """Add ``amount`` to a counter (creating it at zero)."""
        self._values[name] = self._values.get(name, 0) + amount

    def record_max(self, name: str, value: int) -> None:
        """Raise a high-water-mark counter to ``value`` if it is larger."""
        if value > self._values.get(name, 0):
            self._values[name] = value

    def set(self, name: str, value: int) -> None:
        """Overwrite a counter."""
        self._values[name] = int(value)

    def update(self, values: Mapping[str, int]) -> None:
        """Merge a mapping of counters (overwriting existing names)."""
        for name, value in values.items():
            self._values[name] = int(value)

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def get(self, name: str, default: int = 0) -> int:
        return self._values.get(name, default)

    def names(self) -> Tuple[str, ...]:
        return tuple(sorted(self._values))

    def snapshot(self) -> Dict[str, int]:
        """Plain dict of every counter, in sorted name order."""
        return {name: self._values[name] for name in sorted(self._values)}

    def __len__(self) -> int:
        return len(self._values)

    def __contains__(self, name: str) -> bool:
        return name in self._values

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"CounterRegistry({self.snapshot()!r})"


def merge_counter_snapshots(snapshots: Iterable[Mapping[str, int]]) -> Dict[str, int]:
    """Sum per-result counter snapshots into one (sorted) aggregate.

    High-water marks (``*.largest_batch``) take the max instead of the sum -
    a maximum over sub-runs is the only aggregate that keeps its meaning.
    """
    merged = CounterRegistry()
    for snapshot in snapshots:
        for name, value in snapshot.items():
            if name.endswith(".largest_batch"):
                merged.record_max(name, int(value))
            else:
                merged.increment(name, int(value))
    return merged.snapshot()
