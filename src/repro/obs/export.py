"""Chrome trace-event / Perfetto JSON export for recorded trace sinks.

Writes the `trace event format
<https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU>`_
consumed by ``chrome://tracing`` and https://ui.perfetto.dev: a
``traceEvents`` array of ``"X"`` complete events (one per recorded span) and
``"i"`` instant events, plus ``"M"`` metadata events naming each process and
thread.  Span tracks (``host``, ``nvmhc``, ``chip 0.1`` ...) map to threads;
each traced job maps to a process, so multi-job exports show side by side.

Timestamps in the format are *microseconds*; simulator spans are nanoseconds,
so ``ts``/``dur`` are emitted as ``ns / 1000.0`` floats and the document sets
``displayTimeUnit: "ns"`` to keep sub-microsecond durations visible.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

from repro.obs.trace import SPAN_PHASES, MemoryTraceSink, SpanRecord

TRACE_SUFFIX = ".trace.json"

#: Marker written instead of a trace when a cache hit skipped execution.
SKIPPED_TRACE_SUFFIX = ".trace.skipped.json"

#: keys every exported trace event must carry, per phase.
_REQUIRED_EVENT_KEYS = {
    "X": ("name", "cat", "ph", "ts", "dur", "pid", "tid"),
    "i": ("name", "cat", "ph", "ts", "pid", "tid", "s"),
    "M": ("name", "ph", "pid"),
}

SinkLike = Union[MemoryTraceSink, Sequence[SpanRecord]]


def _records(sink: SinkLike) -> Sequence[SpanRecord]:
    if isinstance(sink, MemoryTraceSink):
        return sink.records
    return sink


def chrome_trace_document(
    sinks: Union[SinkLike, Iterable[Tuple[str, SinkLike]]],
    metadata: Optional[Mapping[str, Any]] = None,
) -> Dict[str, Any]:
    """Build a Chrome trace-event document from one or more sinks.

    ``sinks`` is either a single sink (exported as process ``"sim"``) or an
    iterable of ``(process_name, sink)`` pairs.  Process ids are assigned in
    iteration order and thread ids per process in first-seen track order, so
    the export is deterministic for a deterministic simulation.
    """
    if isinstance(sinks, (MemoryTraceSink, list, tuple)) and not (
        isinstance(sinks, (list, tuple))
        and sinks
        and isinstance(sinks[0], tuple)
        and len(sinks[0]) == 2
        and isinstance(sinks[0][0], str)
    ):
        items: List[Tuple[str, SinkLike]] = [("sim", sinks)]  # type: ignore[list-item]
    else:
        items = list(sinks)  # type: ignore[arg-type]

    events: List[Dict[str, Any]] = []
    for pid, (process_name, sink) in enumerate(items, start=1):
        events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "args": {"name": process_name},
            }
        )
        tids: Dict[str, int] = {}
        for record in _records(sink):
            tid = tids.get(record.track)
            if tid is None:
                tid = len(tids) + 1
                tids[record.track] = tid
                events.append(
                    {
                        "name": "thread_name",
                        "ph": "M",
                        "pid": pid,
                        "tid": tid,
                        "args": {"name": record.track},
                    }
                )
            event: Dict[str, Any] = {
                "name": record.name,
                "cat": record.category,
                "ph": record.phase,
                "ts": record.start_ns / 1000.0,
                "pid": pid,
                "tid": tid,
                "args": dict(record.args),
            }
            if record.phase == "X":
                event["dur"] = record.duration_ns / 1000.0
            else:
                event["s"] = "t"  # thread-scoped instant
            events.append(event)

    document: Dict[str, Any] = {
        "traceEvents": events,
        "displayTimeUnit": "ns",
        "otherData": dict(metadata or {}),
    }
    return document


def write_chrome_trace(
    path: Union[str, Path],
    sinks: Union[SinkLike, Iterable[Tuple[str, SinkLike]]],
    metadata: Optional[Mapping[str, Any]] = None,
) -> Path:
    """Serialise :func:`chrome_trace_document` to ``path`` and return it."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    document = chrome_trace_document(sinks, metadata)
    target.write_text(json.dumps(document, sort_keys=True), encoding="utf-8")
    return target


def load_trace(path: Union[str, Path]) -> Dict[str, Any]:
    """Read a trace document previously written by :func:`write_chrome_trace`."""
    return json.loads(Path(path).read_text(encoding="utf-8"))


def validate_chrome_trace(document: Mapping[str, Any]) -> List[str]:
    """Schema-check a trace document; returns a list of problems (empty = ok).

    Checks the structural contract the CI ``obs-smoke`` job relies on: a
    ``traceEvents`` list whose members carry the per-phase required keys,
    non-negative microsecond timestamps, and only known phases.
    """
    problems: List[str] = []
    events = document.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents missing or not a list"]
    if "displayTimeUnit" not in document:
        problems.append("displayTimeUnit missing")
    for position, event in enumerate(events):
        if not isinstance(event, dict):
            problems.append(f"event[{position}]: not an object")
            continue
        phase = event.get("ph")
        required = _REQUIRED_EVENT_KEYS.get(phase)
        if required is None:
            problems.append(f"event[{position}]: unknown phase {phase!r}")
            continue
        missing = [key for key in required if key not in event]
        if missing:
            problems.append(f"event[{position}] ({phase}): missing {', '.join(missing)}")
            continue
        if phase in SPAN_PHASES:
            if not isinstance(event["ts"], (int, float)) or event["ts"] < 0:
                problems.append(f"event[{position}]: bad ts {event.get('ts')!r}")
            if phase == "X" and (
                not isinstance(event["dur"], (int, float)) or event["dur"] < 0
            ):
                problems.append(f"event[{position}]: bad dur {event.get('dur')!r}")
    return problems


def span_event_count(document: Mapping[str, Any]) -> int:
    """Number of non-metadata (``X`` + ``i``) events in a trace document.

    This is the figure that must reconcile with the ``trace.spans`` counter
    recorded in the run's counter registry.
    """
    return sum(
        1
        for event in document.get("traceEvents", ())
        if isinstance(event, dict) and event.get("ph") in SPAN_PHASES
    )


def write_job_trace(directory: Union[str, Path], job, sink: SinkLike, result) -> Path:
    """Write one job's telemetry artifact into ``directory``.

    The file name is the job fingerprint (stable across backends and
    processes), and ``otherData`` carries enough context - workload,
    scheduler, counters, events processed - to interpret the trace without
    the originating process.
    """
    metadata = {
        "job_fingerprint": job.fingerprint(),
        "workload": result.workload,
        "scheduler": result.scheduler,
        "completed_ios": result.completed_ios,
        "events_processed": result.events_processed,
        "counters": dict(result.counters),
    }
    target = Path(directory) / f"{job.fingerprint()}{TRACE_SUFFIX}"
    return write_chrome_trace(target, [(result.workload, sink)], metadata)


def write_skipped_trace_marker(
    directory: Union[str, Path], fingerprint: str, result
) -> Optional[Path]:
    """Record that a job's trace was skipped because its result was cached.

    Tracing requires an actual execution, so cache-hit jobs produce no
    ``.trace.json`` - without a marker, trace-artifact reconciliation reads
    the gap as lost spans.  The marker is a small JSON document named by the
    same fingerprint; an existing trace or marker is left untouched (a prior
    run already explained this fingerprint), returning ``None``.
    """
    base = Path(directory)
    if (base / f"{fingerprint}{TRACE_SUFFIX}").exists():
        return None
    target = base / f"{fingerprint}{SKIPPED_TRACE_SUFFIX}"
    if target.exists():
        return None
    base.mkdir(parents=True, exist_ok=True)
    target.write_text(
        json.dumps(
            {
                "job_fingerprint": fingerprint,
                "status": "skipped-cache-hit",
                "workload": result.workload,
                "scheduler": result.scheduler,
                "completed_ios": result.completed_ios,
            },
            sort_keys=True,
        ),
        encoding="utf-8",
    )
    return target
