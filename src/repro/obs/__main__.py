"""``python -m repro.obs`` - inspect and export simulator traces.

Three subcommands:

``summarize PATH``
    Span counts, total time per span name, and the recorded counter registry
    of a trace artifact.

``top-spans PATH [-n N]``
    The N longest duration spans in a trace artifact.

``export --case NAME -o PATH [--scale quick|full] [--tiny]``
    Run every job of a perf-suite case with tracing enabled and write one
    Chrome-trace/Perfetto JSON document (open it at https://ui.perfetto.dev).

``report --scenario NAME -o PATH [--scheduler S] [--chips N] [...]``
    Run a library scenario with tracing, health sampling and telemetry
    attribution enabled, and write a self-contained HTML/markdown run
    report: tenant table with tails, SLO verdicts, health sparklines,
    counters and top spans.
"""

from __future__ import annotations

import argparse
import sys
from typing import Dict, List, Optional, Tuple

from repro.obs.export import load_trace, span_event_count, write_chrome_trace


def _load_events(path: str) -> Tuple[dict, List[dict]]:
    document = load_trace(path)
    events = [e for e in document.get("traceEvents", []) if isinstance(e, dict)]
    return document, events


def _cmd_summarize(args: argparse.Namespace) -> int:
    document, events = _load_events(args.path)
    counts: Dict[str, int] = {}
    totals: Dict[str, float] = {}
    for event in events:
        phase = event.get("ph")
        if phase not in ("X", "i"):
            continue
        name = event.get("name", "?")
        counts[name] = counts.get(name, 0) + 1
        totals[name] = totals.get(name, 0.0) + float(event.get("dur", 0.0))
    print(f"trace: {args.path}")
    print(f"events: {span_event_count(document)} (spans + instants)")
    print(f"{'name':<14} {'count':>8} {'total_us':>12}")
    for name in sorted(counts):
        print(f"{name:<14} {counts[name]:>8} {totals[name]:>12.1f}")
    other = document.get("otherData", {})
    counters = other.get("counters")
    if counters:
        print("\ncounters:")
        width = max(len(name) for name in counters)
        for name in sorted(counters):
            print(f"  {name:<{width}}  {counters[name]}")
    return 0


def _cmd_top_spans(args: argparse.Namespace) -> int:
    _, events = _load_events(args.path)
    spans = [e for e in events if e.get("ph") == "X"]
    spans.sort(key=lambda e: (-float(e.get("dur", 0.0)), float(e.get("ts", 0.0))))
    print(f"{'name':<10} {'track':<12} {'start_us':>12} {'dur_us':>10}  args")
    for event in spans[: args.count]:
        print(
            f"{event.get('name', '?'):<10} {_track(events, event):<12} "
            f"{float(event.get('ts', 0.0)):>12.1f} {float(event.get('dur', 0.0)):>10.1f}  "
            f"{event.get('args', {})}"
        )
    return 0


def _track(events: List[dict], span: dict) -> str:
    for event in events:
        if (
            event.get("ph") == "M"
            and event.get("name") == "thread_name"
            and event.get("pid") == span.get("pid")
            and event.get("tid") == span.get("tid")
        ):
            return str(event.get("args", {}).get("name", "?"))
    return "?"


def _cmd_export(args: argparse.Namespace) -> int:
    from repro.obs.runner import run_traced
    from repro.perf.suite import canonical_suite, tiny_suite

    suite = tiny_suite() if args.tiny else canonical_suite(args.scale)
    by_name = {case.name: case for case in suite}
    case = by_name.get(args.case)
    if case is None:
        print(
            f"unknown case {args.case!r}; available: {', '.join(sorted(by_name))}",
            file=sys.stderr,
        )
        return 2
    sinks = []
    counters: Dict[str, int] = {}
    for job in case.jobs:
        result, sink = run_traced(job)
        sinks.append((f"{result.workload} [{result.scheduler}]", sink))
        from repro.obs.counters import merge_counter_snapshots

        counters = merge_counter_snapshots([counters, result.counters])
    path = write_chrome_trace(
        args.output, sinks, {"case": case.name, "counters": counters}
    )
    total = sum(sink.total_records for _, sink in sinks)
    print(f"wrote {path} ({total} events from {len(sinks)} jobs)")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.obs.report import SLOThresholds, write_run_report
    from repro.obs.trace import MemoryTraceSink
    from repro.scenarios.library import (
        bursty_multitenant_scenario,
        diurnal_scenario,
        steady_scenario,
    )
    from repro.sim.config import SimulationConfig
    from repro.sim.ssd import SSDSimulator

    factories = {
        "steady": steady_scenario,
        "bursty": bursty_multitenant_scenario,
        "diurnal": diurnal_scenario,
    }
    factory = factories.get(args.scenario)
    if factory is None:
        print(
            f"unknown scenario {args.scenario!r}; available: "
            f"{', '.join(sorted(factories))}",
            file=sys.stderr,
        )
        return 2
    scenario = factory(seed=args.seed)
    sink = MemoryTraceSink()
    simulator = SSDSimulator(
        SimulationConfig.paper_scale(args.chips),
        args.scheduler,
        trace_sink=sink,
        health_interval_ns=args.health_interval_us * 1_000,
    )
    result = simulator.run(scenario.build(), workload_name=scenario.name)
    slo = SLOThresholds(
        mean_us=args.slo_mean_us, p99_us=args.slo_p99_us, p999_us=args.slo_p999_us
    )
    path = write_run_report(
        args.output,
        result,
        slo=slo if slo else None,
        sink=sink,
        title=f"Scenario report: {scenario.name} [{args.scheduler}]",
    )
    tenants = (
        ", ".join(result.attribution.tenants()) if result.attribution else "(none)"
    )
    print(
        f"wrote {path} ({result.completed_ios} I/Os, tenants: {tenants}, "
        f"{len(result.health)} health samples)"
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="python -m repro.obs", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    summarize = sub.add_parser("summarize", help="span counts + counters of a trace")
    summarize.add_argument("path", help="trace JSON file")
    summarize.set_defaults(func=_cmd_summarize)

    top = sub.add_parser("top-spans", help="longest duration spans of a trace")
    top.add_argument("path", help="trace JSON file")
    top.add_argument("-n", "--count", type=int, default=10)
    top.set_defaults(func=_cmd_top_spans)

    export = sub.add_parser("export", help="run a perf-suite case traced and export")
    export.add_argument("--case", required=True, help="perf-suite case name")
    export.add_argument("-o", "--output", required=True, help="output trace JSON path")
    export.add_argument("--scale", default="quick", help="canonical suite scale")
    export.add_argument(
        "--tiny", action="store_true", help="pick the case from the tiny suite instead"
    )
    export.set_defaults(func=_cmd_export)

    report = sub.add_parser(
        "report", help="run a library scenario and write an HTML/markdown report"
    )
    report.add_argument(
        "--scenario", required=True, help="library scenario (steady/bursty/diurnal)"
    )
    report.add_argument(
        "-o", "--output", required=True, help="report path (.html or .md)"
    )
    report.add_argument("--scheduler", default="SPK3", help="scheduler (default SPK3)")
    report.add_argument(
        "--chips", type=int, default=16, help="chips for the paper-scale config"
    )
    report.add_argument("--seed", type=int, default=11, help="scenario seed")
    report.add_argument(
        "--health-interval-us",
        type=int,
        default=50,
        help="health sampling cadence in simulated microseconds",
    )
    report.add_argument("--slo-mean-us", type=float, default=None)
    report.add_argument("--slo-p99-us", type=float, default=None)
    report.add_argument("--slo-p999-us", type=float, default=None)
    report.set_defaults(func=_cmd_report)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via CLI smoke tests
    raise SystemExit(main())
