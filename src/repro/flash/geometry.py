"""SSD geometry and physical page addressing.

A many-chip SSD (paper Section 2, Figure 2) is organised as::

    SSD -> channels -> chips -> dies -> planes -> blocks -> pages

The paper's default configuration is 8-32 channels with 8-32 chips per
channel (64-1024 chips total), each chip with 2 dies and 4 planes
(2 planes per die), 8192 blocks per die, 128 pages per block and 2 KB pages.

:class:`SSDGeometry` captures the shape, exposes derived sizes and converts
between flat page indices (used by the FTL) and structured
:class:`PhysicalPageAddress` tuples (used by the flash controllers and the
schedulers that are aware of the physical layout).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import NamedTuple


class PhysicalPageAddress(NamedTuple):
    """Fully-qualified physical location of one flash page.

    Attributes mirror the resource hierarchy of the paper: ``channel`` and
    ``chip`` are the system-level coordinates used for channel striping and
    pipelining, while ``die`` and ``plane`` are the flash-level coordinates
    that determine which flash-level parallelism (FLP) class a transaction
    can reach.

    A ``NamedTuple`` rather than a frozen dataclass: the simulator creates
    one address per translated page, per GC move and per erase sweep, and
    uses them as keys of the FTL's reverse map - tuple construction,
    hashing and ordering all run in C, where the frozen-dataclass protocol
    (``object.__setattr__`` per field on init, tuple building per hash) was
    a measurable share of write-heavy runs.  Field order is the comparison
    order, identical to the previous ``order=True`` dataclass.
    """

    channel: int
    chip: int
    die: int
    plane: int
    block: int
    page: int

    @property
    def chip_key(self) -> tuple:
        """Key identifying the physical chip this page lives on."""
        return (self.channel, self.chip)

    @property
    def die_key(self) -> tuple:
        """Key identifying the die this page lives on."""
        return (self.channel, self.chip, self.die)

    @property
    def plane_key(self) -> tuple:
        """Key identifying the plane this page lives on."""
        return (self.channel, self.chip, self.die, self.plane)

    def same_plane_as(self, other: "PhysicalPageAddress") -> bool:
        """True when both addresses live on the same plane.

        Field-wise comparison: equivalent to ``plane_key == other.plane_key``
        without constructing two tuples - migration listeners ask this once
        per migrated page.
        """
        return (
            self.plane == other.plane
            and self.die == other.die
            and self.chip == other.chip
            and self.channel == other.channel
        )

    def with_block_page(self, block: int, page: int) -> "PhysicalPageAddress":
        """Return a copy of this address pointing at a different block/page."""
        return PhysicalPageAddress(
            channel=self.channel,
            chip=self.chip,
            die=self.die,
            plane=self.plane,
            block=block,
            page=page,
        )


@dataclass(frozen=True)
class SSDGeometry:
    """Static shape of the simulated SSD.

    The defaults follow the evaluation configuration in Section 5.1 of the
    paper (two dies and four planes per chip, 128 pages of 2 KB per block),
    scaled to 8192 blocks per die by default but configurable down for fast
    unit tests.
    """

    num_channels: int = 8
    chips_per_channel: int = 8
    dies_per_chip: int = 2
    planes_per_die: int = 2
    blocks_per_plane: int = 256
    pages_per_block: int = 128
    page_size_bytes: int = 2048

    def __post_init__(self) -> None:
        for name in (
            "num_channels",
            "chips_per_channel",
            "dies_per_chip",
            "planes_per_die",
            "blocks_per_plane",
            "pages_per_block",
            "page_size_bytes",
        ):
            value = getattr(self, name)
            if not isinstance(value, int) or value <= 0:
                raise ValueError(f"{name} must be a positive integer, got {value!r}")

    # ------------------------------------------------------------------
    # Derived sizes
    # ------------------------------------------------------------------
    @property
    def num_chips(self) -> int:
        """Total number of flash chips in the SSD."""
        return self.num_channels * self.chips_per_channel

    @property
    def num_dies(self) -> int:
        """Total number of dies in the SSD."""
        return self.num_chips * self.dies_per_chip

    @property
    def num_planes(self) -> int:
        """Total number of planes in the SSD."""
        return self.num_dies * self.planes_per_die

    @property
    def planes_per_chip(self) -> int:
        """Number of planes inside one chip."""
        return self.dies_per_chip * self.planes_per_die

    @property
    def pages_per_plane(self) -> int:
        """Number of pages in one plane."""
        return self.blocks_per_plane * self.pages_per_block

    @property
    def pages_per_die(self) -> int:
        """Number of pages in one die."""
        return self.pages_per_plane * self.planes_per_die

    @property
    def pages_per_chip(self) -> int:
        """Number of pages in one chip."""
        return self.pages_per_die * self.dies_per_chip

    @property
    def pages_per_channel(self) -> int:
        """Number of pages behind one channel."""
        return self.pages_per_chip * self.chips_per_channel

    @property
    def total_pages(self) -> int:
        """Total number of physical pages in the SSD."""
        return self.pages_per_channel * self.num_channels

    @property
    def capacity_bytes(self) -> int:
        """Raw capacity of the SSD in bytes."""
        return self.total_pages * self.page_size_bytes

    @property
    def block_size_bytes(self) -> int:
        """Size of one erase block in bytes."""
        return self.pages_per_block * self.page_size_bytes

    # ------------------------------------------------------------------
    # Chip enumeration helpers
    # ------------------------------------------------------------------
    def chip_index(self, channel: int, chip: int) -> int:
        """Flatten a (channel, chip-in-channel) pair into a global chip id.

        Chips are numbered channel-major so that chips ``0..num_channels-1``
        are the chips at offset 0 of every channel. This matches the RIOS
        traversal order described in Section 4.1 of the paper (visit the
        chips with the same offset across channels, then increase the
        offset).
        """
        self._check_range("channel", channel, self.num_channels)
        self._check_range("chip", chip, self.chips_per_channel)
        return chip * self.num_channels + channel

    def chip_coordinates(self, chip_index: int) -> tuple:
        """Inverse of :meth:`chip_index`: return ``(channel, chip)``."""
        self._check_range("chip_index", chip_index, self.num_chips)
        chip = chip_index // self.num_channels
        channel = chip_index % self.num_channels
        return channel, chip

    def iter_chip_keys(self):
        """Yield every ``(channel, chip)`` pair in RIOS traversal order."""
        for chip in range(self.chips_per_channel):
            for channel in range(self.num_channels):
                yield (channel, chip)

    # ------------------------------------------------------------------
    # Page address conversion
    # ------------------------------------------------------------------
    def ppn_to_address(self, ppn: int) -> PhysicalPageAddress:
        """Convert a flat physical page number into a structured address.

        The flat numbering stripes pages channel-first, then chip, then die,
        then plane, then walks blocks and pages.  This is the *static*
        layout; the page-mapped FTL is free to allocate pages anywhere, but
        the flat<->structured conversion must always round-trip.
        """
        self._check_range("ppn", ppn, self.total_pages)
        remaining, page = divmod(ppn, self.pages_per_block)
        remaining, block = divmod(remaining, self.blocks_per_plane)
        remaining, plane = divmod(remaining, self.planes_per_die)
        remaining, die = divmod(remaining, self.dies_per_chip)
        remaining, chip = divmod(remaining, self.chips_per_channel)
        channel = remaining
        return PhysicalPageAddress(
            channel=channel,
            chip=chip,
            die=die,
            plane=plane,
            block=block,
            page=page,
        )

    def address_to_ppn(self, address: PhysicalPageAddress) -> int:
        """Convert a structured physical address into a flat page number."""
        self._validate_address(address)
        ppn = address.channel
        ppn = ppn * self.chips_per_channel + address.chip
        ppn = ppn * self.dies_per_chip + address.die
        ppn = ppn * self.planes_per_die + address.plane
        ppn = ppn * self.blocks_per_plane + address.block
        ppn = ppn * self.pages_per_block + address.page
        return ppn

    def _validate_address(self, address: PhysicalPageAddress) -> None:
        self._check_range("channel", address.channel, self.num_channels)
        self._check_range("chip", address.chip, self.chips_per_channel)
        self._check_range("die", address.die, self.dies_per_chip)
        self._check_range("plane", address.plane, self.planes_per_die)
        self._check_range("block", address.block, self.blocks_per_plane)
        self._check_range("page", address.page, self.pages_per_block)

    @staticmethod
    def _check_range(name: str, value: int, upper: int) -> None:
        if not 0 <= value < upper:
            raise ValueError(f"{name}={value} out of range [0, {upper})")

    # ------------------------------------------------------------------
    # Logical page helpers
    # ------------------------------------------------------------------
    def bytes_to_pages(self, size_bytes: int) -> int:
        """Number of pages needed to hold ``size_bytes`` (at least one)."""
        if size_bytes <= 0:
            return 1
        return -(-size_bytes // self.page_size_bytes)

    def lba_to_lpn(self, offset_bytes: int) -> int:
        """Convert a byte offset into a logical page number."""
        if offset_bytes < 0:
            raise ValueError(f"offset_bytes must be non-negative, got {offset_bytes}")
        return offset_bytes // self.page_size_bytes

    def scaled(self, **overrides) -> "SSDGeometry":
        """Return a copy of this geometry with selected fields replaced."""
        values = {
            "num_channels": self.num_channels,
            "chips_per_channel": self.chips_per_channel,
            "dies_per_chip": self.dies_per_chip,
            "planes_per_die": self.planes_per_die,
            "blocks_per_plane": self.blocks_per_plane,
            "pages_per_block": self.pages_per_block,
            "page_size_bytes": self.page_size_bytes,
        }
        values.update(overrides)
        return SSDGeometry(**values)
