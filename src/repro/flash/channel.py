"""Channel (bus) model.

All chips attached to one channel share a single data path between the flash
controller and the flash medium (paper Section 2.1).  Only one transfer can
occupy the bus at any time, so bus phases of transactions on different chips
of the same channel serialise; the induced waiting shows up as the
"bus contention" component of the execution-time breakdown (Figure 13).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class ChannelStats:
    """Accumulated occupancy statistics for one channel."""

    busy_time_ns: int = 0
    contention_time_ns: int = 0
    transfers: int = 0
    bytes_moved: int = 0


class Channel:
    """A shared bus serialising data transfers of the chips attached to it."""

    def __init__(self, channel_id: int) -> None:
        self.channel_id = channel_id
        self.free_at_ns: int = 0
        self.stats = ChannelStats()

    def reserve(self, request_ns: int, duration_ns: int, num_bytes: int = 0) -> tuple:
        """Reserve the bus for ``duration_ns`` starting no earlier than ``request_ns``.

        Returns ``(start_ns, end_ns, wait_ns)`` where ``wait_ns`` is the
        contention delay caused by an earlier transfer still occupying the
        bus.  The reservation is immediately recorded, so later callers (in
        event order) observe the updated availability.
        """
        if duration_ns < 0:
            raise ValueError("duration_ns must be non-negative")
        start_ns = max(request_ns, self.free_at_ns)
        wait_ns = start_ns - request_ns
        end_ns = start_ns + duration_ns
        self.free_at_ns = end_ns
        self.stats.busy_time_ns += duration_ns
        self.stats.contention_time_ns += wait_ns
        self.stats.transfers += 1
        self.stats.bytes_moved += num_bytes
        return start_ns, end_ns, wait_ns

    def is_busy(self, now_ns: int) -> bool:
        """True while a transfer occupies the bus."""
        return now_ns < self.free_at_ns

    def utilization(self, makespan_ns: int) -> float:
        """Fraction of the observation window the bus spent transferring data."""
        if makespan_ns <= 0:
            return 0.0
        return min(1.0, self.stats.busy_time_ns / makespan_ns)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"Channel(id={self.channel_id}, free_at={self.free_at_ns})"
