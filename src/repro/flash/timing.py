"""NAND flash timing model.

The evaluation in the paper (Section 5.1) uses MLC NAND with:

* read (cell sensing) latency of 20 us,
* program latency varying between 200 us (fast page) and 2200 us (slow page)
  depending on the page address within the block (intrinsic MLC write
  variation, cf. NANDFlashSim),
* ONFI 2.x channels (~166 MT/s, i.e. roughly 166 MB/s per 8-bit channel),
* 2 KB pages.

All times are expressed in integer nanoseconds so that event ordering in the
simulator is exact and reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass

US = 1_000  # nanoseconds per microsecond, kept explicit for readability
NS_PER_US = 1_000
NS_PER_MS = 1_000_000
NS_PER_S = 1_000_000_000


@dataclass(frozen=True)
class FlashTiming:
    """Latency parameters of the NAND devices and the channel bus.

    The defaults correspond to the configuration in Section 5.1 of the
    paper.  ``program_fast_ns``/``program_slow_ns`` bound the MLC program
    variation; the per-page latency is interpolated deterministically from
    the page index so that repeated simulations are reproducible.
    """

    read_ns: int = 20 * NS_PER_US
    program_fast_ns: int = 200 * NS_PER_US
    program_slow_ns: int = 2_200 * NS_PER_US
    erase_ns: int = 1_500 * NS_PER_US
    bus_bytes_per_sec: int = 166_000_000  # ONFI 2.x, ~166MB/s per channel
    command_overhead_ns: int = 200        # command/address cycles per request
    transaction_overhead_ns: int = 300    # transaction decision + delimiter cmds
    mlc_fast_page_fraction: float = 0.5   # fraction of pages in a block that are "fast"

    def __post_init__(self) -> None:
        if self.read_ns <= 0 or self.program_fast_ns <= 0 or self.erase_ns <= 0:
            raise ValueError("latencies must be positive")
        if self.program_slow_ns < self.program_fast_ns:
            raise ValueError("program_slow_ns must be >= program_fast_ns")
        if self.bus_bytes_per_sec <= 0:
            raise ValueError("bus_bytes_per_sec must be positive")
        if not 0.0 <= self.mlc_fast_page_fraction <= 1.0:
            raise ValueError("mlc_fast_page_fraction must be in [0, 1]")

    # ------------------------------------------------------------------
    # Cell (array) operation latencies
    # ------------------------------------------------------------------
    def read_latency_ns(self) -> int:
        """Latency of sensing one page out of the array into the register."""
        return self.read_ns

    def program_latency_ns(self, page_in_block: int) -> int:
        """Latency of programming a page, depending on its index in the block.

        MLC NAND pairs a fast (LSB) and a slow (MSB) page on each wordline.
        We model this deterministically: even page indices are fast pages,
        odd indices interpolate towards the slow-page latency as the page
        index grows, reproducing the 200-2200 us spread reported in the
        paper without requiring a vendor datasheet table.
        """
        if page_in_block < 0:
            raise ValueError("page_in_block must be non-negative")
        if page_in_block % 2 == 0:
            return self.program_fast_ns
        # Odd (MSB) pages: deterministic spread between fast and slow bounds.
        span = self.program_slow_ns - self.program_fast_ns
        # Use a simple deterministic hash of the page index to spread values.
        fraction = ((page_in_block * 2654435761) % 1024) / 1023.0
        return self.program_fast_ns + int(span * (0.5 + 0.5 * fraction))

    def erase_latency_ns(self) -> int:
        """Latency of erasing one block."""
        return self.erase_ns

    def cell_latency_ns(self, op, page_in_block: int = 0) -> int:
        """Cell latency for an arbitrary flash operation.

        ``op`` is a :class:`repro.flash.commands.FlashOp`; the import is done
        lazily to avoid a circular dependency between the timing and command
        modules.
        """
        from repro.flash.commands import FlashOp

        if op is FlashOp.READ:
            return self.read_latency_ns()
        if op is FlashOp.PROGRAM:
            return self.program_latency_ns(page_in_block)
        if op is FlashOp.ERASE:
            return self.erase_latency_ns()
        raise ValueError(f"unsupported flash operation: {op!r}")

    # ------------------------------------------------------------------
    # Bus transfer latencies
    # ------------------------------------------------------------------
    def transfer_latency_ns(self, num_bytes: int) -> int:
        """Time to move ``num_bytes`` over the channel bus (one direction)."""
        if num_bytes < 0:
            raise ValueError("num_bytes must be non-negative")
        if num_bytes == 0:
            return 0
        return max(1, (num_bytes * NS_PER_S) // self.bus_bytes_per_sec)

    def request_bus_time_ns(self, num_bytes: int) -> int:
        """Bus occupancy of one memory request: command cycles + data."""
        return self.command_overhead_ns + self.transfer_latency_ns(num_bytes)

    def scaled(self, **overrides) -> "FlashTiming":
        """Return a copy of this timing model with selected fields replaced."""
        values = {
            "read_ns": self.read_ns,
            "program_fast_ns": self.program_fast_ns,
            "program_slow_ns": self.program_slow_ns,
            "erase_ns": self.erase_ns,
            "bus_bytes_per_sec": self.bus_bytes_per_sec,
            "command_overhead_ns": self.command_overhead_ns,
            "transaction_overhead_ns": self.transaction_overhead_ns,
            "mlc_fast_page_fraction": self.mlc_fast_page_fraction,
        }
        values.update(overrides)
        return FlashTiming(**values)
