"""Flash memory requests.

An I/O request arriving from the host is split by the NVMHC into page-sized
*memory requests* (paper Section 2.1, "memory request composition").  Each
memory request targets exactly one physical page and is the unit the flash
controller coalesces into flash transactions.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional

from repro.flash.commands import FlashOp
from repro.flash.geometry import PhysicalPageAddress

_memory_request_ids = itertools.count()


def reset_memory_request_ids() -> None:
    """Reset the global memory request id counter (used by tests)."""
    global _memory_request_ids
    _memory_request_ids = itertools.count()


@dataclass(slots=True)
class MemoryRequest:
    """One page-sized flash access derived from a host I/O request.

    Attributes
    ----------
    io_id:
        Identifier of the host I/O request this memory request belongs to.
        Used by FARO's *connectivity* metric and by the completion bitmap.
    op:
        Flash operation (read or program) the request performs.
    lpn:
        Logical page number targeted by the host.
    address:
        Physical page address assigned by the FTL.  ``None`` until the FTL
        has translated the request; schedulers that are aware of the
        physical layout (PAS and Sprinkler) translate eagerly.
    size_bytes:
        Payload size; always one page for regular traffic, but garbage
        collection migrations reuse the same type.
    is_gc:
        True when the request was generated internally by garbage
        collection rather than by the host.
    """

    io_id: int
    op: FlashOp
    lpn: int
    size_bytes: int
    address: Optional[PhysicalPageAddress] = None
    is_gc: bool = False
    request_id: int = field(default_factory=lambda: next(_memory_request_ids))
    #: Extra service time charged when the request went stale because live
    #: data migration moved its target and no readdressing callback fixed it.
    penalty_ns: int = 0

    # Lifecycle timestamps (nanoseconds), filled in by the simulator.
    composed_at_ns: Optional[int] = None
    committed_at_ns: Optional[int] = None
    started_at_ns: Optional[int] = None
    completed_at_ns: Optional[int] = None

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise ValueError("size_bytes must be positive")
        if self.lpn < 0:
            raise ValueError("lpn must be non-negative")

    @property
    def chip_key(self) -> tuple:
        """``(channel, chip)`` of the target chip; requires a translated address."""
        if self.address is None:
            raise ValueError("memory request has not been translated yet")
        return self.address.chip_key

    @property
    def is_translated(self) -> bool:
        """True once the FTL has assigned a physical address."""
        return self.address is not None

    @property
    def is_completed(self) -> bool:
        """True once the flash controller has finished serving the request."""
        return self.completed_at_ns is not None

    def retarget(self, address: PhysicalPageAddress) -> None:
        """Re-point the request at a new physical address.

        Used by the readdressing callback (paper Section 4.3) when live data
        migration (garbage collection, wear levelling, bad-block replacement)
        moves the physical location of a not-yet-served request.
        """
        self.address = address

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        target = self.address.chip_key if self.address is not None else "untranslated"
        return (
            f"MemoryRequest(id={self.request_id}, io={self.io_id}, op={self.op.value}, "
            f"lpn={self.lpn}, target={target})"
        )
