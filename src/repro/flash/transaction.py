"""Flash transactions and the transaction builder.

A *flash transaction* (paper Section 2.2) is the series of commands, data
movements and cell activities a flash controller executes on one chip for a
group of memory requests.  The degree of flash-level parallelism (FLP) of the
transaction depends on how the grouped requests are spread over the chip's
dies and planes:

* requests on different dies can be *die interleaved*;
* requests on different planes of the same die can be served by a single
  *multiplane* (plane-sharing) operation, subject to the plane-address
  constraint of real NAND parts;
* both can be combined, yielding the highest FLP (PAL3).

The :class:`TransactionBuilder` implements the controller-side coalescing:
given the memory requests currently committed for a chip, it selects the
largest group that can legally form one transaction.  The builder is shared
by every scheduler evaluated in the paper - as the paper notes (Figure 8
caption), transaction composition is not part of the scheduling contribution;
what differs between schedulers is *which requests are present* at the
decision instant.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.flash.commands import (
    FlashOp,
    ParallelismClass,
    TransactionKind,
    classify_parallelism,
    kind_for_parallelism,
)
from repro.flash.geometry import SSDGeometry
from repro.flash.request import MemoryRequest
from repro.flash.timing import FlashTiming

_transaction_ids = itertools.count()


def reset_transaction_ids() -> None:
    """Reset the global transaction id counter (used by tests)."""
    global _transaction_ids
    _transaction_ids = itertools.count()


@dataclass(slots=True)
class FlashTransaction:
    """A group of memory requests executed as one unit on a single chip."""

    chip_key: tuple
    requests: List[MemoryRequest]
    kind: TransactionKind
    parallelism: ParallelismClass
    transaction_id: int = field(default_factory=lambda: next(_transaction_ids))

    # Timing, filled by the controller when the transaction is executed.
    bus_time_ns: int = 0
    cell_time_ns: int = 0
    #: Sum of per-die cell activity (intra-chip idleness accounting), filled
    #: by the builder as a by-product of pricing the cell phase.  ``None``
    #: for transactions assembled outside the builder (GC placeholders); the
    #: controller computes it on demand for those.
    die_active_time_ns: Optional[int] = None
    #: True when the transaction carries at least one PROGRAM request,
    #: recorded by the builder so phase scheduling does not re-scan the
    #: requests.  ``None`` for transactions assembled outside the builder.
    has_program: Optional[bool] = None
    issued_at_ns: Optional[int] = None
    bus_started_at_ns: Optional[int] = None
    completed_at_ns: Optional[int] = None
    bus_wait_ns: int = 0
    is_gc: bool = False

    def __post_init__(self) -> None:
        if not self.requests:
            raise ValueError("a transaction must contain at least one memory request")
        channel, chip = self.chip_key
        for req in self.requests:
            address = req.address
            if address is None:
                raise ValueError("memory request has not been translated yet")
            if address.channel != channel or address.chip != chip:
                chips = {req.chip_key for req in self.requests}
                if len(chips) != 1:
                    raise ValueError(f"a transaction must target a single chip, got {chips}")
                raise ValueError("transaction chip_key does not match its requests")

    @property
    def num_requests(self) -> int:
        """Number of memory requests coalesced into this transaction."""
        return len(self.requests)

    @property
    def dies(self) -> List[int]:
        """Sorted list of distinct die indices the transaction touches."""
        return sorted({req.address.die for req in self.requests})

    @property
    def planes_by_die(self) -> Dict[int, List[int]]:
        """Mapping of die index to the sorted list of planes used in that die."""
        planes: Dict[int, set] = {}
        for req in self.requests:
            planes.setdefault(req.address.die, set()).add(req.address.plane)
        return {die: sorted(vals) for die, vals in planes.items()}

    @property
    def io_ids(self) -> List[int]:
        """Sorted list of distinct host I/O requests represented."""
        return sorted({req.io_id for req in self.requests})

    @property
    def total_bytes(self) -> int:
        """Total payload moved over the bus by this transaction."""
        return sum(req.size_bytes for req in self.requests)

    @property
    def service_time_ns(self) -> int:
        """Bus plus cell occupancy of the transaction (excludes bus waiting)."""
        return self.bus_time_ns + self.cell_time_ns


@dataclass(frozen=True)
class TransactionConstraints:
    """Configurable legality rules for coalescing requests into a transaction.

    ``strict_multiplane`` enforces the real-NAND restriction that plane-shared
    pages must sit at the same page offset (and, when
    ``same_block_offset_for_multiplane`` is set, the same block offset) in
    every plane.  The paper's FARO examples assume the FTL allocates pages so
    that this constraint can be met, therefore the default is the relaxed
    model; the strict model is available for ablation studies.
    """

    max_requests_per_transaction: int = 64
    strict_multiplane: bool = False
    same_block_offset_for_multiplane: bool = False
    single_operation_per_transaction: bool = True


class TransactionBuilder:
    """Coalesces committed memory requests into legal flash transactions."""

    def __init__(
        self,
        geometry: SSDGeometry,
        timing: FlashTiming,
        constraints: Optional[TransactionConstraints] = None,
    ) -> None:
        self.geometry = geometry
        self.timing = timing
        self.constraints = constraints or TransactionConstraints()
        #: Per-page program latencies and per-size bus times, memoized: both
        #: are pure functions of immutable timing parameters, and the builder
        #: prices every transaction of the run.
        self._program_ns: Dict[int, int] = {}
        self._bus_ns: Dict[int, int] = {}
        self._planes_per_chip = geometry.dies_per_chip * geometry.planes_per_die

    # ------------------------------------------------------------------
    # Selection
    # ------------------------------------------------------------------
    def select(self, pending: Sequence[MemoryRequest]) -> List[MemoryRequest]:
        """Pick the subset of ``pending`` that the next transaction will carry.

        The selection greedily walks the pending list in order (the scheduler
        already ordered it according to its policy) and accepts a request if
        adding it keeps the transaction legal:

        * all requests must be the same operation kind (read vs program) when
          ``single_operation_per_transaction`` is set,
        * at most one request per plane (a plane register can hold one page),
        * under strict multiplane rules, plane-shared requests must share the
          page offset (and optionally block offset).
        """
        if not pending:
            return []
        selected: List[MemoryRequest] = []
        used_planes: set = set()
        op: Optional[FlashOp] = None
        limit = self.constraints.max_requests_per_transaction
        # Once every plane register of the chip is occupied no further
        # request can join the transaction, whatever its operation - stop
        # scanning instead of walking the rest of an over-committed queue.
        max_planes = self._planes_per_chip
        for req in pending:
            if len(selected) >= limit or len(used_planes) >= max_planes:
                break
            if req.address is None:
                continue
            if op is None:
                op = req.op
            elif self.constraints.single_operation_per_transaction and req.op is not op:
                continue
            plane_key = (req.address.die, req.address.plane)
            if plane_key in used_planes:
                continue
            if self.constraints.strict_multiplane and not self._multiplane_compatible(
                selected, req
            ):
                continue
            selected.append(req)
            used_planes.add(plane_key)
        return selected

    def select_partition(
        self, pending: Sequence[MemoryRequest]
    ) -> "tuple[List[MemoryRequest], List[MemoryRequest]]":
        """:meth:`select`, but also return the rejected remainder.

        One walk produces ``(selected, remaining)`` with ``remaining`` in
        original order - the controller previously re-derived it by hashing
        the selected ids and filtering the queue a second time, which showed
        up on the per-activation hot path.
        """
        if not pending:
            return [], []
        selected: List[MemoryRequest] = []
        remaining: List[MemoryRequest] = []
        keep = remaining.append
        take = selected.append
        used_planes: set = set()
        op: Optional[FlashOp] = None
        taken = 0
        limit = self.constraints.max_requests_per_transaction
        max_planes = self._planes_per_chip
        single_op = self.constraints.single_operation_per_transaction
        strict = self.constraints.strict_multiplane
        for index, req in enumerate(pending):
            if taken >= limit or len(used_planes) >= max_planes:
                remaining.extend(pending[index:])
                break
            address = req.address
            if address is None:
                keep(req)
                continue
            if op is None:
                op = req.op
            elif single_op and req.op is not op:
                keep(req)
                continue
            plane_key = (address.die, address.plane)
            if plane_key in used_planes:
                keep(req)
                continue
            if strict and not self._multiplane_compatible(selected, req):
                keep(req)
                continue
            take(req)
            taken += 1
            used_planes.add(plane_key)
        return selected, remaining

    def _multiplane_compatible(
        self, selected: Sequence[MemoryRequest], candidate: MemoryRequest
    ) -> bool:
        """Check the strict plane-sharing address constraint."""
        for req in selected:
            if req.address.die != candidate.address.die:
                continue
            if req.address.page != candidate.address.page:
                return False
            if (
                self.constraints.same_block_offset_for_multiplane
                and req.address.block != candidate.address.block
            ):
                return False
        return True

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def build(self, chip_key: tuple, requests: Sequence[MemoryRequest]) -> FlashTransaction:
        """Build a transaction from already-selected requests and price it.

        Classification (dies/planes touched), bus pricing, cell pricing and
        die-activity accounting are all derived from one walk over the
        requests - the hot path builds one transaction per chip activation,
        and the previous five separate passes were a measurable cost.
        """
        requests = list(requests)
        if not requests:
            raise ValueError("cannot build an empty transaction")
        timing = self.timing
        read_ns = timing.read_ns
        erase_ns = timing.erase_ns
        program_ns = self._program_ns
        bus_per_size = self._bus_ns
        planes_per_die: Dict[int, set] = {}
        per_die_latency: Dict[int, int] = {}
        bus_ns = 0
        penalty_ns = 0
        all_erase = True
        all_gc = True
        has_program = False
        for req in requests:
            address = req.address
            die = address.die
            op = req.op
            planes = planes_per_die.get(die)
            if planes is None:
                planes_per_die[die] = {address.plane}
            else:
                planes.add(address.plane)
            # Cell occupancy: die cell activities overlap (die interleaving)
            # and the planes of one die fire together under the multiplane
            # command, so only the slowest per-die operation matters.
            moves_data = True
            if op is FlashOp.READ:
                latency = read_ns
                all_erase = False
            elif op is FlashOp.PROGRAM:
                has_program = True
                all_erase = False
                page = address.page
                latency = program_ns.get(page)
                if latency is None:
                    latency = program_ns[page] = timing.program_latency_ns(page)
            else:
                latency = erase_ns
                moves_data = op.moves_data
            if latency > per_die_latency.get(die, 0):
                per_die_latency[die] = latency
            if moves_data:
                size = req.size_bytes
                per_request = bus_per_size.get(size)
                if per_request is None:
                    per_request = bus_per_size[size] = timing.request_bus_time_ns(size)
                bus_ns += per_request
            penalty_ns += req.penalty_ns
            if not req.is_gc:
                all_gc = False
        max_planes = max(len(planes) for planes in planes_per_die.values())
        parallelism = classify_parallelism(len(planes_per_die), max_planes)
        kind = TransactionKind.ERASE if all_erase else kind_for_parallelism(parallelism)
        transaction = FlashTransaction(
            chip_key=chip_key,
            requests=requests,
            kind=kind,
            parallelism=parallelism,
        )
        transaction.bus_time_ns = timing.transaction_overhead_ns + bus_ns
        transaction.cell_time_ns = max(per_die_latency.values()) + penalty_ns
        transaction.die_active_time_ns = sum(per_die_latency.values())
        transaction.has_program = has_program
        transaction.is_gc = all_gc
        return transaction

    def build_from_pending(
        self, chip_key: tuple, pending: Sequence[MemoryRequest]
    ) -> Optional[FlashTransaction]:
        """Select a legal subset of ``pending`` and build a transaction from it."""
        selected = self.select(pending)
        if not selected:
            return None
        return self.build(chip_key, selected)

