"""Plane and block state tracking.

The FTL and the garbage collector need to know, for every plane, which
blocks are free, which pages inside a block still hold valid data, and how
many erase cycles each block has seen.  The classes here hold exactly that
state; they perform no timing - timing lives in the controller/simulator.

Aggregate queries (``free_blocks``, ``free_pages``, ``valid_pages``) are
answered from counters the plane maintains incrementally as its blocks
change state.  The GC trigger asks "is this plane below the free-block
watermark?" once per host write, and the previous implementation re-scanned
every block of the plane to answer - the single largest cost in the whole
simulator under write-heavy workloads (a quadratic scan: pages written x
blocks per plane).  Every block mutation now notifies its owning plane with
O(1) counter updates, so the trigger is a comparison.
"""

from __future__ import annotations

from typing import List, Optional


class Block:
    """Erase-unit bookkeeping: per-page valid/used bits and erase count.

    The valid bits are stored as an integer bitmask so that SSDs with
    thousands of chips (Figure 1 and Figure 15 sweeps) stay memory-cheap;
    the number of set bits is cached in ``_valid_count`` so hot callers
    (GC victim selection, plane aggregates) never pay a popcount.

    A block created by a :class:`Plane` carries a back-reference to it and
    reports every free/used/bad transition so the plane's aggregate counters
    stay exact; standalone blocks (``owner=None``, used by unit tests) skip
    the notifications.
    """

    __slots__ = (
        "block_id",
        "pages_per_block",
        "write_pointer",
        "_valid_bits",
        "_valid_count",
        "erase_count",
        "is_bad",
        "_owner",
    )

    def __init__(
        self, block_id: int, pages_per_block: int, owner: Optional["Plane"] = None
    ) -> None:
        self.block_id = block_id
        self.pages_per_block = pages_per_block
        self.write_pointer = 0
        self._valid_bits = 0
        self._valid_count = 0
        self.erase_count = 0
        self.is_bad = False
        self._owner = owner

    @property
    def is_full(self) -> bool:
        """True once every page of the block has been programmed."""
        return self.write_pointer >= self.pages_per_block

    @property
    def is_free(self) -> bool:
        """True when the block has never been written since its last erase."""
        return self.write_pointer == 0

    @property
    def valid(self) -> List[bool]:
        """Per-page valid bits as a list (convenience view for callers/tests)."""
        return [bool(self._valid_bits & (1 << page)) for page in range(self.pages_per_block)]

    @property
    def valid_mask(self) -> int:
        """The raw valid bitmask (bit ``p`` set iff page ``p`` is live)."""
        return self._valid_bits

    def is_valid(self, page: int) -> bool:
        """True when ``page`` currently holds live data."""
        if not 0 <= page < self.pages_per_block:
            raise ValueError(f"page {page} out of range")
        return bool(self._valid_bits & (1 << page))

    @property
    def valid_count(self) -> int:
        """Number of pages currently holding valid (live) data."""
        return self._valid_count

    @property
    def invalid_count(self) -> int:
        """Number of programmed pages whose data has been superseded."""
        return self.write_pointer - self._valid_count

    def program_next(self) -> int:
        """Consume the next free page of the block and mark it valid.

        Returns the page index that was programmed.  Raises ``RuntimeError``
        if the block is already full - the caller (the allocator) must have
        rotated to a fresh block first.
        """
        if self.write_pointer >= self.pages_per_block:
            raise RuntimeError(f"block {self.block_id} is full")
        page = self.write_pointer
        self._valid_bits |= 1 << page
        self._valid_count += 1
        self.write_pointer = page + 1
        owner = self._owner
        if owner is not None and not self.is_bad:
            if page == 0:
                owner._free_blocks -= 1
            owner._free_pages -= 1
            owner._valid_pages += 1
        return page

    def program_run(self, count: int) -> int:
        """Program the next ``count`` free pages of the block in one step.

        Exactly equivalent to ``count`` consecutive :meth:`program_next`
        calls - write pointer advanced by ``count``, the programmed pages all
        marked valid, owner aggregates updated once - but with a single mask
        update instead of per-page bit twiddling.  The garbage collector uses
        this to place a whole run of migrated pages on the active block.
        Returns the first programmed page index.
        """
        start = self.write_pointer
        if count <= 0 or start + count > self.pages_per_block:
            raise RuntimeError(
                f"block {self.block_id} cannot program a run of {count} pages"
            )
        self._valid_bits |= ((1 << count) - 1) << start
        self._valid_count += count
        self.write_pointer = start + count
        owner = self._owner
        if owner is not None and not self.is_bad:
            if start == 0:
                owner._free_blocks -= 1
            owner._free_pages -= count
            owner._valid_pages += count
        return start

    def program_bulk(self, count: int) -> None:
        """Program the first ``count`` pages of a *free* block in one step.

        Fast-forward device aging uses this to reach, in O(1) per block, the
        exact state that ``count`` consecutive :meth:`program_next` calls
        would leave behind: write pointer at ``count`` and pages
        ``0..count-1`` all valid.  Only legal on an erased block - bulk
        programming must never silently clobber per-page valid bookkeeping.
        """
        if not 0 <= count <= self.pages_per_block:
            raise ValueError(f"count {count} out of range")
        if not self.is_free:
            raise RuntimeError(f"block {self.block_id} is not free; cannot bulk-program")
        self.write_pointer = count
        self._valid_bits = (1 << count) - 1
        self._valid_count = count
        owner = self._owner
        if owner is not None and count > 0 and not self.is_bad:
            owner._free_blocks -= 1
            owner._free_pages -= count
            owner._valid_pages += count

    def invalidate(self, page: int) -> None:
        """Mark a previously-programmed page as stale."""
        if not 0 <= page < self.pages_per_block:
            raise ValueError(f"page {page} out of range")
        bit = 1 << page
        if self._valid_bits & bit:
            self._valid_bits &= ~bit
            self._valid_count -= 1
            if self._owner is not None and not self.is_bad:
                self._owner._valid_pages -= 1

    def invalidate_mask(self, mask: int) -> int:
        """Mark every page whose bit is set in ``mask`` as stale.

        Equivalent to calling :meth:`invalidate` for each set bit (already
        invalid pages are ignored), but with one mask update and one owner
        notification.  Returns the number of pages that went stale.
        """
        cleared = self._valid_bits & mask
        if not cleared:
            return 0
        removed = cleared.bit_count()
        self._valid_bits &= ~mask
        self._valid_count -= removed
        if self._owner is not None and not self.is_bad:
            self._owner._valid_pages -= removed
        return removed

    def erase(self) -> None:
        """Erase the block: clear all pages and bump the erase count."""
        owner = self._owner
        if owner is not None and not self.is_bad:
            if self.write_pointer > 0:
                owner._free_blocks += 1
            owner._free_pages += self.write_pointer
            owner._valid_pages -= self._valid_count
            owner._total_erases += 1
        self.write_pointer = 0
        self._valid_bits = 0
        self._valid_count = 0
        self.erase_count += 1

    def mark_bad(self) -> None:
        """Retire the block permanently (bad-block management)."""
        if self.is_bad:
            return
        owner = self._owner
        if owner is not None:
            owner._num_good -= 1
            if self.write_pointer == 0:
                owner._free_blocks -= 1
            owner._free_pages -= self.pages_per_block - self.write_pointer
            owner._valid_pages -= self._valid_count
        self.is_bad = True

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"Block(id={self.block_id}, used={self.write_pointer}/{self.pages_per_block}, "
            f"valid={self.valid_count}, erases={self.erase_count})"
        )


class Plane:
    """One memory array of a die: a set of blocks plus an active write block."""

    def __init__(self, plane_key: tuple, blocks_per_plane: int, pages_per_block: int) -> None:
        self.plane_key = plane_key
        self.pages_per_block = pages_per_block
        self.blocks: List[Block] = [
            Block(i, pages_per_block, owner=self) for i in range(blocks_per_plane)
        ]
        self.active_block_id: Optional[int] = None
        # Aggregates, maintained incrementally by the blocks (see Block).
        self._num_good = blocks_per_plane
        self._free_blocks = blocks_per_plane
        self._free_pages = blocks_per_plane * pages_per_block
        self._valid_pages = 0
        self._total_erases = 0

    # ------------------------------------------------------------------
    # Capacity queries (O(1) - backed by incrementally-updated counters)
    # ------------------------------------------------------------------
    @property
    def num_blocks(self) -> int:
        """Number of (good) blocks in the plane, bad blocks excluded."""
        return self._num_good

    @property
    def free_blocks(self) -> int:
        """Number of blocks with no programmed pages."""
        return self._free_blocks

    @property
    def free_pages(self) -> int:
        """Total number of programmable pages remaining in the plane."""
        return self._free_pages

    @property
    def valid_pages(self) -> int:
        """Total number of live pages in the plane."""
        return self._valid_pages

    @property
    def total_erases(self) -> int:
        """Erase operations performed on (then-good) blocks of this plane.

        Lets aggregate wear queries skip never-erased planes without
        scanning their blocks.
        """
        return self._total_erases

    # ------------------------------------------------------------------
    # Allocation
    # ------------------------------------------------------------------
    def allocate_page(self) -> tuple:
        """Allocate the next free page of the plane.

        Returns ``(block_id, page_id)``.  Rotates the active block when the
        current one fills up.  Raises ``RuntimeError`` when the plane is
        completely full - at that point the garbage collector must reclaim
        space before new writes can be placed here.
        """
        block = self._active_block()
        if block is None:
            raise RuntimeError(f"plane {self.plane_key} has no free pages")
        page = block.program_next()
        return block.block_id, page

    def allocate_run(self, max_count: int) -> Optional[tuple]:
        """Allocate up to ``max_count`` consecutive pages on the active block.

        Returns ``(block_id, start_page, count)``, or ``None`` when the
        plane is completely full.  The pages come from the same block the
        next ``count`` :meth:`allocate_page` calls would have used (the run
        is clipped at the block boundary, so a caller loops until its demand
        is met); the block rotation that happens between runs is identical
        to the per-page path's.
        """
        block = self._active_block()
        if block is None:
            return None
        count = min(max_count, block.pages_per_block - block.write_pointer)
        start = block.program_run(count)
        return block.block_id, start, count

    def _active_block(self) -> Optional[Block]:
        if self.active_block_id is not None:
            block = self.blocks[self.active_block_id]
            if not block.is_full and not block.is_bad:
                return block
        for block in self.blocks:
            if block.is_bad or block.is_full:
                continue
            if block.is_free or block.block_id == self.active_block_id:
                self.active_block_id = block.block_id
                return block
        # Fall back to any block with room (partially written, not active).
        for block in self.blocks:
            if not block.is_bad and not block.is_full:
                self.active_block_id = block.block_id
                return block
        return None

    # ------------------------------------------------------------------
    # Garbage collection support
    # ------------------------------------------------------------------
    def victim_candidates(self) -> List[Block]:
        """Blocks eligible for garbage collection (full, not bad, not active)."""
        return [
            block
            for block in self.blocks
            if block.is_full and not block.is_bad and block.block_id != self.active_block_id
        ]

    def greedy_victim(self) -> Optional[Block]:
        """Victim with the fewest valid pages (greedy GC policy).

        Selection is explicitly deterministic: candidates are compared on
        ``(valid_pages, block_id)``, so ties on valid-page count always go to
        the lowest-numbered block.  Identically-seeded runs therefore pick
        identical victim sequences - a property the aged-device regression
        tests rely on.
        """
        # Direct scan instead of victim_candidates() + min(key=...): the GC
        # trigger runs this once per sub-watermark host write, and the
        # listcomp + lambda + per-candidate key tuples dominated its cost.
        # Ascending iteration with a strict ``<`` keeps the lowest-block-id
        # tie-break exact.
        best: Optional[Block] = None
        best_valid = 0
        active_id = self.active_block_id
        pages_per_block = self.pages_per_block
        for block in self.blocks:
            if (
                block.write_pointer < pages_per_block
                or block.is_bad
                or block.block_id == active_id
            ):
                continue
            valid = block._valid_count
            if best is None or valid < best_valid:
                best = block
                best_valid = valid
        return best

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"Plane(key={self.plane_key}, free_blocks={self.free_blocks}/"
            f"{len(self.blocks)})"
        )
