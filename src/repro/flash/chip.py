"""Flash chip state.

A chip bundles dies and planes behind a single multiplexed interface and a
chip-enable (CE) pin.  Only one flash transaction can occupy the chip at a
time (the R/B signal is asserted while it executes); the dies and planes
inside it provide the flash-level parallelism exploited by die interleaving
and plane sharing.

The :class:`FlashChip` object tracks:

* the busy/idle state of the chip (``busy_until``),
* per-plane physical block state (through :class:`repro.flash.plane.Plane`),
* occupancy statistics used for the utilisation, idleness and execution
  breakdown analyses of the paper (Figures 11, 13, 15).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.flash.geometry import SSDGeometry
from repro.flash.plane import Plane


@dataclass
class ChipStats:
    """Accumulated occupancy statistics for one chip."""

    busy_time_ns: int = 0
    cell_time_ns: int = 0
    bus_time_ns: int = 0
    bus_wait_ns: int = 0
    die_active_time_ns: int = 0
    transactions: int = 0
    requests_served: int = 0
    gc_transactions: int = 0
    last_busy_start_ns: Optional[int] = None


class FlashChip:
    """One NAND package: dies x planes behind a shared interface."""

    def __init__(self, chip_key: tuple, geometry: SSDGeometry) -> None:
        self.chip_key = chip_key
        self.geometry = geometry
        self.busy_until: int = 0
        self.stats = ChipStats()
        channel, chip = chip_key
        self.planes: Dict[tuple, Plane] = {}
        for die in range(geometry.dies_per_chip):
            for plane in range(geometry.planes_per_die):
                key = (channel, chip, die, plane)
                self.planes[key] = Plane(
                    plane_key=key,
                    blocks_per_plane=geometry.blocks_per_plane,
                    pages_per_block=geometry.pages_per_block,
                )

    # ------------------------------------------------------------------
    # Busy / idle state
    # ------------------------------------------------------------------
    def is_busy(self, now_ns: int) -> bool:
        """True while the chip's R/B signal is asserted."""
        return now_ns < self.busy_until

    def occupy(self, start_ns: int, end_ns: int) -> None:
        """Mark the chip busy for the interval [start_ns, end_ns]."""
        if end_ns < start_ns:
            raise ValueError("occupation interval must not be negative")
        self.busy_until = max(self.busy_until, end_ns)
        self.stats.busy_time_ns += end_ns - start_ns
        self.stats.last_busy_start_ns = start_ns

    # ------------------------------------------------------------------
    # Plane access
    # ------------------------------------------------------------------
    def plane(self, die: int, plane: int) -> Plane:
        """Return the plane object at (die, plane) inside this chip."""
        channel, chip = self.chip_key
        return self.planes[(channel, chip, die, plane)]

    def iter_planes(self):
        """Iterate over all plane objects of this chip."""
        return iter(self.planes.values())

    @property
    def free_pages(self) -> int:
        """Total number of programmable pages left in the chip."""
        return sum(plane.free_pages for plane in self.planes.values())

    @property
    def total_pages(self) -> int:
        """Total number of physical pages in the chip."""
        return self.geometry.pages_per_chip

    # ------------------------------------------------------------------
    # Statistics helpers
    # ------------------------------------------------------------------
    def record_transaction(
        self,
        *,
        num_requests: int,
        num_dies: int,
        cell_time_ns: int,
        bus_time_ns: int,
        bus_wait_ns: int,
        die_active_time_ns: int,
        is_gc: bool = False,
    ) -> None:
        """Record the resource footprint of one executed transaction."""
        self.stats.transactions += 1
        self.stats.requests_served += num_requests
        self.stats.cell_time_ns += cell_time_ns
        self.stats.bus_time_ns += bus_time_ns
        self.stats.bus_wait_ns += bus_wait_ns
        self.stats.die_active_time_ns += die_active_time_ns
        if is_gc:
            self.stats.gc_transactions += 1

    def utilization(self, makespan_ns: int) -> float:
        """Fraction of the observation window the chip spent busy."""
        if makespan_ns <= 0:
            return 0.0
        return min(1.0, self.stats.busy_time_ns / makespan_ns)

    def intra_chip_idleness(self) -> float:
        """Unused die-time fraction while the chip was busy.

        During a busy interval the chip exposes ``dies_per_chip`` dies worth
        of potential cell activity; anything not covered by die-level cell
        operations is intra-chip idleness (paper Section 1 / Figure 11b).

        A chip that never went busy has no die-time to leave unused and
        returns the sentinel ``-1.0``, so averaging layers can tell "did no
        work" apart from "busy with every die covered" (a genuine ``0.0``).
        """
        potential = self.stats.busy_time_ns * self.geometry.dies_per_chip
        if potential <= 0:
            return -1.0
        used = min(self.stats.die_active_time_ns, potential)
        return 1.0 - used / potential

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"FlashChip(key={self.chip_key}, busy_until={self.busy_until})"


def planes_by_key(chips: Dict[tuple, "FlashChip"]) -> Dict[tuple, Plane]:
    """Flatten a chip set into one ``(channel, chip, die, plane) -> Plane`` map.

    The FTL, the garbage collector and the page allocator each keep this
    direct lookup so their per-page-write hot paths resolve a plane with a
    single dict probe instead of the two-step ``chips[chip_key].plane(...)``
    walk (which builds two key tuples per call).
    """
    return {key: plane for chip in chips.values() for key, plane in chip.planes.items()}
