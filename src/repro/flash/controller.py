"""Flash controller: per-chip commit queues and transaction execution phases.

Each channel has one flash controller (paper Figure 2).  The controller:

* accepts *committed* memory requests from the NVMHC scheduler and stores
  them per target chip (the commit order encodes the scheduler's priority,
  e.g. FARO's overlap-depth/connectivity order),
* when a chip is available, coalesces pending requests into one flash
  transaction using the shared :class:`TransactionBuilder`,
* sequences the bus and cell phases of the transaction on the shared
  channel, producing the timing information the simulator turns into events
  and the metrics collector turns into the paper's utilisation/idleness/
  breakdown figures.

Phase model
-----------

* **Program (write) transaction**: data moves host->registers over the
  channel first (bus phase, subject to channel arbitration), then the cell
  program executes with the channel free.
* **Read transaction**: the cell read executes first, then data moves
  registers->host over the channel (bus phase).
* **GC transaction**: copyback-style migration inside the chip plus the
  block erase; it occupies the cell only (no channel traffic).

The chip is busy (R/B asserted) from the instant the transaction is issued
until its last phase completes.
"""

from __future__ import annotations

from typing import Dict, List, NamedTuple, Optional, Sequence

from repro.flash.channel import Channel
from repro.flash.chip import FlashChip
from repro.flash.commands import FlashOp
from repro.flash.request import MemoryRequest
from repro.flash.transaction import FlashTransaction, TransactionBuilder
from repro.obs.trace import NULL_SINK


class TransactionSchedule(NamedTuple):
    """Resolved timing of one transaction's phases.

    A NamedTuple rather than a dataclass: one is built per chip activation
    and immediately consumed, and the tuple constructor is measurably
    cheaper than dataclass ``__init__`` on that path.
    """

    transaction: FlashTransaction
    issue_ns: int
    bus_start_ns: int
    bus_end_ns: int
    cell_start_ns: int
    cell_end_ns: int
    complete_ns: int
    bus_wait_ns: int


class FlashController:
    """Builds and executes flash transactions for the chips of one channel."""

    def __init__(
        self,
        channel: Channel,
        chips: Dict[tuple, FlashChip],
        builder: TransactionBuilder,
    ) -> None:
        self.channel = channel
        self.chips = chips
        self.builder = builder
        self.pending: Dict[tuple, List[MemoryRequest]] = {key: [] for key in chips}
        self.active: Dict[tuple, Optional[FlashTransaction]] = {key: None for key in chips}
        #: Chips with committed or in-flight work, kept exactly in sync with
        #: ``bool(pending[chip]) or active[chip] is not None``.  VAS/PAS probe
        #: every target chip of every queued I/O per composition; a set
        #: containment check replaces a method call on that path.
        self.busy: set = set()
        self.total_committed = 0
        self.total_transactions = 0
        #: Trace sink (simulator-attached) and busy->idle transition count.
        #: ``idle_transitions`` is maintained on the cold discard branches
        #: only; :attr:`busy_transitions` derives the idle->busy count from
        #: it, keeping the hot ``commit`` path untouched.
        self.sink = NULL_SINK
        self.idle_transitions = 0

    # ------------------------------------------------------------------
    # Commit-side interface (used by the NVMHC scheduler)
    # ------------------------------------------------------------------
    def commit(self, request: MemoryRequest, now_ns: int) -> None:
        """Accept a composed memory request into the chip's commit queue."""
        chip_key = request.chip_key
        if chip_key not in self.pending:
            raise KeyError(f"chip {chip_key} is not attached to channel {self.channel.channel_id}")
        request.committed_at_ns = now_ns
        self.pending[chip_key].append(request)
        self.busy.add(chip_key)
        self.total_committed += 1

    def pending_count(self, chip_key: tuple) -> int:
        """Number of committed-but-not-started requests for a chip."""
        return len(self.pending[chip_key])

    def outstanding_count(self, chip_key: tuple) -> int:
        """Committed requests that have not completed yet (pending + in flight)."""
        active = self.active[chip_key]
        in_flight = active.num_requests if active is not None else 0
        return len(self.pending[chip_key]) + in_flight

    def has_outstanding(self, chip_key: tuple) -> bool:
        """True when the chip already holds committed or in-flight work.

        Equivalent to probing :attr:`busy` directly, which the hot
        conflict-checking loops of VAS/PAS do to skip the method call.
        """
        return chip_key in self.busy

    def pending_requests(self, chip_key: tuple) -> Sequence[MemoryRequest]:
        """Read-only view of the chip's commit queue (used by the readdressing callback)."""
        return tuple(self.pending[chip_key])

    def retarget_pending(self, chip_key: tuple, keep) -> int:
        """Re-filter pending requests after a readdressing callback.

        ``keep`` is a predicate; requests for which it returns ``False`` are
        removed (the caller re-commits them at their new location).  Returns
        the number of removed requests.
        """
        queue = self.pending[chip_key]
        kept = [req for req in queue if keep(req)]
        removed = len(queue) - len(kept)
        self.pending[chip_key] = kept
        if not kept and self.active[chip_key] is None and chip_key in self.busy:
            self.busy.remove(chip_key)
            self.idle_transitions += 1
        return removed

    # ------------------------------------------------------------------
    # Execution-side interface (used by the simulator)
    # ------------------------------------------------------------------
    def chip_available(self, chip_key: tuple, now_ns: int) -> bool:
        """True when the chip can start a new transaction."""
        # Inline FlashChip.is_busy - this gate runs on every commit,
        # decision window and completion.
        return (
            self.active[chip_key] is None and now_ns >= self.chips[chip_key].busy_until
        )

    def start_transaction(self, chip_key: tuple, now_ns: int) -> Optional[TransactionSchedule]:
        """Build the next transaction for a chip and resolve its phase timing.

        Returns ``None`` when the chip is busy or has nothing pending.  The
        selected requests are removed from the commit queue and the chip is
        marked busy for the whole duration.
        """
        if not self.chip_available(chip_key, now_ns):
            return None
        queue = self.pending[chip_key]
        if not queue:
            return None
        selected, remaining = self.builder.select_partition(queue)
        if not selected:
            return None
        transaction = self.builder.build(chip_key, selected)
        self.pending[chip_key] = remaining
        self.active[chip_key] = transaction
        self.total_transactions += 1
        schedule = self._schedule_phases(transaction, now_ns)
        self._record(chip_key, schedule)
        return schedule

    def execute_prebuilt(
        self, chip_key: tuple, transaction: FlashTransaction, now_ns: int
    ) -> Optional[TransactionSchedule]:
        """Execute a transaction built outside the commit queues (GC work)."""
        if not self.chip_available(chip_key, now_ns):
            return None
        self.active[chip_key] = transaction
        self.busy.add(chip_key)
        self.total_transactions += 1
        schedule = self._schedule_phases(transaction, now_ns)
        self._record(chip_key, schedule)
        return schedule

    def finish_transaction(self, chip_key: tuple, now_ns: int) -> FlashTransaction:
        """Mark the active transaction of a chip as completed."""
        transaction = self.active[chip_key]
        if transaction is None:
            raise RuntimeError(f"chip {chip_key} has no active transaction")
        transaction.completed_at_ns = now_ns
        for request in transaction.requests:
            request.completed_at_ns = now_ns
        self.active[chip_key] = None
        if not self.pending[chip_key]:
            # An active transaction implies membership, so this discard is a
            # guaranteed busy->idle transition.
            self.busy.discard(chip_key)
            self.idle_transitions += 1
        if self.sink.enabled:
            self.sink.span(
                "gc" if transaction.is_gc else "txn",
                category="flash",
                track=f"chip {chip_key[0]}.{chip_key[1]}",
                start_ns=transaction.issued_at_ns,
                duration_ns=now_ns - transaction.issued_at_ns,
                kind=transaction.kind.name,
                requests=transaction.num_requests,
                parallelism=transaction.parallelism.name,
                bus_ns=transaction.bus_time_ns,
                cell_ns=transaction.cell_time_ns,
                bus_wait_ns=transaction.bus_wait_ns,
            )
        return transaction

    @property
    def busy_transitions(self) -> int:
        """Idle->busy transitions of this controller's chips so far.

        Every chip that ever became busy either went idle again (counted in
        :attr:`idle_transitions`) or is still in :attr:`busy`, so the sum of
        the two is exactly the number of idle->busy transitions - without
        touching the hot ``commit`` path.
        """
        return self.idle_transitions + len(self.busy)

    # ------------------------------------------------------------------
    # Internal helpers
    # ------------------------------------------------------------------
    def _schedule_phases(self, transaction: FlashTransaction, now_ns: int) -> TransactionSchedule:
        has_bus = transaction.bus_time_ns > 0
        if transaction.is_gc or not has_bus:
            # Pure cell work (GC copyback + erase): no channel traffic.
            # is_write is irrelevant here, so the request walk that computes
            # it when the builder didn't is deferred to the bus branches.
            bus_start = bus_end = now_ns
            cell_start = now_ns
            cell_end = cell_start + transaction.cell_time_ns
            complete = cell_end
            wait = 0
        elif (
            transaction.has_program
            if transaction.has_program is not None
            else any(req.op is FlashOp.PROGRAM for req in transaction.requests)
        ):
            bus_start, bus_end, wait = self.channel.reserve(
                now_ns, transaction.bus_time_ns, transaction.total_bytes
            )
            cell_start = bus_end
            cell_end = cell_start + transaction.cell_time_ns
            complete = cell_end
        else:
            cell_start = now_ns
            cell_end = cell_start + transaction.cell_time_ns
            bus_start, bus_end, wait = self.channel.reserve(
                cell_end, transaction.bus_time_ns, transaction.total_bytes
            )
            complete = bus_end
        transaction.issued_at_ns = now_ns
        transaction.bus_started_at_ns = bus_start
        transaction.bus_wait_ns = wait
        for request in transaction.requests:
            request.started_at_ns = now_ns
        return TransactionSchedule(
            transaction=transaction,
            issue_ns=now_ns,
            bus_start_ns=bus_start,
            bus_end_ns=bus_end,
            cell_start_ns=cell_start,
            cell_end_ns=cell_end,
            complete_ns=complete,
            bus_wait_ns=wait,
        )

    def _record(self, chip_key: tuple, schedule: TransactionSchedule) -> None:
        transaction = schedule.transaction
        chip = self.chips[chip_key]
        chip.occupy(schedule.issue_ns, schedule.complete_ns)
        # The builder computes die activity alongside cell pricing; only
        # transactions assembled outside it (GC placeholders) fall back to
        # the explicit per-request walk.
        die_active = transaction.die_active_time_ns
        if die_active is None:
            die_active = self._die_active_time(transaction)
        chip.record_transaction(
            num_requests=transaction.num_requests,
            num_dies=len(transaction.dies),
            cell_time_ns=transaction.cell_time_ns,
            bus_time_ns=transaction.bus_time_ns,
            bus_wait_ns=schedule.bus_wait_ns,
            die_active_time_ns=die_active,
            is_gc=transaction.is_gc,
        )

    def _die_active_time(self, transaction: FlashTransaction) -> int:
        """Sum of per-die cell activity, used for intra-chip idleness."""
        per_die: Dict[int, int] = {}
        timing = self.builder.timing
        for req in transaction.requests:
            latency = timing.cell_latency_ns(req.op, req.address.page)
            per_die[req.address.die] = max(per_die.get(req.address.die, 0), latency)
        return sum(per_die.values())
