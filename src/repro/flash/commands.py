"""Flash operations, transaction kinds and flash-level parallelism classes.

The paper distinguishes four degrees of flash-level parallelism (FLP) for a
transaction (Section 5.6, Figure 14):

* ``NON_PAL`` - the transaction carries a single memory request; only
  system-level parallelism (channel striping/pipelining) applies.
* ``PAL1``    - plane sharing: multiple planes of one die are activated by a
  single multiplane operation.
* ``PAL2``    - die interleaving: requests to different dies of the chip are
  interlaced on the shared chip interface.
* ``PAL3``    - die interleaving combined with plane sharing; the highest
  degree of FLP a single chip can provide.
"""

from __future__ import annotations

import enum


class FlashOp(enum.Enum):
    """Primitive NAND operations handled by the flash controller."""

    READ = "read"
    PROGRAM = "program"
    ERASE = "erase"

    @property
    def is_write(self) -> bool:
        """True for operations that consume a free page."""
        return self is FlashOp.PROGRAM

    @property
    def moves_data(self) -> bool:
        """True for operations that occupy the channel bus with page data."""
        return self in (FlashOp.READ, FlashOp.PROGRAM)


class TransactionKind(enum.Enum):
    """Kind of flash transaction the controller builds for a chip."""

    LEGACY = "legacy"                    # single die, single plane
    MULTIPLANE = "multiplane"            # single die, multiple planes
    INTERLEAVE = "interleave"            # multiple dies, one plane each
    INTERLEAVE_MULTIPLANE = "interleave_multiplane"  # multiple dies, multiple planes
    ERASE = "erase"                      # block erase (GC housekeeping)


class ParallelismClass(enum.Enum):
    """FLP class of a transaction as reported in Figure 14 of the paper."""

    NON_PAL = 0
    PAL1 = 1
    PAL2 = 2
    PAL3 = 3

    @property
    def label(self) -> str:
        """Human readable label matching the paper's figure legends."""
        return {
            ParallelismClass.NON_PAL: "NON-PAL",
            ParallelismClass.PAL1: "PAL1",
            ParallelismClass.PAL2: "PAL2",
            ParallelismClass.PAL3: "PAL3",
        }[self]


def classify_parallelism(num_dies: int, max_planes_per_die: int) -> ParallelismClass:
    """Classify the FLP of a transaction from its die/plane footprint.

    ``num_dies`` is the number of distinct dies the transaction touches and
    ``max_planes_per_die`` the largest number of distinct planes used inside
    any single one of those dies.
    """
    if num_dies <= 0:
        raise ValueError("a transaction must touch at least one die")
    if max_planes_per_die <= 0:
        raise ValueError("a transaction must touch at least one plane")
    if num_dies == 1 and max_planes_per_die == 1:
        return ParallelismClass.NON_PAL
    if num_dies == 1:
        return ParallelismClass.PAL1
    if max_planes_per_die == 1:
        return ParallelismClass.PAL2
    return ParallelismClass.PAL3


_KIND_FOR_PARALLELISM = {
    ParallelismClass.NON_PAL: TransactionKind.LEGACY,
    ParallelismClass.PAL1: TransactionKind.MULTIPLANE,
    ParallelismClass.PAL2: TransactionKind.INTERLEAVE,
    ParallelismClass.PAL3: TransactionKind.INTERLEAVE_MULTIPLANE,
}


def kind_for_parallelism(parallelism: ParallelismClass) -> TransactionKind:
    """Map an FLP class onto the transaction kind that realises it."""
    return _KIND_FOR_PARALLELISM[parallelism]
