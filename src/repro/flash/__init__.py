"""Flash-level substrate: geometry, timing, chips, channels, controllers.

This subpackage models everything below the FTL: the physical organisation of
a many-chip SSD (channels, chips, dies, planes, blocks, pages), the NAND
timing behaviour (ONFI-style bus transfers, asymmetric and page-dependent
program latencies), and the flash controller that coalesces committed memory
requests into flash transactions exploiting die interleaving and plane
sharing.
"""

from repro.flash.geometry import PhysicalPageAddress, SSDGeometry
from repro.flash.timing import FlashTiming
from repro.flash.commands import FlashOp, ParallelismClass, TransactionKind
from repro.flash.transaction import FlashTransaction, TransactionBuilder
from repro.flash.chip import FlashChip
from repro.flash.plane import Block, Plane
from repro.flash.channel import Channel
from repro.flash.controller import FlashController

__all__ = [
    "PhysicalPageAddress",
    "SSDGeometry",
    "FlashTiming",
    "FlashOp",
    "ParallelismClass",
    "TransactionKind",
    "FlashTransaction",
    "TransactionBuilder",
    "FlashChip",
    "Block",
    "Plane",
    "Channel",
    "FlashController",
]
