"""Metrics collector wired into the simulator.

The collector receives raw events from the simulator (I/O completions,
transaction executions, queue stalls) and turns them - together with the
final chip/channel statistics - into a :class:`~repro.metrics.report.SimulationResult`.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.flash.channel import Channel
from repro.flash.chip import FlashChip
from repro.flash.transaction import FlashTransaction
from repro.metrics.attribution import AttributionTracker
from repro.metrics.breakdown import ExecutionBreakdown
from repro.metrics.latency import (
    DEFAULT_TAIL_WINDOW_NS,
    LatencyStats,
    StreamingLatencyStats,
    WindowedTailTracker,
)
from repro.metrics.parallelism import FLPBreakdown
from repro.metrics.utilization import IdlenessReport, UtilizationReport
from repro.workloads.request import IORequest

#: Recognised completion-history modes (see :class:`MetricsCollector`).
HISTORY_MODES = ("full", "windowed")


@dataclass
class TimeSeriesPoint:
    """Latency of one completed I/O, in completion order (Figure 12)."""

    io_id: int
    arrival_ns: int
    completion_ns: int
    latency_ns: int


class MetricsCollector:
    """Accumulates raw measurements during one simulation run.

    ``history`` selects how completion history is retained:

    * ``"full"`` (default) - every completion is kept, and the final report
      is bit-identical to what this collector always produced.  Memory
      grows linearly with the trace.
    * ``"windowed"`` - fixed-size accumulators: latency count/mean/min/max
      stay exact, but per-sample history (the time series and the
      percentile population) is limited to the most recent ``window``
      completions.  Peak memory is flat in trace length, which is what
      makes day-long trace replays feasible.
    """

    def __init__(
        self,
        history: str = "full",
        window: int = 4096,
        tail_window_ns: int = DEFAULT_TAIL_WINDOW_NS,
    ) -> None:
        if history not in HISTORY_MODES:
            raise ValueError(
                f"unknown history mode {history!r}; expected one of {HISTORY_MODES}"
            )
        if window <= 0:
            raise ValueError("window must be positive")
        self.history = history
        self.window = window
        self.flp = FLPBreakdown()
        # The windowed tail series keys on completion time, not sample
        # position, so each recorded window is exact in either mode.  In
        # windowed (memory-flat) mode the *number* of retained windows is
        # bounded like the time series is - otherwise the sealed-window list
        # would grow with the makespan and break the flatness contract.
        self.tail = WindowedTailTracker(
            tail_window_ns, max_windows=window if history == "windowed" else None
        )
        # Per-(tenant, phase) slices for scenario-stamped requests.  Shares
        # this collector's history/window contract; untagged requests cost a
        # single attribute test on the completion path and never touch it.
        self.attribution = AttributionTracker(
            history=history, window=window, tail_window_ns=tail_window_ns
        )
        # Completion history as one append-only list of plain tuples: a
        # single append per completion on the hot path, materialised into
        # TimeSeriesPoint objects only when the final report is assembled
        # (see :attr:`time_series`).  Windowed mode bounds the history with
        # a ring (deque) instead.
        if history == "windowed":
            self.latency = StreamingLatencyStats(window_size=window)
            self._ts: "deque[tuple]" = deque(maxlen=window)
        else:
            self.latency = LatencyStats()
            self._ts: List[tuple] = []
        self.total_bytes = 0
        self.read_bytes = 0
        self.write_bytes = 0
        self.completed_ios = 0
        self.completed_reads = 0
        self.completed_writes = 0
        self.memory_requests_served = 0
        self.gc_transactions = 0
        self.gc_time_ns = 0
        self.first_arrival_ns: Optional[int] = None
        self.last_completion_ns: int = 0
        self.queue_stall_time_ns = 0
        self.stalled_requests = 0

    # ------------------------------------------------------------------
    # Event hooks
    # ------------------------------------------------------------------
    def on_io_arrival(self, io: IORequest) -> None:
        """Record a host request arrival (establishes the observation window)."""
        if self.first_arrival_ns is None or io.arrival_ns < self.first_arrival_ns:
            self.first_arrival_ns = io.arrival_ns

    def on_io_complete(self, io: IORequest, now_ns: int) -> None:
        """Record a fully-served host request."""
        arrival = io.arrival_ns
        latency = now_ns - arrival
        self.latency.add(latency)
        self.tail.add(now_ns, latency)
        self._ts.append((io.io_id, arrival, now_ns, latency))
        self.total_bytes += io.size_bytes
        self.completed_ios += 1
        is_write = io.is_write
        if is_write:
            self.completed_writes += 1
            self.write_bytes += io.size_bytes
        else:
            self.completed_reads += 1
            self.read_bytes += io.size_bytes
        tenant = io.tenant
        if tenant is not None:
            self.attribution.record(
                tenant, io.phase_index, is_write, io.size_bytes, now_ns, latency
            )
        self.last_completion_ns = max(self.last_completion_ns, now_ns)

    def on_transaction_complete(self, transaction: FlashTransaction) -> None:
        """Record an executed flash transaction."""
        if transaction.is_gc:
            self.gc_transactions += 1
            self.gc_time_ns += transaction.cell_time_ns
            return
        self.flp.record(transaction.parallelism, transaction.num_requests)
        self.memory_requests_served += transaction.num_requests

    def on_queue_stall(self, wait_ns: int) -> None:
        """Record host-side backlog waiting caused by a full device queue."""
        if wait_ns > 0:
            self.queue_stall_time_ns += wait_ns
            self.stalled_requests += 1

    # ------------------------------------------------------------------
    # Finalisation
    # ------------------------------------------------------------------
    @property
    def time_series(self) -> List[TimeSeriesPoint]:
        """Latency of each completed I/O, in completion order (Figure 12).

        In windowed mode this is only the most recent ``window`` completions.
        """
        return [
            TimeSeriesPoint(
                io_id=io_id,
                arrival_ns=arrival_ns,
                completion_ns=completion_ns,
                latency_ns=latency_ns,
            )
            for io_id, arrival_ns, completion_ns, latency_ns in self._ts
        ]

    @property
    def makespan_ns(self) -> int:
        """Observation window: first arrival to last completion."""
        if self.first_arrival_ns is None:
            return 0
        return max(0, self.last_completion_ns - self.first_arrival_ns)

    def utilization_report(self, chips: Dict[tuple, FlashChip]) -> UtilizationReport:
        """Per-chip utilisation over the makespan."""
        report = UtilizationReport()
        makespan = self.makespan_ns
        for chip_key, chip in chips.items():
            report.add(chip_key, chip.utilization(makespan))
        return report

    def idleness_report(self, chips: Dict[tuple, FlashChip]) -> IdlenessReport:
        """Inter-chip and intra-chip idleness over the makespan."""
        utilization = self.utilization_report(chips)
        # Never-busy chips report the -1.0 sentinel, which the averaging in
        # from_measurements excludes; busy chips contribute their genuine
        # idleness, including an exact 0.0 for fully covered dies.
        intra_values = [chip.intra_chip_idleness() for chip in chips.values()]
        return IdlenessReport.from_measurements(utilization, intra_values)

    def execution_breakdown(
        self, chips: Dict[tuple, FlashChip], channels: Dict[int, Channel]
    ) -> ExecutionBreakdown:
        """Aggregate execution-time breakdown over all chips."""
        makespan = self.makespan_ns
        breakdown = ExecutionBreakdown(total_chip_time_ns=makespan * max(1, len(chips)))
        for chip in chips.values():
            breakdown.bus_operation_ns += chip.stats.bus_time_ns
            breakdown.bus_contention_ns += chip.stats.bus_wait_ns
            breakdown.memory_operation_ns += chip.stats.cell_time_ns
        return breakdown
