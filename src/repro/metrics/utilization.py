"""Chip utilisation and idleness reports (Figures 1b, 6, 11, 15)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List


@dataclass
class UtilizationReport:
    """Per-chip busy fraction over the observation window."""

    per_chip: Dict[tuple, float] = field(default_factory=dict)

    def add(self, chip_key: tuple, utilization: float) -> None:
        """Record one chip's utilisation (fraction in [0, 1])."""
        self.per_chip[chip_key] = max(0.0, min(1.0, utilization))

    @property
    def mean(self) -> float:
        """Average chip utilisation (the paper's headline utilisation metric)."""
        if not self.per_chip:
            return 0.0
        return sum(self.per_chip.values()) / len(self.per_chip)

    @property
    def minimum(self) -> float:
        """Utilisation of the least-used chip."""
        return min(self.per_chip.values()) if self.per_chip else 0.0

    @property
    def maximum(self) -> float:
        """Utilisation of the most-used chip."""
        return max(self.per_chip.values()) if self.per_chip else 0.0

    @property
    def active_chip_fraction(self) -> float:
        """Fraction of chips that served at least some work."""
        if not self.per_chip:
            return 0.0
        active = sum(1 for value in self.per_chip.values() if value > 0.0)
        return active / len(self.per_chip)

    def imbalance(self) -> float:
        """Max-to-mean utilisation ratio; 1.0 means perfectly balanced.

        An empty report (or one where no chip did any work) returns the
        sentinel ``0.0`` - "no imbalance measurable" - rather than 1.0.
        """
        mean = self.mean
        if mean <= 0.0:
            return 0.0
        return self.maximum / mean


@dataclass
class IdlenessReport:
    """Inter-chip and intra-chip idleness (Figure 11)."""

    inter_chip: float = 0.0
    intra_chip: float = 0.0

    @classmethod
    def from_measurements(
        cls, utilization: UtilizationReport, intra_chip_values: List[float]
    ) -> "IdlenessReport":
        """Combine a utilisation report and per-chip intra-chip idleness values.

        *Inter-chip idleness* is the complement of mean chip utilisation: the
        fraction of chip-time during which whole chips sat idle.  *Intra-chip
        idleness* averages, over chips that did work, the fraction of die-time
        left unused while the chip was busy.  A chip that never went busy is
        marked with a negative sentinel (see
        :meth:`repro.flash.chip.FlashChip.intra_chip_idleness`) and is
        excluded; a busy chip with every die covered contributes its genuine
        ``0.0`` to the average.
        """
        inter = 1.0 - utilization.mean
        busy_values = [value for value in intra_chip_values if value >= 0.0]
        intra = sum(busy_values) / len(busy_values) if busy_values else 0.0
        return cls(inter_chip=max(0.0, min(1.0, inter)), intra_chip=max(0.0, min(1.0, intra)))

    @property
    def combined(self) -> float:
        """A single idleness figure weighting both components equally."""
        return 0.5 * (self.inter_chip + self.intra_chip)


def merge_utilization_reports(reports: List[UtilizationReport]) -> UtilizationReport:
    """Array-level utilisation: the union of per-device chip reports.

    Chip keys are namespaced with each report's position (device index), so
    devices with identical geometry never collide and the merged ``mean`` is
    the chip-count-weighted mean across the whole array.
    """
    merged = UtilizationReport()
    for device_index, report in enumerate(reports):
        for chip_key, value in report.per_chip.items():
            merged.per_chip[(device_index,) + tuple(chip_key)] = value
    return merged
