"""Metrics: everything the paper's evaluation section measures.

* latency / bandwidth / IOPS / queue stall time (Figure 10),
* inter-chip and intra-chip idleness (Figure 11),
* execution time breakdown into bus activity, bus contention, cell activity
  and idleness (Figure 13),
* flash-level parallelism breakdown NON-PAL/PAL1/PAL2/PAL3 (Figure 14),
* chip utilisation (Figures 1, 6, 15),
* flash transaction counts / reduction rate (Figure 16).
"""

from repro.metrics.latency import (
    DEFAULT_TAIL_WINDOW_NS,
    LatencyStats,
    TailWindow,
    WindowedTailTracker,
    bandwidth_kb_per_sec,
    iops,
    merge_latency_stats,
    percentile,
    tail_windows_from_samples,
)
from repro.metrics.parallelism import FLPBreakdown
from repro.metrics.breakdown import ExecutionBreakdown
from repro.metrics.utilization import (
    IdlenessReport,
    UtilizationReport,
    merge_utilization_reports,
)
from repro.metrics.collector import MetricsCollector
from repro.metrics.report import SimulationResult, format_table

__all__ = [
    "DEFAULT_TAIL_WINDOW_NS",
    "LatencyStats",
    "TailWindow",
    "WindowedTailTracker",
    "bandwidth_kb_per_sec",
    "iops",
    "merge_latency_stats",
    "percentile",
    "tail_windows_from_samples",
    "FLPBreakdown",
    "ExecutionBreakdown",
    "IdlenessReport",
    "UtilizationReport",
    "merge_utilization_reports",
    "MetricsCollector",
    "SimulationResult",
    "format_table",
]
