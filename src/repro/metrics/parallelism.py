"""Flash-level parallelism breakdown (Figure 14) and transaction accounting."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.flash.commands import ParallelismClass


@dataclass
class FLPBreakdown:
    """Counts of transactions (and the requests they carried) per FLP class."""

    transactions: Dict[ParallelismClass, int] = field(
        default_factory=lambda: {cls: 0 for cls in ParallelismClass}
    )
    requests: Dict[ParallelismClass, int] = field(
        default_factory=lambda: {cls: 0 for cls in ParallelismClass}
    )

    def record(self, parallelism: ParallelismClass, num_requests: int) -> None:
        """Record one executed transaction."""
        self.transactions[parallelism] += 1
        self.requests[parallelism] += num_requests

    @property
    def total_transactions(self) -> int:
        """Total number of flash transactions executed."""
        return sum(self.transactions.values())

    @property
    def total_requests(self) -> int:
        """Total number of memory requests served."""
        return sum(self.requests.values())

    def transaction_fractions(self) -> Dict[str, float]:
        """Share of transactions per FLP class, keyed by the paper's labels."""
        total = self.total_transactions
        if total == 0:
            return {cls.label: 0.0 for cls in ParallelismClass}
        return {cls.label: self.transactions[cls] / total for cls in ParallelismClass}

    def request_fractions(self) -> Dict[str, float]:
        """Share of served memory requests per FLP class."""
        total = self.total_requests
        if total == 0:
            return {cls.label: 0.0 for cls in ParallelismClass}
        return {cls.label: self.requests[cls] / total for cls in ParallelismClass}

    @property
    def high_flp_fraction(self) -> float:
        """Fraction of transactions with any flash-level parallelism (PAL1-3)."""
        total = self.total_transactions
        if total == 0:
            return 0.0
        high = total - self.transactions[ParallelismClass.NON_PAL]
        return high / total

    @property
    def average_requests_per_transaction(self) -> float:
        """Average coalescing degree; >1 means FARO is reducing transactions."""
        total = self.total_transactions
        if total == 0:
            return 0.0
        return self.total_requests / total

    def transaction_reduction_vs(self, baseline_transactions: int) -> float:
        """Fractional reduction in transaction count relative to a baseline."""
        if baseline_transactions <= 0:
            return 0.0
        return 1.0 - self.total_transactions / baseline_transactions
