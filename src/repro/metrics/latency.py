"""Latency, bandwidth and IOPS computations (Figure 10)."""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, List, Sequence

NS_PER_S = 1_000_000_000


def bandwidth_kb_per_sec(total_bytes: int, elapsed_ns: int) -> float:
    """I/O bandwidth in KB/s, matching the paper's Figure 10a units."""
    if elapsed_ns <= 0:
        return 0.0
    return (total_bytes / 1024.0) * NS_PER_S / elapsed_ns


def iops(num_requests: int, elapsed_ns: int) -> float:
    """I/O operations per second (Figure 10b)."""
    if elapsed_ns <= 0:
        return 0.0
    return num_requests * NS_PER_S / elapsed_ns


def percentile(values: Sequence[float], fraction: float) -> float:
    """Nearest-rank percentile of ``values`` (``fraction`` in [0, 1]).

    Uses the standard ceil-based nearest-rank definition: the percentile is
    the value at (1-based) rank ``ceil(fraction * len(values))``, with
    ``fraction == 0.0`` mapping to the smallest sample.  ``round`` is
    deliberately avoided - its banker's rounding of ``.5`` ranks biased
    even-length medians (``round(1.5) == 2`` but ``round(0.5) == 0``).
    """
    if not values:
        return 0.0
    if not 0.0 <= fraction <= 1.0:
        raise ValueError("fraction must be in [0, 1]")
    ordered = sorted(values)
    # The epsilon absorbs binary float error in the product (0.07 * 100 ==
    # 7.000000000000001) so an exact-integer rank never ceils one too high.
    rank = math.ceil(fraction * len(ordered) - 1e-9)  # 1-based nearest rank
    return ordered[max(rank, 1) - 1]


@dataclass
class LatencyStats:
    """Per-I/O device-level latency distribution."""

    samples_ns: List[int] = field(default_factory=list)

    def add(self, latency_ns: int) -> None:
        """Record the latency of one completed I/O request."""
        if latency_ns < 0:
            raise ValueError("latency must be non-negative")
        self.samples_ns.append(latency_ns)

    @property
    def count(self) -> int:
        """Number of recorded I/Os."""
        return len(self.samples_ns)

    @property
    def mean_ns(self) -> float:
        """Average device-level latency (Figure 10c)."""
        if not self.samples_ns:
            return 0.0
        return sum(self.samples_ns) / len(self.samples_ns)

    @property
    def max_ns(self) -> int:
        """Worst observed latency."""
        return max(self.samples_ns) if self.samples_ns else 0

    @property
    def min_ns(self) -> int:
        """Best observed latency."""
        return min(self.samples_ns) if self.samples_ns else 0

    def percentile_ns(self, fraction: float) -> float:
        """Latency percentile (e.g. 0.99 for the tail)."""
        return percentile(self.samples_ns, fraction)

    def merged_with(self, other: "LatencyStats") -> "LatencyStats":
        """Combine two distributions (used when aggregating workloads)."""
        merged = LatencyStats()
        merged.samples_ns = list(self.samples_ns) + list(other.samples_ns)
        return merged


@dataclass
class StreamingLatencyStats:
    """Bounded-memory latency accumulator (the collector's windowed mode).

    ``count``, ``mean_ns``, ``min_ns`` and ``max_ns`` are exact over every
    sample ever added; the sample buffer holds only the most recent
    ``window_size`` values (a ring), so ``percentile_ns`` is computed over
    that sliding window rather than the full history.  Peak memory is fixed
    by ``window_size`` no matter how long the run is.  Quacks like
    :class:`LatencyStats` (same read API, including ``samples_ns``).
    """

    window_size: int = 4096
    total_count: int = 0
    total_ns: int = 0
    lowest_ns: int = 0
    highest_ns: int = 0
    _ring: List[int] = field(default_factory=list)
    _cursor: int = 0

    def add(self, latency_ns: int) -> None:
        """Record the latency of one completed I/O request."""
        if latency_ns < 0:
            raise ValueError("latency must be non-negative")
        if self.total_count == 0:
            self.lowest_ns = self.highest_ns = latency_ns
        else:
            if latency_ns < self.lowest_ns:
                self.lowest_ns = latency_ns
            if latency_ns > self.highest_ns:
                self.highest_ns = latency_ns
        self.total_count += 1
        self.total_ns += latency_ns
        ring = self._ring
        if len(ring) < self.window_size:
            ring.append(latency_ns)
        else:
            ring[self._cursor] = latency_ns
            self._cursor = (self._cursor + 1) % self.window_size

    @property
    def samples_ns(self) -> List[int]:
        """The retained window, oldest first (most recent ``window_size``)."""
        ring = self._ring
        cursor = self._cursor
        if cursor == 0 or len(ring) < self.window_size:
            return list(ring)
        return ring[cursor:] + ring[:cursor]

    @property
    def count(self) -> int:
        """Number of recorded I/Os (exact, not windowed)."""
        return self.total_count

    @property
    def mean_ns(self) -> float:
        """Average latency over every recorded I/O (exact, not windowed)."""
        if not self.total_count:
            return 0.0
        return self.total_ns / self.total_count

    @property
    def max_ns(self) -> int:
        """Worst observed latency (exact, not windowed)."""
        return self.highest_ns

    @property
    def min_ns(self) -> int:
        """Best observed latency (exact, not windowed)."""
        return self.lowest_ns

    def percentile_ns(self, fraction: float) -> float:
        """Latency percentile over the retained window (approximate)."""
        return percentile(self._ring, fraction)

    def merged_with(self, other) -> LatencyStats:
        """Combine with another distribution over the retained windows."""
        merged = LatencyStats()
        merged.samples_ns = list(self.samples_ns) + list(other.samples_ns)
        return merged


def merge_latency_stats(parts: Iterable[LatencyStats]) -> LatencyStats:
    """Merge per-device latency distributions into one array-level one.

    Sample lists are concatenated, so the merged mean is exactly the
    count-weighted mean of the parts and percentiles are computed over the
    full array-wide population rather than averaged per device.
    """
    merged = LatencyStats()
    for part in parts:
        merged.samples_ns.extend(part.samples_ns)
    return merged
