"""Latency, bandwidth and IOPS computations (Figure 10).

Besides the end-of-run aggregates (:class:`LatencyStats`,
:class:`StreamingLatencyStats`), this module provides *windowed tail
latency*: :class:`WindowedTailTracker` seals completions into fixed
wall-clock windows and records exact p50/p99/p999 per window
(:class:`TailWindow`), so a run's tail behaviour *over time* is visible -
the metric a single end-of-run percentile cannot show.  The tracker is
streaming (it buffers one window of samples at a time), so it composes with
the windowed collector mode without reintroducing O(trace) memory.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Iterable, List, Optional, Sequence, Tuple

NS_PER_S = 1_000_000_000

#: Default tail-latency window width: 1 ms of simulated time.
DEFAULT_TAIL_WINDOW_NS = 1_000_000


def bandwidth_kb_per_sec(total_bytes: int, elapsed_ns: int) -> float:
    """I/O bandwidth in KB/s, matching the paper's Figure 10a units."""
    if elapsed_ns <= 0:
        return 0.0
    return (total_bytes / 1024.0) * NS_PER_S / elapsed_ns


def iops(num_requests: int, elapsed_ns: int) -> float:
    """I/O operations per second (Figure 10b)."""
    if elapsed_ns <= 0:
        return 0.0
    return num_requests * NS_PER_S / elapsed_ns


def percentile(values: Sequence[float], fraction: float) -> float:
    """Nearest-rank percentile of ``values`` (``fraction`` in [0, 1]).

    Uses the standard ceil-based nearest-rank definition: the percentile is
    the value at (1-based) rank ``ceil(fraction * len(values))``, with
    ``fraction == 0.0`` mapping to the smallest sample.  ``round`` is
    deliberately avoided - its banker's rounding of ``.5`` ranks biased
    even-length medians (``round(1.5) == 2`` but ``round(0.5) == 0``).
    """
    if not values:
        return 0.0
    if not 0.0 <= fraction <= 1.0:
        raise ValueError("fraction must be in [0, 1]")
    ordered = sorted(values)
    # The epsilon absorbs binary float error in the product (0.07 * 100 ==
    # 7.000000000000001) so an exact-integer rank never ceils one too high.
    rank = math.ceil(fraction * len(ordered) - 1e-9)  # 1-based nearest rank
    return ordered[max(rank, 1) - 1]


@dataclass
class LatencyStats:
    """Per-I/O device-level latency distribution."""

    samples_ns: List[int] = field(default_factory=list)

    def add(self, latency_ns: int) -> None:
        """Record the latency of one completed I/O request."""
        if latency_ns < 0:
            raise ValueError("latency must be non-negative")
        self.samples_ns.append(latency_ns)

    @property
    def count(self) -> int:
        """Number of recorded I/Os."""
        return len(self.samples_ns)

    @property
    def mean_ns(self) -> float:
        """Average device-level latency (Figure 10c)."""
        if not self.samples_ns:
            return 0.0
        return sum(self.samples_ns) / len(self.samples_ns)

    @property
    def max_ns(self) -> int:
        """Worst observed latency."""
        return max(self.samples_ns) if self.samples_ns else 0

    @property
    def min_ns(self) -> int:
        """Best observed latency."""
        return min(self.samples_ns) if self.samples_ns else 0

    def percentile_ns(self, fraction: float) -> float:
        """Latency percentile (e.g. 0.99 for the tail)."""
        return percentile(self.samples_ns, fraction)

    def merged_with(self, other: "LatencyStats") -> "LatencyStats":
        """Combine two distributions (used when aggregating workloads)."""
        merged = LatencyStats()
        merged.samples_ns = list(self.samples_ns) + list(other.samples_ns)
        return merged


@dataclass
class StreamingLatencyStats:
    """Bounded-memory latency accumulator (the collector's windowed mode).

    ``count``, ``mean_ns``, ``min_ns`` and ``max_ns`` are exact over every
    sample ever added; the sample buffer holds only the most recent
    ``window_size`` values (a ring), so ``percentile_ns`` is computed over
    that sliding window rather than the full history.  Peak memory is fixed
    by ``window_size`` no matter how long the run is.  Quacks like
    :class:`LatencyStats` (same read API, including ``samples_ns``).
    """

    window_size: int = 4096
    total_count: int = 0
    total_ns: int = 0
    lowest_ns: int = 0
    highest_ns: int = 0
    _ring: List[int] = field(default_factory=list)
    _cursor: int = 0

    def add(self, latency_ns: int) -> None:
        """Record the latency of one completed I/O request."""
        if latency_ns < 0:
            raise ValueError("latency must be non-negative")
        if self.total_count == 0:
            self.lowest_ns = self.highest_ns = latency_ns
        else:
            if latency_ns < self.lowest_ns:
                self.lowest_ns = latency_ns
            if latency_ns > self.highest_ns:
                self.highest_ns = latency_ns
        self.total_count += 1
        self.total_ns += latency_ns
        ring = self._ring
        if len(ring) < self.window_size:
            ring.append(latency_ns)
        else:
            ring[self._cursor] = latency_ns
            self._cursor = (self._cursor + 1) % self.window_size

    @property
    def samples_ns(self) -> List[int]:
        """The retained window, oldest first (most recent ``window_size``)."""
        ring = self._ring
        cursor = self._cursor
        if cursor == 0 or len(ring) < self.window_size:
            return list(ring)
        return ring[cursor:] + ring[:cursor]

    @property
    def count(self) -> int:
        """Number of recorded I/Os (exact, not windowed)."""
        return self.total_count

    @property
    def mean_ns(self) -> float:
        """Average latency over every recorded I/O (exact, not windowed)."""
        if not self.total_count:
            return 0.0
        return self.total_ns / self.total_count

    @property
    def max_ns(self) -> int:
        """Worst observed latency (exact, not windowed)."""
        return self.highest_ns

    @property
    def min_ns(self) -> int:
        """Best observed latency (exact, not windowed)."""
        return self.lowest_ns

    def percentile_ns(self, fraction: float) -> float:
        """Latency percentile over the retained window (approximate)."""
        return percentile(self._ring, fraction)

    def merged_with(self, other) -> LatencyStats:
        """Combine with another distribution over the retained windows."""
        merged = LatencyStats()
        merged.samples_ns = list(self.samples_ns) + list(other.samples_ns)
        return merged


@dataclass(frozen=True)
class TailWindow:
    """Exact latency percentiles of one fixed-width completion window.

    ``index`` is the window's ordinal position on the simulated clock
    (``completion_ns // window_ns``); empty windows produce no entry, so
    consecutive records may skip indices.  Percentiles use the same
    ceil-based nearest-rank :func:`percentile` as the full-history stats,
    which is what makes the windowed series *exactly* reproducible from a
    full completion history (the validation contract the tests enforce).
    """

    index: int
    start_ns: int
    end_ns: int
    count: int
    p50_ns: float
    p99_ns: float
    p999_ns: float
    max_ns: int


class WindowedTailTracker:
    """Streams completions into :class:`TailWindow` records.

    Completion times must be non-decreasing (the simulator's clock is), so a
    window can be sealed the moment a later window's first sample arrives;
    only the in-progress window's samples are buffered.  The grouping key is
    the completion time, making the series independent of how (or whether)
    the collector truncates its per-sample history.

    ``max_windows`` bounds how many *sealed* windows are retained (oldest
    dropped first).  The memory-flat collector mode sets it so that the
    series cannot grow with replay length - each retained window's
    percentiles are still exact, only the tail of the series is kept.
    Unbounded (``None``) retention is the full-history default.
    """

    __slots__ = ("window_ns", "max_windows", "windows", "_current_index", "_samples")

    def __init__(
        self,
        window_ns: int = DEFAULT_TAIL_WINDOW_NS,
        max_windows: Optional[int] = None,
    ) -> None:
        if window_ns <= 0:
            raise ValueError("window_ns must be positive")
        if max_windows is not None and max_windows <= 0:
            raise ValueError("max_windows must be positive")
        self.window_ns = window_ns
        self.max_windows = max_windows
        self.windows: Deque[TailWindow] = deque(maxlen=max_windows)
        self._current_index: Optional[int] = None
        self._samples: List[int] = []

    def add(self, completion_ns: int, latency_ns: int) -> None:
        """Record one completion at ``completion_ns`` with ``latency_ns``.

        The simulator feeds completions in clock order, which is what makes
        the one-window buffer exact.  A *late* sample (an earlier window
        than the one currently open) is credited to the open window rather
        than rejected, so collector callers outside the simulator need not
        guarantee monotonic time; with a monotonic feed the branch never
        fires and the series is exact.
        """
        index = completion_ns // self.window_ns
        current = self._current_index
        if current is None:
            self._current_index = index
        elif index > current:
            self._seal()
            self._current_index = index
        self._samples.append(latency_ns)

    def _seal(self) -> None:
        samples = self._samples
        index = self._current_index
        assert index is not None
        self.windows.append(
            TailWindow(
                index=index,
                start_ns=index * self.window_ns,
                end_ns=(index + 1) * self.window_ns,
                count=len(samples),
                p50_ns=percentile(samples, 0.50),
                p99_ns=percentile(samples, 0.99),
                p999_ns=percentile(samples, 0.999),
                max_ns=max(samples),
            )
        )
        self._samples = []

    def finish(self) -> Tuple[TailWindow, ...]:
        """Seal the in-progress window and return the complete series.

        Idempotent: a second call (nothing buffered) returns the same tuple.
        """
        if self._samples:
            self._seal()
        return tuple(self.windows)


def tail_windows_from_samples(
    samples: Iterable[Tuple[int, int]], window_ns: int = DEFAULT_TAIL_WINDOW_NS
) -> Tuple[TailWindow, ...]:
    """Windowed tail series from ``(completion_ns, latency_ns)`` pairs.

    The full-history reference implementation the streaming tracker is
    validated against: group every completion by ``completion_ns //
    window_ns`` and compute the percentiles per group.
    """
    tracker = WindowedTailTracker(window_ns)
    for completion_ns, latency_ns in samples:
        tracker.add(completion_ns, latency_ns)
    return tracker.finish()


def merge_latency_stats(parts: Iterable[LatencyStats]) -> LatencyStats:
    """Merge per-device latency distributions into one array-level one.

    Sample lists are concatenated, so the merged mean is exactly the
    count-weighted mean of the parts and percentiles are computed over the
    full array-wide population rather than averaged per device.
    """
    merged = LatencyStats()
    for part in parts:
        merged.samples_ns.extend(part.samples_ns)
    return merged
