"""Per-tenant / per-phase telemetry attribution.

The scenario engine stamps every built request with a provenance tag
(``IORequest.tenant`` / ``IORequest.phase_index``); the
:class:`AttributionTracker` inside the :class:`~repro.metrics.collector.
MetricsCollector` slices completions by that tag, so a multi-tenant run
reports *who waited* instead of one blended distribution.

The contract is exact reconciliation, not sampling: per-slice counts, byte
totals and (in full-history mode) the pooled percentile sample populations
sum to the aggregate figures precisely - :func:`reconcile_attribution`
checks that invariant and the test suite enforces it on every tiny-suite
scenario case.  Everything here is observational: the report rides on
:class:`~repro.metrics.report.SimulationResult` as a fingerprint-excluded
field, so a tagged run stays digest-identical to an untagged one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.metrics.latency import (
    DEFAULT_TAIL_WINDOW_NS,
    LatencyStats,
    StreamingLatencyStats,
    TailWindow,
    WindowedTailTracker,
    merge_latency_stats,
)


@dataclass(frozen=True)
class TenantPhaseStats:
    """Latency/throughput accounting for one ``(tenant, phase)`` slice."""

    tenant: str
    phase_index: int
    completed_ios: int
    reads: int
    writes: int
    read_bytes: int
    write_bytes: int
    #: The slice's own latency distribution (full or streaming, matching the
    #: collector's history mode).
    latency: LatencyStats
    #: Exact windowed p50/p99/p999 series of this slice alone.
    latency_windows: Tuple[TailWindow, ...]

    @property
    def total_bytes(self) -> int:
        """Bytes served for this slice."""
        return self.read_bytes + self.write_bytes

    def summary_row(self) -> Dict[str, object]:
        """One row of the tenant tables (reports, CLI)."""
        return {
            "phase": self.phase_index,
            "tenant": self.tenant,
            "ios": self.completed_ios,
            "reads": self.reads,
            "writes": self.writes,
            "mb": round(self.total_bytes / (1024.0 * 1024.0), 2),
            "mean_us": round(self.latency.mean_ns / 1_000.0, 1),
            "p99_us": round(self.latency.percentile_ns(0.99) / 1_000.0, 1),
            "p999_us": round(self.latency.percentile_ns(0.999) / 1_000.0, 1),
            "max_us": round(self.latency.max_ns / 1_000.0, 1),
        }


@dataclass(frozen=True)
class AttributionReport:
    """All ``(tenant, phase)`` slices of one run, plus the untagged remainder.

    ``entries`` is sorted by ``(phase_index, tenant)``.  ``untagged_ios`` /
    ``untagged_bytes`` are the completions that carried no provenance tag
    (mixed workloads may tag only part of the trace); tagged slices plus the
    untagged remainder always sum to the aggregate result.
    """

    entries: Tuple[TenantPhaseStats, ...]
    untagged_ios: int = 0
    untagged_bytes: int = 0

    def tenants(self) -> Tuple[str, ...]:
        """Distinct tenant names, sorted."""
        return tuple(sorted({entry.tenant for entry in self.entries}))

    def phases(self) -> Tuple[int, ...]:
        """Distinct phase indices, sorted."""
        return tuple(sorted({entry.phase_index for entry in self.entries}))

    def by_tenant(self, tenant: str) -> TenantPhaseStats:
        """One tenant's slices pooled across phases (phase_index -1)."""
        slices = [entry for entry in self.entries if entry.tenant == tenant]
        if not slices:
            raise KeyError(f"no attribution entries for tenant {tenant!r}")
        return TenantPhaseStats(
            tenant=tenant,
            phase_index=-1,
            completed_ios=sum(entry.completed_ios for entry in slices),
            reads=sum(entry.reads for entry in slices),
            writes=sum(entry.writes for entry in slices),
            read_bytes=sum(entry.read_bytes for entry in slices),
            write_bytes=sum(entry.write_bytes for entry in slices),
            latency=merge_latency_stats([entry.latency for entry in slices]),
            latency_windows=(),
        )

    def tenant_totals(self) -> Tuple[TenantPhaseStats, ...]:
        """Per-tenant roll-ups (each pooled across phases)."""
        return tuple(self.by_tenant(tenant) for tenant in self.tenants())

    def pooled_samples(self) -> List[int]:
        """Every slice's latency samples concatenated (reconciliation input)."""
        samples: List[int] = []
        for entry in self.entries:
            samples.extend(entry.latency.samples_ns)
        return samples

    def counter_slices(self) -> Dict[str, int]:
        """Per-tenant counters merged into the run's counter snapshot."""
        counters: Dict[str, int] = {}
        for entry in self.tenant_totals():
            prefix = f"tenant.{entry.tenant}"
            counters[f"{prefix}.io.completed"] = entry.completed_ios
            counters[f"{prefix}.bytes.read"] = entry.read_bytes
            counters[f"{prefix}.bytes.written"] = entry.write_bytes
        return counters

    def rows(self) -> List[Dict[str, object]]:
        """Printable rows: one per (phase, tenant) slice."""
        return [entry.summary_row() for entry in self.entries]


class AttributionTracker:
    """Streams tagged completions into per-``(tenant, phase)`` accumulators.

    Mirrors the collector's history contract: ``"full"`` keeps every sample
    per slice, ``"windowed"`` bounds per-slice memory with streaming stats
    and a capped tail-window series.  The hot path is one dict probe plus
    the same accumulator work the aggregate stats already do - and the
    collector only calls :meth:`record` for requests that carry a tag, so
    untagged runs never enter this class at all.
    """

    def __init__(
        self,
        history: str = "full",
        window: int = 4096,
        tail_window_ns: int = DEFAULT_TAIL_WINDOW_NS,
    ) -> None:
        self.history = history
        self.window = window
        self.tail_window_ns = tail_window_ns
        # key -> [ios, reads, writes, read_bytes, write_bytes, latency, tail]
        self._slices: Dict[Tuple[str, int], list] = {}

    def _new_slice(self) -> list:
        if self.history == "windowed":
            latency = StreamingLatencyStats(window_size=self.window)
            tail = WindowedTailTracker(self.tail_window_ns, max_windows=self.window)
        else:
            latency = LatencyStats()
            tail = WindowedTailTracker(self.tail_window_ns)
        return [0, 0, 0, 0, 0, latency, tail]

    def record(
        self,
        tenant: str,
        phase_index: Optional[int],
        is_write: bool,
        size_bytes: int,
        now_ns: int,
        latency_ns: int,
    ) -> None:
        """Account one tagged completion."""
        key = (tenant, phase_index if phase_index is not None else -1)
        cell = self._slices.get(key)
        if cell is None:
            cell = self._slices[key] = self._new_slice()
        cell[0] += 1
        if is_write:
            cell[2] += 1
            cell[4] += size_bytes
        else:
            cell[1] += 1
            cell[3] += size_bytes
        cell[5].add(latency_ns)
        cell[6].add(now_ns, latency_ns)

    @property
    def tagged_ios(self) -> int:
        """Completions recorded with a provenance tag."""
        return sum(cell[0] for cell in self._slices.values())

    @property
    def tagged_bytes(self) -> int:
        """Bytes recorded with a provenance tag."""
        return sum(cell[3] + cell[4] for cell in self._slices.values())

    def finish(self, total_ios: int = 0, total_bytes: int = 0) -> Optional[AttributionReport]:
        """Assemble the report; ``None`` when nothing was tagged.

        ``total_ios``/``total_bytes`` are the run's aggregate figures; the
        untagged remainder is derived rather than counted, which keeps the
        untagged hot path to a single attribute test.
        """
        if not self._slices:
            return None
        entries = tuple(
            TenantPhaseStats(
                tenant=tenant,
                phase_index=phase_index,
                completed_ios=cell[0],
                reads=cell[1],
                writes=cell[2],
                read_bytes=cell[3],
                write_bytes=cell[4],
                latency=cell[5],
                latency_windows=cell[6].finish(),
            )
            for (tenant, phase_index), cell in sorted(
                self._slices.items(), key=lambda item: (item[0][1], item[0][0])
            )
        )
        return AttributionReport(
            entries=entries,
            untagged_ios=total_ios - self.tagged_ios,
            untagged_bytes=total_bytes - self.tagged_bytes,
        )


def merge_attribution_reports(
    reports: Sequence["AttributionReport"],
) -> Optional[AttributionReport]:
    """Merge per-device (or per-array) attribution reports into one.

    Slices with the same ``(tenant, phase_index)`` key are summed exactly:
    counts and byte totals add, latency distributions pool via
    :func:`merge_latency_stats` (full histories concatenate sample-for-
    sample, so fleet-level percentiles are computed over the union
    population).  Per-slice windowed tail series are dropped (``()``) -
    windows from different devices overlap in time and cannot be merged
    exactly, and the contract of this module is exactness or nothing.

    ``untagged_ios``/``untagged_bytes`` add across inputs, preserving the
    invariant that tagged slices plus the untagged remainder equal the
    merged aggregate.  Returns ``None`` for an empty input sequence.
    """
    if not reports:
        return None
    merged: Dict[Tuple[str, int], List[TenantPhaseStats]] = {}
    for report in reports:
        for entry in report.entries:
            merged.setdefault((entry.tenant, entry.phase_index), []).append(entry)
    entries = tuple(
        TenantPhaseStats(
            tenant=tenant,
            phase_index=phase_index,
            completed_ios=sum(entry.completed_ios for entry in slices),
            reads=sum(entry.reads for entry in slices),
            writes=sum(entry.writes for entry in slices),
            read_bytes=sum(entry.read_bytes for entry in slices),
            write_bytes=sum(entry.write_bytes for entry in slices),
            latency=merge_latency_stats([entry.latency for entry in slices]),
            latency_windows=(),
        )
        for (tenant, phase_index), slices in sorted(
            merged.items(), key=lambda item: (item[0][1], item[0][0])
        )
    )
    return AttributionReport(
        entries=entries,
        untagged_ios=sum(report.untagged_ios for report in reports),
        untagged_bytes=sum(report.untagged_bytes for report in reports),
    )


def untagged_report(completed_ios: int, total_bytes: int) -> AttributionReport:
    """An attribution report for a result with no tagged completions.

    Used when merging attribution across devices of which some saw no
    tagged traffic (their ``attribution`` is ``None``): substituting an
    all-untagged report keeps the tagged + untagged == aggregate invariant
    exact across the merge.
    """
    return AttributionReport(
        entries=(), untagged_ios=completed_ios, untagged_bytes=total_bytes
    )


def reconcile_attribution(result) -> List[str]:
    """Check a result's attribution against its aggregate stats.

    Returns a list of human-readable problems (empty = exact).  Counts and
    byte totals must always reconcile; the pooled percentile inputs are
    additionally compared sample-for-sample when the aggregate retained a
    full history (slice sample counts matching the aggregate population).
    """
    report = result.attribution
    if report is None:
        return ["result carries no attribution (no tagged completions)"]
    problems: List[str] = []
    tagged_ios = sum(entry.completed_ios for entry in report.entries)
    tagged_bytes = sum(entry.total_bytes for entry in report.entries)
    if tagged_ios + report.untagged_ios != result.completed_ios:
        problems.append(
            f"I/O counts do not reconcile: {tagged_ios} tagged + "
            f"{report.untagged_ios} untagged != {result.completed_ios} aggregate"
        )
    if tagged_bytes + report.untagged_bytes != result.total_bytes:
        problems.append(
            f"byte totals do not reconcile: {tagged_bytes} tagged + "
            f"{report.untagged_bytes} untagged != {result.total_bytes} aggregate"
        )
    for entry in report.entries:
        if entry.latency.count != entry.completed_ios:
            problems.append(
                f"slice ({entry.tenant}, phase {entry.phase_index}): "
                f"{entry.latency.count} latency samples != {entry.completed_ios} I/Os"
            )
        window_count = sum(window.count for window in entry.latency_windows)
        if entry.latency_windows and window_count != entry.completed_ios:
            problems.append(
                f"slice ({entry.tenant}, phase {entry.phase_index}): "
                f"window counts sum to {window_count}, expected {entry.completed_ios}"
            )
    # Pooled percentile inputs: only checkable sample-for-sample when both
    # sides kept full histories (windowed mode truncates by design).
    pooled = report.pooled_samples()
    aggregate = result.latency.samples_ns
    if (
        report.untagged_ios == 0
        and len(aggregate) == result.completed_ios
        and sorted(pooled) != sorted(aggregate)
    ):
        problems.append(
            "pooled per-slice percentile inputs do not match the aggregate "
            f"sample population ({len(pooled)} vs {len(aggregate)} samples)"
        )
    return problems
