"""Simulation result container and table formatting.

:class:`SimulationResult` is what one call to
:meth:`repro.sim.ssd.SSDSimulator.run` returns: a frozen snapshot of every
metric the paper's evaluation reports, with convenience properties named
after the figures they feed.

The result (including every nested metrics dataclass) is plain picklable
data with value-equality semantics: the execution engine ships it across
process boundaries and stores it in the on-disk result cache, and tests
compare serial vs parallel runs byte-for-byte via ``pickle.dumps``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.ftl.garbage_collector import GCStats
from repro.ftl.wear_leveling import WearStats
from repro.lifetime.accounting import LifetimeAccounting
from repro.metrics.attribution import AttributionReport
from repro.metrics.breakdown import ExecutionBreakdown
from repro.metrics.collector import TimeSeriesPoint
from repro.obs.health import HealthSample
from repro.metrics.latency import (
    LatencyStats,
    TailWindow,
    bandwidth_kb_per_sec,
    iops,
)
from repro.metrics.parallelism import FLPBreakdown
from repro.metrics.utilization import IdlenessReport, UtilizationReport


@dataclass
class SimulationResult:
    """All measurements from one simulation run."""

    scheduler: str
    workload: str
    num_ios: int
    completed_ios: int
    total_bytes: int
    makespan_ns: int
    latency: LatencyStats
    utilization: UtilizationReport
    idleness: IdlenessReport
    flp: FLPBreakdown
    breakdown: ExecutionBreakdown
    queue_stall_time_ns: int
    memory_requests_composed: int
    memory_requests_served: int
    transactions: int
    gc_transactions: int
    gc_time_ns: int
    time_series: List[TimeSeriesPoint] = field(default_factory=list)
    extra: Dict[str, float] = field(default_factory=dict)
    #: Garbage collection activity of the measured run (invocations, blocks
    #: erased, pages migrated, orphans) - preconditioning work excluded.
    gc_stats: Optional[GCStats] = None
    #: End-of-run erase-count distribution across the device's good blocks.
    wear: Optional[WearStats] = None
    #: Host vs flash writes, write amplification and precondition bookkeeping.
    lifetime: Optional[LifetimeAccounting] = None
    # -- Observability fields (PR 8). All carry ``fingerprint: False`` so
    # adding them (and any future telemetry) leaves every pre-existing
    # result digest - perf trajectories, checkpoint goldens - untouched.
    # ``__getattr__`` below supplies their defaults when an older pickled
    # result (cache entries, checkpoints) predates them.
    #: Events popped from the event queue over the measured run.
    events_processed: int = field(default=0, metadata={"fingerprint": False})
    #: Number of same-timestamp event batches the run was processed in.
    event_batches: int = field(default=0, metadata={"fingerprint": False})
    #: Largest same-timestamp event batch observed.
    largest_event_batch: int = field(default=0, metadata={"fingerprint": False})
    #: Counter-registry snapshot (``{dotted.name: count}``, sorted keys).
    counters: Dict[str, int] = field(
        default_factory=dict, metadata={"fingerprint": False}
    )
    #: Windowed tail-latency series (exact p50/p99/p999 per time window).
    latency_windows: Tuple[TailWindow, ...] = field(
        default=(), metadata={"fingerprint": False}
    )
    # -- Attributed telemetry (PR 9): same fingerprint-exclusion contract.
    #: Per-(tenant, phase) latency/throughput slices for scenario-stamped
    #: workloads; ``None`` when no completion carried a provenance tag.
    attribution: Optional[AttributionReport] = field(
        default=None, metadata={"fingerprint": False}
    )
    #: Periodic health samples (event backlog, queue depths, GC pressure,
    #: chip busyness); empty unless the run enabled the health sampler.
    health: Tuple[HealthSample, ...] = field(
        default=(), metadata={"fingerprint": False}
    )

    def __getattr__(self, name: str):
        # Back-compat for results pickled before the observability fields
        # existed: dataclass defaults live in __init__, so old instances
        # simply lack the attributes.  Serve the documented defaults for
        # exactly those names; anything else is a genuine miss.
        if name in ("events_processed", "event_batches", "largest_event_batch"):
            return 0
        if name == "counters":
            return {}
        if name in ("latency_windows", "health"):
            return ()
        if name == "attribution":
            return None
        raise AttributeError(
            f"{type(self).__name__!r} object has no attribute {name!r}"
        )

    # ------------------------------------------------------------------
    # Figure 10 metrics
    # ------------------------------------------------------------------
    @property
    def bandwidth_kb_s(self) -> float:
        """I/O bandwidth in KB/s (Figure 10a)."""
        return bandwidth_kb_per_sec(self.total_bytes, self.makespan_ns)

    @property
    def iops(self) -> float:
        """I/O operations per second (Figure 10b)."""
        return iops(self.completed_ios, self.makespan_ns)

    @property
    def avg_latency_ns(self) -> float:
        """Average device-level latency (Figure 10c)."""
        return self.latency.mean_ns

    @property
    def queue_stall_fraction(self) -> float:
        """Queue stall time as a fraction of the makespan (Figure 10d)."""
        if self.makespan_ns <= 0:
            return 0.0
        return self.queue_stall_time_ns / self.makespan_ns

    # ------------------------------------------------------------------
    # Figure 11 metrics
    # ------------------------------------------------------------------
    @property
    def inter_chip_idleness(self) -> float:
        """Fraction of chip-time where whole chips sat idle."""
        return self.idleness.inter_chip

    @property
    def intra_chip_idleness(self) -> float:
        """Unused die-time fraction while chips were busy."""
        return self.idleness.intra_chip

    # ------------------------------------------------------------------
    # Figure 13 / 14 / 15 / 16 metrics
    # ------------------------------------------------------------------
    @property
    def chip_utilization(self) -> float:
        """Mean chip utilisation (Figures 1b, 6, 15)."""
        return self.utilization.mean

    def flp_fractions(self) -> Dict[str, float]:
        """NON-PAL/PAL1/PAL2/PAL3 transaction shares (Figure 14)."""
        return self.flp.transaction_fractions()

    def breakdown_fractions(self) -> Dict[str, float]:
        """Execution-time breakdown shares (Figure 13)."""
        return self.breakdown.fractions()

    @property
    def transaction_reduction(self) -> float:
        """Fraction of transactions saved relative to one-per-request."""
        if self.memory_requests_served <= 0:
            return 0.0
        return 1.0 - self.transactions / self.memory_requests_served

    @property
    def coalescing_degree(self) -> float:
        """Average memory requests per flash transaction."""
        return self.flp.average_requests_per_transaction

    # ------------------------------------------------------------------
    # Lifetime / steady-state metrics
    # ------------------------------------------------------------------
    @property
    def write_amplification(self) -> float:
        """Flash writes per host write during the run (1.0 when unknown)."""
        if self.lifetime is None:
            return 1.0
        return self.lifetime.write_amplification

    @property
    def wear_spread(self) -> int:
        """Erase-count gap between the most and least worn blocks."""
        if self.wear is None:
            return 0
        return self.wear.spread

    # ------------------------------------------------------------------
    # Presentation helpers
    # ------------------------------------------------------------------
    def summary_row(self) -> Dict[str, object]:
        """One row of the scheduler-comparison tables used by the harness."""
        return {
            "scheduler": self.scheduler,
            "workload": self.workload,
            "bandwidth_kb_s": round(self.bandwidth_kb_s, 1),
            "iops": round(self.iops, 1),
            "avg_latency_us": round(self.avg_latency_ns / 1_000.0, 1),
            "queue_stall_frac": round(self.queue_stall_fraction, 4),
            "chip_utilization": round(self.chip_utilization, 4),
            "inter_chip_idleness": round(self.inter_chip_idleness, 4),
            "intra_chip_idleness": round(self.intra_chip_idleness, 4),
            "transactions": self.transactions,
            "requests_served": self.memory_requests_served,
            "coalescing": round(self.coalescing_degree, 2),
        }


def format_table(rows: Sequence[Dict[str, object]], *, title: Optional[str] = None) -> str:
    """Render a list of dict rows as an aligned plain-text table."""
    if not rows:
        return title or ""
    columns = list(rows[0].keys())
    widths = {col: len(str(col)) for col in columns}
    for row in rows:
        for col in columns:
            widths[col] = max(widths[col], len(str(row.get(col, ""))))
    lines: List[str] = []
    if title:
        lines.append(title)
    header = "  ".join(str(col).ljust(widths[col]) for col in columns)
    lines.append(header)
    lines.append("  ".join("-" * widths[col] for col in columns))
    for row in rows:
        lines.append("  ".join(str(row.get(col, "")).ljust(widths[col]) for col in columns))
    return "\n".join(lines)
