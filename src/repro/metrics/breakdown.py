"""Execution time breakdown (Figure 13).

The paper decomposes the total execution time of a workload into four
components, aggregated over all chips:

* **bus operation** - time the channel spends actively moving commands/data,
* **bus contention** - time transactions wait for the shared channel,
* **memory operation** - time flash cells spend reading/programming/erasing,
* **system idle** - everything else (chips sitting idle).

The breakdown is computed over chip-time: ``num_chips * makespan`` is the
total budget, and the components are normalised against it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict


@dataclass
class ExecutionBreakdown:
    """Aggregated execution-time components, all in chip-nanoseconds."""

    bus_operation_ns: int = 0
    bus_contention_ns: int = 0
    memory_operation_ns: int = 0
    total_chip_time_ns: int = 0

    @property
    def system_idle_ns(self) -> int:
        """Chip-time not covered by bus or cell activity."""
        busy = self.bus_operation_ns + self.bus_contention_ns + self.memory_operation_ns
        return max(0, self.total_chip_time_ns - busy)

    def fractions(self) -> Dict[str, float]:
        """Normalised components, matching the paper's Figure 13 legend."""
        total = self.total_chip_time_ns
        if total <= 0:
            return {
                "bus_operation": 0.0,
                "bus_contention": 0.0,
                "memory_operation": 0.0,
                "system_idle": 0.0,
            }
        return {
            "bus_operation": self.bus_operation_ns / total,
            "bus_contention": self.bus_contention_ns / total,
            "memory_operation": self.memory_operation_ns / total,
            "system_idle": self.system_idle_ns / total,
        }

    @property
    def busy_fraction(self) -> float:
        """Fraction of chip-time doing useful (bus or cell) work."""
        total = self.total_chip_time_ns
        if total <= 0:
            return 0.0
        return (self.bus_operation_ns + self.memory_operation_ns) / total

    def __add__(self, other: "ExecutionBreakdown") -> "ExecutionBreakdown":
        return ExecutionBreakdown(
            bus_operation_ns=self.bus_operation_ns + other.bus_operation_ns,
            bus_contention_ns=self.bus_contention_ns + other.bus_contention_ns,
            memory_operation_ns=self.memory_operation_ns + other.memory_operation_ns,
            total_chip_time_ns=self.total_chip_time_ns + other.total_chip_time_ns,
        )
