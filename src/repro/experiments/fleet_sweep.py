"""Fleet sweep: fleet size x placement policy x scenario.

Beyond-the-paper experiment on the :mod:`repro.fleet` layer: the same
multi-tenant scenario is served by fleets of growing size built from a
cycling device-zoo node mix, under every placement policy in the sweep.
One row per cell reports cluster throughput, fleet-tail latency, SLO
violations, placement balance (byte/IOPS imbalance across nodes) and
admission/background activity - the questions the single-array experiments
cannot ask: does least-loaded placement actually beat hashing once nodes
are heterogeneous?  How much tail latency do admission limits buy?

Every cell expands into ordinary fingerprinted device jobs, so
``--cache-dir`` memoizes across re-runs, ``--backend process``
parallelises the whole sweep bit-identically, and ``--report`` writes the
full fleet report of one chosen cell.
"""

from __future__ import annotations

import argparse
from typing import Dict, List, Optional, Sequence, Tuple

from repro.experiments.engine import (
    ExecutionEngine,
    add_engine_arguments,
    engine_from_args,
)
from repro.fleet import (
    BackgroundJob,
    FleetNodeSpec,
    FleetSpec,
    TenantPolicy,
    run_fleet,
    write_fleet_report,
)
from repro.fleet.result import FleetResult
from repro.metrics.report import format_table
from repro.obs.report import SLOThresholds
from repro.scenarios.library import fleet_scenario
from repro.scenarios.scenario import Scenario

#: Placement policies swept by default (the full set lives in
#: :data:`repro.fleet.FLEET_PLACEMENT_POLICIES`).
DEFAULT_PLACEMENTS = ("round-robin", "least-loaded", "hash")

#: Fleet sizes swept by default.
DEFAULT_FLEET_SIZES = (2, 3, 4)

#: Node device mix, cycled across slots: small SLC, mid MLC, large TLC.
DEFAULT_ZOO_CYCLE = ("slc-gen1", "mlc-gen1", "tlc-gen3")

#: Generous default tail SLO so verdict accounting is exercised without
#: drowning the table in failures on slow zoo devices.
DEFAULT_SLO = SLOThresholds(p99_us=250_000.0)


def default_fleet_nodes(
    size: int, *, zoo_cycle: Sequence[str] = DEFAULT_ZOO_CYCLE
) -> Tuple[FleetNodeSpec, ...]:
    """``size`` single-device nodes cycling through the zoo mix."""
    return tuple(
        FleetNodeSpec(name=f"node{index}", devices=(zoo_cycle[index % len(zoo_cycle)],))
        for index in range(size)
    )


def build_fleet_spec(
    scenario: Scenario,
    size: int,
    placement: str,
    *,
    zoo_cycle: Sequence[str] = DEFAULT_ZOO_CYCLE,
    slo: Optional[SLOThresholds] = DEFAULT_SLO,
    with_background: bool = True,
) -> FleetSpec:
    """One sweep cell: a sized, policy-bound fleet serving ``scenario``.

    The key-value tenant is rate-paced and the log writer depth-limited, so
    every cell exercises both admission mechanisms; a scrub job rides on
    the first node (and a GC-debt job on the second, when present) so the
    background scheduler always has valleys to fill.
    """
    nodes = default_fleet_nodes(size, zoo_cycle=zoo_cycle)
    background: Tuple[BackgroundJob, ...] = ()
    if with_background:
        jobs = [BackgroundJob(kind="scrub", node=nodes[0].name, num_requests=8)]
        if len(nodes) > 1:
            jobs.append(
                BackgroundJob(kind="gc-debt", node=nodes[1].name, num_requests=8)
            )
        background = tuple(jobs)
    return FleetSpec(
        name=f"{scenario.name}-x{size}-{placement}",
        scenario=scenario,
        nodes=nodes,
        placement=placement,
        tenant_policies=(
            ("kv", TenantPolicy(max_iops=250_000.0)),
            ("logger", TenantPolicy(max_queue_depth=8)),
        ),
        default_slo=slo,
        background=background,
    )


def run_fleet_sweep(
    fleet_sizes: Sequence[int] = DEFAULT_FLEET_SIZES,
    placements: Sequence[str] = DEFAULT_PLACEMENTS,
    scenarios: Optional[Sequence[Scenario]] = None,
    *,
    zoo_cycle: Sequence[str] = DEFAULT_ZOO_CYCLE,
    requests_per_tenant: int = 32,
    seed: int = 11,
    engine: Optional[ExecutionEngine] = None,
) -> Tuple[List[Dict[str, object]], Dict[Tuple[str, int, str], FleetResult]]:
    """Run the sweep; one summary row plus the full result per cell.

    Returns ``(rows, results)`` with results keyed ``(scenario, size,
    placement)`` so callers can drill into any cell (write its report,
    reconcile it, compare placements).
    """
    if scenarios is None:
        scenarios = (fleet_scenario(requests_per_tenant=requests_per_tenant, seed=seed),)
    engine = engine or ExecutionEngine()
    rows: List[Dict[str, object]] = []
    results: Dict[Tuple[str, int, str], FleetResult] = {}
    for scenario in scenarios:
        for size in fleet_sizes:
            for placement in placements:
                spec = build_fleet_spec(
                    scenario, size, placement, zoo_cycle=zoo_cycle
                )
                fleet = run_fleet(spec, engine)
                results[(scenario.name, size, placement)] = fleet
                rows.append({"scenario": scenario.name, **fleet.summary_row()})
    return rows, results


def main(argv: Optional[Sequence[str]] = None) -> None:
    """Print the fleet sweep table (and optionally one cell's full report)."""
    parser = argparse.ArgumentParser(
        description="Fleet sweep: fleet size x placement policy x scenario"
    )
    add_engine_arguments(parser)
    parser.add_argument(
        "--sizes",
        type=int,
        nargs="+",
        default=list(DEFAULT_FLEET_SIZES),
        help="fleet sizes (node counts) to sweep",
    )
    parser.add_argument(
        "--placements",
        nargs="+",
        default=list(DEFAULT_PLACEMENTS),
        help="placement policies to sweep",
    )
    parser.add_argument(
        "--requests-per-tenant",
        type=int,
        default=32,
        help="scenario scale knob (requests per tenant)",
    )
    parser.add_argument("--seed", type=int, default=11, help="scenario seed")
    parser.add_argument(
        "--report",
        default=None,
        help="write the largest cell's fleet report here (.md or .html)",
    )
    args = parser.parse_args(argv)
    engine = engine_from_args(args)

    rows, results = run_fleet_sweep(
        tuple(args.sizes),
        tuple(args.placements),
        requests_per_tenant=args.requests_per_tenant,
        seed=args.seed,
        engine=engine,
    )
    print(format_table(rows, title="Fleet sweep: size x placement"))
    if args.report:
        key = max(results, key=lambda k: (k[1], k[2]))
        path = write_fleet_report(args.report, results[key])
        print(f"\nwrote fleet report for {key} to {path}")


if __name__ == "__main__":
    main()
