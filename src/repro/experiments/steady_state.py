"""Steady-state sweep: over-provisioning x fill-state x scheduler.

Beyond the paper: every figure in the original evaluation (except the
Figure 17 GC stress) measures a factory-fresh SSD.  Deployed many-chip
devices spend their lives in the opposite regime - full, fragmented and
garbage-collecting - and that is where the utilization/idleness trade the
paper studies is hardest.  This experiment sweeps:

* **over-provisioning** - the spare-capacity reserve (7%, 15%, 28% -
  consumer, mainstream and enterprise points);
* **fill state** - ``fresh`` (factory), ``aged`` (fast-forwarded to 85%
  full / 30% invalid with an 80/20 overwrite skew) and ``steady``
  (additionally driven until write amplification converges);
* **scheduler** - VAS, PAS and the three Sprinkler variants (SPK1 =
  FARO-only, SPK2 = RIOS-only, SPK3 = both),

under the sustained random-write scenario from
:func:`repro.scenarios.library.sustained_write_scenario`, whose address
window is sized to the aged live region so every request overwrites live
data.  Reported per cell: bandwidth, run write amplification, GC activity
and wear spread.  Expected shape: WA falls as over-provisioning grows, the
aged/steady states cost every scheduler bandwidth, and the readdressing
callback lets the Sprinkler variants keep more of it (the Figure 17 story,
now measured on its natural steady-state footing).

The device states ride inside each job's ``SimulationConfig`` and therefore
inside the engine's content fingerprints: aged-device sweeps parallelise
(``--backend process``) and cache (``--cache-dir``) exactly like fresh ones.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.experiments.engine import ExecutionEngine, engine_from_cli
from repro.experiments.spec import ExperimentSpec, SimJob, WorkloadSpec
from repro.lifetime.state import DeviceState
from repro.metrics.report import format_table
from repro.scenarios.library import aged_device_state, sustained_write_scenario
from repro.sim.config import SimulationConfig

KB = 1024

DEFAULT_SCHEDULERS = ("VAS", "PAS", "SPK1", "SPK2", "SPK3")
DEFAULT_OVERPROVISIONING = (0.07, 0.15, 0.28)
DEFAULT_FILL_STATES = ("fresh", "aged", "steady")


def device_state_for(name: str, *, seed: int = 11) -> Optional[DeviceState]:
    """The canned :class:`DeviceState` behind a fill-state name.

    ``fresh`` is ``None`` (factory device), ``aged`` the fast-forwarded
    fill, ``steady`` the fill plus WA-convergence aging.
    """
    if name == "fresh":
        return None
    if name == "aged":
        return aged_device_state(steady_state=False, seed=seed)
    if name == "steady":
        return aged_device_state(steady_state=True, seed=seed)
    raise ValueError(f"unknown fill state {name!r}; expected fresh/aged/steady")


def build_spec(
    overprovisioning: Sequence[float] = DEFAULT_OVERPROVISIONING,
    fill_states: Sequence[str] = DEFAULT_FILL_STATES,
    schedulers: Sequence[str] = DEFAULT_SCHEDULERS,
    *,
    num_chips: int = 64,
    requests_per_point: int = 96,
    write_size_kb: int = 16,
    seed: int = 11,
) -> ExperimentSpec:
    """Declare the steady-state grid, keyed ``(op, state, scheduler)``.

    Geometry follows the Figure 17 recipe (paper-scale chip counts, scaled
    blocks so preconditioning stays fast; GC frequency depends on occupancy
    fractions, not absolute block counts).  One shared workload covers the
    whole grid: its address window is the aged live region at the *highest*
    swept over-provisioning, so the same trace overwrites live data in
    every cell and WA differences are attributable to the device state
    alone.  VAS/PAS run without the readdressing callback, Sprinkler
    variants with it (the paper's setup).
    """
    base = SimulationConfig.paper_scale(num_chips)
    geometry = base.geometry.scaled(blocks_per_plane=16, pages_per_block=32)
    max_op = max(overprovisioning)
    smallest_logical = int(geometry.total_pages * (1.0 - max_op))
    reference_state = aged_device_state(seed=seed)
    live_bytes = int(
        smallest_logical * reference_state.fill_fraction * geometry.page_size_bytes
    )
    scenario = sustained_write_scenario(
        num_requests=requests_per_point,
        size_bytes=write_size_kb * KB,
        address_space_bytes=max(live_bytes, 2 * write_size_kb * KB),
        seed=seed,
    )
    workload = WorkloadSpec.scenario(scenario)
    jobs: List[SimJob] = []
    for op in overprovisioning:
        for state_name in fill_states:
            state = device_state_for(state_name, seed=seed)
            for scheduler in schedulers:
                config = base.with_overrides(
                    geometry=geometry,
                    gc_enabled=True,
                    overprovisioning_fraction=op,
                    device_state=state,
                    readdressing_callback=None if scheduler.startswith("SPK") else False,
                )
                jobs.append(
                    SimJob(
                        workload=workload,
                        scheduler=scheduler,
                        config=config,
                        key=(op, state_name, scheduler),
                    )
                )
    return ExperimentSpec("steady_state", tuple(jobs))


def run_steady_state(
    overprovisioning: Sequence[float] = DEFAULT_OVERPROVISIONING,
    fill_states: Sequence[str] = DEFAULT_FILL_STATES,
    schedulers: Sequence[str] = DEFAULT_SCHEDULERS,
    *,
    num_chips: int = 64,
    requests_per_point: int = 96,
    write_size_kb: int = 16,
    seed: int = 11,
    engine: Optional[ExecutionEngine] = None,
) -> List[Dict[str, object]]:
    """Execute the grid; one row per ``(op, state, scheduler)`` cell."""
    spec = build_spec(
        overprovisioning,
        fill_states,
        schedulers,
        num_chips=num_chips,
        requests_per_point=requests_per_point,
        write_size_kb=write_size_kb,
        seed=seed,
    )
    results = (engine or ExecutionEngine()).run(spec)
    rows: List[Dict[str, object]] = []
    for job in spec.jobs:
        op, state_name, scheduler = job.key
        result = results[job.key]
        lifetime = result.lifetime
        rows.append(
            {
                "overprovisioning": op,
                "state": state_name,
                "scheduler": scheduler,
                "bandwidth_kb_s": round(result.bandwidth_kb_s, 1),
                "write_amplification": round(result.write_amplification, 3),
                "gc_invocations": result.gc_stats.invocations if result.gc_stats else 0,
                "pages_migrated": result.gc_stats.pages_migrated if result.gc_stats else 0,
                "blocks_erased": result.gc_stats.blocks_erased if result.gc_stats else 0,
                "wear_spread": result.wear_spread,
                "steady_passes": lifetime.steady_state_passes if lifetime else 0,
                "steady_converged": lifetime.steady_state_converged if lifetime else False,
                "steady_wa": round(lifetime.steady_state_wa, 3) if lifetime else 0.0,
            }
        )
    return rows


def wa_by_overprovisioning(
    rows: Sequence[Dict[str, object]], *, state: str = "steady"
) -> Dict[str, Tuple[Tuple[float, float], ...]]:
    """Per scheduler: ``(op, write_amplification)`` points for one fill state.

    The headline curve of the sweep - more spare capacity, less
    amplification - in a shape ready for plotting or asserting monotonicity.
    """
    curves: Dict[str, List[Tuple[float, float]]] = {}
    for row in rows:
        if row["state"] != state:
            continue
        curves.setdefault(str(row["scheduler"]), []).append(
            (float(row["overprovisioning"]), float(row["write_amplification"]))
        )
    return {
        scheduler: tuple(sorted(points)) for scheduler, points in sorted(curves.items())
    }


def aging_cost(rows: Sequence[Dict[str, object]]) -> Dict[tuple, float]:
    """Relative bandwidth lost going fresh -> steady, per ``(op, scheduler)``."""
    by_key = {
        (float(row["overprovisioning"]), str(row["state"]), str(row["scheduler"])): row
        for row in rows
    }
    cost: Dict[tuple, float] = {}
    for (op, state, scheduler), row in by_key.items():
        if state != "steady":
            continue
        fresh = by_key.get((op, "fresh", scheduler))
        if fresh is None or float(fresh["bandwidth_kb_s"]) <= 0:
            continue
        cost[(op, scheduler)] = round(
            1.0 - float(row["bandwidth_kb_s"]) / float(fresh["bandwidth_kb_s"]), 3
        )
    return cost


def main(argv: Optional[Sequence[str]] = None) -> None:
    """Print the steady-state table plus WA curves and aging-cost summary."""
    engine = engine_from_cli(
        "Steady-state sweep: over-provisioning x fill-state x scheduler", argv
    )
    rows = run_steady_state(engine=engine)
    print(format_table(rows, title="Steady state: over-provisioning x fill x scheduler"))
    print()
    print("WA vs over-provisioning (steady):", wa_by_overprovisioning(rows))
    print("Bandwidth cost of aging:", aging_cost(rows))


if __name__ == "__main__":
    main()
