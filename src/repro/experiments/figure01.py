"""Figure 1: many-chip SSD scaling under a conventional controller.

The paper's motivating figure shows that, with a state-of-the-art controller
(a VAS-like baseline), read bandwidth stagnates (1a) while chip utilisation
collapses and memory-level idleness grows (1b) as the number of flash dies is
increased from a handful to tens of thousands, for several data transfer
sizes.

We sweep the number of dies (by scaling the chip count) and the transfer
size with the VAS scheduler and report bandwidth, utilisation and idleness.
The absolute die counts are scaled down (pure-Python simulation), but the
*trend* - larger SSDs stop helping because parallelism dependency caps how
many chips a queue of bounded depth can activate - is what the figure is
about and is preserved.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.experiments.engine import ExecutionEngine, engine_from_cli
from repro.experiments.spec import ExperimentSpec, SimJob, WorkloadSpec
from repro.metrics.report import format_table
from repro.sim.config import SimulationConfig

KB = 1024

DEFAULT_DIE_COUNTS = (16, 32, 64, 128, 256, 512)
DEFAULT_TRANSFER_SIZES_KB = (4, 16, 64, 128)


def _config_for_dies(num_dies: int) -> SimulationConfig:
    """Build an SSD whose total die count is ``num_dies`` (2 dies per chip)."""
    num_chips = max(8, num_dies // 2)
    # Round to a multiple of 8 so the channel count divides evenly.
    num_chips = ((num_chips + 7) // 8) * 8
    return SimulationConfig.paper_scale(num_chips).with_overrides(
        gc_enabled=False,
    )


def build_spec(
    die_counts: Sequence[int] = DEFAULT_DIE_COUNTS,
    transfer_sizes_kb: Sequence[int] = DEFAULT_TRANSFER_SIZES_KB,
    *,
    requests_per_point: int = 48,
    scheduler: str = "VAS",
    seed: int = 11,
) -> ExperimentSpec:
    """Declare the die-count x transfer-size grid under one scheduler."""
    jobs: List[SimJob] = []
    for size_kb in transfer_sizes_kb:
        workload = WorkloadSpec.random(
            f"seq-{size_kb}KB",
            num_requests=requests_per_point,
            size_bytes=size_kb * KB,
            address_space_bytes=max(64, size_kb * 8) * KB * requests_per_point,
            read_fraction=1.0,
            interarrival_ns=1_000,
            seed=seed,
        )
        for num_dies in die_counts:
            jobs.append(
                SimJob(
                    workload=workload,
                    scheduler=scheduler,
                    config=_config_for_dies(num_dies),
                    key=(size_kb, num_dies),
                )
            )
    return ExperimentSpec("figure01", tuple(jobs))


def run_figure01(
    die_counts: Sequence[int] = DEFAULT_DIE_COUNTS,
    transfer_sizes_kb: Sequence[int] = DEFAULT_TRANSFER_SIZES_KB,
    *,
    requests_per_point: int = 48,
    scheduler: str = "VAS",
    seed: int = 11,
    engine: Optional[ExecutionEngine] = None,
) -> List[Dict[str, object]]:
    """Sweep die count x transfer size with a conventional controller."""
    spec = build_spec(
        die_counts,
        transfer_sizes_kb,
        requests_per_point=requests_per_point,
        scheduler=scheduler,
        seed=seed,
    )
    results = (engine or ExecutionEngine()).run(spec)
    rows: List[Dict[str, object]] = []
    for job in spec.jobs:
        size_kb, _ = job.key
        result = results[job.key]
        rows.append(
            {
                "transfer_kb": size_kb,
                "num_dies": job.config.geometry.num_dies,
                "num_chips": job.config.geometry.num_chips,
                "bandwidth_mb_s": round(result.bandwidth_kb_s / 1024.0, 1),
                "chip_utilization_pct": round(100.0 * result.chip_utilization, 1),
                "idleness_pct": round(100.0 * result.inter_chip_idleness, 1),
            }
        )
    return rows


def stagnation_summary(rows: Sequence[Dict[str, object]]) -> Dict[int, float]:
    """Bandwidth gain from the smallest to the largest SSD, per transfer size.

    Values close to 1.0 mean the extra dies bought nothing (stagnation).
    """
    summary: Dict[int, float] = {}
    for size_kb in sorted({int(row["transfer_kb"]) for row in rows}):
        series = [row for row in rows if row["transfer_kb"] == size_kb]
        series.sort(key=lambda row: row["num_dies"])
        first = float(series[0]["bandwidth_mb_s"]) or 1.0
        last = float(series[-1]["bandwidth_mb_s"])
        summary[size_kb] = round(last / first, 2)
    return summary


def main(argv: Optional[Sequence[str]] = None) -> None:
    """Print the Figure 1 sweep and the stagnation summary."""
    engine = engine_from_cli("Figure 1: many-chip SSD scaling under VAS", argv)
    rows = run_figure01(engine=engine)
    print(format_table(rows, title="Figure 1: scaling of a conventional (VAS) controller"))
    print()
    print("Bandwidth gain largest/smallest SSD per transfer size:", stagnation_summary(rows))


if __name__ == "__main__":
    main()
