"""Figure 14: flash-level parallelism breakdown.

For PAS, SPK1, SPK2 and SPK3 the paper breaks executed I/O work into four
parallelism classes: NON-PAL (no flash-level parallelism), PAL1 (plane
sharing), PAL2 (die interleaving) and PAL3 (both).  The shape to reproduce:
VAS/PAS serve almost everything as NON-PAL/PAL1, SPK1 maximises PAL3, SPK2
improves over PAS but stays below SPK1, and SPK3 balances SLP and FLP.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.experiments.engine import ExecutionEngine, engine_from_cli
from repro.experiments.runner import (
    ExperimentScale,
    default_workload_specs,
    paper_config,
)
from repro.experiments.spec import ExperimentSpec
from repro.metrics.report import format_table

SCHEDULERS = ("PAS", "SPK1", "SPK2", "SPK3")


def build_spec(
    scale: Optional[ExperimentScale] = None,
    schedulers: Sequence[str] = SCHEDULERS,
) -> ExperimentSpec:
    """Declare the Figure 14 grid: every trace under the selected schedulers."""
    scale = scale or ExperimentScale.quick()
    return ExperimentSpec.matrix(
        "figure14",
        default_workload_specs(scale).values(),
        schedulers,
        paper_config(scale),
    )


def run_figure14(
    scale: Optional[ExperimentScale] = None,
    schedulers: Sequence[str] = SCHEDULERS,
    *,
    engine: Optional[ExecutionEngine] = None,
) -> List[Dict[str, object]]:
    """FLP-class percentage rows per (trace, scheduler)."""
    scale = scale or ExperimentScale.quick()
    traces = scale.traces
    results = (engine or ExecutionEngine()).run(build_spec(scale, schedulers))
    rows: List[Dict[str, object]] = []
    for trace in traces:
        for scheduler in schedulers:
            result = results[(trace, scheduler)]
            fractions = result.flp_fractions()
            rows.append(
                {
                    "trace": trace,
                    "scheduler": scheduler,
                    "non_pal_pct": round(100.0 * fractions["NON-PAL"], 1),
                    "pal1_pct": round(100.0 * fractions["PAL1"], 1),
                    "pal2_pct": round(100.0 * fractions["PAL2"], 1),
                    "pal3_pct": round(100.0 * fractions["PAL3"], 1),
                    "high_flp_pct": round(100.0 * result.flp.high_flp_fraction, 1),
                }
            )
    return rows


def average_high_flp(rows: Sequence[Dict[str, object]]) -> Dict[str, float]:
    """Average share of transactions with any FLP, per scheduler."""
    totals: Dict[str, List[float]] = {}
    for row in rows:
        totals.setdefault(str(row["scheduler"]), []).append(float(row["high_flp_pct"]))
    return {
        scheduler: round(sum(values) / len(values), 1) for scheduler, values in totals.items()
    }


def main(argv: Optional[Sequence[str]] = None) -> None:
    """Print the Figure 14 table plus the per-scheduler high-FLP averages."""
    engine = engine_from_cli("Figure 14: flash-level parallelism breakdown", argv)
    rows = run_figure14(engine=engine)
    print(format_table(rows, title="Figure 14: FLP breakdown (percent of transactions)"))
    print()
    print("Average high-FLP share:", average_high_flp(rows))


if __name__ == "__main__":
    main()
