"""Figure 16: flash transaction reduction.

For 64-chip and 1024-chip SSDs the paper counts the number of flash
transactions needed to serve transfer-size sweeps under VAS, SPK1, SPK2 and
SPK3.  FARO's over-commitment merges memory requests into fewer transactions
(about 50.2% fewer for SPK3 than VAS on average); SPK2 reduces far less
because spreading single requests across chips lowers transactional locality.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.experiments.engine import ExecutionEngine, engine_from_cli
from repro.experiments.spec import ExperimentSpec, SimJob, WorkloadSpec
from repro.metrics.report import format_table
from repro.sim.config import SimulationConfig

KB = 1024

DEFAULT_SCHEDULERS = ("VAS", "SPK1", "SPK2", "SPK3")
DEFAULT_TRANSFER_SIZES_KB = (4, 16, 64, 256, 1024)
DEFAULT_CHIP_COUNTS = (64,)


def build_spec(
    chip_counts: Sequence[int] = DEFAULT_CHIP_COUNTS,
    transfer_sizes_kb: Sequence[int] = DEFAULT_TRANSFER_SIZES_KB,
    schedulers: Sequence[str] = DEFAULT_SCHEDULERS,
    *,
    requests_per_point: int = 32,
    seed: int = 31,
) -> ExperimentSpec:
    """Declare the transaction-count grid (mixed read/write sweep)."""
    jobs: List[SimJob] = []
    for num_chips in chip_counts:
        config = SimulationConfig.paper_scale(num_chips).with_overrides(gc_enabled=False)
        for size_kb in transfer_sizes_kb:
            workload = WorkloadSpec.random(
                f"sweep-{size_kb}KB",
                num_requests=requests_per_point,
                size_bytes=size_kb * KB,
                address_space_bytes=max(
                    64 * KB * requests_per_point, 8 * size_kb * KB * requests_per_point
                ),
                read_fraction=0.7,
                interarrival_ns=1_000,
                seed=seed,
            )
            for scheduler in schedulers:
                jobs.append(
                    SimJob(
                        workload=workload,
                        scheduler=scheduler,
                        config=config,
                        key=(num_chips, size_kb, scheduler),
                    )
                )
    return ExperimentSpec("figure16", tuple(jobs))


def run_figure16(
    chip_counts: Sequence[int] = DEFAULT_CHIP_COUNTS,
    transfer_sizes_kb: Sequence[int] = DEFAULT_TRANSFER_SIZES_KB,
    schedulers: Sequence[str] = DEFAULT_SCHEDULERS,
    *,
    requests_per_point: int = 32,
    seed: int = 31,
    engine: Optional[ExecutionEngine] = None,
) -> List[Dict[str, object]]:
    """Transaction-count rows per (chip count, transfer size, scheduler)."""
    spec = build_spec(
        chip_counts,
        transfer_sizes_kb,
        schedulers,
        requests_per_point=requests_per_point,
        seed=seed,
    )
    results = (engine or ExecutionEngine()).run(spec)
    rows: List[Dict[str, object]] = []
    for job in spec.jobs:
        num_chips, size_kb, scheduler = job.key
        result = results[job.key]
        rows.append(
            {
                "num_chips": num_chips,
                "transfer_kb": size_kb,
                "scheduler": scheduler,
                "transactions": result.transactions,
                "memory_requests": result.memory_requests_served,
                "reduction_vs_requests_pct": round(100.0 * result.transaction_reduction, 1),
                "coalescing_degree": round(result.coalescing_degree, 2),
            }
        )
    return rows


def reduction_vs_vas(rows: Sequence[Dict[str, object]]) -> Dict[tuple, float]:
    """Transaction reduction of each scheduler relative to VAS, per sweep point."""
    by_key = {
        (int(row["num_chips"]), int(row["transfer_kb"]), str(row["scheduler"])): row
        for row in rows
    }
    reductions: Dict[tuple, float] = {}
    for (chips, size, scheduler), row in by_key.items():
        if scheduler == "VAS":
            continue
        vas_row = by_key.get((chips, size, "VAS"))
        if vas_row is None or int(vas_row["transactions"]) == 0:
            continue
        reductions[(chips, size, scheduler)] = round(
            1.0 - int(row["transactions"]) / int(vas_row["transactions"]), 3
        )
    return reductions


def main(argv: Optional[Sequence[str]] = None) -> None:
    """Print the Figure 16 table plus the reduction-vs-VAS summary."""
    engine = engine_from_cli("Figure 16: flash transaction reduction", argv)
    rows = run_figure16(engine=engine)
    print(format_table(rows, title="Figure 16: flash transaction counts"))
    print()
    print("Transaction reduction vs VAS:", reduction_vs_vas(rows))


if __name__ == "__main__":
    main()
