"""Array scaling: does Sprinkler's intra-device win survive host striping?

Beyond-the-paper experiment on the :mod:`repro.array` layer: one fixed host
workload is placed across 1..N SSDs under each placement policy (RAID-0
striping, range sharding, hashed chunks) and each device-level scheduler,
and the array-aggregate bandwidth, pooled latency and cross-device balance
are compared.  The interesting questions mirror the paper's intra-SSD ones
one level up: how much aggregate bandwidth each extra device buys (ideal
scaling would be linear), whether placement skew erodes it, and whether the
scheduler ranking (VAS vs SPK1-3) is preserved under striping.

Every array cell expands into one engine job per device, and the whole grid
is submitted as a single batch, so ``--backend process`` parallelises across
cells *and* devices, and a result cache memoizes per device sub-trace.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.array.host import ArrayResult, merge_device_results
from repro.array.layout import split_trace
from repro.experiments.engine import ExecutionEngine, engine_from_cli
from repro.experiments.spec import ArraySpec, WorkloadSpec
from repro.metrics.report import format_table
from repro.sim.config import SimulationConfig

KB = 1024

DEFAULT_DEVICE_COUNTS = (1, 2, 4)
DEFAULT_POLICIES = ("stripe", "range", "hash")
DEFAULT_SCHEDULERS = ("VAS", "SPK1", "SPK2", "SPK3")
DEFAULT_CHUNK_KB = 64


def build_specs(
    device_counts: Sequence[int] = DEFAULT_DEVICE_COUNTS,
    policies: Sequence[str] = DEFAULT_POLICIES,
    schedulers: Sequence[str] = DEFAULT_SCHEDULERS,
    *,
    num_requests: int = 48,
    size_kb: int = 128,
    chunk_kb: int = DEFAULT_CHUNK_KB,
    chips_per_device: int = 16,
    read_fraction: float = 1.0,
    seed: int = 11,
) -> Tuple[ArraySpec, ...]:
    """Declare the device-count x placement x scheduler array grid.

    Every cell shares the same host workload recipe, so differences between
    rows come only from placement and scheduling.  A single-device cell is
    the degenerate array (all placements coincide for ``stripe``/``range``),
    which anchors the scaling curves at the paper's intra-SSD numbers.
    """
    workload = WorkloadSpec.random(
        f"array-{size_kb}KB",
        num_requests=num_requests,
        size_bytes=size_kb * KB,
        address_space_bytes=max(64 * KB * num_requests, 8 * size_kb * KB * num_requests),
        read_fraction=read_fraction,
        interarrival_ns=1_000,
        seed=seed,
    )
    config = SimulationConfig.paper_scale(chips_per_device).with_overrides(gc_enabled=False)
    specs: List[ArraySpec] = []
    for num_devices in device_counts:
        for policy in policies:
            for scheduler in schedulers:
                specs.append(
                    ArraySpec(
                        workload=workload,
                        num_devices=num_devices,
                        scheduler=scheduler,
                        config=config,
                        policy=policy,
                        chunk_bytes=chunk_kb * KB,
                        key=(num_devices, policy, scheduler),
                    )
                )
    return tuple(specs)


def run_array_specs(
    specs: Sequence[ArraySpec], engine: Optional[ExecutionEngine] = None
) -> Dict[Tuple, ArrayResult]:
    """Run array cells as one flat engine batch; results keyed by spec key.

    All device jobs of all cells are submitted together so a process-backend
    run saturates its workers across the whole grid, then each cell's slice
    is merged back into its :class:`ArrayResult`.
    """
    keys = [spec.key for spec in specs]
    if len(set(keys)) != len(keys):
        raise ValueError("array specs have duplicate keys; results would collide")
    engine = engine or ExecutionEngine()
    # A grid shares one trace across many cells and one split across the
    # scheduler axis; build/split each distinct combination once instead of
    # per cell (split_trace never mutates its input, so sharing is safe).
    traces: Dict[WorkloadSpec, list] = {}
    splits: Dict[Tuple, list] = {}
    per_spec_jobs = []
    for spec in specs:
        if spec.workload not in traces:
            traces[spec.workload] = spec.workload.build()
        split_key = (spec.workload, spec.num_devices, spec.policy, spec.chunk_bytes, spec.shard_bytes)
        if split_key not in splits:
            splits[split_key] = split_trace(traces[spec.workload], spec.layout())
        per_spec_jobs.append(spec.device_jobs(splits[split_key]))
    flat = [job for jobs in per_spec_jobs for job in jobs]
    flat_results = engine.run_jobs(flat)
    merged: Dict[Tuple, ArrayResult] = {}
    cursor = 0
    for spec, jobs in zip(specs, per_spec_jobs):
        device_results = flat_results[cursor : cursor + len(jobs)]
        cursor += len(jobs)
        merged[spec.key] = merge_device_results(
            device_results,
            scheduler=spec.scheduler,
            workload=spec.workload.name,
            policy=spec.policy,
        )
    return merged


def run_array_scaling(
    device_counts: Sequence[int] = DEFAULT_DEVICE_COUNTS,
    policies: Sequence[str] = DEFAULT_POLICIES,
    schedulers: Sequence[str] = DEFAULT_SCHEDULERS,
    *,
    num_requests: int = 48,
    size_kb: int = 128,
    chunk_kb: int = DEFAULT_CHUNK_KB,
    chips_per_device: int = 16,
    read_fraction: float = 1.0,
    seed: int = 11,
    engine: Optional[ExecutionEngine] = None,
) -> List[Dict[str, object]]:
    """Array-scaling rows per (device count, placement policy, scheduler)."""
    specs = build_specs(
        device_counts,
        policies,
        schedulers,
        num_requests=num_requests,
        size_kb=size_kb,
        chunk_kb=chunk_kb,
        chips_per_device=chips_per_device,
        read_fraction=read_fraction,
        seed=seed,
    )
    results = run_array_specs(specs, engine)
    rows: List[Dict[str, object]] = []
    for spec in specs:
        result = results[spec.key]
        # Single source for the derived figures: reshape the ArrayResult
        # summary row instead of re-deriving its formulas here.
        summary = result.summary_row()
        rows.append(
            {
                "devices": summary["devices"],
                "policy": summary["policy"],
                "scheduler": summary["scheduler"],
                "bandwidth_mb_s": summary["bandwidth_mb_s"],
                "iops": summary["iops"],
                "avg_latency_us": summary["avg_latency_us"],
                "p99_latency_us": summary["p99_latency_us"],
                "chip_utilization_pct": round(100.0 * result.chip_utilization, 1),
                "util_spread": summary["util_spread"],
                "byte_imbalance": summary["byte_imbalance"],
            }
        )
    return rows


def scaling_efficiency(rows: Sequence[Dict[str, object]]) -> Dict[Tuple, float]:
    """Bandwidth speedup per (policy, scheduler) at the largest device count.

    Relative to the same policy/scheduler at the smallest device count;
    1.0 x devices-ratio would be perfect linear scaling.  Ratios are taken
    over the table's reported (0.1 MB/s) bandwidths by design, so they are
    reproducible from printed output; at this module's default scale
    (hundreds of MB/s per cell) the rounding contributes < 0.1%.
    """
    by_cell: Dict[Tuple[str, str], Dict[int, float]] = {}
    for row in rows:
        cell = (str(row["policy"]), str(row["scheduler"]))
        by_cell.setdefault(cell, {})[int(row["devices"])] = float(row["bandwidth_mb_s"])
    efficiency: Dict[Tuple, float] = {}
    for cell, curve in by_cell.items():
        smallest, largest = min(curve), max(curve)
        if smallest == largest or curve[smallest] <= 0.0:
            continue
        efficiency[cell] = round(curve[largest] / curve[smallest], 2)
    return efficiency


def main(argv: Optional[Sequence[str]] = None) -> None:
    """Print the array-scaling table plus bandwidth-scaling factors."""
    engine = engine_from_cli("Array scaling: device count x placement x scheduler", argv)
    rows = run_array_scaling(engine=engine)
    print(format_table(rows, title="Array scaling: device count x placement x scheduler"))
    print()
    print("Bandwidth scaling (largest vs smallest array):", scaling_efficiency(rows))


if __name__ == "__main__":
    main()
