"""Figure 17: garbage collection and readdressing-callback impact.

The paper prepares pristine SSDs (no GC) and fragmented SSDs filled to 95%
with random writes (GC fires constantly), then replays transfer-size sweeps
under VAS, PAS and SPK3.  VAS and PAS run *without* a readdressing callback,
SPK3 with it.  Reported shape: every scheduler loses performance once GC
starts (SPK3 loses relatively more, 33-78%, because its relaxed parallelism
has more to lose), but SPK3 with the callback still delivers roughly 2x the
bandwidth of VAS/PAS because it re-spreads and re-coalesces the surviving
memory requests after each migration.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.experiments.engine import ExecutionEngine, engine_from_cli
from repro.experiments.spec import ExperimentSpec, SimJob, WorkloadSpec
from repro.metrics.report import format_table
from repro.sim.config import SimulationConfig

KB = 1024

DEFAULT_SCHEDULERS = ("VAS", "PAS", "SPK3")
DEFAULT_TRANSFER_SIZES_KB = (16, 64, 256)
DEFAULT_CHIP_COUNTS = (64,)


def build_spec(
    chip_counts: Sequence[int] = DEFAULT_CHIP_COUNTS,
    transfer_sizes_kb: Sequence[int] = DEFAULT_TRANSFER_SIZES_KB,
    schedulers: Sequence[str] = DEFAULT_SCHEDULERS,
    *,
    requests_per_point: int = 48,
    prefill_fraction: float = 0.9,
    prefill_overwrite_fraction: float = 0.45,
    seed: int = 41,
) -> ExperimentSpec:
    """Declare the GC grid: (chips, size, scheduler, pristine/fragmented).

    Pristine cells disable GC (nothing to collect); fragmented cells prefill
    the drive so the free-block watermark is hit almost immediately.  VAS and
    PAS run with the readdressing callback disabled (stale in-flight requests
    pay a re-translation penalty); SPK3 keeps its callback.

    The fragmented geometry uses fewer, smaller blocks than the paper's
    8192x128 so that pre-conditioning the drive stays in the seconds range;
    GC frequency and cost per host write are unaffected by that scaling
    because they depend on the occupancy fraction and the valid-page mix.
    """
    jobs: List[SimJob] = []
    for num_chips in chip_counts:
        base = SimulationConfig.paper_scale(num_chips)
        # Small blocks keep the bookkeeping prefill fast while preserving the
        # occupancy fraction that drives GC behaviour.
        gc_geometry = base.geometry.scaled(blocks_per_plane=16, pages_per_block=32)
        # Keep the logical space small relative to capacity so prefilling it
        # leaves every plane close to the GC watermark.
        address_space = min(
            gc_geometry.capacity_bytes // 2,
            64 * KB * requests_per_point * 8,
        )
        for size_kb in transfer_sizes_kb:
            workload = WorkloadSpec.mixed(
                f"gc-{size_kb}KB",
                num_requests=requests_per_point,
                size_bytes=size_kb * KB,
                address_space_bytes=max(address_space, 8 * size_kb * KB),
                read_fraction=0.3,
                randomness=1.0,
                interarrival_ns=1_500,
                seed=seed,
            )
            for scheduler in schedulers:
                for fragmented in (False, True):
                    config = base.with_overrides(
                        geometry=gc_geometry,
                        gc_enabled=fragmented,
                        prefill_fraction=prefill_fraction if fragmented else 0.0,
                        prefill_overwrite_fraction=prefill_overwrite_fraction,
                        readdressing_callback=None if scheduler.startswith("SPK") else False,
                    )
                    jobs.append(
                        SimJob(
                            workload=workload,
                            scheduler=scheduler,
                            config=config,
                            key=(
                                num_chips,
                                size_kb,
                                scheduler,
                                "fragmented" if fragmented else "pristine",
                            ),
                        )
                    )
    return ExperimentSpec("figure17", tuple(jobs))


def run_figure17(
    chip_counts: Sequence[int] = DEFAULT_CHIP_COUNTS,
    transfer_sizes_kb: Sequence[int] = DEFAULT_TRANSFER_SIZES_KB,
    schedulers: Sequence[str] = DEFAULT_SCHEDULERS,
    *,
    requests_per_point: int = 48,
    prefill_fraction: float = 0.9,
    prefill_overwrite_fraction: float = 0.45,
    seed: int = 41,
    engine: Optional[ExecutionEngine] = None,
) -> List[Dict[str, object]]:
    """Bandwidth rows per (chips, transfer size, scheduler, pristine/fragmented)."""
    spec = build_spec(
        chip_counts,
        transfer_sizes_kb,
        schedulers,
        requests_per_point=requests_per_point,
        prefill_fraction=prefill_fraction,
        prefill_overwrite_fraction=prefill_overwrite_fraction,
        seed=seed,
    )
    results = (engine or ExecutionEngine()).run(spec)
    rows: List[Dict[str, object]] = []
    for job in spec.jobs:
        num_chips, size_kb, scheduler, state = job.key
        result = results[job.key]
        rows.append(
            {
                "num_chips": num_chips,
                "transfer_kb": size_kb,
                "scheduler": scheduler,
                "state": state,
                "bandwidth_kb_s": round(result.bandwidth_kb_s, 1),
                "gc_invocations": int(result.extra.get("gc_invocations", 0)),
                "gc_time_ms": round(result.gc_time_ns / 1e6, 2),
                "requests_retargeted": int(
                    result.extra.get("requests_retargeted", 0)
                ),
                "requests_penalized": int(
                    result.extra.get("requests_penalized", 0)
                ),
            }
        )
    return rows


def gc_degradation(rows: Sequence[Dict[str, object]]) -> Dict[tuple, float]:
    """Relative bandwidth loss (pristine -> fragmented) per sweep point."""
    by_key = {
        (
            int(row["num_chips"]),
            int(row["transfer_kb"]),
            str(row["scheduler"]),
            str(row["state"]),
        ): row
        for row in rows
    }
    degradation: Dict[tuple, float] = {}
    for (chips, size, scheduler, state), row in by_key.items():
        if state != "fragmented":
            continue
        pristine = by_key.get((chips, size, scheduler, "pristine"))
        if pristine is None or float(pristine["bandwidth_kb_s"]) <= 0:
            continue
        degradation[(chips, size, scheduler)] = round(
            1.0 - float(row["bandwidth_kb_s"]) / float(pristine["bandwidth_kb_s"]), 3
        )
    return degradation


def fragmented_advantage(rows: Sequence[Dict[str, object]]) -> Dict[tuple, float]:
    """SPK3-over-VAS bandwidth ratio in the fragmented (GC) state."""
    by_key = {
        (
            int(row["num_chips"]),
            int(row["transfer_kb"]),
            str(row["scheduler"]),
            str(row["state"]),
        ): row
        for row in rows
    }
    ratios: Dict[tuple, float] = {}
    for (chips, size, scheduler, state), row in by_key.items():
        if scheduler != "SPK3" or state != "fragmented":
            continue
        vas = by_key.get((chips, size, "VAS", "fragmented"))
        if vas is None or float(vas["bandwidth_kb_s"]) <= 0:
            continue
        ratios[(chips, size)] = round(
            float(row["bandwidth_kb_s"]) / float(vas["bandwidth_kb_s"]), 2
        )
    return ratios


def main(argv: Optional[Sequence[str]] = None) -> None:
    """Print the Figure 17 table plus degradation and advantage summaries."""
    engine = engine_from_cli("Figure 17: garbage collection impact", argv)
    rows = run_figure17(engine=engine)
    print(format_table(rows, title="Figure 17: garbage collection impact"))
    print()
    print("Bandwidth degradation due to GC:", gc_degradation(rows))
    print("SPK3 over VAS under GC:", fragmented_advantage(rows))


if __name__ == "__main__":
    main()
