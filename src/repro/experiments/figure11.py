"""Figure 11: device-level idleness analysis.

Two sub-figures over the sixteen traces and the five schedulers:

* 11a - inter-chip idleness: time whole chips sit idle because the scheduler
  could not spread memory requests over them (parallelism dependency),
* 11b - intra-chip idleness: die/plane time wasted inside busy chips because
  transactions carry too few requests (low transactional locality).

Paper claims: SPK3 cuts inter-chip idleness by about 46.1% versus VAS; SPK1
reduces intra-chip idleness the most (it maximises FLP) while SPK2 mainly
attacks inter-chip idleness.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.experiments.engine import ExecutionEngine, engine_from_cli
from repro.experiments.runner import (
    ALL_SCHEDULERS,
    ExperimentScale,
    default_workload_specs,
    paper_config,
)
from repro.experiments.spec import ExperimentSpec
from repro.metrics.report import format_table


def build_spec(
    scale: Optional[ExperimentScale] = None,
    schedulers: Sequence[str] = ALL_SCHEDULERS,
) -> ExperimentSpec:
    """Declare the Figure 11 grid: every trace under the selected schedulers."""
    scale = scale or ExperimentScale.quick()
    return ExperimentSpec.matrix(
        "figure11",
        default_workload_specs(scale).values(),
        schedulers,
        paper_config(scale),
    )


def run_figure11(
    scale: Optional[ExperimentScale] = None,
    schedulers: Sequence[str] = ALL_SCHEDULERS,
    *,
    engine: Optional[ExecutionEngine] = None,
) -> List[Dict[str, object]]:
    """Inter- and intra-chip idleness rows per (trace, scheduler)."""
    scale = scale or ExperimentScale.quick()
    traces = scale.traces
    results = (engine or ExecutionEngine()).run(build_spec(scale, schedulers))
    rows: List[Dict[str, object]] = []
    for trace in traces:
        for scheduler in schedulers:
            result = results[(trace, scheduler)]
            rows.append(
                {
                    "trace": trace,
                    "scheduler": scheduler,
                    "inter_chip_idleness_pct": round(100.0 * result.inter_chip_idleness, 1),
                    "intra_chip_idleness_pct": round(100.0 * result.intra_chip_idleness, 1),
                }
            )
    return rows


def average_reduction(
    rows: Sequence[Dict[str, object]], metric: str, baseline: str, target: str
) -> float:
    """Average relative reduction of ``metric`` going from baseline to target."""
    by_key = {(str(row["trace"]), str(row["scheduler"])): row for row in rows}
    reductions: List[float] = []
    for trace in sorted({str(row["trace"]) for row in rows}):
        base = float(by_key[(trace, baseline)][metric])
        value = float(by_key[(trace, target)][metric])
        if base > 0:
            reductions.append(1.0 - value / base)
    if not reductions:
        return 0.0
    return round(sum(reductions) / len(reductions), 3)


def main(argv: Optional[Sequence[str]] = None) -> None:
    """Print the Figure 11 table plus the headline reductions."""
    engine = engine_from_cli("Figure 11: device-level idleness analysis", argv)
    rows = run_figure11(engine=engine)
    print(format_table(rows, title="Figure 11: inter-chip and intra-chip idleness"))
    print()
    print(
        "SPK3 inter-chip idleness reduction vs VAS:",
        average_reduction(rows, "inter_chip_idleness_pct", "VAS", "SPK3"),
    )
    print(
        "SPK1 intra-chip idleness reduction vs VAS:",
        average_reduction(rows, "intra_chip_idleness_pct", "VAS", "SPK1"),
    )


if __name__ == "__main__":
    main()
