"""Figure 12: time-series latency analysis.

The paper replays the first three thousand I/O instructions of msnfs1 and
plots the per-request device-level latency under VAS vs PAS (12a) and VAS vs
SPK3 (12b), reporting that SPK3's latencies are roughly 80% below VAS and 64%
below PAS over the window.

``run_figure12`` returns the latency series for the three schedulers plus
summary statistics; plotting is left to the caller (the series is exactly the
data behind the figure).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.experiments.engine import ExecutionEngine, engine_from_cli
from repro.experiments.runner import paper_config, ExperimentScale
from repro.experiments.spec import ExperimentSpec, WorkloadSpec
from repro.metrics.report import format_table

SCHEDULERS = ("VAS", "PAS", "SPK3")


def build_spec(
    *,
    trace_name: str = "msnfs1",
    num_requests: int = 400,
    num_chips: int = 64,
    seed: int = 7,
    schedulers: Sequence[str] = SCHEDULERS,
) -> ExperimentSpec:
    """Declare one time-series replay of ``trace_name`` per scheduler."""
    scale = ExperimentScale(num_chips=num_chips)
    workload = WorkloadSpec.datacenter(trace_name, num_requests=num_requests, seed=seed)
    return ExperimentSpec.matrix("figure12", (workload,), schedulers, paper_config(scale))


def run_figure12(
    *,
    trace_name: str = "msnfs1",
    num_requests: int = 400,
    num_chips: int = 64,
    seed: int = 7,
    schedulers: Sequence[str] = SCHEDULERS,
    engine: Optional[ExecutionEngine] = None,
) -> Dict[str, object]:
    """Latency time series of the first ``num_requests`` I/Os of ``trace_name``.

    Returns a dictionary with one latency series (list of ns values ordered
    by request arrival) per scheduler plus the mean latencies and the
    SPK3-vs-baseline reductions.
    """
    spec = build_spec(
        trace_name=trace_name,
        num_requests=num_requests,
        num_chips=num_chips,
        seed=seed,
        schedulers=schedulers,
    )
    results = (engine or ExecutionEngine()).run(spec)
    series: Dict[str, List[int]] = {}
    means: Dict[str, float] = {}
    for scheduler in schedulers:
        result = results[(trace_name, scheduler)]
        ordered = sorted(result.time_series, key=lambda point: point.arrival_ns)
        series[scheduler] = [point.latency_ns for point in ordered]
        means[scheduler] = result.avg_latency_ns
    reductions: Dict[str, float] = {}
    if "SPK3" in means:
        for baseline in schedulers:
            if baseline == "SPK3" or means[baseline] <= 0:
                continue
            reductions[f"SPK3_vs_{baseline}"] = round(1.0 - means["SPK3"] / means[baseline], 3)
    return {
        "trace": trace_name,
        "series": series,
        "mean_latency_ns": means,
        "latency_reduction": reductions,
    }


def summary_rows(data: Dict[str, object]) -> List[Dict[str, object]]:
    """Flatten the Figure 12 output into printable rows."""
    rows: List[Dict[str, object]] = []
    means: Dict[str, float] = data["mean_latency_ns"]  # type: ignore[assignment]
    series: Dict[str, List[int]] = data["series"]  # type: ignore[assignment]
    for scheduler, mean in means.items():
        samples = series[scheduler]
        rows.append(
            {
                "scheduler": scheduler,
                "ios": len(samples),
                "mean_latency_us": round(mean / 1000.0, 1),
                "p99_latency_us": round(
                    sorted(samples)[int(0.99 * (len(samples) - 1))] / 1000.0 if samples else 0.0, 1
                ),
            }
        )
    return rows


def main(argv: Optional[Sequence[str]] = None) -> None:
    """Print the Figure 12 summary (mean/p99 per scheduler and reductions)."""
    engine = engine_from_cli("Figure 12: time-series latency analysis", argv)
    data = run_figure12(engine=engine)
    print(format_table(summary_rows(data), title="Figure 12: msnfs1 time-series latency"))
    print()
    print("Latency reductions:", data["latency_reduction"])


if __name__ == "__main__":
    main()
