"""Figure 10: system performance of the five schedulers.

Four sub-figures over the sixteen traces:

* 10a - I/O bandwidth (KB/s),
* 10b - IOPS,
* 10c - average device-level latency (ns),
* 10d - device-level queue stall time, normalised to VAS.

Headline paper claims to compare against: SPK3 achieves at least 2.2x the
bandwidth of VAS and 1.8x that of PAS, reduces latency by 56.6%-92.3% versus
VAS, and cuts queue stall time by about 86%.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.experiments.engine import ExecutionEngine, engine_from_cli
from repro.experiments.runner import (
    ALL_SCHEDULERS,
    ExperimentScale,
    default_workload_specs,
    paper_config,
)
from repro.experiments.spec import ExperimentSpec
from repro.metrics.report import format_table


def build_spec(
    scale: Optional[ExperimentScale] = None,
    schedulers: Sequence[str] = ALL_SCHEDULERS,
) -> ExperimentSpec:
    """Declare the Figure 10 grid: every trace under all five schedulers."""
    scale = scale or ExperimentScale.quick()
    return ExperimentSpec.matrix(
        "figure10",
        default_workload_specs(scale).values(),
        schedulers,
        paper_config(scale),
    )


def run_figure10(
    scale: Optional[ExperimentScale] = None,
    schedulers: Sequence[str] = ALL_SCHEDULERS,
    *,
    engine: Optional[ExecutionEngine] = None,
) -> List[Dict[str, object]]:
    """Bandwidth / IOPS / latency / queue-stall rows per (trace, scheduler)."""
    scale = scale or ExperimentScale.quick()
    traces = scale.traces
    results = (engine or ExecutionEngine()).run(build_spec(scale, schedulers))
    rows: List[Dict[str, object]] = []
    for trace in traces:
        vas_stall = max(1, results[(trace, "VAS")].queue_stall_time_ns) if "VAS" in schedulers else 1
        for scheduler in schedulers:
            result = results[(trace, scheduler)]
            rows.append(
                {
                    "trace": trace,
                    "scheduler": scheduler,
                    "bandwidth_kb_s": round(result.bandwidth_kb_s, 1),
                    "iops": round(result.iops, 1),
                    "avg_latency_ns": round(result.avg_latency_ns, 1),
                    "queue_stall_norm": round(result.queue_stall_time_ns / vas_stall, 3),
                }
            )
    return rows


def speedups_over(
    rows: Sequence[Dict[str, object]], baseline: str, target: str
) -> Dict[str, float]:
    """Per-trace bandwidth ratio target/baseline (e.g. SPK3 over VAS)."""
    ratios: Dict[str, float] = {}
    by_key: Dict[Tuple[str, str], Dict[str, object]] = {
        (str(row["trace"]), str(row["scheduler"])): row for row in rows
    }
    traces = sorted({str(row["trace"]) for row in rows})
    for trace in traces:
        base = float(by_key[(trace, baseline)]["bandwidth_kb_s"]) or 1.0
        ratios[trace] = round(float(by_key[(trace, target)]["bandwidth_kb_s"]) / base, 2)
    return ratios


def latency_reduction(
    rows: Sequence[Dict[str, object]], baseline: str, target: str
) -> Dict[str, float]:
    """Per-trace latency reduction of ``target`` relative to ``baseline``."""
    by_key = {(str(row["trace"]), str(row["scheduler"])): row for row in rows}
    reductions: Dict[str, float] = {}
    for trace in sorted({str(row["trace"]) for row in rows}):
        base = float(by_key[(trace, baseline)]["avg_latency_ns"]) or 1.0
        value = float(by_key[(trace, target)]["avg_latency_ns"])
        reductions[trace] = round(1.0 - value / base, 3)
    return reductions


def main(argv: Optional[Sequence[str]] = None) -> None:
    """Print the Figure 10 table plus the headline ratios."""
    engine = engine_from_cli("Figure 10: system performance of the five schedulers", argv)
    rows = run_figure10(engine=engine)
    print(format_table(rows, title="Figure 10: bandwidth / IOPS / latency / queue stall"))
    print()
    print("SPK3 bandwidth over VAS:", speedups_over(rows, "VAS", "SPK3"))
    print("SPK3 bandwidth over PAS:", speedups_over(rows, "PAS", "SPK3"))
    print("SPK3 latency reduction vs VAS:", latency_reduction(rows, "VAS", "SPK3"))


if __name__ == "__main__":
    main()
