"""Figure 15: chip utilisation versus transfer size and SSD size.

The paper sweeps the data transfer size from 4 KB to 4 MB on SSDs with 64,
256 and 1024 flash chips and measures flash-level (chip) utilisation for VAS,
SPK1, SPK2 and SPK3.  Reported shape: VAS utilisation grows with transfer
size but dips where a request spans all chips without covering all their
dies/planes; SPK1 only helps for large requests; SPK2 only for small ones;
SPK3 is high and sustainable everywhere (71.2%/61.5%/44.9% average for
64/256/1024 chips versus 37%/21.2%/13.9% for VAS).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.experiments.engine import ExecutionEngine, engine_from_cli
from repro.experiments.spec import ExperimentSpec, SimJob, WorkloadSpec
from repro.metrics.report import format_table
from repro.sim.config import SimulationConfig

KB = 1024

DEFAULT_SCHEDULERS = ("VAS", "SPK1", "SPK2", "SPK3")
DEFAULT_TRANSFER_SIZES_KB = (4, 16, 64, 256, 1024)
DEFAULT_CHIP_COUNTS = (64, 256)


def build_spec(
    chip_counts: Sequence[int] = DEFAULT_CHIP_COUNTS,
    transfer_sizes_kb: Sequence[int] = DEFAULT_TRANSFER_SIZES_KB,
    schedulers: Sequence[str] = DEFAULT_SCHEDULERS,
    *,
    requests_per_point: int = 32,
    seed: int = 23,
) -> ExperimentSpec:
    """Declare the chip-count x transfer-size x scheduler utilisation grid."""
    jobs: List[SimJob] = []
    for num_chips in chip_counts:
        config = SimulationConfig.paper_scale(num_chips).with_overrides(gc_enabled=False)
        for size_kb in transfer_sizes_kb:
            workload = WorkloadSpec.random(
                f"sweep-{size_kb}KB",
                num_requests=requests_per_point,
                size_bytes=size_kb * KB,
                address_space_bytes=max(
                    64 * KB * requests_per_point, 8 * size_kb * KB * requests_per_point
                ),
                read_fraction=1.0,
                interarrival_ns=1_000,
                seed=seed,
            )
            for scheduler in schedulers:
                jobs.append(
                    SimJob(
                        workload=workload,
                        scheduler=scheduler,
                        config=config,
                        key=(num_chips, size_kb, scheduler),
                    )
                )
    return ExperimentSpec("figure15", tuple(jobs))


def run_figure15(
    chip_counts: Sequence[int] = DEFAULT_CHIP_COUNTS,
    transfer_sizes_kb: Sequence[int] = DEFAULT_TRANSFER_SIZES_KB,
    schedulers: Sequence[str] = DEFAULT_SCHEDULERS,
    *,
    requests_per_point: int = 32,
    seed: int = 23,
    engine: Optional[ExecutionEngine] = None,
) -> List[Dict[str, object]]:
    """Chip-utilisation rows per (chip count, transfer size, scheduler)."""
    spec = build_spec(
        chip_counts,
        transfer_sizes_kb,
        schedulers,
        requests_per_point=requests_per_point,
        seed=seed,
    )
    results = (engine or ExecutionEngine()).run(spec)
    rows: List[Dict[str, object]] = []
    for job in spec.jobs:
        num_chips, size_kb, scheduler = job.key
        result = results[job.key]
        rows.append(
            {
                "num_chips": num_chips,
                "transfer_kb": size_kb,
                "scheduler": scheduler,
                "chip_utilization_pct": round(100.0 * result.chip_utilization, 1),
                "bandwidth_mb_s": round(result.bandwidth_kb_s / 1024.0, 1),
            }
        )
    return rows


def average_utilization(rows: Sequence[Dict[str, object]]) -> Dict[tuple, float]:
    """Average utilisation per (chip count, scheduler) across transfer sizes."""
    buckets: Dict[tuple, List[float]] = {}
    for row in rows:
        key = (int(row["num_chips"]), str(row["scheduler"]))
        buckets.setdefault(key, []).append(float(row["chip_utilization_pct"]))
    return {key: round(sum(values) / len(values), 1) for key, values in buckets.items()}


def main(argv: Optional[Sequence[str]] = None) -> None:
    """Print the Figure 15 table plus per-configuration averages."""
    engine = engine_from_cli("Figure 15: chip utilisation vs transfer size", argv)
    rows = run_figure15(engine=engine)
    print(format_table(rows, title="Figure 15: chip utilisation vs transfer size"))
    print()
    print("Average utilisation per (chips, scheduler):", average_utilization(rows))


if __name__ == "__main__":
    main()
