"""Shared experiment plumbing.

The individual figure modules all need the same ingredients: a set of
workload *specs*, a set of schedulers, and a way to collect one
:class:`~repro.metrics.report.SimulationResult` per grid cell.  The grids
themselves are declared with :mod:`repro.experiments.spec` and executed by
:mod:`repro.experiments.engine`; this module provides the paper-specific
ingredients (scales, trace sets, the evaluation-platform config) plus thin
compatibility wrappers over the engine.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

from repro.experiments.engine import ExecutionEngine
from repro.experiments.spec import ExperimentSpec, WorkloadSpec
from repro.metrics.report import SimulationResult
from repro.sim.config import SimulationConfig
from repro.sim.ssd import SSDSimulator
from repro.workloads.datacenter import DATACENTER_TRACE_NAMES
from repro.workloads.request import IORequest

#: The three schedulers most figures compare, plus the two Sprinkler ablations.
ALL_SCHEDULERS = ("VAS", "PAS", "SPK1", "SPK2", "SPK3")


@dataclass(frozen=True)
class ExperimentScale:
    """Knobs controlling how big (and slow) an experiment run is.

    ``quick()`` keeps every experiment in the seconds range so the benchmark
    suite stays runnable on a laptop; ``paper()`` approaches the paper's own
    request counts (use the engine's process backend for those).
    """

    requests_per_trace: int = 200
    requests_per_point: int = 48
    num_chips: int = 64
    traces: Tuple[str, ...] = DATACENTER_TRACE_NAMES
    seed: int = 7

    @classmethod
    def quick(cls) -> "ExperimentScale":
        """Small scale used by the benchmark suite and CI."""
        return cls(
            requests_per_trace=160,
            requests_per_point=32,
            num_chips=64,
            traces=("cfs0", "cfs3", "hm0", "msnfs1", "msnfs3", "proj0", "proj2", "proj4"),
        )

    @classmethod
    def paper(cls) -> "ExperimentScale":
        """Closer to the paper's scale (slow in pure Python)."""
        return cls(requests_per_trace=3000, requests_per_point=256, num_chips=64)


def default_workload_specs(scale: ExperimentScale) -> Dict[str, WorkloadSpec]:
    """Declarative specs for the datacenter traces the trace-driven figures use."""
    return {
        name: WorkloadSpec.datacenter(
            name, num_requests=scale.requests_per_trace, seed=scale.seed
        )
        for name in scale.traces
    }


def default_trace_set(
    scale: ExperimentScale, engine: Optional[ExecutionEngine] = None
) -> Dict[str, List[IORequest]]:
    """Generate (materialise) the datacenter traces used by the figures."""
    engine = engine or ExecutionEngine()
    return engine.build_workloads(list(default_workload_specs(scale).values()))


def clone_workload(workload: Sequence[IORequest]) -> List[IORequest]:
    """Deep-copy a workload so each simulation run starts from pristine state.

    The simulator stamps completion times onto the request objects, so reusing
    the same objects across runs would leak state between schedulers.  Cloning
    goes through :func:`dataclasses.replace` so any field added to
    :class:`IORequest` later is copied automatically instead of silently
    sharing (or dropping) state; only the lifecycle timestamps are reset.
    """
    return [
        replace(io, enqueued_at_ns=None, completed_at_ns=None) for io in workload
    ]


def run_single(
    workload: Sequence[IORequest],
    scheduler: str,
    config: SimulationConfig,
    workload_name: str,
    scheduler_options: Optional[Dict[str, object]] = None,
) -> SimulationResult:
    """Run one (workload, scheduler) pair on a fresh simulator."""
    simulator = SSDSimulator(config, scheduler, scheduler_options=scheduler_options)
    return simulator.run(clone_workload(workload), workload_name=workload_name)


def run_scheduler_matrix(
    workloads: Mapping[str, Union[WorkloadSpec, Sequence[IORequest]]],
    schedulers: Iterable[str],
    config: SimulationConfig,
    *,
    config_per_scheduler: Optional[Callable[[str], SimulationConfig]] = None,
    scheduler_options: Optional[Dict[str, Dict[str, object]]] = None,
    engine: Optional[ExecutionEngine] = None,
    name: str = "scheduler-matrix",
) -> Dict[Tuple[str, str], SimulationResult]:
    """Run every scheduler against every workload through the engine.

    Returns a mapping ``(workload_name, scheduler_name) -> SimulationResult``.
    ``workloads`` may hold :class:`WorkloadSpec` values (preferred - they are
    what worker processes can rebuild) or raw request lists, which are frozen
    into inline specs.  ``config_per_scheduler`` lets an experiment vary the
    device configuration with the scheduler (e.g. disabling the readdressing
    callback for VAS/PAS).
    """
    specs = [
        workload
        if isinstance(workload, WorkloadSpec)
        else WorkloadSpec.inline(workload_name, workload)
        for workload_name, workload in workloads.items()
    ]
    spec = ExperimentSpec.matrix(
        name,
        specs,
        tuple(schedulers),
        config,
        config_per_scheduler=config_per_scheduler,
        scheduler_options=scheduler_options,
    )
    return (engine or ExecutionEngine()).run(spec)


def paper_config(scale: ExperimentScale, **overrides) -> SimulationConfig:
    """The evaluation-platform configuration at the experiment's chip count."""
    return SimulationConfig.paper_scale(scale.num_chips, **overrides)
