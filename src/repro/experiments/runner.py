"""Shared experiment plumbing.

The individual figure modules all need the same ingredients: a set of
workloads, a set of schedulers, fresh copies of the workload per run (the
simulator mutates request objects), and a way to collect one
:class:`~repro.metrics.report.SimulationResult` per (workload, scheduler)
pair.  This module provides those ingredients once.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.metrics.report import SimulationResult
from repro.sim.config import SimulationConfig
from repro.sim.ssd import SSDSimulator
from repro.workloads.datacenter import DATACENTER_TRACE_NAMES, generate_datacenter_trace
from repro.workloads.request import IORequest

#: The three schedulers most figures compare, plus the two Sprinkler ablations.
ALL_SCHEDULERS = ("VAS", "PAS", "SPK1", "SPK2", "SPK3")


@dataclass(frozen=True)
class ExperimentScale:
    """Knobs controlling how big (and slow) an experiment run is.

    ``quick()`` keeps every experiment in the seconds range so the benchmark
    suite stays runnable on a laptop; ``paper()`` approaches the paper's own
    request counts (hours of CPU in pure Python).
    """

    requests_per_trace: int = 200
    requests_per_point: int = 48
    num_chips: int = 64
    traces: Tuple[str, ...] = DATACENTER_TRACE_NAMES
    seed: int = 7

    @classmethod
    def quick(cls) -> "ExperimentScale":
        """Small scale used by the benchmark suite and CI."""
        return cls(
            requests_per_trace=160,
            requests_per_point=32,
            num_chips=64,
            traces=("cfs0", "cfs3", "hm0", "msnfs1", "msnfs3", "proj0", "proj2", "proj4"),
        )

    @classmethod
    def paper(cls) -> "ExperimentScale":
        """Closer to the paper's scale (slow in pure Python)."""
        return cls(requests_per_trace=3000, requests_per_point=256, num_chips=64)


def default_trace_set(scale: ExperimentScale) -> Dict[str, List[IORequest]]:
    """Generate the datacenter traces used by the trace-driven figures."""
    return {
        name: generate_datacenter_trace(
            name, num_requests=scale.requests_per_trace, seed=scale.seed
        )
        for name in scale.traces
    }


def clone_workload(workload: Sequence[IORequest]) -> List[IORequest]:
    """Deep-copy a workload so each simulation run starts from pristine state.

    The simulator stamps completion times onto the request objects, so reusing
    the same objects across runs would leak state between schedulers.
    """
    return [
        IORequest(
            kind=io.kind,
            offset_bytes=io.offset_bytes,
            size_bytes=io.size_bytes,
            arrival_ns=io.arrival_ns,
            force_unit_access=io.force_unit_access,
        )
        for io in workload
    ]


def run_single(
    workload: Sequence[IORequest],
    scheduler: str,
    config: SimulationConfig,
    workload_name: str,
    scheduler_options: Optional[Dict[str, object]] = None,
) -> SimulationResult:
    """Run one (workload, scheduler) pair on a fresh simulator."""
    simulator = SSDSimulator(config, scheduler, scheduler_options=scheduler_options)
    return simulator.run(clone_workload(workload), workload_name=workload_name)


def run_scheduler_matrix(
    workloads: Dict[str, Sequence[IORequest]],
    schedulers: Iterable[str],
    config: SimulationConfig,
    *,
    config_per_scheduler: Optional[Callable[[str], SimulationConfig]] = None,
    scheduler_options: Optional[Dict[str, Dict[str, object]]] = None,
) -> Dict[Tuple[str, str], SimulationResult]:
    """Run every scheduler against every workload.

    Returns a mapping ``(workload_name, scheduler_name) -> SimulationResult``.
    ``config_per_scheduler`` lets an experiment vary the device configuration
    with the scheduler (e.g. disabling the readdressing callback for VAS/PAS).
    """
    results: Dict[Tuple[str, str], SimulationResult] = {}
    for workload_name, workload in workloads.items():
        for scheduler in schedulers:
            cfg = config_per_scheduler(scheduler) if config_per_scheduler else config
            options = (scheduler_options or {}).get(scheduler)
            results[(workload_name, scheduler)] = run_single(
                workload, scheduler, cfg, workload_name, scheduler_options=options
            )
    return results


def paper_config(scale: ExperimentScale, **overrides) -> SimulationConfig:
    """The evaluation-platform configuration at the experiment's chip count."""
    return SimulationConfig.paper_scale(scale.num_chips, **overrides)
