"""Table 1: workload characteristics.

The paper's Table 1 classifies the sixteen traces by total transfer size,
number of I/O instructions, randomness of the issued reads and writes, and a
static transactional-locality class.  This experiment reproduces the table
twice over:

* the *profile* columns restate the published statistics that our synthetic
  generator targets, and
* the *measured* columns recompute the same statistics from an actual
  generated trace, demonstrating that the synthesis matches its targets
  (read/write mix and average request sizes within sampling noise).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.experiments.engine import ExecutionEngine, engine_from_cli
from repro.experiments.runner import ExperimentScale
from repro.experiments.spec import WorkloadSpec
from repro.metrics.report import format_table
from repro.workloads.datacenter import (
    DATACENTER_TRACE_NAMES,
    datacenter_profile,
    trace_table_row,
)
from repro.workloads.request import IORequest

MB = 1024 * 1024


def measured_statistics(trace: Sequence[IORequest]) -> Dict[str, float]:
    """Summary statistics of a generated trace (mirrors Table 1's columns)."""
    reads = [io for io in trace if not io.is_write]
    writes = [io for io in trace if io.is_write]
    read_bytes = sum(io.size_bytes for io in reads)
    write_bytes = sum(io.size_bytes for io in writes)
    return {
        "measured_read_mb": round(read_bytes / MB, 2),
        "measured_write_mb": round(write_bytes / MB, 2),
        "measured_read_count": len(reads),
        "measured_write_count": len(writes),
        "measured_read_fraction": round(len(reads) / max(1, len(trace)), 3),
        "measured_avg_read_kb": round(read_bytes / 1024 / max(1, len(reads)), 1),
        "measured_avg_write_kb": round(write_bytes / 1024 / max(1, len(writes)), 1),
    }


def build_specs(
    scale: Optional[ExperimentScale] = None,
    traces: Optional[Sequence[str]] = None,
) -> List[WorkloadSpec]:
    """Declare one workload spec per Table 1 trace."""
    scale = scale or ExperimentScale.quick()
    names = tuple(traces) if traces is not None else DATACENTER_TRACE_NAMES
    return [
        WorkloadSpec.datacenter(name, num_requests=scale.requests_per_trace, seed=scale.seed)
        for name in names
    ]


def run_table01(
    scale: Optional[ExperimentScale] = None,
    traces: Optional[Sequence[str]] = None,
    *,
    engine: Optional[ExecutionEngine] = None,
) -> List[Dict[str, object]]:
    """Build the Table 1 rows (published profile + measured synthetic trace).

    Trace synthesis routes through the engine's workload builder, so the
    sixteen generations parallelise under the process backend like any other
    experiment grid.
    """
    specs = build_specs(scale, traces)
    generated = (engine or ExecutionEngine()).build_workloads(specs)
    rows: List[Dict[str, object]] = []
    for spec in specs:
        row = dict(trace_table_row(spec.name))
        row.update(measured_statistics(generated[spec.name]))
        profile = datacenter_profile(spec.name)
        row["target_read_fraction"] = round(profile.read_fraction, 3)
        rows.append(row)
    return rows


def main(argv: Optional[Sequence[str]] = None) -> None:
    """Print Table 1 (profile and measured synthetic statistics)."""
    engine = engine_from_cli("Table 1: workload characteristics", argv)
    rows = run_table01(engine=engine)
    print(format_table(rows, title="Table 1: workload characteristics (profile vs synthesised)"))


if __name__ == "__main__":
    main()
