"""Experiment harness: one module per table/figure of the paper's evaluation.

Every module exposes a ``run_*`` function returning plain row dictionaries
(easy to print, assert on, or dump to CSV) plus a ``main`` entry point that
prints the table.  The modules accept scale parameters so the same code runs
both the quick benchmark version (seconds) and a full-scale overnight run.
"""

from repro.experiments.runner import (
    ExperimentScale,
    clone_workload,
    default_trace_set,
    run_scheduler_matrix,
)
from repro.experiments import (
    figure01,
    figure06,
    figure10,
    figure11,
    figure12,
    figure13,
    figure14,
    figure15,
    figure16,
    figure17,
    table01,
)

__all__ = [
    "ExperimentScale",
    "clone_workload",
    "default_trace_set",
    "run_scheduler_matrix",
    "figure01",
    "figure06",
    "figure10",
    "figure11",
    "figure12",
    "figure13",
    "figure14",
    "figure15",
    "figure16",
    "figure17",
    "table01",
]
