"""Experiment harness: one module per table/figure of the paper's evaluation.

Every figure module *declares* its grid of (workload, scheduler, config)
cells as an :class:`~repro.experiments.spec.ExperimentSpec` (``build_spec``)
and exposes a ``run_*`` function that executes the spec through the shared
:class:`~repro.experiments.engine.ExecutionEngine` and returns plain row
dictionaries (easy to print, assert on, or dump to CSV), plus a ``main``
entry point that prints the table and accepts the engine flags
(``--backend process --workers N --cache-dir DIR``) for parallel,
memoized runs.
"""

from repro.experiments.engine import (
    ExecutionEngine,
    add_engine_arguments,
    engine_from_args,
    engine_from_cli,
)
from repro.experiments.runner import (
    ALL_SCHEDULERS,
    ExperimentScale,
    clone_workload,
    default_trace_set,
    default_workload_specs,
    paper_config,
    run_scheduler_matrix,
    run_single,
)
from repro.experiments.spec import ArraySpec, ExperimentSpec, SimJob, WorkloadSpec
from repro.experiments import (
    array_scaling,
    scenario_matrix,
    steady_state,
    figure01,
    figure06,
    figure10,
    figure11,
    figure12,
    figure13,
    figure14,
    figure15,
    figure16,
    figure17,
    table01,
)

__all__ = [
    "ALL_SCHEDULERS",
    "ArraySpec",
    "ExecutionEngine",
    "ExperimentScale",
    "ExperimentSpec",
    "SimJob",
    "WorkloadSpec",
    "add_engine_arguments",
    "engine_from_args",
    "engine_from_cli",
    "clone_workload",
    "default_trace_set",
    "default_workload_specs",
    "paper_config",
    "run_scheduler_matrix",
    "run_single",
    "array_scaling",
    "scenario_matrix",
    "steady_state",
    "figure01",
    "figure06",
    "figure10",
    "figure11",
    "figure12",
    "figure13",
    "figure14",
    "figure15",
    "figure16",
    "figure17",
    "table01",
]
