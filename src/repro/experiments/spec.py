"""Declarative experiment specifications.

The paper's evaluation is one big matrix of ``(workload x scheduler x
config)`` simulations.  Instead of every figure module hand-rolling a serial
loop, a figure now *declares* its grid as data:

* :class:`WorkloadSpec` - a picklable recipe for a workload.  Workers rebuild
  the trace from ``(generator, params, seed)``, so the request objects
  themselves never cross a process boundary, and every rebuild renumbers its
  I/O ids ``0..n-1`` (serial and parallel runs are therefore bit-identical).
* :class:`SimJob` - one independent simulation: a workload spec, a scheduler
  name, a full :class:`~repro.sim.config.SimulationConfig` and optional
  scheduler options, plus a caller-chosen ``key`` used to reassemble results.
  Jobs have a stable content fingerprint, which doubles as the on-disk cache
  key of the execution engine.
* :class:`ExperimentSpec` - a named, ordered collection of jobs, with a
  :meth:`ExperimentSpec.matrix` helper for the common "every scheduler
  against every workload" shape.
* :class:`ArraySpec` - one multi-SSD array cell: a workload, a placement
  layout and a per-device setup, expanding into one fingerprinted
  :class:`SimJob` per device (see :mod:`repro.array`).

The specs are pure data; running them is the job of
:class:`~repro.experiments.engine.ExecutionEngine`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.metrics.report import SimulationResult
from repro.scenarios.scenario import SCENARIO_VERSION, Scenario
from repro.sim.config import SimulationConfig, stable_fingerprint
from repro.sim.ssd import SSDSimulator
from repro.workloads.build import build_generator, freeze_requests, strip_request_tags
from repro.workloads.request import IORequest

#: Bump when the semantics of job execution change in a way that invalidates
#: previously cached results.
#: v2: SimulationResult grew first-class gc_stats/wear/lifetime fields -
#: pre-v2 cache entries unpickle without them and must not be reused.
SPEC_VERSION = 2


def _as_items(mapping: Optional[Mapping[str, Any]]) -> Tuple[Tuple[str, Any], ...]:
    """Freeze a keyword mapping into a sorted, hashable tuple of pairs."""
    if not mapping:
        return ()
    return tuple(sorted(mapping.items()))


@dataclass(frozen=True)
class WorkloadSpec:
    """A reconstructible description of one workload.

    ``generator`` selects the generation routine, ``params`` are its frozen
    keyword arguments and ``name`` is the label stamped onto results.  The
    spec (not the generated requests) is what travels to worker processes;
    :meth:`build` regenerates the exact same trace anywhere because every
    generator is seed-deterministic and the I/O ids are renumbered ``0..n-1``
    after generation (the process-global id counter is left untouched).

    Note: because every built workload is numbered from 0, two *built*
    workloads must not be merged into a single simulator run; each
    :class:`SimJob` runs exactly one workload, which is the intended use.
    """

    generator: str
    name: str
    params: Tuple[Tuple[str, Any], ...] = ()

    # -- constructors ---------------------------------------------------
    @classmethod
    def datacenter(cls, trace_name: str, *, num_requests: int, seed: int, **extra) -> "WorkloadSpec":
        """One of the sixteen Table 1 data-center traces."""
        params = {"name": trace_name, "num_requests": num_requests, "seed": seed, **extra}
        return cls("datacenter", trace_name, _as_items(params))

    @classmethod
    def random(cls, name: str, *, num_requests: int, size_bytes: int, **extra) -> "WorkloadSpec":
        """Uniform-random-offset workload (transfer-size sweeps)."""
        params = {"num_requests": num_requests, "size_bytes": size_bytes, **extra}
        return cls("random", name, _as_items(params))

    @classmethod
    def mixed(cls, name: str, **config_fields) -> "WorkloadSpec":
        """General synthetic workload (:class:`SyntheticWorkloadConfig` fields)."""
        return cls("mixed", name, _as_items(config_fields))

    @classmethod
    def sequential(cls, name: str, *, num_requests: int, size_bytes: int, **extra) -> "WorkloadSpec":
        """Back-to-back sequential workload."""
        params = {"num_requests": num_requests, "size_bytes": size_bytes, **extra}
        return cls("sequential", name, _as_items(params))

    @classmethod
    def scenario(cls, scenario: Scenario) -> "WorkloadSpec":
        """A composed :class:`~repro.scenarios.scenario.Scenario` as a workload.

        The scenario object itself (a frozen dataclass of primitives) is the
        spec's parameter, so the fingerprint covers every phase, tenant,
        arrival-process knob and transform - any change to the scenario
        recipe invalidates exactly the affected cache entries.  The scenario
        engine's version rides along as a param so bumping
        ``SCENARIO_VERSION`` (a semantics change in scenario *building*)
        also invalidates the engine's cached results.
        """
        return cls(
            "scenario",
            scenario.name,
            (("scenario", scenario), ("scenario_version", SCENARIO_VERSION)),
        )

    @classmethod
    def inline(
        cls, name: str, requests: Sequence[IORequest], *, keep_tags: bool = False
    ) -> "WorkloadSpec":
        """Freeze an already-materialised request list into a spec.

        Used by legacy call sites that hand the runner raw request lists; the
        requests are stored as plain value tuples, so the spec stays hashable
        and rebuilds (with fresh ids) identically in any process.

        ``keep_tags=True`` preserves the observational provenance tags
        (``tenant``/``phase_index``) through the freeze/thaw round trip so
        attribution survives; :meth:`fingerprint` strips the tags before
        hashing, keeping a tagged spec cache-compatible with the identical
        untagged trace.
        """
        frozen = freeze_requests(requests, keep_tags=keep_tags)
        return cls("inline", name, (("requests", frozen),))

    # -- materialisation -------------------------------------------------
    def build(self) -> List[IORequest]:
        """Regenerate the workload from scratch (fresh, deterministic ids)."""
        params = dict(self.params)
        if self.generator == "scenario":
            requests = params["scenario"].build()
        else:
            requests = build_generator(self.generator, params)
        # Renumber in place so the ids a job sees are independent of which
        # process (and how many prior jobs) generated the trace - this is
        # what makes serial and parallel runs bit-identical.
        for index, io in enumerate(requests):
            io.io_id = index
        return requests

    def fingerprint(self) -> str:
        """Stable content hash of the workload recipe.

        Inline specs hash the *untagged* view of their frozen requests:
        provenance tags are observational (they never change simulated
        behaviour), so a tagged inline spec fingerprints byte-identically to
        the same trace frozen without tags - cache entries and perf-golden
        fingerprints are unaffected by tagging.
        """
        params = self.params
        if self.generator == "inline":
            params = tuple(
                (key, strip_request_tags(value) if key == "requests" else value)
                for key, value in params
            )
        return stable_fingerprint(("workload", SPEC_VERSION, self.generator, self.name, params))


@dataclass(frozen=True)
class SimJob:
    """One independent ``(workload, scheduler, config)`` simulation.

    The device under test is given either as an explicit ``config`` or as a
    ``device`` id resolved from the shipped device zoo
    (:mod:`repro.devices`), optionally adjusted via ``device_overrides``
    (frozen ``(field, value)`` pairs applied with ``with_overrides``).
    Fingerprints always cover the *resolved* configuration, so editing a
    zoo file invalidates exactly the cached results of the jobs that used
    that device - and a zoo job whose device resolves to the same config as
    an explicit-config job shares its cache entry.

    ``key`` is whatever tuple the declaring experiment wants results keyed
    by (e.g. ``(trace, scheduler)`` or ``(chips, size_kb, scheduler)``);
    it does not enter the fingerprint, so relabelling cells never invalidates
    the cache.
    """

    workload: WorkloadSpec
    scheduler: str
    config: Optional[SimulationConfig] = None
    scheduler_options: Tuple[Tuple[str, Any], ...] = ()
    key: Tuple[Any, ...] = ()
    #: Device-zoo id (e.g. ``"mlc-gen2"``), resolved through
    #: :func:`repro.devices.device_config`.  Exactly one of
    #: ``config``/``device`` must be set.
    device: Optional[str] = None
    device_overrides: Tuple[Tuple[str, Any], ...] = ()

    def __post_init__(self) -> None:
        if (self.config is None) == (self.device is None):
            raise ValueError("set exactly one of config= or device= on a SimJob")
        if self.device_overrides and self.device is None:
            raise ValueError("device_overrides requires device=")

    @property
    def options_dict(self) -> Optional[Dict[str, Any]]:
        """Scheduler options as the keyword dict ``SSDSimulator`` expects."""
        return dict(self.scheduler_options) if self.scheduler_options else None

    @property
    def resolved_config(self) -> SimulationConfig:
        """The full configuration this job simulates (zoo ids resolved)."""
        if self.config is not None:
            return self.config
        from repro.devices import device_config  # lazy: zoo loads on demand

        return device_config(self.device, **dict(self.device_overrides))

    def fingerprint(self) -> str:
        """Content hash over everything that influences the result.

        Any change to the workload recipe, the scheduler, a scheduler option
        or *any* config knob (geometry, timing, GC, callbacks ...) yields a
        different fingerprint; the engine's result cache keys on this.  Zoo
        devices enter by resolved content, never by id - renaming a device
        without changing its definition does not invalidate anything.
        """
        return stable_fingerprint(
            (
                "job",
                SPEC_VERSION,
                self.workload.fingerprint(),
                self.scheduler,
                # Sorted so semantically equal option sets fingerprint the
                # same however the caller ordered the pairs.
                tuple(sorted(self.scheduler_options)),
                self.resolved_config,
            )
        )

    def execute(self) -> SimulationResult:
        """Run this job on a fresh simulator (the engine's unit of work)."""
        workload = self.workload.build()
        simulator = SSDSimulator(
            self.resolved_config, self.scheduler, scheduler_options=self.options_dict
        )
        return simulator.run(workload, workload_name=self.workload.name)


@dataclass(frozen=True)
class ArraySpec:
    """One host-level array cell: a workload striped over ``num_devices`` SSDs.

    The spec captures everything that determines the array outcome - the
    base workload recipe, the placement layout, and the per-device scheduler
    and config - and expands into one cache-aware :class:`SimJob` per device
    (:meth:`device_jobs`).  Each device job freezes its sub-trace via
    :meth:`WorkloadSpec.inline`, so its fingerprint covers the actual bytes
    the device serves plus the device label: array cells at the same device
    count whose placements hand a device an identical sub-trace (e.g. a
    1-device array under any policy, or stripe vs range over a
    stripe-aligned trace) share that device's cache entry.
    """

    workload: WorkloadSpec
    num_devices: int
    scheduler: str
    config: Optional[SimulationConfig] = None
    policy: str = "stripe"
    chunk_bytes: int = 64 * 1024
    shard_bytes: Optional[int] = None
    scheduler_options: Tuple[Tuple[str, Any], ...] = ()
    key: Tuple[Any, ...] = ()
    #: Per-slot device-zoo ids - the heterogeneous-array form.  When set,
    #: one id per device slot (``len(devices) == num_devices``) and
    #: ``config`` must be ``None``; slot *i* simulates zoo device
    #: ``devices[i]``.  Homogeneous arrays keep using ``config``.
    devices: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if (self.config is None) == (not self.devices):
            raise ValueError("set exactly one of config= or devices= on an ArraySpec")
        if self.devices and len(self.devices) != self.num_devices:
            raise ValueError(
                f"devices= lists {len(self.devices)} ids for {self.num_devices} slots"
            )

    def slot_config(self, device_index: int) -> SimulationConfig:
        """The resolved configuration of one device slot."""
        if self.config is not None:
            return self.config
        from repro.devices import device_config

        return device_config(self.devices[device_index])

    def layout(self):
        """The :class:`repro.array.layout.ArrayLayout` this spec describes."""
        # Imported lazily: repro.array depends on this module for SimJob.
        from repro.array.layout import ArrayLayout

        return ArrayLayout(
            num_devices=self.num_devices,
            policy=self.policy,
            chunk_bytes=self.chunk_bytes,
            shard_bytes=self.shard_bytes,
        )

    def fingerprint(self) -> str:
        """Content hash over the workload recipe, layout and device setup.

        Homogeneous arrays hash the shared config (byte-compatible with
        pre-zoo fingerprints); heterogeneous arrays hash the per-slot
        *resolved* configs, so a zoo edit invalidates exactly the arrays
        containing the edited device.
        """
        if self.config is not None:
            config_entry: Any = self.config
        else:
            config_entry = tuple(
                self.slot_config(device) for device in range(self.num_devices)
            )
        return stable_fingerprint(
            (
                "array",
                SPEC_VERSION,
                self.workload.fingerprint(),
                self.num_devices,
                self.policy,
                self.chunk_bytes,
                self.shard_bytes,
                self.scheduler,
                tuple(sorted(self.scheduler_options)),
                config_entry,
            )
        )

    def device_jobs(self, sub_traces=None) -> Tuple[SimJob, ...]:
        """Expand into one :class:`SimJob` per device, keyed ``key + (device,)``.

        The base trace is built once, split by the layout, and each
        sub-trace frozen into an inline workload spec; devices with an empty
        sub-trace still get a job so results stay positional.  Batch callers
        sweeping schedulers over one layout can pass the already-split
        ``sub_traces`` to skip the rebuild (see
        :func:`repro.experiments.array_scaling.run_array_specs`).

        Sub-traces are frozen with their provenance tags so tagged scenario
        workloads keep per-tenant attribution on every device; the tags are
        stripped at fingerprint time, so cache keys are unchanged.
        """
        from repro.array.layout import split_trace

        if sub_traces is None:
            sub_traces = split_trace(self.workload.build(), self.layout())
        return tuple(
            SimJob(
                workload=WorkloadSpec.inline(
                    f"{self.workload.name}@dev{device}/{self.num_devices}",
                    sub_trace,
                    keep_tags=True,
                ),
                scheduler=self.scheduler,
                config=self.config,
                device=self.devices[device] if self.devices else None,
                scheduler_options=self.scheduler_options,
                key=self.key + (device,),
            )
            for device, sub_trace in enumerate(sub_traces)
        )


@dataclass(frozen=True)
class ExperimentSpec:
    """A named, ordered set of independent simulation jobs."""

    name: str
    jobs: Tuple[SimJob, ...]

    def __post_init__(self) -> None:
        keys = [job.key for job in self.jobs]
        if len(set(keys)) != len(keys):
            raise ValueError(f"experiment {self.name!r} has duplicate job keys")

    def __len__(self) -> int:
        return len(self.jobs)

    @classmethod
    def matrix(
        cls,
        name: str,
        workloads: Iterable[WorkloadSpec],
        schedulers: Sequence[str],
        config: SimulationConfig,
        *,
        config_per_scheduler: Optional[Callable[[str], SimulationConfig]] = None,
        scheduler_options: Optional[Mapping[str, Mapping[str, Any]]] = None,
    ) -> "ExperimentSpec":
        """Every scheduler against every workload, keyed ``(workload, scheduler)``.

        ``config_per_scheduler`` is evaluated once per scheduler at
        declaration time, so the resulting spec is still plain data.
        """
        jobs: List[SimJob] = []
        for workload in workloads:
            for scheduler in schedulers:
                cfg = config_per_scheduler(scheduler) if config_per_scheduler else config
                options = _as_items((scheduler_options or {}).get(scheduler))
                jobs.append(
                    SimJob(
                        workload=workload,
                        scheduler=scheduler,
                        config=cfg,
                        scheduler_options=options,
                        key=(workload.name, scheduler),
                    )
                )
        return cls(name, tuple(jobs))
