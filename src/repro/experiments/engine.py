"""Shared execution engine for the experiment suite.

:class:`ExecutionEngine` takes an :class:`~repro.experiments.spec.ExperimentSpec`
(or a bare job list), executes every job through a pluggable backend and
reassembles the results in declaration order:

* ``serial`` - run jobs one after another in this process (the default; what
  the old per-figure loops did, minus the copy-pasta).
* ``process`` - fan jobs out over a :class:`concurrent.futures.ProcessPoolExecutor`.
  Only the *specs* are pickled to workers; each worker regenerates its
  workload from the spec's seed, so traces never cross the process boundary
  and results are bit-identical to a serial run.

Independently of the backend, completed jobs can be memoized in an on-disk
cache keyed by the job's content fingerprint: re-running a figure with one
knob changed only re-simulates the affected cells.

Command-line entry points share the ``--backend/--workers/--cache-dir``
(and ``--checkpoint-dir/--checkpoint-every``) flags via
:func:`add_engine_arguments` / :func:`engine_from_cli`::

    PYTHONPATH=src python -m repro.experiments.figure10 --backend process --workers 8
"""

from __future__ import annotations

import argparse
import copy
import functools
import os
import pickle
import sys
import tempfile
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.metrics.report import SimulationResult
from repro.experiments.spec import ExperimentSpec, SimJob, WorkloadSpec
from repro.workloads.request import IORequest

BACKENDS = ("serial", "process")

#: Default snapshot cadence for ``--checkpoint-dir`` runs: frequent enough
#: that an interrupted multi-hour job loses minutes, rare enough that
#: snapshot serialization stays far below simulation cost.
DEFAULT_CHECKPOINT_EVERY = 250_000


def _execute_job(job: SimJob) -> SimulationResult:
    """Top-level job runner (must be picklable for the process backend)."""
    return job.execute()


def _execute_job_traced(job: SimJob, trace_dir: str) -> SimulationResult:
    """Job runner that records a per-job telemetry artifact (picklable).

    Mirrors ``SimJob.execute`` with a memory trace sink attached, then
    writes the run's Chrome-trace JSON (named by the job fingerprint) into
    ``trace_dir``.  The returned result is value-identical to an untraced
    run - tracing is observational only.
    """
    from repro.obs.export import write_job_trace
    from repro.obs.trace import MemoryTraceSink
    from repro.sim.ssd import SSDSimulator

    sink = MemoryTraceSink()
    workload = job.workload.build()
    simulator = SSDSimulator(
        job.resolved_config,
        job.scheduler,
        scheduler_options=job.options_dict,
        trace_sink=sink,
    )
    result = simulator.run(workload, workload_name=job.workload.name)
    write_job_trace(trace_dir, job, sink, result)
    return result


def _execute_job_checkpointed(
    job: SimJob, directory: str, every_events: int, trace_dir: Optional[str] = None
) -> SimulationResult:
    """Job runner that persists periodic checkpoints (picklable, like above).

    Bit-identical to :func:`_execute_job` - the checkpoint subsystem's
    digest-identity contract - but an interrupted run resumes from its
    latest ``(fingerprint, T)`` snapshot instead of restarting.
    """
    from repro.checkpoint.store import CheckpointStore, run_job_checkpointed

    return run_job_checkpointed(
        job, CheckpointStore(directory), every_events=every_events, trace_dir=trace_dir
    )


def _build_workload(spec: WorkloadSpec) -> List[IORequest]:
    """Top-level workload builder (picklable for the process backend)."""
    return spec.build()


@dataclass
class EngineStats:
    """What the engine did during its lifetime (for tests and reporting)."""

    jobs_submitted: int = 0
    jobs_executed: int = 0
    cache_hits: int = 0
    cache_stores: int = 0


class ResultCache:
    """Content-addressed on-disk memo of completed simulation jobs.

    One pickle file per job fingerprint.  Writes go through a temp file +
    atomic rename so a killed run never leaves a truncated entry; unreadable
    entries are treated as misses and overwritten.
    """

    def __init__(self, directory: Union[str, Path]) -> None:
        self.directory = Path(directory)
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
        # A plain file at the path raises FileExistsError; a plain file
        # *along* the path (e.g. cache-dir under an existing file) raises
        # NotADirectoryError on POSIX and FileExistsError elsewhere.
        except (FileExistsError, NotADirectoryError) as exc:
            raise ValueError(
                f"cache dir {self.directory} is not usable as a directory"
            ) from exc

    def _path(self, fingerprint: str) -> Path:
        return self.directory / f"{fingerprint}.pkl"

    def load(self, fingerprint: str) -> Optional[SimulationResult]:
        """Return the cached result, or ``None`` on a miss."""
        path = self._path(fingerprint)
        if not path.exists():
            return None
        try:
            with path.open("rb") as handle:
                return pickle.load(handle)
        except Exception:
            return None

    def store(self, fingerprint: str, result: SimulationResult) -> None:
        """Persist one result atomically."""
        path = self._path(fingerprint)
        fd, tmp_name = tempfile.mkstemp(dir=str(self.directory), suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                pickle.dump(result, handle, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp_name, path)
        except Exception:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise

    def __len__(self) -> int:
        return sum(1 for _ in self.directory.glob("*.pkl"))


class _ProgressHeartbeat:
    """Prints one ``[engine]`` line per completed job (events/sec, ETA)."""

    def __init__(self, total: int, cache_hits: int) -> None:
        self.total = total
        self.done = 0
        self.events = 0
        self.started = time.monotonic()
        if cache_hits:
            print(
                f"[engine] {cache_hits} cache hit(s); executing {total} job(s)",
                file=sys.stderr,
                flush=True,
            )

    def tick(self, result: SimulationResult) -> None:
        """Account one completed job and print the heartbeat line."""
        self.done += 1
        self.events += result.events_processed
        elapsed = max(time.monotonic() - self.started, 1e-9)
        rate = self.events / elapsed
        eta = elapsed / self.done * (self.total - self.done)
        print(
            f"[engine] {self.done}/{self.total} jobs "
            f"({result.workload} [{result.scheduler}]) "
            f"{rate:,.0f} events/s elapsed {elapsed:.1f}s eta {eta:.1f}s",
            file=sys.stderr,
            flush=True,
        )


class ExecutionEngine:
    """Executes experiment specs through a pluggable, cache-aware backend."""

    def __init__(
        self,
        backend: str = "serial",
        *,
        max_workers: Optional[int] = None,
        cache_dir: Optional[Union[str, Path]] = None,
        checkpoint_dir: Optional[Union[str, Path]] = None,
        checkpoint_every: int = DEFAULT_CHECKPOINT_EVERY,
        trace_dir: Optional[Union[str, Path]] = None,
        progress: bool = False,
    ) -> None:
        if backend not in BACKENDS:
            raise ValueError(f"unknown backend {backend!r}; expected one of {BACKENDS}")
        if max_workers is not None and max_workers <= 0:
            raise ValueError("max_workers must be positive (or None for CPU count)")
        if checkpoint_every <= 0:
            raise ValueError("checkpoint_every must be positive")
        self.backend = backend
        self.max_workers = max_workers
        self.cache = ResultCache(cache_dir) if cache_dir is not None else None
        # With a checkpoint dir, every job executes through the resumable
        # runner: snapshots are persisted every ``checkpoint_every`` events
        # keyed by (job fingerprint, T), and a rerun of an interrupted batch
        # picks each unfinished job up from its latest snapshot.  Results
        # stay bit-identical to plain execution, so the result cache and
        # both backends compose with it unchanged.
        self.checkpoint_dir = Path(checkpoint_dir) if checkpoint_dir is not None else None
        self.checkpoint_every = checkpoint_every
        if self.checkpoint_dir is not None:
            # Validate the directory now, like ResultCache does, so a bad
            # path fails at engine construction rather than mid-batch.
            from repro.checkpoint.store import CheckpointStore

            CheckpointStore(self.checkpoint_dir)
        # With a trace dir, every executed job also records a per-job
        # Chrome-trace telemetry artifact (named by the job fingerprint).
        # Cache hits are served without re-tracing - tracing requires an
        # actual execution.
        self.trace_dir = Path(trace_dir) if trace_dir is not None else None
        if self.trace_dir is not None:
            self.trace_dir.mkdir(parents=True, exist_ok=True)
        # With progress on, run_jobs prints a per-completion heartbeat
        # (jobs done, events/sec, ETA) to stderr - the long-sweep watchdog.
        self.progress = progress
        self.stats = EngineStats()

    @property
    def _job_executor(self):
        """The per-job execution function (checkpoint/trace-aware when configured)."""
        if self.checkpoint_dir is not None:
            return functools.partial(
                _execute_job_checkpointed,
                directory=str(self.checkpoint_dir),
                every_events=self.checkpoint_every,
                trace_dir=str(self.trace_dir) if self.trace_dir is not None else None,
            )
        if self.trace_dir is not None:
            return functools.partial(_execute_job_traced, trace_dir=str(self.trace_dir))
        return _execute_job

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, spec: ExperimentSpec) -> Dict[Tuple[Any, ...], SimulationResult]:
        """Run a whole experiment; results keyed by each job's ``key``.

        The mapping is assembled in job declaration order, so iterating it is
        deterministic regardless of backend or completion order.
        """
        results = self.run_jobs(spec.jobs)
        return {job.key: result for job, result in zip(spec.jobs, results)}

    def run_jobs(self, jobs: Sequence[SimJob]) -> List[SimulationResult]:
        """Run jobs (cache-first), returning results in job order.

        Jobs in one batch that share a content fingerprint are simulated
        once: duplicates are detected up front (the process backend would
        otherwise run them all before the first result lands in the cache)
        and every duplicate index receives the one computed result.
        """
        self.stats.jobs_submitted += len(jobs)
        hits_before = self.stats.cache_hits
        results: List[Optional[SimulationResult]] = [None] * len(jobs)
        fingerprints = [job.fingerprint() for job in jobs]
        pending: Dict[str, List[int]] = {}
        for index, job in enumerate(jobs):
            fingerprint = fingerprints[index]
            if fingerprint in pending:
                pending[fingerprint].append(index)
                continue
            if self.cache is not None:
                cached = self.cache.load(fingerprint)
                if cached is not None:
                    results[index] = cached
                    self.stats.cache_hits += 1
                    if self.trace_dir is not None:
                        # Cache hits skip execution, so no trace artifact
                        # exists for them; leave an explicit marker so
                        # trace-dir reconciliation never misreads a hit as
                        # lost spans.
                        from repro.obs.export import write_skipped_trace_marker

                        write_skipped_trace_marker(self.trace_dir, fingerprint, cached)
                    continue
            pending[fingerprint] = [index]

        # Results are cached as each job completes (not after the whole
        # batch), so an interrupted long sweep keeps the work it finished.
        representatives = [indices[0] for indices in pending.values()]
        heartbeat = (
            _ProgressHeartbeat(len(representatives), self.stats.cache_hits - hits_before)
            if self.progress and jobs
            else None
        )
        for index, result in self._execute_indexed(
            [jobs[i] for i in representatives], self._job_executor, representatives
        ):
            for duplicate in pending[fingerprints[index]]:
                # Deep-copy for the duplicates so cold-path results are
                # independent objects, exactly like cache-hit duplicates
                # (each unpickled separately) - callers may post-process
                # their cells in place.
                results[duplicate] = result if duplicate == index else copy.deepcopy(result)
            self.stats.jobs_executed += 1
            if self.cache is not None:
                self.cache.store(fingerprints[index], result)
                self.stats.cache_stores += 1
            if heartbeat is not None:
                heartbeat.tick(result)
        return results  # type: ignore[return-value]

    def build_workloads(self, specs: Sequence[WorkloadSpec]) -> Dict[str, List[IORequest]]:
        """Materialise workload specs (through the backend), keyed by name.

        Pure-workload experiments (Table 1) and legacy helpers use this to
        route trace generation through the same serial/process machinery.
        """
        names = [spec.name for spec in specs]
        if len(set(names)) != len(names):
            raise ValueError("workload specs have duplicate names; results would collide")
        built = self._execute(list(specs), _build_workload)
        return {spec.name: workload for spec, workload in zip(specs, built)}

    # ------------------------------------------------------------------
    # Backends
    # ------------------------------------------------------------------
    def _execute(self, items: List[Any], fn) -> List[Any]:
        """Run ``fn`` over ``items`` through the backend, in item order."""
        results: List[Any] = [None] * len(items)
        for index, result in self._execute_indexed(items, fn, list(range(len(items)))):
            results[index] = result
        return results

    def _execute_indexed(self, items: List[Any], fn, labels: List[int]):
        """Yield ``(label, fn(item))`` pairs as each item completes.

        Single dispatch point for backend selection: ``labels`` carries the
        caller's index for each item so completion order never matters.
        """
        if not items:
            return
        if self.backend == "serial" or len(items) == 1:
            for label, item in zip(labels, items):
                yield label, fn(item)
            return
        max_workers = self.max_workers or min(len(items), os.cpu_count() or 1)
        with ProcessPoolExecutor(max_workers=max_workers) as pool:
            futures = {pool.submit(fn, item): label for label, item in zip(labels, items)}
            for future in as_completed(futures):
                yield futures[future], future.result()


# ----------------------------------------------------------------------
# Command-line plumbing shared by every figure module's ``main``
# ----------------------------------------------------------------------
def add_engine_arguments(parser: argparse.ArgumentParser) -> argparse.ArgumentParser:
    """Attach the standard ``--backend/--workers/--cache-dir`` flags."""
    parser.add_argument(
        "--backend",
        choices=BACKENDS,
        default="serial",
        help="job execution backend (process = parallel over CPU cores)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker processes for --backend process (default: CPU count)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="directory memoizing completed jobs by content fingerprint",
    )
    parser.add_argument(
        "--checkpoint-dir",
        default=None,
        help="directory persisting periodic job checkpoints; an interrupted "
        "run resumes from its latest snapshot instead of restarting",
    )
    parser.add_argument(
        "--checkpoint-every",
        type=int,
        default=DEFAULT_CHECKPOINT_EVERY,
        help="events between persisted checkpoints for --checkpoint-dir "
        f"(default: {DEFAULT_CHECKPOINT_EVERY})",
    )
    parser.add_argument(
        "--trace-dir",
        default=None,
        help="directory receiving one Chrome-trace telemetry artifact per "
        "executed job (open the .trace.json files at ui.perfetto.dev)",
    )
    parser.add_argument(
        "--progress",
        action="store_true",
        help="print a per-job heartbeat (jobs done, events/sec, ETA) to stderr",
    )
    return parser


def engine_from_args(args: argparse.Namespace) -> ExecutionEngine:
    """Build an engine from a parsed :func:`add_engine_arguments` namespace."""
    return ExecutionEngine(
        args.backend,
        max_workers=args.workers,
        cache_dir=args.cache_dir,
        checkpoint_dir=getattr(args, "checkpoint_dir", None),
        checkpoint_every=getattr(args, "checkpoint_every", DEFAULT_CHECKPOINT_EVERY),
        trace_dir=getattr(args, "trace_dir", None),
        progress=getattr(args, "progress", False),
    )


def engine_from_cli(description: str, argv: Optional[Sequence[str]] = None) -> ExecutionEngine:
    """Parse the standard engine flags and return the configured engine."""
    parser = argparse.ArgumentParser(description=description)
    add_engine_arguments(parser)
    return engine_from_args(parser.parse_args(argv))
