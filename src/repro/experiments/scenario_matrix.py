"""Scenario matrix: scenario x scheduler x device topology.

Beyond-the-paper experiment on the :mod:`repro.scenarios` engine: every
scenario in the grid (by default the canned ``steady`` / ``bursty`` /
``diurnal`` archetypes) is run against every device-level scheduler on a
single SSD *and* striped across multi-SSD arrays.  The questions it answers
are the ones the paper's fixed-gap sweeps cannot ask: does Sprinkler's
advantage survive MMPP bursts and multi-tenant interleaving?  Does striping
a bursty tenant mix across devices wash out the scheduler ranking?

Single-device cells are plain engine jobs; multi-device cells expand through
:class:`~repro.experiments.spec.ArraySpec` into one job per device.  All
jobs carry content fingerprints over the full scenario recipe, so
``--cache-dir`` memoizes cells across re-runs and ``--backend process``
parallelises the whole matrix.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.experiments.array_scaling import run_array_specs
from repro.experiments.engine import ExecutionEngine, engine_from_cli
from repro.experiments.spec import ArraySpec, ExperimentSpec, SimJob, WorkloadSpec
from repro.metrics.report import format_table
from repro.scenarios.library import default_scenarios
from repro.scenarios.scenario import Scenario
from repro.sim.config import SimulationConfig

KB = 1024

DEFAULT_SCHEDULERS = ("VAS", "SPK1", "SPK2", "SPK3")
DEFAULT_DEVICE_COUNTS = (1, 2)
DEFAULT_CHUNK_KB = 64


def build_grid(
    scenarios: Sequence[Scenario],
    schedulers: Sequence[str] = DEFAULT_SCHEDULERS,
    device_counts: Sequence[int] = DEFAULT_DEVICE_COUNTS,
    *,
    chips_per_device: int = 16,
    policy: str = "stripe",
    chunk_kb: int = DEFAULT_CHUNK_KB,
) -> Tuple[ExperimentSpec, Tuple[ArraySpec, ...]]:
    """Declare the grid: single-device jobs plus multi-device array cells.

    Both halves are keyed ``(scenario, devices, scheduler)`` so the result
    rows land in one table.  Every cell of one scenario shares the same
    :class:`WorkloadSpec`, hence the same built trace and fingerprint base.
    """
    config = SimulationConfig.paper_scale(chips_per_device).with_overrides(gc_enabled=False)
    workloads = {scenario.name: WorkloadSpec.scenario(scenario) for scenario in scenarios}
    single_jobs: List[SimJob] = []
    array_specs: List[ArraySpec] = []
    for scenario in scenarios:
        for num_devices in device_counts:
            for scheduler in schedulers:
                key = (scenario.name, num_devices, scheduler)
                if num_devices == 1:
                    single_jobs.append(
                        SimJob(
                            workload=workloads[scenario.name],
                            scheduler=scheduler,
                            config=config,
                            key=key,
                        )
                    )
                else:
                    array_specs.append(
                        ArraySpec(
                            workload=workloads[scenario.name],
                            num_devices=num_devices,
                            scheduler=scheduler,
                            config=config,
                            policy=policy,
                            chunk_bytes=chunk_kb * KB,
                            key=key,
                        )
                    )
    return ExperimentSpec("scenario-matrix", tuple(single_jobs)), tuple(array_specs)


def characterization_rows(scenarios: Sequence[Scenario]) -> List[Dict[str, object]]:
    """Per-phase + overall characterization rows for every scenario."""
    rows: List[Dict[str, object]] = []
    for scenario in scenarios:
        for row in scenario.report().rows():
            rows.append({"scenario": scenario.name, **row})
    return rows


def run_scenario_matrix(
    scenarios: Optional[Sequence[Scenario]] = None,
    schedulers: Sequence[str] = DEFAULT_SCHEDULERS,
    device_counts: Sequence[int] = DEFAULT_DEVICE_COUNTS,
    *,
    chips_per_device: int = 16,
    policy: str = "stripe",
    chunk_kb: int = DEFAULT_CHUNK_KB,
    scale: float = 1.0,
    seed: int = 11,
    engine: Optional[ExecutionEngine] = None,
) -> List[Dict[str, object]]:
    """One row per (scenario, devices, scheduler) cell of the matrix."""
    if scenarios is None:
        scenarios = default_scenarios(scale=scale, seed=seed)
    engine = engine or ExecutionEngine()
    spec, array_specs = build_grid(
        scenarios,
        schedulers,
        device_counts,
        chips_per_device=chips_per_device,
        policy=policy,
        chunk_kb=chunk_kb,
    )
    single_results = engine.run(spec)
    array_results = run_array_specs(array_specs, engine) if array_specs else {}

    rows: List[Dict[str, object]] = []
    for scenario in scenarios:
        for num_devices in device_counts:
            for scheduler in schedulers:
                key = (scenario.name, num_devices, scheduler)
                if num_devices == 1:
                    result = single_results[key]
                    bandwidth_mb_s = round(result.bandwidth_kb_s / 1024.0, 1)
                    iops = round(result.iops, 1)
                    avg_latency_us = round(result.avg_latency_ns / 1_000.0, 1)
                    p99_latency_us = round(result.latency.percentile_ns(0.99) / 1_000.0, 1)
                    utilization = result.chip_utilization
                else:
                    merged = array_results[key]
                    summary = merged.summary_row()
                    bandwidth_mb_s = summary["bandwidth_mb_s"]
                    iops = summary["iops"]
                    avg_latency_us = summary["avg_latency_us"]
                    p99_latency_us = summary["p99_latency_us"]
                    utilization = merged.chip_utilization
                rows.append(
                    {
                        "scenario": scenario.name,
                        "devices": num_devices,
                        "scheduler": scheduler,
                        "bandwidth_mb_s": bandwidth_mb_s,
                        "iops": iops,
                        "avg_latency_us": avg_latency_us,
                        "p99_latency_us": p99_latency_us,
                        "chip_utilization_pct": round(100.0 * utilization, 1),
                    }
                )
    return rows


def scheduler_ranking(rows: Sequence[Dict[str, object]]) -> Dict[Tuple[str, int], Tuple[str, ...]]:
    """Schedulers ordered by bandwidth within each (scenario, devices) cell."""
    cells: Dict[Tuple[str, int], List[Tuple[float, str]]] = {}
    for row in rows:
        cell = (str(row["scenario"]), int(row["devices"]))
        cells.setdefault(cell, []).append(
            (float(row["bandwidth_mb_s"]), str(row["scheduler"]))
        )
    return {
        cell: tuple(name for _, name in sorted(entries, reverse=True))
        for cell, entries in cells.items()
    }


def main(argv: Optional[Sequence[str]] = None) -> None:
    """Print scenario characterizations and the scenario x scheduler matrix."""
    engine = engine_from_cli("Scenario matrix: scenario x scheduler x devices", argv)
    scenarios = default_scenarios()
    print(format_table(characterization_rows(scenarios), title="Scenario characterization"))
    print()
    rows = run_scenario_matrix(scenarios, engine=engine)
    print(format_table(rows, title="Scenario matrix: scenario x scheduler x devices"))
    print()
    print("Bandwidth ranking per cell:")
    for (scenario, devices), ranking in sorted(scheduler_ranking(rows).items()):
        print(f"  {scenario:8s} x{devices}: {' > '.join(ranking)}")


if __name__ == "__main__":
    main()
