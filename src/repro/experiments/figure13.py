"""Figure 13: execution time breakdown.

The paper decomposes total execution time into bus operation, bus contention,
memory (cell) operation and system idle time for PAS (13a) and SPK3 (13b),
showing that SPK3 converts idle time into cell activity - it "eliminates
system level idleness by 40.5% (50.7%) compared to PAS (VAS)".
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.experiments.engine import ExecutionEngine, engine_from_cli
from repro.experiments.runner import (
    ExperimentScale,
    default_workload_specs,
    paper_config,
)
from repro.experiments.spec import ExperimentSpec
from repro.metrics.report import format_table

SCHEDULERS = ("VAS", "PAS", "SPK3")


def build_spec(
    scale: Optional[ExperimentScale] = None,
    schedulers: Sequence[str] = SCHEDULERS,
) -> ExperimentSpec:
    """Declare the Figure 13 grid: every trace under the selected schedulers."""
    scale = scale or ExperimentScale.quick()
    return ExperimentSpec.matrix(
        "figure13",
        default_workload_specs(scale).values(),
        schedulers,
        paper_config(scale),
    )


def run_figure13(
    scale: Optional[ExperimentScale] = None,
    schedulers: Sequence[str] = SCHEDULERS,
    *,
    engine: Optional[ExecutionEngine] = None,
) -> List[Dict[str, object]]:
    """Execution-breakdown rows (percentages) per (trace, scheduler)."""
    scale = scale or ExperimentScale.quick()
    traces = scale.traces
    results = (engine or ExecutionEngine()).run(build_spec(scale, schedulers))
    rows: List[Dict[str, object]] = []
    for trace in traces:
        for scheduler in schedulers:
            result = results[(trace, scheduler)]
            fractions = result.breakdown_fractions()
            rows.append(
                {
                    "trace": trace,
                    "scheduler": scheduler,
                    "bus_operation_pct": round(100.0 * fractions["bus_operation"], 1),
                    "bus_contention_pct": round(100.0 * fractions["bus_contention"], 1),
                    "memory_operation_pct": round(100.0 * fractions["memory_operation"], 1),
                    "system_idle_pct": round(100.0 * fractions["system_idle"], 1),
                }
            )
    return rows


def idleness_elimination(
    rows: Sequence[Dict[str, object]], baseline: str, target: str
) -> float:
    """Average relative reduction of system idle time (target vs baseline)."""
    by_key = {(str(row["trace"]), str(row["scheduler"])): row for row in rows}
    reductions: List[float] = []
    for trace in sorted({str(row["trace"]) for row in rows}):
        base = float(by_key[(trace, baseline)]["system_idle_pct"])
        value = float(by_key[(trace, target)]["system_idle_pct"])
        if base > 0:
            reductions.append(1.0 - value / base)
    return round(sum(reductions) / len(reductions), 3) if reductions else 0.0


def main(argv: Optional[Sequence[str]] = None) -> None:
    """Print the Figure 13 table plus the idleness-elimination summary."""
    engine = engine_from_cli("Figure 13: execution time breakdown", argv)
    rows = run_figure13(engine=engine)
    print(format_table(rows, title="Figure 13: execution time breakdown (percent)"))
    print()
    print("SPK3 idle-time reduction vs PAS:", idleness_elimination(rows, "PAS", "SPK3"))
    print("SPK3 idle-time reduction vs VAS:", idleness_elimination(rows, "VAS", "SPK3"))


if __name__ == "__main__":
    main()
