"""Figure 6: resource utilisation and improvement potential.

The paper runs sixteen traces through the same SSD platform under three
scenarios: the typical case (VAS), an improved case where request collisions
are resolved (PAS), and an idealised case where parallelism dependency is
fully relaxed and transactional locality is guaranteed (which Sprinkler SPK3
approaches).  The reported numbers are average chip utilisations of roughly
17% (VAS), 24% (PAS) and >40% (potential, 55% average).

We reproduce the experiment by measuring chip utilisation under VAS, PAS and
SPK3 for each trace.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.experiments.engine import ExecutionEngine, engine_from_cli
from repro.experiments.runner import (
    ExperimentScale,
    default_workload_specs,
    paper_config,
)
from repro.experiments.spec import ExperimentSpec
from repro.metrics.report import format_table

SCHEDULERS = ("VAS", "PAS", "SPK3")


def build_spec(scale: Optional[ExperimentScale] = None) -> ExperimentSpec:
    """Declare the Figure 6 grid: every trace under VAS, PAS and SPK3."""
    scale = scale or ExperimentScale.quick()
    return ExperimentSpec.matrix(
        "figure06",
        default_workload_specs(scale).values(),
        SCHEDULERS,
        paper_config(scale),
    )


def run_figure06(
    scale: Optional[ExperimentScale] = None,
    *,
    engine: Optional[ExecutionEngine] = None,
) -> List[Dict[str, object]]:
    """Chip utilisation under VAS (typical), PAS (improved), SPK3 (potential)."""
    scale = scale or ExperimentScale.quick()
    traces = scale.traces
    results = (engine or ExecutionEngine()).run(build_spec(scale))
    rows: List[Dict[str, object]] = []
    for trace in traces:
        row: Dict[str, object] = {"trace": trace}
        for scheduler in SCHEDULERS:
            result = results[(trace, scheduler)]
            label = {
                "VAS": "utilization_vas_pct",
                "PAS": "utilization_pas_pct",
                "SPK3": "utilization_potential_pct",
            }[scheduler]
            row[label] = round(100.0 * result.chip_utilization, 1)
        row["improvement_over_vas_x"] = round(
            float(row["utilization_potential_pct"]) / max(0.1, float(row["utilization_vas_pct"])), 2
        )
        row["improvement_over_pas_x"] = round(
            float(row["utilization_potential_pct"]) / max(0.1, float(row["utilization_pas_pct"])), 2
        )
        rows.append(row)
    return rows


def averages(rows: Sequence[Dict[str, object]]) -> Dict[str, float]:
    """Average utilisation per scenario across all traces."""
    keys = ("utilization_vas_pct", "utilization_pas_pct", "utilization_potential_pct")
    return {
        key: round(sum(float(row[key]) for row in rows) / max(1, len(rows)), 1) for key in keys
    }


def main(argv: Optional[Sequence[str]] = None) -> None:
    """Print the Figure 6 table and the cross-trace averages."""
    engine = engine_from_cli("Figure 6: chip utilisation and improvement potential", argv)
    rows = run_figure06(engine=engine)
    print(format_table(rows, title="Figure 6: chip utilisation and improvement potential"))
    print()
    print("Averages:", averages(rows))


if __name__ == "__main__":
    main()
