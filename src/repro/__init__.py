"""repro: a reproduction of "Sprinkler: Maximizing Resource Utilization in
Many-Chip Solid State Disks" (Jung & Kandemir, HPCA 2014).

The package provides:

* a discrete-event many-chip SSD simulator (:mod:`repro.sim`) with a full
  flash substrate (:mod:`repro.flash`), FTL (:mod:`repro.ftl`) and NVMHC
  (:mod:`repro.nvmhc`),
* the paper's schedulers - VAS, PAS and the Sprinkler variants SPK1/2/3 -
  in :mod:`repro.core`,
* workload generators and trace tooling in :mod:`repro.workloads`,
* the scenario engine - arrival processes, trace transforms, multi-tenant
  phases and workload characterization - in :mod:`repro.scenarios`,
* the metrics the paper reports in :mod:`repro.metrics`,
* one experiment module per paper table/figure in :mod:`repro.experiments`.

Quickstart::

    from repro import SimulationConfig, run_workload, generate_random_workload

    workload = generate_random_workload(num_requests=256, size_bytes=16 * 1024)
    result = run_workload(workload, scheduler="SPK3", config=SimulationConfig.paper_scale(64))
    print(result.summary_row())
"""

from repro.core import SCHEDULER_NAMES, Sprinkler, make_scheduler
from repro.flash import FlashTiming, SSDGeometry
from repro.metrics import SimulationResult, format_table
from repro.sim import SimulationConfig, SSDSimulator, run_workload
from repro.workloads import (
    DATACENTER_TRACE_NAMES,
    IOKind,
    IORequest,
    generate_datacenter_trace,
    generate_random_workload,
    generate_sequential_workload,
)

__version__ = "1.0.0"

#: Experiment-layer classes re-exported lazily so that plain ``import repro``
#: (the single-simulation quickstart path) does not pay for importing the
#: whole experiment suite (all figure modules, argparse, concurrent.futures).
_LAZY_EXPORTS = {
    "ExecutionEngine": "repro.experiments.engine",
    "ExperimentSpec": "repro.experiments.spec",
    "SimJob": "repro.experiments.spec",
    "WorkloadSpec": "repro.experiments.spec",
    "Phase": "repro.scenarios",
    "Scenario": "repro.scenarios",
    "Tenant": "repro.scenarios",
}


def __getattr__(name):
    if name in _LAZY_EXPORTS:
        import importlib

        return getattr(importlib.import_module(_LAZY_EXPORTS[name]), name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "SCHEDULER_NAMES",
    "Sprinkler",
    "make_scheduler",
    "ExecutionEngine",
    "ExperimentSpec",
    "Phase",
    "Scenario",
    "SimJob",
    "Tenant",
    "WorkloadSpec",
    "FlashTiming",
    "SSDGeometry",
    "SimulationResult",
    "format_table",
    "SimulationConfig",
    "SSDSimulator",
    "run_workload",
    "DATACENTER_TRACE_NAMES",
    "IOKind",
    "IORequest",
    "generate_datacenter_trace",
    "generate_random_workload",
    "generate_sequential_workload",
    "__version__",
]
