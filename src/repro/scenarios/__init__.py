"""Scenario engine: composable workloads, arrival processes & trace replay.

The paper evaluates Sprinkler against sixteen data-center traces plus
synthetic sweeps; this package opens that axis for the reproduction.  A
:class:`Scenario` is an ordered list of :class:`Phase`\\ s, each binding one
or more :class:`Tenant` workload sources to an :class:`ArrivalProcess`
(fixed, Poisson, MMPP-style bursty, or diurnal).  Trace transforms compose
(multi-tenant interleaving, time dilation, window clipping, per-tenant
address remapping), every built scenario can be stamped with a
:class:`WorkloadCharacterization` report, and - because scenarios are frozen
dataclasses of primitives - they fingerprint and pickle cleanly into the
execution engine via ``WorkloadSpec.scenario``.
"""

from repro.scenarios.arrivals import (
    ArrivalProcess,
    BurstyArrivals,
    DiurnalArrivals,
    FixedArrivals,
    PoissonArrivals,
)
from repro.scenarios.characterize import WorkloadCharacterization, characterize
from repro.scenarios.library import (
    aged_device_state,
    bursty_multitenant_scenario,
    default_scenarios,
    diurnal_scenario,
    steady_scenario,
    sustained_write_scenario,
)
from repro.scenarios.scenario import (
    BuiltScenario,
    Phase,
    Scenario,
    ScenarioReport,
    Tenant,
)
from repro.scenarios.transforms import (
    clip_window,
    copy_request,
    merge_streams,
    remap_offsets,
    time_dilate,
)

__all__ = [
    "ArrivalProcess",
    "BuiltScenario",
    "BurstyArrivals",
    "DiurnalArrivals",
    "FixedArrivals",
    "Phase",
    "PoissonArrivals",
    "Scenario",
    "ScenarioReport",
    "Tenant",
    "WorkloadCharacterization",
    "aged_device_state",
    "bursty_multitenant_scenario",
    "characterize",
    "clip_window",
    "copy_request",
    "default_scenarios",
    "diurnal_scenario",
    "merge_streams",
    "remap_offsets",
    "steady_scenario",
    "sustained_write_scenario",
    "time_dilate",
]
