"""Canned scenarios: the default grid of the scenario-matrix experiment.

Three scheduler-stress archetypes the single-phase generators could not
express, each small enough to simulate in seconds yet shaped like the
pathologies the paper's data-center traces exhibit:

* ``steady``  - one phase of memoryless Poisson traffic from a single
  tenant; the control scenario closest to the legacy fixed-gap workloads.
* ``bursty``  - a Poisson warm-up phase followed by an MMPP burst phase in
  which two tenants (a random reader and a sequential writer), confined to
  disjoint address slices, are interleaved; stresses queue admission and
  FARO's ability to harvest parallelism inside bursts.
* ``diurnal`` - a data-center tenant and a random tenant riding a
  compressed sinusoidal rate curve; alternates overload and near-idle.
"""

from __future__ import annotations

from typing import Tuple

from repro.scenarios.arrivals import BurstyArrivals, DiurnalArrivals, PoissonArrivals
from repro.scenarios.scenario import Phase, Scenario, Tenant

KB = 1024
MB = 1024 * KB


def steady_scenario(*, requests_per_phase: int = 96, seed: int = 11) -> Scenario:
    """Single-tenant Poisson traffic (the control scenario)."""
    return Scenario(
        name="steady",
        seed=seed,
        phases=(
            Phase(
                name="steady",
                tenants=(
                    Tenant.random(
                        "uniform",
                        num_requests=requests_per_phase,
                        size_bytes=32 * KB,
                        address_space_bytes=128 * MB,
                        seed=seed,
                    ),
                ),
                arrivals=PoissonArrivals(mean_interarrival_ns=3_000),
            ),
        ),
    )


def bursty_multitenant_scenario(
    *, requests_per_tenant: int = 48, seed: int = 11
) -> Scenario:
    """Warm-up then an MMPP burst of two interleaved, range-isolated tenants."""
    reader = Tenant.random(
        "reader",
        num_requests=requests_per_tenant,
        size_bytes=16 * KB,
        address_space_bytes=256 * MB,
        seed=seed,
        address_base_bytes=0,
        address_span_bytes=64 * MB,
    )
    writer = Tenant.sequential(
        "writer",
        num_requests=requests_per_tenant,
        size_bytes=128 * KB,
        read_fraction=0.0,
        seed=seed + 1,
        address_base_bytes=64 * MB,
        address_span_bytes=64 * MB,
    )
    return Scenario(
        name="bursty",
        seed=seed,
        phases=(
            Phase(
                name="warmup",
                tenants=(reader,),
                arrivals=PoissonArrivals(mean_interarrival_ns=4_000),
            ),
            Phase(
                name="burst",
                tenants=(reader, writer),
                arrivals=BurstyArrivals(
                    burst_interarrival_ns=400.0,
                    idle_interarrival_ns=30_000.0,
                    mean_burst_length=12.0,
                    mean_idle_length=2.0,
                ),
            ),
        ),
    )


def diurnal_scenario(*, requests_per_tenant: int = 64, seed: int = 11) -> Scenario:
    """Data-center plus random tenants on a compressed day/night rate curve."""
    return Scenario(
        name="diurnal",
        seed=seed,
        phases=(
            Phase(
                name="cycle",
                tenants=(
                    Tenant.datacenter(
                        "cfs0",
                        num_requests=requests_per_tenant,
                        seed=seed,
                        address_base_bytes=0,
                        address_span_bytes=128 * MB,
                    ),
                    Tenant.random(
                        "background",
                        num_requests=requests_per_tenant,
                        size_bytes=8 * KB,
                        address_space_bytes=256 * MB,
                        seed=seed + 2,
                        address_base_bytes=128 * MB,
                        address_span_bytes=64 * MB,
                    ),
                ),
                arrivals=DiurnalArrivals(
                    base_interarrival_ns=2_500.0,
                    amplitude=0.85,
                    period_ns=120_000.0,
                ),
            ),
        ),
    )


def default_scenarios(*, scale: float = 1.0, seed: int = 11) -> Tuple[Scenario, ...]:
    """The standard scenario set, optionally scaled in request count."""
    if scale <= 0:
        raise ValueError("scale must be positive")
    return (
        steady_scenario(requests_per_phase=max(8, int(96 * scale)), seed=seed),
        bursty_multitenant_scenario(requests_per_tenant=max(8, int(48 * scale)), seed=seed),
        diurnal_scenario(requests_per_tenant=max(8, int(64 * scale)), seed=seed),
    )
