"""Canned scenarios: the default grid of the scenario-matrix experiment.

Four scheduler-stress archetypes the single-phase generators could not
express, each small enough to simulate in seconds yet shaped like the
pathologies the paper's data-center traces exhibit:

* ``steady``  - one phase of memoryless Poisson traffic from a single
  tenant; the control scenario closest to the legacy fixed-gap workloads.
* ``bursty``  - a Poisson warm-up phase followed by an MMPP burst phase in
  which two tenants (a random reader and a sequential writer), confined to
  disjoint address slices, are interleaved; stresses queue admission and
  FARO's ability to harvest parallelism inside bursts.
* ``diurnal`` - a data-center tenant and a random tenant riding a
  compressed sinusoidal rate curve; alternates overload and near-idle.
* ``sustained-write`` - relentless random overwrites, the *precondition-
  aware* scenario: pair it with :func:`aged_device_state` (the canned
  :class:`~repro.lifetime.state.DeviceState` it is calibrated for) so the
  writes land on live data of a full, fragmented drive and garbage
  collection runs for the whole measurement window - the steady-state
  regime of :mod:`repro.experiments.steady_state`.
"""

from __future__ import annotations

from typing import Tuple

from repro.lifetime.state import DeviceState
from repro.scenarios.arrivals import BurstyArrivals, DiurnalArrivals, PoissonArrivals
from repro.scenarios.scenario import Phase, Scenario, Tenant

KB = 1024
MB = 1024 * KB


def steady_scenario(*, requests_per_phase: int = 96, seed: int = 11) -> Scenario:
    """Single-tenant Poisson traffic (the control scenario)."""
    return Scenario(
        name="steady",
        seed=seed,
        phases=(
            Phase(
                name="steady",
                tenants=(
                    Tenant.random(
                        "uniform",
                        num_requests=requests_per_phase,
                        size_bytes=32 * KB,
                        address_space_bytes=128 * MB,
                        seed=seed,
                    ),
                ),
                arrivals=PoissonArrivals(mean_interarrival_ns=3_000),
            ),
        ),
    )


def bursty_multitenant_scenario(
    *, requests_per_tenant: int = 48, seed: int = 11
) -> Scenario:
    """Warm-up then an MMPP burst of two interleaved, range-isolated tenants."""
    reader = Tenant.random(
        "reader",
        num_requests=requests_per_tenant,
        size_bytes=16 * KB,
        address_space_bytes=256 * MB,
        seed=seed,
        address_base_bytes=0,
        address_span_bytes=64 * MB,
    )
    writer = Tenant.sequential(
        "writer",
        num_requests=requests_per_tenant,
        size_bytes=128 * KB,
        read_fraction=0.0,
        seed=seed + 1,
        address_base_bytes=64 * MB,
        address_span_bytes=64 * MB,
    )
    return Scenario(
        name="bursty",
        seed=seed,
        phases=(
            Phase(
                name="warmup",
                tenants=(reader,),
                arrivals=PoissonArrivals(mean_interarrival_ns=4_000),
            ),
            Phase(
                name="burst",
                tenants=(reader, writer),
                arrivals=BurstyArrivals(
                    burst_interarrival_ns=400.0,
                    idle_interarrival_ns=30_000.0,
                    mean_burst_length=12.0,
                    mean_idle_length=2.0,
                ),
            ),
        ),
    )


def diurnal_scenario(*, requests_per_tenant: int = 64, seed: int = 11) -> Scenario:
    """Data-center plus random tenants on a compressed day/night rate curve."""
    return Scenario(
        name="diurnal",
        seed=seed,
        phases=(
            Phase(
                name="cycle",
                tenants=(
                    Tenant.datacenter(
                        "cfs0",
                        num_requests=requests_per_tenant,
                        seed=seed,
                        address_base_bytes=0,
                        address_span_bytes=128 * MB,
                    ),
                    Tenant.random(
                        "background",
                        num_requests=requests_per_tenant,
                        size_bytes=8 * KB,
                        address_space_bytes=256 * MB,
                        seed=seed + 2,
                        address_base_bytes=128 * MB,
                        address_span_bytes=64 * MB,
                    ),
                ),
                arrivals=DiurnalArrivals(
                    base_interarrival_ns=2_500.0,
                    amplitude=0.85,
                    period_ns=120_000.0,
                ),
            ),
        ),
    )


def sustained_write_scenario(
    *,
    num_requests: int = 96,
    size_bytes: int = 16 * KB,
    address_space_bytes: int = 32 * MB,
    mean_interarrival_ns: int = 2_500,
    seed: int = 11,
) -> Scenario:
    """Sustained random overwrites - the preconditioning-aware workload.

    Pure writes, uniformly random over a *deliberately small* address
    window: run against a device aged with :func:`aged_device_state`, every
    request overwrites live data, so each write both consumes a fresh page
    and invalidates an old one - the traffic that keeps a full drive's
    garbage collector permanently busy.  Size ``address_space_bytes`` at or
    below the aged device's live capacity (``logical_pages * fill_fraction
    * page_size``); :mod:`repro.experiments.steady_state` computes that
    bound from the swept geometry.
    """
    return Scenario(
        name="sustained-write",
        seed=seed,
        phases=(
            Phase(
                name="sustain",
                tenants=(
                    Tenant.random(
                        "overwriter",
                        num_requests=num_requests,
                        size_bytes=size_bytes,
                        address_space_bytes=address_space_bytes,
                        read_fraction=0.0,
                        seed=seed,
                    ),
                ),
                arrivals=PoissonArrivals(mean_interarrival_ns=mean_interarrival_ns),
            ),
        ),
    )


def zoo_probe_scenario(*, num_requests: int = 48, seed: int = 11) -> Scenario:
    """A device-portable probe for sweeping one workload across the zoo.

    Mixed read/write Poisson traffic confined to a 16 MB address window -
    small enough to fit the *logical* capacity of every shipped device in
    :mod:`repro.devices` (the smallest, ``slc-gen1``, exposes ~119 MB after
    over-provisioning), so the same scenario is byte-for-byte valid on all
    of them and cross-device comparisons measure the device, not workload
    truncation.
    """
    return Scenario(
        name="zoo-probe",
        seed=seed,
        phases=(
            Phase(
                name="probe",
                tenants=(
                    Tenant.random(
                        "prober",
                        num_requests=num_requests,
                        size_bytes=16 * KB,
                        address_space_bytes=16 * MB,
                        read_fraction=0.5,
                        seed=seed,
                    ),
                ),
                arrivals=PoissonArrivals(mean_interarrival_ns=3_000),
            ),
        ),
    )


def fleet_scenario(*, requests_per_tenant: int = 32, seed: int = 11) -> Scenario:
    """Four range-isolated tenants over a day/night cycle - the fleet workload.

    Built for :mod:`repro.fleet`: enough distinct tenants that every
    placement policy produces a different assignment, with each tenant
    confined to its own 16 MB slice of a 64 MB window, so any subset of
    tenants fits the logical capacity of every shipped zoo device
    (heterogeneous fleets stay valid whatever the placement).  A diurnal
    "day" phase carries the interactive web and key-value tenants; a bursty
    "night" phase adds the analytics scanner and log writer while the
    key-value store keeps running - the valleys between night bursts are
    what the background scheduler aims for.
    """
    web = Tenant.mixed(
        "web",
        num_requests=requests_per_tenant,
        size_bytes=16 * KB,
        address_space_bytes=64 * MB,
        read_fraction=0.9,
        randomness=0.8,
        seed=seed,
        address_base_bytes=0,
        address_span_bytes=16 * MB,
    )
    kv = Tenant.random(
        "kv",
        num_requests=requests_per_tenant,
        size_bytes=8 * KB,
        address_space_bytes=64 * MB,
        read_fraction=0.7,
        seed=seed + 1,
        address_base_bytes=16 * MB,
        address_span_bytes=16 * MB,
    )
    analytics = Tenant.sequential(
        "analytics",
        num_requests=requests_per_tenant,
        size_bytes=128 * KB,
        read_fraction=1.0,
        seed=seed + 2,
        address_base_bytes=32 * MB,
        address_span_bytes=16 * MB,
    )
    logger = Tenant.sequential(
        "logger",
        num_requests=requests_per_tenant,
        size_bytes=64 * KB,
        read_fraction=0.0,
        seed=seed + 3,
        address_base_bytes=48 * MB,
        address_span_bytes=16 * MB,
    )
    return Scenario(
        name="fleet",
        seed=seed,
        phases=(
            Phase(
                name="day",
                tenants=(web, kv),
                arrivals=DiurnalArrivals(
                    base_interarrival_ns=2_500.0,
                    amplitude=0.85,
                    period_ns=120_000.0,
                ),
            ),
            Phase(
                name="night",
                tenants=(analytics, logger, kv),
                arrivals=BurstyArrivals(
                    burst_interarrival_ns=500.0,
                    idle_interarrival_ns=40_000.0,
                    mean_burst_length=10.0,
                    mean_idle_length=2.0,
                ),
            ),
        ),
    )


def aged_device_state(*, steady_state: bool = False, seed: int = 11) -> DeviceState:
    """The canned aged starting point :func:`sustained_write_scenario` targets.

    85% full with 30% of programmed pages invalidated under an 80/20
    hot/cold overwrite skew - fragmented enough that greedy collection is
    productive, full enough that every sustained write keeps it running.
    ``steady_state=True`` additionally drives write amplification to its
    converged plateau before measurement starts.
    """
    return DeviceState(
        fill_fraction=0.85,
        invalid_fraction=0.30,
        hot_fraction=0.2,
        hot_write_share=0.8,
        seed=seed,
        steady_state=steady_state,
    )


def default_scenarios(*, scale: float = 1.0, seed: int = 11) -> Tuple[Scenario, ...]:
    """The standard scenario set, optionally scaled in request count."""
    if scale <= 0:
        raise ValueError("scale must be positive")
    return (
        steady_scenario(requests_per_phase=max(8, int(96 * scale)), seed=seed),
        bursty_multitenant_scenario(requests_per_tenant=max(8, int(48 * scale)), seed=seed),
        diurnal_scenario(requests_per_tenant=max(8, int(64 * scale)), seed=seed),
    )
