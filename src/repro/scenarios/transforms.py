"""Composable trace transforms.

Pure functions over ``List[IORequest]``: every transform returns *new*
request objects (fresh ``io_id``s, inputs untouched), so transforms chain
freely and never alias the stream they were fed.  They are the building
blocks :class:`~repro.scenarios.scenario.Scenario` composes - multi-tenant
interleaving, time dilation, window clipping and per-tenant address
remapping - and are equally usable standalone on any request list (e.g. a
replayed MSR trace from :mod:`repro.workloads.traces`).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.workloads.request import IORequest
from repro.workloads.traces import wrap_clamp


def copy_request(io: IORequest, **overrides) -> IORequest:
    """Value-copy one request (fresh ``io_id``), optionally overriding fields."""
    fields = {
        "kind": io.kind,
        "offset_bytes": io.offset_bytes,
        "size_bytes": io.size_bytes,
        "arrival_ns": io.arrival_ns,
        "force_unit_access": io.force_unit_access,
        "tenant": io.tenant,
        "phase_index": io.phase_index,
    }
    fields.update(overrides)
    return IORequest(**fields)


def merge_streams(streams: Sequence[Sequence[IORequest]]) -> List[IORequest]:
    """Interleave N tenant streams into one multi-tenant trace.

    Requests are ordered by ``(arrival_ns, stream index, position within the
    stream)`` - the explicit tie-break keeps simultaneous arrivals from
    different tenants in a deterministic order in every process, which is
    what lets merged scenarios flow through the result cache bit-identically.
    """
    tagged = [
        (io.arrival_ns, stream_index, position, io)
        for stream_index, stream in enumerate(streams)
        for position, io in enumerate(stream)
    ]
    tagged.sort(key=lambda entry: entry[:3])
    return [copy_request(io) for _, _, _, io in tagged]


def time_dilate(requests: Sequence[IORequest], factor: float) -> List[IORequest]:
    """Stretch (``factor > 1``) or compress (``factor < 1``) arrival times.

    The map is monotone, so request order is preserved; offsets, sizes and
    kinds are untouched.  Compressing a long trace raises its offered load
    without changing *what* is accessed - the standard replay-acceleration
    knob of trace-driven SSD studies.
    """
    if factor <= 0:
        raise ValueError("dilation factor must be positive")
    return [
        copy_request(io, arrival_ns=int(io.arrival_ns * factor)) for io in requests
    ]


def clip_window(
    requests: Sequence[IORequest],
    *,
    end_ns: int,
    start_ns: int = 0,
    rebase: bool = True,
) -> List[IORequest]:
    """Keep only requests arriving in ``[start_ns, end_ns)``.

    With ``rebase`` (the default) the window is shifted so its first
    admissible instant is t=0, making clipped windows composable as phases.
    """
    if end_ns <= start_ns:
        raise ValueError("clip window must satisfy end_ns > start_ns")
    if start_ns < 0:
        raise ValueError("start_ns must be non-negative")
    shift = start_ns if rebase else 0
    return [
        copy_request(io, arrival_ns=io.arrival_ns - shift)
        for io in requests
        if start_ns <= io.arrival_ns < end_ns
    ]


def remap_offsets(
    requests: Sequence[IORequest],
    *,
    base_bytes: int,
    span_bytes: int,
    align_bytes: Optional[int] = None,
) -> List[IORequest]:
    """Relocate a stream into the address slice ``[base, base + span)``.

    Each offset is wrapped modulo ``span_bytes`` and rebased to
    ``base_bytes``; a request poking past the end of the slice is clamped to
    the remaining aligned bytes (never below one ``align_bytes`` unit).
    Giving every tenant a disjoint slice turns independently generated
    streams into a multi-tenant workload without cross-tenant overwrites.
    """
    align = align_bytes if align_bytes is not None else 1
    if base_bytes < 0:
        raise ValueError("base_bytes must be non-negative")
    remapped: List[IORequest] = []
    for io in requests:
        local, size = wrap_clamp(io.offset_bytes, io.size_bytes, span_bytes, align)
        remapped.append(
            copy_request(io, offset_bytes=base_bytes + local, size_bytes=size)
        )
    return remapped
