"""Workload characterization: the stats report stamped on built scenarios.

Table 1 of the paper summarises each evaluation trace by transfer volume,
instruction counts, randomness and locality.  This module computes the
analogous summary for *any* request list - including scenarios assembled
from multiple tenants and arrival processes - so every generated workload
carries a quantitative identity: how much is read vs written, how big the
working set is, how sequential the access pattern is, and how hard the
arrival process presses on the device queue.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.workloads.request import IORequest

KB = 1024
MB = 1024 * KB


@dataclass(frozen=True)
class WorkloadCharacterization:
    """Summary statistics of one request stream."""

    num_requests: int
    total_bytes: int
    read_fraction: float
    avg_request_bytes: float
    #: Unique logical pages touched, in bytes (footprint, not traffic).
    working_set_bytes: int
    #: Fraction of requests starting exactly where the previous one ended.
    sequentiality: float
    #: Last arrival minus first arrival.
    duration_ns: int
    arrival_rate_per_s: float
    #: Coefficient of variation of inter-arrival gaps (1.0 for Poisson,
    #: > 1 bursty, 0 for a fixed gap) - the burstiness signature.
    interarrival_cv: float
    #: Offered queue depth against a nominal per-request service time.
    mean_queue_depth: float
    max_queue_depth: int

    def summary_row(self) -> Dict[str, object]:
        """One row of the characterization tables."""
        return {
            "requests": self.num_requests,
            "total_mb": round(self.total_bytes / MB, 2),
            "read_pct": round(100.0 * self.read_fraction, 1),
            "avg_kb": round(self.avg_request_bytes / KB, 1),
            "working_set_mb": round(self.working_set_bytes / MB, 2),
            "seq_pct": round(100.0 * self.sequentiality, 1),
            "duration_ms": round(self.duration_ns / 1e6, 3),
            "rate_kiops": round(self.arrival_rate_per_s / 1e3, 1),
            "gap_cv": round(self.interarrival_cv, 2),
            "mean_qd": round(self.mean_queue_depth, 1),
            "max_qd": self.max_queue_depth,
        }


_EMPTY = WorkloadCharacterization(
    num_requests=0,
    total_bytes=0,
    read_fraction=0.0,
    avg_request_bytes=0.0,
    working_set_bytes=0,
    sequentiality=0.0,
    duration_ns=0,
    arrival_rate_per_s=0.0,
    interarrival_cv=0.0,
    mean_queue_depth=0.0,
    max_queue_depth=0,
)


def characterize(
    requests: Sequence[IORequest],
    *,
    page_size_bytes: int = 4 * KB,
    nominal_service_ns: int = 100_000,
) -> WorkloadCharacterization:
    """Compute the characterization of a request stream.

    ``page_size_bytes`` sets the footprint granularity of the working-set
    measurement.  The queue-depth profile is *offered* load: each request is
    assumed outstanding for ``nominal_service_ns`` after arrival, and depth
    is sampled at every arrival instant - a device-independent measure of
    how much concurrency the arrival process exposes to the scheduler.
    """
    if page_size_bytes <= 0:
        raise ValueError("page_size_bytes must be positive")
    if nominal_service_ns <= 0:
        raise ValueError("nominal_service_ns must be positive")
    if not requests:
        return _EMPTY

    ordered = sorted(requests, key=lambda io: io.arrival_ns)
    num = len(ordered)
    total_bytes = sum(io.size_bytes for io in ordered)
    reads = sum(1 for io in ordered if not io.is_write)

    pages = set()
    for io in ordered:
        pages.update(io.logical_pages(page_size_bytes))

    sequential = sum(
        1
        for earlier, later in zip(ordered, ordered[1:])
        if later.offset_bytes == earlier.end_offset_bytes
    )

    first, last = ordered[0].arrival_ns, ordered[-1].arrival_ns
    duration = last - first
    gaps = [later.arrival_ns - earlier.arrival_ns for earlier, later in zip(ordered, ordered[1:])]
    if gaps:
        mean_gap = sum(gaps) / len(gaps)
        if mean_gap > 0:
            variance = sum((gap - mean_gap) ** 2 for gap in gaps) / len(gaps)
            gap_cv = math.sqrt(variance) / mean_gap
        else:
            gap_cv = 0.0
    else:
        gap_cv = 0.0

    # Offered queue depth: sweep arrivals against a min-heap of nominal
    # completion times; depth at each arrival includes the arriving request.
    outstanding: List[int] = []
    depth_sum = 0
    depth_max = 0
    for io in ordered:
        while outstanding and outstanding[0] <= io.arrival_ns:
            heapq.heappop(outstanding)
        heapq.heappush(outstanding, io.arrival_ns + nominal_service_ns)
        depth = len(outstanding)
        depth_sum += depth
        depth_max = max(depth_max, depth)

    return WorkloadCharacterization(
        num_requests=num,
        total_bytes=total_bytes,
        read_fraction=reads / num,
        avg_request_bytes=total_bytes / num,
        working_set_bytes=len(pages) * page_size_bytes,
        sequentiality=sequential / (num - 1) if num > 1 else 0.0,
        duration_ns=duration,
        arrival_rate_per_s=(num - 1) / duration * 1e9 if duration > 0 else 0.0,
        interarrival_cv=gap_cv,
        mean_queue_depth=depth_sum / num,
        max_queue_depth=depth_max,
    )
