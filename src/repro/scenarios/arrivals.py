"""Arrival-process models for the scenario engine.

The synthetic generators in :mod:`repro.workloads.synthetic` issue requests
with one fixed inter-arrival gap.  Real data-center traces are nothing like
that: the MSR Cambridge family (the paper's evaluation workloads) shows
heavy-tailed gaps, on/off bursts and day-scale rate swings.  An
:class:`ArrivalProcess` reproduces those temporal shapes as a *declarative*,
seed-deterministic recipe: every model is a frozen dataclass (so it can be
fingerprinted and pickled into an experiment spec) and :meth:`sample` draws
the same timestamp sequence in any process for a given RNG seed.

Models:

* :class:`FixedArrivals` - the legacy constant gap (first arrival at t=0),
* :class:`PoissonArrivals` - memoryless exponential gaps,
* :class:`BurstyArrivals` - MMPP-style two-state on/off modulation: dense
  exponential gaps inside a burst, sparse gaps between bursts, with
  geometric burst/idle lengths,
* :class:`DiurnalArrivals` - a non-homogeneous Poisson process whose rate
  follows a sinusoidal "time of day" curve.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import List


class ArrivalProcess:
    """Base class of all arrival-time models.

    Subclasses are frozen dataclasses holding only primitive parameters, so
    a process embeds cleanly into fingerprintable, picklable scenario specs.
    """

    def sample(self, num_requests: int, rng: random.Random) -> List[int]:
        """Draw ``num_requests`` non-decreasing arrival timestamps (ns).

        All randomness comes from ``rng``; two calls with equally-seeded RNGs
        return identical timestamps in any process.
        """
        raise NotImplementedError

    def mean_gap_ns(self) -> float:
        """Long-run average inter-arrival gap, for reporting and scaling."""
        raise NotImplementedError

    def describe(self) -> str:
        """Short human-readable label for tables."""
        return f"{type(self).__name__}(~{self.mean_gap_ns():.0f}ns)"


def _cumulative(gaps: List[float]) -> List[int]:
    """Turn non-negative gaps into integer, non-decreasing timestamps."""
    times: List[int] = []
    now = 0.0
    for gap in gaps:
        now += max(0.0, gap)
        times.append(int(now))
    return times


@dataclass(frozen=True)
class FixedArrivals(ArrivalProcess):
    """Constant inter-arrival gap; request ``i`` arrives at ``i * gap``.

    Matches the legacy ``interarrival_ns`` behaviour of the synthetic
    generators (first arrival at t=0), so existing workloads can be expressed
    as one-phase scenarios without changing a single timestamp.
    """

    interarrival_ns: int = 2_000

    def __post_init__(self) -> None:
        if self.interarrival_ns < 0:
            raise ValueError("interarrival_ns must be non-negative")

    def sample(self, num_requests: int, rng: random.Random) -> List[int]:
        return [i * self.interarrival_ns for i in range(num_requests)]

    def mean_gap_ns(self) -> float:
        return float(self.interarrival_ns)


@dataclass(frozen=True)
class PoissonArrivals(ArrivalProcess):
    """Memoryless Poisson arrivals with exponential gaps."""

    mean_interarrival_ns: float = 2_000.0

    def __post_init__(self) -> None:
        if self.mean_interarrival_ns <= 0:
            raise ValueError("mean_interarrival_ns must be positive")

    def sample(self, num_requests: int, rng: random.Random) -> List[int]:
        rate = 1.0 / self.mean_interarrival_ns
        return _cumulative([rng.expovariate(rate) for _ in range(num_requests)])

    def mean_gap_ns(self) -> float:
        return float(self.mean_interarrival_ns)


@dataclass(frozen=True)
class BurstyArrivals(ArrivalProcess):
    """MMPP-style on/off bursty arrivals.

    The process alternates between a *burst* state (dense exponential gaps
    with mean ``burst_interarrival_ns``) and an *idle* state (sparse gaps
    with mean ``idle_interarrival_ns``).  State residency is geometric in
    requests: after each request the state flips with probability
    ``1/mean_burst_length`` (or ``1/mean_idle_length``), giving bursts of
    ``mean_burst_length`` requests on average - the discrete analogue of a
    two-state Markov-modulated Poisson process.
    """

    burst_interarrival_ns: float = 500.0
    idle_interarrival_ns: float = 20_000.0
    mean_burst_length: float = 16.0
    mean_idle_length: float = 2.0

    def __post_init__(self) -> None:
        if self.burst_interarrival_ns <= 0 or self.idle_interarrival_ns <= 0:
            raise ValueError("inter-arrival means must be positive")
        if self.burst_interarrival_ns > self.idle_interarrival_ns:
            raise ValueError("burst gaps must not exceed idle gaps")
        if self.mean_burst_length < 1 or self.mean_idle_length < 1:
            raise ValueError("mean state lengths must be >= 1 request")

    def sample(self, num_requests: int, rng: random.Random) -> List[int]:
        gaps: List[float] = []
        in_burst = True
        for _ in range(num_requests):
            mean = self.burst_interarrival_ns if in_burst else self.idle_interarrival_ns
            gaps.append(rng.expovariate(1.0 / mean))
            flip = 1.0 / (self.mean_burst_length if in_burst else self.mean_idle_length)
            if rng.random() < flip:
                in_burst = not in_burst
        return _cumulative(gaps)

    def mean_gap_ns(self) -> float:
        # Stationary request-weighted mix of the two states.
        weight_burst = self.mean_burst_length / (self.mean_burst_length + self.mean_idle_length)
        return (
            weight_burst * self.burst_interarrival_ns
            + (1.0 - weight_burst) * self.idle_interarrival_ns
        )


@dataclass(frozen=True)
class DiurnalArrivals(ArrivalProcess):
    """Non-homogeneous Poisson arrivals following a sinusoidal rate curve.

    The instantaneous rate is ``(1/base) * (1 + amplitude * sin(2*pi*(t/period
    + phase)))``; each gap is drawn from the exponential at the current
    instantaneous rate, a standard (and for our purposes sufficient)
    approximation of rate-curve thinning.  ``period_ns`` is a compressed
    "day": sweeps shrink it to microseconds so a trace of a few hundred
    requests still sees full peak-trough cycles.
    """

    base_interarrival_ns: float = 2_000.0
    amplitude: float = 0.8
    period_ns: float = 1_000_000.0
    phase: float = 0.0

    def __post_init__(self) -> None:
        if self.base_interarrival_ns <= 0:
            raise ValueError("base_interarrival_ns must be positive")
        if not 0.0 <= self.amplitude < 1.0:
            raise ValueError("amplitude must be in [0, 1)")
        if self.period_ns <= 0:
            raise ValueError("period_ns must be positive")

    def rate_at(self, t_ns: float) -> float:
        """Instantaneous arrival rate (requests per ns) at time ``t_ns``."""
        base_rate = 1.0 / self.base_interarrival_ns
        modulation = 1.0 + self.amplitude * math.sin(
            2.0 * math.pi * (t_ns / self.period_ns + self.phase)
        )
        return base_rate * max(modulation, 1e-9)

    def sample(self, num_requests: int, rng: random.Random) -> List[int]:
        times: List[int] = []
        now = 0.0
        for _ in range(num_requests):
            now += rng.expovariate(self.rate_at(now))
            times.append(int(now))
        return times

    def mean_gap_ns(self) -> float:
        return float(self.base_interarrival_ns)
