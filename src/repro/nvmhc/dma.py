"""DMA engine / memory-request composition pipeline.

Memory request *composition* (paper Figure 3) covers parsing the tag,
building the page-sized memory request and initiating the host<->SSD data
movement over the PCIe fabric.  The NVMHC performs these steps one memory
request at a time, pipelined with the flash work that is already executing;
the order in which requests enter this pipeline is exactly what the
schedulers control (per-I/O order for VAS/PAS/FARO-only, per-chip order for
RIOS).

:class:`DmaEngine` models that pipeline as a single server with a fixed
per-request composition cost.  The default cost (500 ns per 2 KB page,
roughly 4 GB/s) represents a PCIe 3.0 x4 interface plus NVMHC processing,
fast relative to flash cell times but slow enough that *what* gets composed
first matters when hundreds of chips could be activated.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class DmaStats:
    """Throughput counters of the composition pipeline."""

    requests_composed: int = 0
    bytes_moved: int = 0
    busy_time_ns: int = 0


class DmaEngine:
    """Single-server composition/data-movement pipeline."""

    def __init__(self, per_request_ns: int = 500, per_byte_ns_x1000: int = 0) -> None:
        """``per_request_ns`` is the fixed cost per memory request.

        ``per_byte_ns_x1000`` optionally adds a size-proportional term in
        units of nanoseconds per 1000 bytes, for experiments that want the
        host link bandwidth to be the limiter.
        """
        if per_request_ns < 0 or per_byte_ns_x1000 < 0:
            raise ValueError("composition costs must be non-negative")
        self.per_request_ns = per_request_ns
        self.per_byte_ns_x1000 = per_byte_ns_x1000
        self.busy_until_ns = 0
        self.stats = DmaStats()

    def composition_cost_ns(self, size_bytes: int) -> int:
        """Time to compose one memory request of ``size_bytes``."""
        return self.per_request_ns + (size_bytes * self.per_byte_ns_x1000) // 1000

    def is_busy(self, now_ns: int) -> bool:
        """True while a composition is still in flight."""
        return now_ns < self.busy_until_ns

    def begin(self, now_ns: int, size_bytes: int) -> int:
        """Start composing one memory request; returns its completion time."""
        if self.is_busy(now_ns):
            raise RuntimeError("DMA engine is already composing a request")
        cost = self.composition_cost_ns(size_bytes)
        self.busy_until_ns = now_ns + cost
        self.stats.requests_composed += 1
        self.stats.bytes_moved += size_bytes
        self.stats.busy_time_ns += cost
        return self.busy_until_ns

    def reset(self) -> None:
        """Forget in-flight state (between simulation runs)."""
        self.busy_until_ns = 0
