"""Queue tags.

When a host I/O request arrives, the NVMHC enqueues the *tag* - the request
information needed for scheduling - into its device-level queue (paper
Figure 3, "Queuing" phase).  Sprinkler's RIOS deliberately *secures tags
without actual data movement* so it can classify requests per physical chip
before deciding the composition order; the tag therefore also carries the
per-chip breakdown of the request's memory requests once the preprocessor
has identified the physical layout.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.flash.request import MemoryRequest
from repro.workloads.request import IORequest


@dataclass(slots=True)
class Tag:
    """Device-queue entry wrapping one host I/O request."""

    io: IORequest
    enqueued_at_ns: int
    memory_requests: List[MemoryRequest] = field(default_factory=list)
    #: Memory requests grouped by target chip, filled by the physical-layout
    #: preprocessor for schedulers that are layout aware (PAS and Sprinkler).
    by_chip: Dict[tuple, List[MemoryRequest]] = field(default_factory=dict)
    #: Number of memory requests handed to the composer so far.
    composed_count: int = 0
    #: Number of memory requests completed by the flash controllers so far.
    completed_count: int = 0
    #: Internal scan cursor used by :meth:`next_uncomposed` (in-order policies).
    _compose_cursor: int = 0

    @property
    def io_id(self) -> int:
        """Identifier of the wrapped host I/O request."""
        return self.io.io_id

    @property
    def total_requests(self) -> int:
        """Number of memory requests the I/O was split into."""
        return len(self.memory_requests)

    @property
    def fully_composed(self) -> bool:
        """True when every memory request has been handed to the composer."""
        return self.composed_count >= self.total_requests

    @property
    def fully_completed(self) -> bool:
        """True when every memory request has been served by the flash."""
        return self.total_requests > 0 and self.completed_count >= self.total_requests

    @property
    def chip_footprint(self) -> List[tuple]:
        """Chips the I/O touches (available once the layout is identified)."""
        return sorted(self.by_chip.keys())

    def uncomposed_requests(self) -> List[MemoryRequest]:
        """Memory requests not yet handed to the composer, in logical order."""
        return [req for req in self.memory_requests if req.composed_at_ns is None]

    def next_uncomposed(self) -> Optional[MemoryRequest]:
        """First memory request not yet handed to the composer, or ``None``.

        Uses an internal cursor so that in-order policies (VAS, PAS) do not
        rescan the whole request list of large I/Os on every composition.
        """
        while self._compose_cursor < len(self.memory_requests):
            candidate = self.memory_requests[self._compose_cursor]
            if candidate.composed_at_ns is None:
                return candidate
            self._compose_cursor += 1
        return None

    def uncomposed_for_chip(self, chip_key: tuple) -> List[MemoryRequest]:
        """Uncomposed memory requests of this I/O that target ``chip_key``."""
        return [req for req in self.by_chip.get(chip_key, []) if req.composed_at_ns is None]

    def connectivity(self, chip_key: tuple) -> int:
        """FARO's connectivity metric: requests of this I/O targeting the chip."""
        return len(self.by_chip.get(chip_key, ()))

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"Tag(io={self.io_id}, requests={self.total_requests}, "
            f"composed={self.composed_count}, completed={self.completed_count})"
        )
