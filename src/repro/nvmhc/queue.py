"""Device-level queue (NCQ-style).

The NVMHC owns a bounded queue of tags.  All schedulers in the paper operate
on "the same type of out-of-order executable device level queue (NCQ)"
(Figure 4 footnote); they differ only in how they pick work out of it.  When
the queue is full, newly arriving host requests wait in a host-side backlog;
the time requests spend there is the *queue stall time* reported in
Figure 10d.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, Iterable, List, Optional

from repro.nvmhc.tag import Tag
from repro.workloads.request import IORequest


@dataclass
class QueueStats:
    """Occupancy and stall statistics of the device queue."""

    enqueued: int = 0
    completed: int = 0
    backlog_peak: int = 0
    total_backlog_wait_ns: int = 0
    stalled_requests: int = 0


class DeviceQueue:
    """Bounded out-of-order device queue with a host-side backlog."""

    def __init__(self, depth: int = 64) -> None:
        if depth <= 0:
            raise ValueError("queue depth must be positive")
        self.depth = depth
        # Insertion-ordered: dict order is arrival order, so no separate
        # order list (whose O(n) removal showed up on retire) is needed.
        self._tags: Dict[int, Tag] = {}
        self._backlog: Deque[IORequest] = deque()
        self.stats = QueueStats()

    # ------------------------------------------------------------------
    # Capacity
    # ------------------------------------------------------------------
    @property
    def occupancy(self) -> int:
        """Number of tags currently held in the device queue."""
        return len(self._tags)

    @property
    def is_full(self) -> bool:
        """True when no further tag can be admitted."""
        return self.occupancy >= self.depth

    @property
    def is_empty(self) -> bool:
        """True when the device queue holds no tags."""
        return not self._tags

    @property
    def backlog_size(self) -> int:
        """Number of host requests waiting for a queue slot."""
        return len(self._backlog)

    @property
    def has_work(self) -> bool:
        """True while any request is queued or waiting in the backlog."""
        return bool(self._tags) or bool(self._backlog)

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------
    def submit(self, io: IORequest, now_ns: int) -> Optional[Tag]:
        """Offer a host request to the queue.

        Returns the admitted tag, or ``None`` when the queue is full and the
        request went to the host-side backlog instead.
        """
        if self.is_full:
            self._backlog.append(io)
            self.stats.stalled_requests += 1
            self.stats.backlog_peak = max(self.stats.backlog_peak, len(self._backlog))
            return None
        return self._admit(io, now_ns)

    def admit_from_backlog(self, now_ns: int) -> List[Tag]:
        """Admit as many backlogged requests as free slots allow."""
        admitted: List[Tag] = []
        while self._backlog and not self.is_full:
            io = self._backlog.popleft()
            self.stats.total_backlog_wait_ns += max(0, now_ns - io.arrival_ns)
            admitted.append(self._admit(io, now_ns))
        return admitted

    def _admit(self, io: IORequest, now_ns: int) -> Tag:
        io.enqueued_at_ns = now_ns
        tag = Tag(io=io, enqueued_at_ns=now_ns)
        self._tags[io.io_id] = tag
        self.stats.enqueued += 1
        return tag

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    def get(self, io_id: int) -> Tag:
        """Tag for a given I/O id (KeyError if not queued)."""
        return self._tags[io_id]

    def tags_in_order(self) -> List[Tag]:
        """Tags in arrival order (the order VAS/PAS scan them)."""
        return list(self._tags.values())

    def __iter__(self) -> Iterable[Tag]:
        return iter(self.tags_in_order())

    def __len__(self) -> int:
        return self.occupancy

    # ------------------------------------------------------------------
    # Completion
    # ------------------------------------------------------------------
    def retire(self, io_id: int) -> Tag:
        """Remove a fully-served tag from the queue, freeing its slot."""
        tag = self._tags.pop(io_id)
        self.stats.completed += 1
        return tag
