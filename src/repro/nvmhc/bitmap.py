"""Per-tag memory-request completion bitmap.

Section 4.4 of the paper ("The Order of Output Data"): the NVMHC keeps an
eight-byte bitmap per queue entry, one bit per issued memory request.  When a
flash controller reports a transaction completion, the corresponding bits are
cleared; the DMA engine then returns data to the host *in order* from the
beginning of the I/O request, using multiple payloads.  The bitmap (and the
in-order delivery it enables) is required regardless of the scheduling
strategy - it is what makes out-of-order memory-request service invisible to
the host.
"""

from __future__ import annotations

from typing import List


class CompletionBitmap:
    """Tracks which memory requests of one I/O have completed."""

    def __init__(self, num_requests: int) -> None:
        if num_requests <= 0:
            raise ValueError("an I/O must contain at least one memory request")
        self.num_requests = num_requests
        self._pending_bits = (1 << num_requests) - 1
        self._delivered_upto = 0

    # ------------------------------------------------------------------
    # Bit manipulation
    # ------------------------------------------------------------------
    @property
    def raw(self) -> int:
        """Raw bitmap value; bit i set means request i is still outstanding."""
        return self._pending_bits

    def is_outstanding(self, index: int) -> bool:
        """True when memory request ``index`` has not completed yet."""
        self._check(index)
        return bool(self._pending_bits & (1 << index))

    def clear(self, index: int) -> None:
        """Mark memory request ``index`` as completed."""
        self._check(index)
        self._pending_bits &= ~(1 << index)

    @property
    def all_completed(self) -> bool:
        """True once every memory request of the I/O has completed."""
        return self._pending_bits == 0

    @property
    def completed_count(self) -> int:
        """Number of memory requests completed so far."""
        return self.num_requests - bin(self._pending_bits).count("1")

    # ------------------------------------------------------------------
    # In-order delivery
    # ------------------------------------------------------------------
    def deliverable_payloads(self) -> List[int]:
        """Indices that can be delivered to the host right now, in order.

        Data is returned from the beginning of the I/O offset: a request's
        payload can only ship once every earlier request has completed.  The
        method is stateful - each index is reported exactly once.
        """
        deliverable: List[int] = []
        while self._delivered_upto < self.num_requests and not self.is_outstanding(
            self._delivered_upto
        ):
            deliverable.append(self._delivered_upto)
            self._delivered_upto += 1
        return deliverable

    @property
    def delivered_count(self) -> int:
        """Number of payloads already handed back to the host."""
        return self._delivered_upto

    def _check(self, index: int) -> None:
        if not 0 <= index < self.num_requests:
            raise IndexError(f"request index {index} out of range [0, {self.num_requests})")
