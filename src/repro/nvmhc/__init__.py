"""Non-Volatile Memory Host Controller (NVMHC) substrate.

The NVMHC is the control logic between the host interface and the SSD's
internals (paper Section 2.1): it owns the device-level queue of host tags,
parses them, composes page-sized memory requests, initiates the associated
host<->SSD data movements (DMA), and returns completions in order using a
per-tag memory-request bitmap.  The device-level I/O schedulers the paper
studies (VAS, PAS and Sprinkler) are implemented inside the NVMHC.
"""

from repro.nvmhc.tag import Tag
from repro.nvmhc.queue import DeviceQueue
from repro.nvmhc.dma import DmaEngine
from repro.nvmhc.bitmap import CompletionBitmap

__all__ = ["Tag", "DeviceQueue", "DmaEngine", "CompletionBitmap"]
