"""On-disk checkpoint store keyed by ``(fingerprint, events_processed)``.

The store is the persistence side of long-horizon runs: the engine (or any
caller) periodically snapshots a job's simulator and files the checkpoint
under the job's content fingerprint and the event count it was taken at.
A re-run of the same job (same fingerprint - so the same workload, device
and policies, byte for byte) picks up from the latest checkpoint instead of
restarting; any change to the job yields a different fingerprint and
naturally ignores stale checkpoints.

Writes are atomic (temp file + rename), mirroring
:class:`~repro.experiments.engine.ResultCache`.
"""

from __future__ import annotations

import os
import re
import tempfile
from pathlib import Path
from typing import List, Optional, Tuple, Union

from repro.checkpoint.snapshot import CheckpointError, SimulatorCheckpoint
from repro.metrics.report import SimulationResult
from repro.sim.ssd import SSDSimulator

_NAME_RE = re.compile(r"^(?P<fingerprint>[0-9a-f]{64})\.(?P<events>\d{12})\.ckpt$")


class CheckpointStore:
    """A directory of simulator checkpoints, keyed ``(fingerprint, T)``."""

    def __init__(self, directory: Union[str, Path]) -> None:
        self.directory = Path(directory)
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
        except (FileExistsError, NotADirectoryError) as exc:
            raise ValueError(
                f"checkpoint dir {self.directory} is not usable as a directory"
            ) from exc

    # ------------------------------------------------------------------
    # Keys
    # ------------------------------------------------------------------
    def path(self, fingerprint: str, events_processed: int) -> Path:
        """The file one ``(fingerprint, T)`` checkpoint lives at."""
        return self.directory / f"{fingerprint}.{events_processed:012d}.ckpt"

    def events_available(self, fingerprint: str) -> List[int]:
        """Every ``T`` a checkpoint exists for under ``fingerprint``, ascending."""
        events: List[int] = []
        for entry in self.directory.glob(f"{fingerprint}.*.ckpt"):
            match = _NAME_RE.match(entry.name)
            if match and match.group("fingerprint") == fingerprint:
                events.append(int(match.group("events")))
        return sorted(events)

    def fingerprints(self) -> List[str]:
        """Every fingerprint with at least one stored checkpoint, sorted."""
        seen = set()
        for entry in self.directory.glob("*.ckpt"):
            match = _NAME_RE.match(entry.name)
            if match:
                seen.add(match.group("fingerprint"))
        return sorted(seen)

    # ------------------------------------------------------------------
    # Save / load
    # ------------------------------------------------------------------
    def save(self, fingerprint: str, checkpoint: SimulatorCheckpoint) -> Path:
        """File one checkpoint atomically under ``(fingerprint, T)``."""
        path = self.path(fingerprint, checkpoint.events_processed)
        fd, tmp_name = tempfile.mkstemp(dir=str(self.directory), suffix=".tmp")
        os.close(fd)
        try:
            checkpoint.save(tmp_name)
            os.replace(tmp_name, path)
        except Exception:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        return path

    def load(self, fingerprint: str, events_processed: int) -> SimulatorCheckpoint:
        """Load one exact ``(fingerprint, T)`` checkpoint."""
        path = self.path(fingerprint, events_processed)
        if not path.exists():
            raise CheckpointError(f"no checkpoint at {path}")
        return SimulatorCheckpoint.load(path)

    def latest(self, fingerprint: str) -> Optional[Tuple[int, SimulatorCheckpoint]]:
        """The highest-``T`` checkpoint for a fingerprint, or ``None``.

        An unreadable/corrupt latest checkpoint falls back to the next
        older one (and so on), so a torn write never wedges a resume.
        """
        for events in reversed(self.events_available(fingerprint)):
            try:
                return events, SimulatorCheckpoint.load(self.path(fingerprint, events))
            except CheckpointError:
                continue
        return None

    def discard(self, fingerprint: str) -> int:
        """Delete every checkpoint of one fingerprint; returns the count."""
        removed = 0
        for events in self.events_available(fingerprint):
            try:
                self.path(fingerprint, events).unlink()
                removed += 1
            except OSError:
                pass
        return removed

    def __len__(self) -> int:
        return sum(1 for entry in self.directory.glob("*.ckpt") if _NAME_RE.match(entry.name))


def run_job_checkpointed(
    job,
    store: CheckpointStore,
    *,
    every_events: int,
    keep_checkpoints: bool = False,
    trace_dir: Optional[Union[str, Path]] = None,
) -> SimulationResult:
    """Run one engine job with periodic persistent checkpoints.

    Resumes from the store's latest checkpoint for ``job.fingerprint()`` if
    one exists, then alternates "advance ``every_events`` events" with
    "persist a checkpoint" until the run completes.  Results are
    bit-identical to ``job.execute()`` - the digest-identity contract of
    :mod:`repro.checkpoint.snapshot` - so the engine treats this as a
    drop-in job executor (see ``ExecutionEngine(checkpoint_dir=...)``).

    With ``trace_dir`` set, fresh runs attach a memory trace sink; the sink
    rides inside every checkpoint (resumed runs continue accumulating spans
    where they left off) and the completed run's Chrome-trace artifact is
    written into the directory.

    Completed jobs discard their checkpoints by default (the engine's
    result cache memoizes the finished result; keeping the trail of
    snapshots would only cost disk), unless ``keep_checkpoints``.
    """
    if every_events <= 0:
        raise ValueError("every_events must be positive")
    fingerprint = job.fingerprint()
    resumed = store.latest(fingerprint)
    if resumed is not None:
        _, checkpoint = resumed
        simulator = SSDSimulator.resume(checkpoint)
        result = simulator.run_to_completion(
            max_events=simulator.events.processed + every_events
        )
    else:
        sink = None
        if trace_dir is not None:
            from repro.obs.trace import MemoryTraceSink

            sink = MemoryTraceSink()
        workload = job.workload.build()
        simulator = SSDSimulator(
            job.resolved_config,
            job.scheduler,
            scheduler_options=job.options_dict,
            trace_sink=sink,
        )
        result = simulator.run(
            workload, workload_name=job.workload.name, max_events=every_events
        )
    while result is None:
        store.save(fingerprint, simulator.checkpoint())
        result = simulator.run_to_completion(
            max_events=simulator.events.processed + every_events
        )
    if trace_dir is not None and simulator.sink.enabled:
        from repro.obs.export import write_job_trace

        write_job_trace(trace_dir, job, simulator.sink, result)
    if not keep_checkpoints:
        store.discard(fingerprint)
    return result
