"""Simulator checkpoint/restore: snapshot a run at any event boundary.

Long-horizon simulations (multi-day traces, fleet sweeps) resume instead of
rerun: ``SSDSimulator.run(max_events=T)`` pauses at a deterministic event
boundary, :meth:`~repro.sim.ssd.SSDSimulator.checkpoint` captures the full
simulator state as a versioned, schema-checked snapshot, and
:meth:`~repro.sim.ssd.SSDSimulator.resume` reconstructs a simulator that
continues **bit-identically** to an uninterrupted run.
:class:`CheckpointStore` persists snapshots keyed by ``(job fingerprint,
events processed)``; :func:`run_job_checkpointed` is the engine's
checkpoint-aware job executor.
"""

from repro.checkpoint.snapshot import (
    CHECKPOINT_VERSION,
    CheckpointError,
    SimulatorCheckpoint,
)
from repro.checkpoint.store import CheckpointStore, run_job_checkpointed

__all__ = [
    "CHECKPOINT_VERSION",
    "CheckpointError",
    "CheckpointStore",
    "SimulatorCheckpoint",
    "run_job_checkpointed",
]
