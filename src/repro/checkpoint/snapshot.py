"""Versioned, schema-checked snapshots of full simulator state.

A checkpoint is the complete state of a *paused* :class:`~repro.sim.ssd.
SSDSimulator` run: the FTL map with its base-layout overlay, every
plane/block counter and wear figure, GC state and backlog, the event heap,
the device queue and scheduler internals, the metrics accumulators, and the
not-yet-admitted tail of the workload.  All of it is serialized as **one**
object graph (a single pickle), because the components cross-reference each
other heavily - a ``MemoryRequest`` sitting in the event heap must be the
*same object* the controller and the tag tables hold, or the resumed run
diverges.  Per-component serialization would silently break that sharing.

On top of the payload sits a small, versioned envelope
(:class:`SimulatorCheckpoint`): format version, the config fingerprint the
state was computed under, run-progress metadata, and a SHA-256 of the
payload bytes.  :func:`restore_simulator` refuses anything that fails the
schema - wrong version, corrupted payload, unknown or missing state fields,
mistyped components - with a :class:`CheckpointError` naming the problem.

The contract the test suite enforces: ``run-to-completion`` and
``run(max_events=T) -> checkpoint() -> resume() -> run_to_completion()``
produce ``result_digest``-identical :class:`SimulationResult`s.
"""

from __future__ import annotations

import hashlib
import pickle
from dataclasses import dataclass
from pathlib import Path
from typing import Union

from repro.core.scheduler import SchedulerBase
from repro.flash.controller import FlashController
from repro.ftl.callbacks import ReaddressingCallback
from repro.ftl.garbage_collector import GarbageCollector
from repro.ftl.mapping import PageMapFTL
from repro.metrics.collector import MetricsCollector
from repro.nvmhc.dma import DmaEngine
from repro.nvmhc.queue import DeviceQueue
from repro.obs.health import HealthSampler
from repro.obs.trace import TraceSink
from repro.sim.config import SimulationConfig
from repro.sim.events import EventQueue

#: Bump when the snapshot layout changes incompatibly; old checkpoints are
#: rejected (a stale resume silently diverging would be far worse than a
#: rerun).  Version 2 added the observability state (``sink``/``_tracing``):
#: a traced run's span history rides inside the snapshot and resumes intact.
#: Version 3 added the health sampler (``_health``) and the attribution
#: tracker inside the metrics collector: a health-sampled, attributed run
#: resumes with its series and slices intact.
CHECKPOINT_VERSION = 3


class CheckpointError(Exception):
    """A checkpoint could not be captured, validated or restored."""


def _is_optional(kind):
    def check(value):
        return value is None or isinstance(value, kind)

    return check


#: Field-by-field schema of the serialized state: every attribute of a
#: paused ``SSDSimulator`` and the predicate its restored value must pass.
#: ``capture_checkpoint`` asserts this map covers the simulator's ``__dict__``
#: exactly, so growing the simulator a new attribute without teaching the
#: schema about it is an immediate, loud error - not a silently-partial
#: snapshot.
_STATE_SCHEMA = {
    "config": lambda v: isinstance(v, SimulationConfig),
    "geometry": lambda v: v is not None,
    "timing": lambda v: v is not None,
    "chips": lambda v: isinstance(v, dict),
    "channels": lambda v: isinstance(v, dict),
    "controllers": lambda v: isinstance(v, dict)
    and all(isinstance(c, FlashController) for c in v.values()),
    "ftl": lambda v: isinstance(v, PageMapFTL),
    "gc": lambda v: isinstance(v, GarbageCollector),
    "queue": lambda v: isinstance(v, DeviceQueue),
    "dma": lambda v: isinstance(v, DmaEngine),
    "scheduler": lambda v: isinstance(v, SchedulerBase),
    "callback": lambda v: isinstance(v, ReaddressingCallback),
    "sink": lambda v: isinstance(v, TraceSink),
    "_tracing": lambda v: isinstance(v, bool),
    "_health": _is_optional(HealthSampler),
    "metrics": lambda v: isinstance(v, MetricsCollector),
    "events": lambda v: isinstance(v, EventQueue),
    "now_ns": lambda v: isinstance(v, int) and not isinstance(v, bool),
    "_tags_by_io": lambda v: isinstance(v, dict),
    "_gc_backlog": lambda v: isinstance(v, dict),
    "_decision_pending": lambda v: isinstance(v, set),
    "_requests_composed": lambda v: isinstance(v, int),
    "_workload_size": lambda v: isinstance(v, int),
    "_pending": lambda v: isinstance(v, list),
    "_pending_index": lambda v: isinstance(v, int),
    "_workload_name": lambda v: isinstance(v, str),
    "_run_active": lambda v: v is True,
    "precondition": _is_optional(object),
    "steady_state": _is_optional(object),
    "_ftl_baseline": lambda v: v is not None,
    "_gc_baseline": lambda v: v is not None,
}


@dataclass(frozen=True)
class SimulatorCheckpoint:
    """One snapshot of a paused simulator run.

    ``payload`` is the pickled single-graph state dict; the remaining fields
    are the validated envelope.  ``config_fingerprint`` ties the snapshot to
    the exact device/policy configuration it was computed under - the
    checkpoint store keys on ``(config fingerprint or job fingerprint, T)``.
    """

    version: int
    config_fingerprint: str
    scheduler: str
    workload_name: str
    events_processed: int
    now_ns: int
    pending_arrivals: int
    payload: bytes
    payload_sha256: str

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def save(self, path: Union[str, Path]) -> Path:
        """Write the checkpoint to ``path`` (envelope + payload, one file)."""
        path = Path(path)
        document = {
            "format": "repro-simulator-checkpoint",
            "version": self.version,
            "config_fingerprint": self.config_fingerprint,
            "scheduler": self.scheduler,
            "workload_name": self.workload_name,
            "events_processed": self.events_processed,
            "now_ns": self.now_ns,
            "pending_arrivals": self.pending_arrivals,
            "payload": self.payload,
            "payload_sha256": self.payload_sha256,
        }
        with path.open("wb") as handle:
            pickle.dump(document, handle, protocol=pickle.HIGHEST_PROTOCOL)
        return path

    @classmethod
    def load(cls, path: Union[str, Path]) -> "SimulatorCheckpoint":
        """Read a checkpoint written by :meth:`save`, validating its envelope."""
        path = Path(path)
        try:
            with path.open("rb") as handle:
                document = pickle.load(handle)
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError) as exc:
            raise CheckpointError(f"unreadable checkpoint file {path}: {exc}") from exc
        if not isinstance(document, dict) or document.get("format") != "repro-simulator-checkpoint":
            raise CheckpointError(f"{path} is not a simulator checkpoint file")
        expected = {
            "format",
            "version",
            "config_fingerprint",
            "scheduler",
            "workload_name",
            "events_processed",
            "now_ns",
            "pending_arrivals",
            "payload",
            "payload_sha256",
        }
        if set(document) != expected:
            unknown = sorted(set(document) - expected)
            missing = sorted(expected - set(document))
            raise CheckpointError(
                f"{path}: malformed checkpoint envelope "
                f"(unknown fields: {unknown}, missing fields: {missing})"
            )
        document.pop("format")
        return cls(**document)


def capture_checkpoint(simulator) -> SimulatorCheckpoint:
    """Snapshot a paused simulator run (the body of ``SSDSimulator.checkpoint``)."""
    if not getattr(simulator, "_run_active", False):
        raise CheckpointError(
            "checkpoint() requires a paused in-progress run: call "
            "run(max_events=...) and checkpoint after it returns None"
        )
    state = dict(simulator.__dict__)
    schema_fields = set(_STATE_SCHEMA)
    actual_fields = set(state)
    if schema_fields != actual_fields:
        extra = sorted(actual_fields - schema_fields)
        missing = sorted(schema_fields - actual_fields)
        raise CheckpointError(
            "simulator state no longer matches the checkpoint schema "
            f"(unschematized attributes: {extra}, absent attributes: {missing}); "
            "update repro.checkpoint.snapshot._STATE_SCHEMA and bump "
            "CHECKPOINT_VERSION"
        )
    # Store only the not-yet-admitted tail of the arrival list; already
    # admitted requests live on in the queue/tag/metrics state.  The index
    # restarts at zero on restore.
    state["_pending"] = simulator._pending[simulator._pending_index :]
    state["_pending_index"] = 0
    try:
        payload = pickle.dumps(state, protocol=pickle.HIGHEST_PROTOCOL)
    except Exception as exc:
        raise CheckpointError(f"simulator state failed to serialize: {exc}") from exc
    return SimulatorCheckpoint(
        version=CHECKPOINT_VERSION,
        config_fingerprint=simulator.config.fingerprint(),
        scheduler=simulator.scheduler.name,
        workload_name=simulator._workload_name,
        events_processed=simulator.events.processed,
        now_ns=simulator.now_ns,
        pending_arrivals=len(state["_pending"]),
        payload=payload,
        payload_sha256=hashlib.sha256(payload).hexdigest(),
    )


def restore_simulator(cls, checkpoint: SimulatorCheckpoint):
    """Rebuild a paused simulator from a checkpoint (``SSDSimulator.resume``).

    Validation order: envelope version, payload digest, then the state dict
    field-by-field against :data:`_STATE_SCHEMA` (unknown and missing fields
    both rejected).  Only a fully-validated state is installed.
    """
    if not isinstance(checkpoint, SimulatorCheckpoint):
        raise CheckpointError(
            f"expected a SimulatorCheckpoint, got {type(checkpoint).__name__}"
        )
    if checkpoint.version != CHECKPOINT_VERSION:
        raise CheckpointError(
            f"checkpoint version {checkpoint.version} is not supported "
            f"(this build reads version {CHECKPOINT_VERSION}); rerun the job"
        )
    digest = hashlib.sha256(checkpoint.payload).hexdigest()
    if digest != checkpoint.payload_sha256:
        raise CheckpointError(
            "checkpoint payload is corrupted (SHA-256 mismatch: "
            f"stored {checkpoint.payload_sha256[:12]}..., computed {digest[:12]}...)"
        )
    try:
        state = pickle.loads(checkpoint.payload)
    except Exception as exc:
        raise CheckpointError(f"checkpoint payload failed to deserialize: {exc}") from exc
    if not isinstance(state, dict):
        raise CheckpointError(
            f"checkpoint payload must be a state dict, got {type(state).__name__}"
        )
    unknown = sorted(set(state) - set(_STATE_SCHEMA))
    missing = sorted(set(_STATE_SCHEMA) - set(state))
    if unknown or missing:
        raise CheckpointError(
            f"checkpoint state does not match schema version {CHECKPOINT_VERSION} "
            f"(unknown fields: {unknown}, missing fields: {missing})"
        )
    for name, predicate in _STATE_SCHEMA.items():
        if not predicate(state[name]):
            raise CheckpointError(
                f"checkpoint field {name!r} failed its schema check "
                f"(got {type(state[name]).__name__})"
            )
    if state["config"].fingerprint() != checkpoint.config_fingerprint:
        raise CheckpointError(
            "checkpoint config does not match its envelope fingerprint "
            "(payload/envelope mismatch)"
        )
    simulator = cls.__new__(cls)
    simulator.__dict__.update(state)
    return simulator
