"""Wear levelling.

The paper lists wear levelling as one of the firmware activities that causes
live data migration (Section 4.3) and therefore triggers the readdressing
callback.  This module implements a simple static wear leveller: it tracks
per-block erase counts and, when the gap between the most- and least-worn
blocks of a plane exceeds a threshold, migrates the cold block's live data so
the cold block can be recycled into the hot allocation pool.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.flash.chip import FlashChip
from repro.flash.geometry import PhysicalPageAddress, SSDGeometry
from repro.ftl.mapping import PageMapFTL


@dataclass
class WearStats:
    """Summary of the wear distribution across the SSD."""

    min_erase_count: int
    max_erase_count: int
    mean_erase_count: float
    total_erases: int

    @property
    def spread(self) -> int:
        """Difference between the most and least worn blocks."""
        return self.max_erase_count - self.min_erase_count


def wear_stats(chips: Dict[tuple, FlashChip]) -> WearStats:
    """Erase-count statistics across every good block of a chip set.

    Free function so the simulator can stamp wear onto every
    :class:`~repro.metrics.report.SimulationResult` without instantiating a
    :class:`WearLeveler` (levelling policy and wear *measurement* are
    independent concerns).
    """
    lowest: Optional[int] = None
    highest = 0
    total = 0
    blocks = 0
    for chip in chips.values():
        for plane in chip.iter_planes():
            good = plane.num_blocks
            if good == 0:
                continue
            if plane.total_erases == 0:
                # No good block of this plane was ever erased - the common
                # case for most planes of a fresh or lightly-aged device.
                # They all sit at erase count zero; skip the block scan.
                blocks += good
                lowest = 0
                continue
            counts = [
                block.erase_count for block in plane.blocks if not block.is_bad
            ]
            blocks += good
            total += sum(counts)
            low = min(counts)
            if lowest is None or low < lowest:
                lowest = low
            high = max(counts)
            if high > highest:
                highest = high
    if blocks == 0 or lowest is None:
        return WearStats(0, 0, 0.0, 0)
    return WearStats(
        min_erase_count=lowest,
        max_erase_count=highest,
        mean_erase_count=total / blocks,
        total_erases=total,
    )


class WearLeveler:
    """Static wear levelling based on erase-count spread."""

    def __init__(
        self,
        geometry: SSDGeometry,
        ftl: PageMapFTL,
        chips: Dict[tuple, FlashChip],
        *,
        spread_threshold: int = 16,
        enabled: bool = True,
    ) -> None:
        self.geometry = geometry
        self.ftl = ftl
        self.chips = chips
        self.spread_threshold = max(1, spread_threshold)
        self.enabled = enabled
        self.swaps_performed = 0

    # ------------------------------------------------------------------
    # Monitoring
    # ------------------------------------------------------------------
    def wear_stats(self) -> WearStats:
        """Erase-count statistics across every good block of the SSD."""
        return wear_stats(self.chips)

    def plane_spread(self, chip_key: tuple, die: int, plane: int) -> int:
        """Erase-count spread inside one plane."""
        plane_obj = self.chips[chip_key].plane(die, plane)
        counts = [block.erase_count for block in plane_obj.blocks if not block.is_bad]
        if not counts:
            return 0
        return max(counts) - min(counts)

    def needs_leveling(self, chip_key: tuple, die: int, plane: int) -> bool:
        """True when the plane's wear spread exceeds the threshold."""
        if not self.enabled:
            return False
        return self.plane_spread(chip_key, die, plane) >= self.spread_threshold

    # ------------------------------------------------------------------
    # Levelling action
    # ------------------------------------------------------------------
    def level_plane(self, chip_key: tuple, die: int, plane: int) -> List[Tuple[PhysicalPageAddress, PhysicalPageAddress]]:
        """Migrate live data out of the coldest block of a plane.

        Returns the list of (old, new) moves performed (possibly empty).  The
        freed cold block re-enters the allocation pool, so future hot writes
        land on it and the wear spread narrows.
        """
        if not self.needs_leveling(chip_key, die, plane):
            return []
        plane_obj = self.chips[chip_key].plane(die, plane)
        candidates = [
            block
            for block in plane_obj.blocks
            if not block.is_bad and block.write_pointer > 0 and block.valid_count > 0
        ]
        if not candidates:
            return []
        cold = min(candidates, key=lambda block: (block.erase_count, block.block_id))
        channel, chip_idx = chip_key
        moves: List[Tuple[PhysicalPageAddress, PhysicalPageAddress]] = []
        for page in range(cold.pages_per_block):
            if not cold.is_valid(page):
                continue
            address = PhysicalPageAddress(
                channel=channel, chip=chip_idx, die=die, plane=plane,
                block=cold.block_id, page=page,
            )
            lpn = self.ftl.reverse_lookup(address)
            if lpn is None:
                continue
            moves.append(self.ftl.migrate_page(lpn))
        if cold.valid_count == 0 and cold.write_pointer > 0:
            self.ftl.erase_block(chip_key, die, plane, cold.block_id)
        if moves:
            self.swaps_performed += 1
        return moves
