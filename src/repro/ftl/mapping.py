"""Page-level address mapping FTL.

The paper's evaluation uses "a pure page-level address mapping FTL" (Section
5.1).  :class:`PageMapFTL` keeps a logical-to-physical map plus the reverse
map needed by garbage collection, performs dynamic page allocation for
writes, and exposes migration hooks used by GC, wear levelling and bad-block
replacement.  All timing is handled elsewhere; the FTL is pure bookkeeping.

Fast-forward device aging (:mod:`repro.lifetime.state`) adds one twist: a
sequential fill of a fresh device lands in a purely *arithmetic* layout (the
allocator stripes write ``i`` onto plane ``i % P`` and fills blocks in
order), so the FTL can serve those mappings implicitly instead of
materialising millions of dictionary entries.  :meth:`install_base_layout`
declares "logical pages ``0..live-1`` sit in the striped base layout"; the
explicit ``_map``/``_reverse`` dictionaries then act as an overlay for every
page that is subsequently rewritten, migrated or erased (tracked in
``_base_moved``).  Behaviour is bit-identical to writing the base fill
page-by-page - the lifetime tests compare full occupancy snapshots - but
installing it is O(1), which is what makes aging a 512-chip device a
bookkeeping errand instead of a simulation campaign.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.flash.chip import FlashChip, planes_by_key
from repro.flash.geometry import PhysicalPageAddress, SSDGeometry
from repro.ftl.allocation import AllocationOrder, PageAllocator


@dataclass
class FTLStats:
    """Counters describing FTL activity."""

    host_writes: int = 0
    host_reads: int = 0
    gc_writes: int = 0
    invalidations: int = 0
    migrations: int = 0


MigrationListener = Callable[[int, PhysicalPageAddress, PhysicalPageAddress], None]


class PageMapFTL:
    """Pure page-mapped FTL with dynamic allocation and migration support."""

    def __init__(
        self,
        geometry: SSDGeometry,
        chips: Dict[tuple, FlashChip],
        allocation_order: AllocationOrder = AllocationOrder.CHANNEL_WAY_DIE_PLANE,
    ) -> None:
        self.geometry = geometry
        self.chips = chips
        self.allocator = PageAllocator(geometry, chips, allocation_order)
        self._map: Dict[int, PhysicalPageAddress] = {}
        self._reverse: Dict[PhysicalPageAddress, int] = {}
        #: Logical pages 0.._base_live-1 are implicitly mapped to the striped
        #: base layout (see install_base_layout) unless listed in _base_moved.
        self._base_live = 0
        self._base_moved: Set[int] = set()
        self._plane_index: Dict[tuple, int] = {
            key: index for index, key in enumerate(self.allocator.plane_sequence)
        }
        #: Direct plane lookup: the invalidation path runs once per
        #: overwrite/migration (see :func:`repro.flash.chip.planes_by_key`).
        self._planes = planes_by_key(chips)
        self.stats = FTLStats()
        self._migration_listeners: List[MigrationListener] = []

    # ------------------------------------------------------------------
    # Listener registration (readdressing callback, metrics, ...)
    # ------------------------------------------------------------------
    def add_migration_listener(self, listener: MigrationListener) -> None:
        """Register a callable invoked as (lpn, old_address, new_address)."""
        self._migration_listeners.append(listener)

    def _notify_migration(
        self, lpn: int, old: PhysicalPageAddress, new: PhysicalPageAddress
    ) -> None:
        for listener in self._migration_listeners:
            listener(lpn, old, new)

    # ------------------------------------------------------------------
    # Translation
    # ------------------------------------------------------------------
    def translate_read(self, lpn: int) -> PhysicalPageAddress:
        """Physical location of a logical page for a read.

        Never-written pages resolve to their static (striped) home so reads
        of a pristine drive still exercise the full resource layout.
        """
        self.stats.host_reads += 1
        address = self.lookup(lpn)
        if address is not None:
            return address
        return self.allocator.static_address(lpn)

    def translate_write(self, lpn: int) -> PhysicalPageAddress:
        """Allocate a fresh physical page for a write and update the map."""
        old = self.lookup(lpn)
        if old is not None:
            self._invalidate_physical(old)
            if lpn < self._base_live:
                self._base_moved.add(lpn)
        address = self.allocator.allocate()
        self._map[lpn] = address
        self._reverse[address] = lpn
        self.stats.host_writes += 1
        return address

    def lookup(self, lpn: int) -> Optional[PhysicalPageAddress]:
        """Current mapping of a logical page, or ``None`` if never written."""
        address = self._map.get(lpn)
        if address is not None:
            return address
        if lpn < self._base_live and lpn not in self._base_moved:
            return self.allocator.static_address(lpn)
        return None

    def reverse_lookup(self, address: PhysicalPageAddress) -> Optional[int]:
        """Logical page stored at a physical address, or ``None`` if stale/free."""
        lpn = self._reverse.get(address)
        if lpn is not None:
            return lpn
        lpn = self._base_lpn(address)
        if lpn is not None and lpn not in self._base_moved:
            return lpn
        return None

    def _base_lpn(self, address: PhysicalPageAddress) -> Optional[int]:
        """The base-layout LPN stored at ``address``, if any.

        Inverse of the striped base layout: only meaningful for addresses
        inside the installed base fill (``lpn < _base_live``); everything
        else returns ``None``.
        """
        if not self._base_live:
            return None
        plane_index = self._plane_index[address.plane_key]
        position = address.block * self.geometry.pages_per_block + address.page
        lpn = position * len(self._plane_index) + plane_index
        if lpn < self._base_live:
            return lpn
        return None

    @property
    def mapped_pages(self) -> int:
        """Number of logical pages with a live physical mapping."""
        return len(self._map) + self._base_live - len(self._base_moved)

    def mapping_items(self):
        """Live ``(lpn, address)`` pairs (iteration order unspecified).

        Merges the explicit overlay map with the implicit base layout.
        Read-only view used by occupancy snapshots and device-state
        verification; mutate the map only through the translate/migrate API.
        """
        if not self._base_live:
            return self._map.items()
        return self._iter_mapping_items()

    def _iter_mapping_items(self):
        yield from self._map.items()
        static = self.allocator.static_address
        moved = self._base_moved
        for lpn in range(self._base_live):
            if lpn not in moved:
                yield lpn, static(lpn)

    def install_base_layout(self, live: int) -> None:
        """Declare logical pages ``0..live-1`` written in the striped layout.

        The O(1) core of fast-forward aging: instead of materialising one
        map entry per page, the FTL serves the sequential base fill
        arithmetically (``lookup``/``reverse_lookup`` fall through to the
        stripe formula) and tracks later rewrites in the overlay.  The
        caller (:func:`repro.lifetime.state.apply_device_state`)
        bulk-programs the matching block bookkeeping and positions the
        allocator cursor.  Counts as host writes, exactly like the replayed
        equivalent.  Legal only once, on a factory-fresh FTL.
        """
        if self._base_live or self._map or self.allocator.cursor != 0:
            raise ValueError("base layout must be installed on a fresh FTL")
        if not 0 <= live <= self.geometry.total_pages:
            raise ValueError("live page count out of range")
        self._base_live = live
        self.stats.host_writes += live

    # ------------------------------------------------------------------
    # Invalidation and migration
    # ------------------------------------------------------------------
    def _invalidate_physical(self, address: PhysicalPageAddress) -> None:
        plane = self._planes[address[:4]]
        plane.blocks[address.block].invalidate(address.page)
        self._reverse.pop(address, None)
        self.stats.invalidations += 1

    def migrate_page(
        self, lpn: int, preferred_plane: Optional[tuple] = None
    ) -> Tuple[PhysicalPageAddress, PhysicalPageAddress]:
        """Move a live logical page to a new physical location.

        Used by garbage collection, wear levelling and bad-block replacement.
        Returns ``(old_address, new_address)`` and fires the migration
        listeners (the readdressing callback among them).
        """
        old = self.lookup(lpn)
        if old is None:
            raise KeyError(f"lpn {lpn} has no live mapping to migrate")
        new = self.allocator.allocate(preferred_plane=preferred_plane)
        self._invalidate_physical(old)
        if lpn < self._base_live:
            self._base_moved.add(lpn)
        self._map[lpn] = new
        self._reverse[new] = lpn
        self.stats.migrations += 1
        self.stats.gc_writes += 1
        self._notify_migration(lpn, old, new)
        return old, new

    def erase_block(self, chip_key: tuple, die: int, plane: int, block: int) -> None:
        """Erase a block after its valid pages have been migrated away."""
        chip = self.chips[chip_key]
        plane_obj = chip.plane(die, plane)
        block_obj = plane_obj.blocks[block]
        # Drop reverse mappings of any straggler pages (there should be none
        # after migration, but stale entries must never survive an erase).
        # Plain tuples hash and compare equal to PhysicalPageAddress (a
        # NamedTuple), so the sweep probes the reverse map without
        # constructing one address object per page.
        channel, chip_idx = chip_key
        reverse_pop = self._reverse.pop
        for page in range(block_obj.pages_per_block):
            address = (channel, chip_idx, die, plane, block, page)
            lpn = reverse_pop(address, None)
            if lpn is not None and self._map.get(lpn) == address:
                del self._map[lpn]
        if self._base_live:
            # Base-layout pages living in this block lose their implicit
            # mapping too (idempotent for pages already moved elsewhere).
            plane_index = self._plane_index[(channel, chip_idx, die, plane)]
            num_planes = len(self._plane_index)
            pages_per_block = self.geometry.pages_per_block
            for page in range(block_obj.pages_per_block):
                lpn = (block * pages_per_block + page) * num_planes + plane_index
                if lpn < self._base_live:
                    self._base_moved.add(lpn)
        block_obj.erase()

    # ------------------------------------------------------------------
    # Occupancy helpers
    # ------------------------------------------------------------------
    def utilization(self) -> float:
        """Fraction of physical pages holding live data."""
        total = self.geometry.total_pages
        if total == 0:
            return 0.0
        return self.mapped_pages / total

    def fill(
        self,
        fraction: float,
        *,
        start_lpn: int = 0,
        overwrite_fraction: float = 0.0,
        seed: int = 12345,
    ) -> int:
        """Pre-condition the SSD by writing ``fraction`` of its physical space.

        Used to create the "fragmented SSD filled by 95%" starting point of
        the GC experiment (Figure 17).  ``overwrite_fraction`` is the share
        of the pre-conditioning writes that are *overwrites* of already
        written logical pages, chosen pseudo-randomly (seeded, so runs are
        reproducible).  The overwrites scatter invalid pages across every
        block - exactly what a drive that was filled by random writes looks
        like, and what makes greedy garbage collection productive rather
        than pure thrash.

        Returns the number of page writes performed.  Bookkeeping only - no
        time is simulated.
        """
        if not 0.0 <= fraction <= 1.0:
            raise ValueError("fraction must be in [0, 1]")
        if not 0.0 <= overwrite_fraction < 1.0:
            raise ValueError("overwrite_fraction must be in [0, 1)")
        overwrites = int(self.geometry.total_pages * fraction * overwrite_fraction)
        target = int(self.geometry.total_pages * fraction) - overwrites
        written = 0
        lpn = start_lpn
        while written < target:
            self.translate_write(lpn)
            lpn += 1
            written += 1
        filled = max(1, lpn - start_lpn)
        # Overwrite a pseudo-random subset of the filled logical pages so the
        # surviving valid pages are spread uniformly across blocks (no
        # correlation with the plane/block striping of the first pass).
        rng = random.Random(seed)
        remaining = overwrites
        while remaining > 0:
            batch = min(remaining, filled)
            for offset in rng.sample(range(filled), batch):
                self.translate_write(start_lpn + offset)
            written += batch
            remaining -= batch
        return written
