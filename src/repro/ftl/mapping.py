"""Page-level address mapping FTL.

The paper's evaluation uses "a pure page-level address mapping FTL" (Section
5.1).  :class:`PageMapFTL` keeps a logical-to-physical map plus the reverse
map needed by garbage collection, performs dynamic page allocation for
writes, and exposes migration hooks used by GC, wear levelling and bad-block
replacement.  All timing is handled elsewhere; the FTL is pure bookkeeping.

Fast-forward device aging (:mod:`repro.lifetime.state`) adds one twist: a
sequential fill of a fresh device lands in a purely *arithmetic* layout (the
allocator stripes write ``i`` onto plane ``i % P`` and fills blocks in
order), so the FTL can serve those mappings implicitly instead of
materialising millions of dictionary entries.  :meth:`install_base_layout`
declares "logical pages ``0..live-1`` sit in the striped base layout"; the
explicit ``_map``/``_reverse`` dictionaries then act as an overlay for every
page that is subsequently rewritten, migrated or erased (tracked in
``_base_moved``).  Behaviour is bit-identical to writing the base fill
page-by-page - the lifetime tests compare full occupancy snapshots - but
installing it is O(1), which is what makes aging a 512-chip device a
bookkeeping errand instead of a simulation campaign.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.flash.chip import FlashChip, planes_by_key
from repro.flash.geometry import PhysicalPageAddress, SSDGeometry
from repro.ftl.allocation import AllocationOrder, PageAllocator


@dataclass
class FTLStats:
    """Counters describing FTL activity."""

    host_writes: int = 0
    host_reads: int = 0
    gc_writes: int = 0
    invalidations: int = 0
    migrations: int = 0


MigrationListener = Callable[[int, PhysicalPageAddress, PhysicalPageAddress], None]


class PageMapFTL:
    """Pure page-mapped FTL with dynamic allocation and migration support."""

    def __init__(
        self,
        geometry: SSDGeometry,
        chips: Dict[tuple, FlashChip],
        allocation_order: AllocationOrder = AllocationOrder.CHANNEL_WAY_DIE_PLANE,
    ) -> None:
        self.geometry = geometry
        self.chips = chips
        self.allocator = PageAllocator(geometry, chips, allocation_order)
        self._map: Dict[int, PhysicalPageAddress] = {}
        self._reverse: Dict[PhysicalPageAddress, int] = {}
        #: Logical pages 0.._base_live-1 are implicitly mapped to the striped
        #: base layout (see install_base_layout) unless flagged in
        #: _base_moved.  The moved flags are a flat byte-map indexed by LPN
        #: (sized at install time) rather than a set of ints: the aged-device
        #: overlay probe runs on every lookup/reverse-lookup, and a single C
        #: index beats hashing arbitrary-size ints - at an eighth of the
        #: memory.  _base_moved_count tracks the number of set flags.
        self._base_live = 0
        self._base_moved = bytearray()
        self._base_moved_count = 0
        self._plane_index: Dict[tuple, int] = {
            key: index for index, key in enumerate(self.allocator.plane_sequence)
        }
        #: Direct plane lookup: the invalidation path runs once per
        #: overwrite/migration (see :func:`repro.flash.chip.planes_by_key`).
        self._planes = planes_by_key(chips)
        self.stats = FTLStats()
        self._migration_listeners: List[MigrationListener] = []
        #: Bound ``on_migrations`` of the sole listener's owner when that
        #: batched form is available (see :meth:`add_migration_listener`);
        #: ``None`` forces the per-move notification loop.
        self._batch_notifier = None

    # ------------------------------------------------------------------
    # Listener registration (readdressing callback, metrics, ...)
    # ------------------------------------------------------------------
    def add_migration_listener(self, listener: MigrationListener) -> None:
        """Register a callable invoked as (lpn, old_address, new_address)."""
        self._migration_listeners.append(listener)
        # Bulk migration can hand the whole move list to the listener in one
        # call when there is exactly one listener, it is a bound
        # ``on_migration``, and its owner also implements ``on_migrations``
        # with identical per-move semantics (ReaddressingCallback does).
        self._batch_notifier = None
        if len(self._migration_listeners) == 1:
            owner = getattr(listener, "__self__", None)
            if (
                owner is not None
                and getattr(listener, "__func__", None)
                is getattr(type(owner), "on_migration", None)
            ):
                self._batch_notifier = getattr(owner, "on_migrations", None)

    def _notify_migration(
        self, lpn: int, old: PhysicalPageAddress, new: PhysicalPageAddress
    ) -> None:
        for listener in self._migration_listeners:
            listener(lpn, old, new)

    # ------------------------------------------------------------------
    # Translation
    # ------------------------------------------------------------------
    def translate_read(self, lpn: int) -> PhysicalPageAddress:
        """Physical location of a logical page for a read.

        Never-written pages resolve to their static (striped) home so reads
        of a pristine drive still exercise the full resource layout.
        """
        self.stats.host_reads += 1
        address = self.lookup(lpn)
        if address is not None:
            return address
        return self.allocator.static_address(lpn)

    def translate_write(self, lpn: int) -> PhysicalPageAddress:
        """Allocate a fresh physical page for a write and update the map."""
        old = self.lookup(lpn)
        if old is not None:
            self._invalidate_physical(old)
            if lpn < self._base_live:
                self._mark_base_moved(lpn)
        address = self.allocator.allocate()
        self._map[lpn] = address
        self._reverse[address] = lpn
        self.stats.host_writes += 1
        return address

    def lookup(self, lpn: int) -> Optional[PhysicalPageAddress]:
        """Current mapping of a logical page, or ``None`` if never written."""
        address = self._map.get(lpn)
        if address is not None:
            return address
        if lpn < self._base_live and not self._base_moved[lpn]:
            return self.allocator.static_address(lpn)
        return None

    def reverse_lookup(self, address: PhysicalPageAddress) -> Optional[int]:
        """Logical page stored at a physical address, or ``None`` if stale/free."""
        lpn = self._reverse.get(address)
        if lpn is not None:
            return lpn
        lpn = self._base_lpn(address)
        if lpn is not None and not self._base_moved[lpn]:
            return lpn
        return None

    def _base_lpn(self, address: PhysicalPageAddress) -> Optional[int]:
        """The base-layout LPN stored at ``address``, if any.

        Inverse of the striped base layout: only meaningful for addresses
        inside the installed base fill (``lpn < _base_live``); everything
        else returns ``None``.
        """
        if not self._base_live:
            return None
        plane_index = self._plane_index[address.plane_key]
        position = address.block * self.geometry.pages_per_block + address.page
        lpn = position * len(self._plane_index) + plane_index
        if lpn < self._base_live:
            return lpn
        return None

    @property
    def mapped_pages(self) -> int:
        """Number of logical pages with a live physical mapping."""
        return len(self._map) + self._base_live - self._base_moved_count

    def mapping_items(self):
        """Live ``(lpn, address)`` pairs (iteration order unspecified).

        Merges the explicit overlay map with the implicit base layout.
        Read-only view used by occupancy snapshots and device-state
        verification; mutate the map only through the translate/migrate API.
        """
        if not self._base_live:
            return self._map.items()
        return self._iter_mapping_items()

    def _iter_mapping_items(self):
        yield from self._map.items()
        static = self.allocator.static_address
        moved = self._base_moved
        for lpn in range(self._base_live):
            if not moved[lpn]:
                yield lpn, static(lpn)

    def install_base_layout(self, live: int) -> None:
        """Declare logical pages ``0..live-1`` written in the striped layout.

        The O(1) core of fast-forward aging: instead of materialising one
        map entry per page, the FTL serves the sequential base fill
        arithmetically (``lookup``/``reverse_lookup`` fall through to the
        stripe formula) and tracks later rewrites in the overlay.  The
        caller (:func:`repro.lifetime.state.apply_device_state`)
        bulk-programs the matching block bookkeeping and positions the
        allocator cursor.  Counts as host writes, exactly like the replayed
        equivalent.  Legal only once, on a factory-fresh FTL.
        """
        if self._base_live or self._map or self.allocator.cursor != 0:
            raise ValueError("base layout must be installed on a fresh FTL")
        if not 0 <= live <= self.geometry.total_pages:
            raise ValueError("live page count out of range")
        self._base_live = live
        self._base_moved = bytearray(live)
        self._base_moved_count = 0
        self.stats.host_writes += live

    # ------------------------------------------------------------------
    # Invalidation and migration
    # ------------------------------------------------------------------
    def _mark_base_moved(self, lpn: int) -> None:
        """Flag a base-layout LPN as rewritten/migrated (idempotent)."""
        moved = self._base_moved
        if not moved[lpn]:
            moved[lpn] = 1
            self._base_moved_count += 1

    def _invalidate_physical(self, address: PhysicalPageAddress) -> None:
        plane = self._planes[address[:4]]
        plane.blocks[address.block].invalidate(address.page)
        self._reverse.pop(address, None)
        self.stats.invalidations += 1

    def migrate_page(
        self, lpn: int, preferred_plane: Optional[tuple] = None
    ) -> Tuple[PhysicalPageAddress, PhysicalPageAddress]:
        """Move a live logical page to a new physical location.

        Used by garbage collection, wear levelling and bad-block replacement.
        Returns ``(old_address, new_address)`` and fires the migration
        listeners (the readdressing callback among them).
        """
        old = self.lookup(lpn)
        if old is None:
            raise KeyError(f"lpn {lpn} has no live mapping to migrate")
        new = self.allocator.allocate(preferred_plane=preferred_plane)
        self._invalidate_physical(old)
        if lpn < self._base_live:
            self._mark_base_moved(lpn)
        self._map[lpn] = new
        self._reverse[new] = lpn
        self.stats.migrations += 1
        self.stats.gc_writes += 1
        self._notify_migration(lpn, old, new)
        return old, new

    def valid_lpns_in_block(
        self, plane_key: tuple, block_id: int, valid_mask: int
    ) -> Tuple[List[int], List[Optional[int]]]:
        """LPNs stored at the set bits of ``valid_mask``, ascending page order.

        Returns parallel ``(pages, lpns)`` lists; a page whose valid bit is
        set but that has no live mapping yields ``None`` (an orphan - the
        garbage collector counts those loudly).  One bulk reverse-map pass:
        the explicit reverse map is probed with plain tuples (which hash and
        compare equal to :class:`PhysicalPageAddress`) and the base-layout
        fallback is inlined arithmetic, so no per-page address objects or
        method calls are paid.
        """
        channel, chip, die, plane = plane_key
        reverse_get = self._reverse.get
        base_live = self._base_live
        if base_live:
            plane_index = self._plane_index[plane_key]
            num_planes = len(self._plane_index)
            base_position = block_id * self.geometry.pages_per_block
            moved = self._base_moved
        pages: List[int] = []
        lpns: List[Optional[int]] = []
        mask = valid_mask
        while mask:
            low_bit = mask & -mask
            mask ^= low_bit
            page = low_bit.bit_length() - 1
            lpn = reverse_get((channel, chip, die, plane, block_id, page))
            if lpn is None and base_live:
                candidate = (base_position + page) * num_planes + plane_index
                if candidate < base_live and not moved[candidate]:
                    lpn = candidate
            pages.append(page)
            lpns.append(lpn)
        return pages, lpns

    def migrate_pages(
        self,
        plane_key: tuple,
        block_id: int,
        pages: List[int],
        lpns: List[int],
        runs_out: Optional[List[Tuple[int, int]]] = None,
    ) -> List[Tuple[PhysicalPageAddress, PhysicalPageAddress]]:
        """Bulk-migrate live pages out of one victim block.

        ``lpns[i]`` currently lives at ``pages[i]`` of ``block_id`` on
        ``plane_key``.  Equivalent to calling :meth:`migrate_page` for each
        LPN in order with ``preferred_plane=plane_key`` - identical
        destination addresses, counters and listener notifications - but
        with the per-page round trips batched: destinations come from whole
        active-block runs (:meth:`repro.flash.plane.Plane.allocate_run`),
        the victim's valid bits clear in one mask update, and the
        overlay/reverse-map bookkeeping is a single pass.  Returns the
        ``(old, new)`` move list.

        The batching is legal because nothing a migration mutates feeds back
        into the pass itself: destinations never land in the (full) victim
        block, each LPN appears at most once, and the migration listeners
        only touch scheduler/controller state, never the FTL maps.

        ``runs_out``, when given, receives one ``(start_page, count)`` entry
        per destination page span (covering every move, in order) so the
        caller can price program latencies per span instead of per page.
        """
        channel, chip, die, plane = plane_key
        count = len(lpns)
        plane_obj = self._planes[plane_key]
        allocator = self.allocator
        allocate_run = plane_obj.allocate_run
        # Addresses are built with tuple.__new__ instead of the NamedTuple
        # constructor: identical objects, half the construction cost, and
        # this is the hottest allocation site in GC-bound runs.
        new_address = tuple.__new__
        address_cls = PhysicalPageAddress
        # 1. Invalidate the victim pages in one mask update.  Safe to do
        #    before allocating destinations: the victim block is full, so no
        #    destination can land in it, and allocation never reads valid
        #    bits.
        victim_mask = 0
        for page in pages:
            victim_mask |= 1 << page
        plane_obj.blocks[block_id].invalidate_mask(victim_mask)
        # 2. One fused pass per destination run: allocate, then do the
        #    overlay/reverse-map bookkeeping for each page of the run
        #    immediately.  The destination sequence is exactly what the
        #    per-page path's allocate(preferred_plane=...) calls would
        #    produce, including the global round-robin fallback once the
        #    plane fills up (bookkeeping never feeds back into allocation).
        explicit_map = self._map
        reverse = self._reverse
        reverse_pop = reverse.pop
        base_live = self._base_live
        moved = self._base_moved
        newly_moved = 0
        moves: List[Tuple[PhysicalPageAddress, PhysicalPageAddress]] = []
        append_move = moves.append
        index = 0
        remaining = count
        all_same_plane = True
        while remaining:
            run = allocate_run(remaining)
            if run is None:
                # Fallback: plane full - the allocator picks the next plane
                # in its global round-robin order (a cross-plane move).
                new = allocator.allocate(preferred_plane=plane_key)
                if new[:4] != plane_key:
                    all_same_plane = False
                lpn = lpns[index]
                old = new_address(
                    address_cls, (channel, chip, die, plane, block_id, pages[index])
                )
                reverse_pop(old, None)
                if lpn < base_live and not moved[lpn]:
                    moved[lpn] = 1
                    newly_moved += 1
                explicit_map[lpn] = new
                reverse[new] = lpn
                append_move((old, new))
                if runs_out is not None:
                    runs_out.append((new[5], 1))
                index += 1
                remaining -= 1
                continue
            run_block, start, run_count = run
            if runs_out is not None:
                runs_out.append((start, run_count))
            end = index + run_count
            run_lpns = lpns[index:end]
            # Bulk the whole run through C-level machinery: comprehensions
            # for the address objects, dict.update/extend for the maps and
            # move list.  This replaces the interpreted per-page loop body
            # (the hottest code in GC-bound runs) with a handful of C calls
            # per destination run.
            news = [
                new_address(address_cls, (channel, chip, die, plane, run_block, page))
                for page in range(start, start + run_count)
            ]
            olds = [
                new_address(address_cls, (channel, chip, die, plane, block_id, page))
                for page in pages[index:end]
            ]
            for old in olds:
                reverse_pop(old, None)
            if base_live:
                for lpn in run_lpns:
                    if lpn < base_live and not moved[lpn]:
                        moved[lpn] = 1
                        newly_moved += 1
            explicit_map.update(zip(run_lpns, news))
            reverse.update(zip(news, run_lpns))
            moves.extend(zip(olds, news))
            index = end
            remaining -= run_count
        self._base_moved_count += newly_moved
        stats = self.stats
        stats.invalidations += count
        stats.migrations += count
        stats.gc_writes += count
        # 3. Notifications preserve exact per-move order.  The batch
        #    notifier learns whether every move stayed in the victim's plane
        #    so it can skip the per-move plane comparison (the common case:
        #    GC copyback with no allocator fallback).
        if self._batch_notifier is not None:
            self._batch_notifier(lpns, moves, all_same_plane=all_same_plane)
        else:
            listeners = self._migration_listeners
            if listeners:
                for index, (old, new) in enumerate(moves):
                    for listener in listeners:
                        listener(lpns[index], old, new)
        return moves

    def erase_block(
        self, chip_key: tuple, die: int, plane: int, block: int, *, swept: bool = False
    ) -> None:
        """Erase a block after its valid pages have been migrated away.

        ``swept=True`` is the caller's guarantee that no page of the block
        still has a reverse-map entry - true right after
        :meth:`migrate_pages` relocated every valid page (invalid pages
        dropped their entries when they were invalidated).  It skips the
        defensive straggler sweep; divergence from that guarantee is the
        same bookkeeping bug the garbage collector's orphan counter already
        surfaces loudly.
        """
        chip = self.chips[chip_key]
        plane_obj = chip.plane(die, plane)
        block_obj = plane_obj.blocks[block]
        # Drop reverse mappings of any straggler pages (there should be none
        # after migration, but stale entries must never survive an erase).
        # Plain tuples hash and compare equal to PhysicalPageAddress (a
        # NamedTuple), so the sweep probes the reverse map without
        # constructing one address object per page.
        channel, chip_idx = chip_key
        reverse_pop = self._reverse.pop
        explicit_map = self._map
        base_live = self._base_live
        if base_live:
            # Base-layout pages living in this block lose their implicit
            # mapping too (idempotent for pages already moved elsewhere).
            plane_index = self._plane_index[(channel, chip_idx, die, plane)]
            num_planes = len(self._plane_index)
            base_position = block * self.geometry.pages_per_block
            moved = self._base_moved
            newly_moved = 0
        if swept:
            if base_live:
                for page in range(block_obj.pages_per_block):
                    base_lpn = (base_position + page) * num_planes + plane_index
                    if base_lpn < base_live and not moved[base_lpn]:
                        moved[base_lpn] = 1
                        newly_moved += 1
                self._base_moved_count += newly_moved
            block_obj.erase()
            return
        for page in range(block_obj.pages_per_block):
            address = (channel, chip_idx, die, plane, block, page)
            lpn = reverse_pop(address, None)
            if lpn is not None and explicit_map.get(lpn) == address:
                del explicit_map[lpn]
            if base_live:
                base_lpn = (base_position + page) * num_planes + plane_index
                if base_lpn < base_live and not moved[base_lpn]:
                    moved[base_lpn] = 1
                    newly_moved += 1
        if base_live:
            self._base_moved_count += newly_moved
        block_obj.erase()

    # ------------------------------------------------------------------
    # Occupancy helpers
    # ------------------------------------------------------------------
    def utilization(self) -> float:
        """Fraction of physical pages holding live data."""
        total = self.geometry.total_pages
        if total == 0:
            return 0.0
        return self.mapped_pages / total

    def fill(
        self,
        fraction: float,
        *,
        start_lpn: int = 0,
        overwrite_fraction: float = 0.0,
        seed: int = 12345,
    ) -> int:
        """Pre-condition the SSD by writing ``fraction`` of its physical space.

        Used to create the "fragmented SSD filled by 95%" starting point of
        the GC experiment (Figure 17).  ``overwrite_fraction`` is the share
        of the pre-conditioning writes that are *overwrites* of already
        written logical pages, chosen pseudo-randomly (seeded, so runs are
        reproducible).  The overwrites scatter invalid pages across every
        block - exactly what a drive that was filled by random writes looks
        like, and what makes greedy garbage collection productive rather
        than pure thrash.

        Returns the number of page writes performed.  Bookkeeping only - no
        time is simulated.
        """
        if not 0.0 <= fraction <= 1.0:
            raise ValueError("fraction must be in [0, 1]")
        if not 0.0 <= overwrite_fraction < 1.0:
            raise ValueError("overwrite_fraction must be in [0, 1)")
        overwrites = int(self.geometry.total_pages * fraction * overwrite_fraction)
        target = int(self.geometry.total_pages * fraction) - overwrites
        written = 0
        lpn = start_lpn
        while written < target:
            self.translate_write(lpn)
            lpn += 1
            written += 1
        filled = max(1, lpn - start_lpn)
        # Overwrite a pseudo-random subset of the filled logical pages so the
        # surviving valid pages are spread uniformly across blocks (no
        # correlation with the plane/block striping of the first pass).
        rng = random.Random(seed)
        remaining = overwrites
        while remaining > 0:
            batch = min(remaining, filled)
            for offset in rng.sample(range(filled), batch):
                self.translate_write(start_lpn + offset)
            written += batch
            remaining -= batch
        return written
