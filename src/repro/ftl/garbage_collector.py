"""Garbage collection.

The paper implements "a garbage collection strategy similar to the one
employed in [1]" (Agrawal et al.): greedy victim selection per plane, valid
page migration, then a block erase.  Section 5.9 stresses the schedulers
with a 95%-full fragmented SSD so that GC fires constantly, and shows that
Sprinkler's *readdressing callback* (Section 4.3) lets the scheduler follow
the migrations and re-coalesce the remaining memory requests.

:class:`GarbageCollector` decides *when* to collect (free-block watermark per
plane), picks victims, performs the FTL bookkeeping and prices the work; the
simulator turns the returned :class:`GCJob` into chip occupancy.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Tuple

from repro.flash.chip import FlashChip, planes_by_key
from repro.flash.geometry import PhysicalPageAddress, SSDGeometry
from repro.flash.timing import FlashTiming
from repro.ftl.mapping import PageMapFTL
from repro.obs.trace import NULL_SINK


@dataclass
class GCJob:
    """One garbage-collection pass on a single plane."""

    chip_key: tuple
    die: int
    plane: int
    victim_block: int
    migrated_lpns: List[int]
    moves: List[Tuple[PhysicalPageAddress, PhysicalPageAddress]]
    duration_ns: int

    @property
    def pages_moved(self) -> int:
        """Number of valid pages copied out of the victim block."""
        return len(self.migrated_lpns)


@dataclass
class GCStats:
    """Counters describing garbage collection activity."""

    invocations: int = 0
    blocks_erased: int = 0
    pages_migrated: int = 0
    total_gc_time_ns: int = 0
    #: Valid-marked pages with no reverse mapping encountered during
    #: collection.  A non-zero count means FTL bookkeeping diverged from the
    #: block valid bits - tests assert this stays at zero.
    orphaned_pages: int = 0

    def delta(self, baseline: "GCStats") -> "GCStats":
        """Counters accumulated since ``baseline`` (a copy of an earlier self)."""
        return GCStats(
            invocations=self.invocations - baseline.invocations,
            blocks_erased=self.blocks_erased - baseline.blocks_erased,
            pages_migrated=self.pages_migrated - baseline.pages_migrated,
            total_gc_time_ns=self.total_gc_time_ns - baseline.total_gc_time_ns,
            orphaned_pages=self.orphaned_pages - baseline.orphaned_pages,
        )


class GarbageCollector:
    """Greedy per-plane garbage collector."""

    #: Size of the :attr:`history` ring (most recent passes kept).
    HISTORY_LIMIT = 4096

    def __init__(
        self,
        geometry: SSDGeometry,
        timing: FlashTiming,
        ftl: PageMapFTL,
        chips: Dict[tuple, FlashChip],
        *,
        free_block_watermark: int = 2,
        enabled: bool = True,
    ) -> None:
        self.geometry = geometry
        self.timing = timing
        self.ftl = ftl
        self.chips = chips
        self.free_block_watermark = max(1, free_block_watermark)
        self.enabled = enabled
        #: Direct plane lookup - the GC trigger runs once per host page
        #: write (see :func:`repro.flash.chip.planes_by_key`).
        self._planes = planes_by_key(chips)
        #: Per-page program latency, precomputed as a flat array: GC prices
        #: one program per migrated page, and the table turns the per-page
        #: timing-model call into a C list index.
        self._program_ns_by_page = [
            timing.program_latency_ns(page) for page in range(geometry.pages_per_block)
        ]
        #: Prefix sums of the table above: pricing a whole destination run
        #: (contiguous pages ``start..start+count-1``) is two lookups and a
        #: subtraction instead of a per-page loop.
        prefix = [0]
        for latency in self._program_ns_by_page:
            prefix.append(prefix[-1] + latency)
        self._program_ns_prefix = prefix
        self.stats = GCStats()
        #: Trace sink (simulator-attached); ``gc.trigger`` instants are
        #: emitted only for clocked calls (``now_ns`` given), so untimed
        #: preconditioning/aging sweeps never reach the sink.
        self.sink = NULL_SINK
        #: Ordered log of recent collection passes as
        #: ``(chip_key, die, plane, victim_block, pages_moved)`` - the GC job
        #: sequence.  Victim selection ties break on ``(valid_pages,
        #: block_id)`` and plane iteration is ascending ``(die, plane)``, so
        #: identically-seeded runs must produce identical histories (the
        #: determinism regression tests compare these logs directly).  The
        #: log is a ring of the most recent :data:`HISTORY_LIMIT` passes so
        #: a GC-heavy trace replay does not accumulate O(invocations)
        #: memory; aggregate counts live in :attr:`stats`.
        self.history: Deque[Tuple[tuple, int, int, int, int]] = deque(
            maxlen=self.HISTORY_LIMIT
        )

    # ------------------------------------------------------------------
    # Trigger policy
    # ------------------------------------------------------------------
    def plane_needs_gc(self, chip_key: tuple, die: int, plane: int) -> bool:
        """True when the plane's free-block count fell below the watermark."""
        if not self.enabled:
            return False
        chip = self.chips[chip_key]
        plane_obj = chip.plane(die, plane)
        if plane_obj.free_blocks >= self.free_block_watermark:
            return False
        return plane_obj.greedy_victim() is not None

    def planes_needing_gc(self, chip_key: tuple) -> List[tuple]:
        """All ``(die, plane)`` pairs of a chip currently below the watermark.

        The result is explicitly ordered ascending by ``(die, plane)`` so
        multi-plane collection sweeps are deterministic across runs.
        """
        needing = []
        for die in range(self.geometry.dies_per_chip):
            for plane in range(self.geometry.planes_per_die):
                if self.plane_needs_gc(chip_key, die, plane):
                    needing.append((die, plane))
        return needing

    # ------------------------------------------------------------------
    # Collection
    # ------------------------------------------------------------------
    def collect(
        self, chip_key: tuple, die: int, plane: int, victim=None, now_ns: Optional[int] = None
    ) -> Optional[GCJob]:
        """Run one GC pass on a plane: migrate valid pages, erase the victim.

        Returns ``None`` when there is no eligible victim.  All FTL and block
        bookkeeping is applied immediately; the caller is responsible for
        charging ``duration_ns`` of chip busy time.

        Victim selection is deterministic (greedy on valid-page count,
        ties broken on the lowest block id - see
        :meth:`repro.flash.plane.Plane.greedy_victim`), and every pass is
        appended to :attr:`history`.  ``victim`` lets a caller that already
        ran the selection (the trigger check) pass its result in instead of
        scanning the candidate blocks a second time.  ``now_ns`` (the
        simulated clock, when the caller has one) timestamps the
        ``gc.trigger`` trace instant; untimed calls are never traced.
        """
        chip = self.chips[chip_key]
        plane_obj = chip.plane(die, plane)
        if victim is None:
            victim = plane_obj.greedy_victim()
        if victim is None:
            return None
        channel, chip_idx = chip_key
        plane_key = (channel, chip_idx, die, plane)
        block_id = victim.block_id
        # Resolve the victim's valid pages to LPNs in one bulk reverse-map
        # pass (set bits of the mask, ascending page order - identical to
        # scanning every page; greedy victims are mostly invalid).
        pages, lpns = self.ftl.valid_lpns_in_block(plane_key, block_id, victim.valid_mask)
        if None in lpns:
            # Orphaned valid bits: the block says those pages are live but
            # the FTL has no owner for them.  Count them loudly (tests assert
            # the counter stays at zero) instead of dropping them silently.
            live_pages: List[int] = []
            migrated: List[int] = []
            for page, lpn in zip(pages, lpns):
                if lpn is None:
                    self.stats.orphaned_pages += 1
                    victim.invalidate(page)
                else:
                    live_pages.append(page)
                    migrated.append(lpn)
            pages = live_pages
        else:
            migrated = lpns
        # Relocate every live page as one bulk operation: one allocation run
        # per destination block, one victim mask update, one overlay pass.
        runs: List[Tuple[int, int]] = []
        moves = self.ftl.migrate_pages(plane_key, block_id, pages, migrated, runs_out=runs)
        # Price each destination run from the program-latency prefix sums:
        # the run list covers every move (contiguous page spans within one
        # destination block), so the sum equals pricing every move's
        # destination page individually.
        prefix = self._program_ns_prefix
        duration = len(moves) * self.timing.read_ns
        for start, run_count in runs:
            duration += prefix[start + run_count] - prefix[start]
        # migrate_pages just relocated every valid page (and invalidation
        # popped the rest), so the victim has no reverse entries left.
        self.ftl.erase_block(chip_key, die, plane, victim.block_id, swept=True)
        duration += self.timing.erase_latency_ns()
        job = GCJob(
            chip_key=chip_key,
            die=die,
            plane=plane,
            victim_block=victim.block_id,
            migrated_lpns=migrated,
            moves=moves,
            duration_ns=duration,
        )
        self.stats.invocations += 1
        self.stats.blocks_erased += 1
        self.stats.pages_migrated += len(migrated)
        self.stats.total_gc_time_ns += duration
        self.history.append((chip_key, die, plane, victim.block_id, len(migrated)))
        if now_ns is not None and self.sink.enabled:
            self.sink.instant(
                "gc.trigger",
                category="ftl",
                track=f"chip {chip_key[0]}.{chip_key[1]}",
                ts_ns=now_ns,
                die=die,
                plane=plane,
                victim_block=victim.block_id,
                pages_migrated=len(migrated),
                duration_ns=duration,
            )
        return job

    def collect_if_needed(self, chip_key: tuple) -> List[GCJob]:
        """Collect every plane of a chip that is below the watermark."""
        jobs: List[GCJob] = []
        for die, plane in self.planes_needing_gc(chip_key):
            job = self.collect(chip_key, die, plane)
            if job is not None:
                jobs.append(job)
        return jobs

    def collect_plane_if_needed(
        self, chip_key: tuple, die: int, plane: int, now_ns: Optional[int] = None
    ) -> Optional[GCJob]:
        """Collect one victim on a specific plane when it is below the watermark.

        This is the trigger the simulator uses: garbage collection fires in
        proportion to the pages *consumed on that plane* (one victim per
        trigger), which keeps the write-amplification behaviour realistic
        instead of re-collecting every plane of a chip on every host write.
        """
        if not self.enabled:
            return None
        plane_obj = self._planes[(chip_key[0], chip_key[1], die, plane)]
        if plane_obj.free_blocks >= self.free_block_watermark:
            return None
        victim = plane_obj.greedy_victim()
        if victim is None:
            return None
        return self.collect(chip_key, die, plane, victim=victim, now_ns=now_ns)
