"""Readdressing callback (paper Section 4.3).

Live data migration (garbage collection, wear levelling, bad-block
replacement) changes physical addresses *while I/O requests are in flight*.
A physical-address-aware scheduler whose committed memory requests point at
the old locations would execute stale accesses.

Sprinkler solves this with a *readdressing callback*: whenever the FTL moves
a live page between different flash internal resources, the callback updates
the physical layout information held by the device-level scheduler and by the
flash controllers' commit queues.  Schedulers without the callback (VAS and
PAS in the paper's Section 5.9 experiment) pay a penalty instead: their stale
requests must be re-translated and re-issued when they reach the chip.

:class:`ReaddressingCallback` is registered as an FTL migration listener and
keeps a per-simulation record of moves, retargets pending memory requests in
the flash controllers, and counts how many in-flight requests would have gone
stale (so the penalty model of the simulator can charge them).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

from repro.flash.controller import FlashController
from repro.flash.geometry import PhysicalPageAddress
from repro.flash.request import MemoryRequest


@dataclass
class CallbackStats:
    """Counters describing readdressing-callback activity."""

    migrations_observed: int = 0
    requests_retargeted: int = 0
    requests_penalized: int = 0
    cross_resource_migrations: int = 0


class ReaddressingCallback:
    """Keeps scheduler-side layout information consistent across migrations.

    When ``enabled`` is False (VAS and PAS in the paper's GC experiment) the
    object still tracks committed requests, but a migration that hits one of
    them charges ``stale_penalty_ns`` of extra service time instead of a
    clean retarget - the request has to be re-translated and re-issued when
    the controller discovers the stale address.
    """

    def __init__(self, *, enabled: bool = True, stale_penalty_ns: int = 0) -> None:
        self.enabled = enabled
        self.stale_penalty_ns = stale_penalty_ns
        self.stats = CallbackStats()
        self._controllers: Dict[int, FlashController] = {}
        self._pending_index: Dict[PhysicalPageAddress, List[MemoryRequest]] = {}
        self._extra_listeners: List[Callable[[int, PhysicalPageAddress, PhysicalPageAddress], None]] = []
        #: True while every extra listener declared (via its owner's
        #: ``migration_ignores_same_plane`` attribute) that same-plane moves
        #: are no-ops for it - lets the batched path skip the listener round
        #: trip for the common same-plane GC copyback.
        self._listeners_ignore_same_plane = True

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def attach_controller(self, channel_id: int, controller: FlashController) -> None:
        """Register the flash controller responsible for a channel."""
        self._controllers[channel_id] = controller

    def add_listener(
        self, listener: Callable[[int, PhysicalPageAddress, PhysicalPageAddress], None]
    ) -> None:
        """Register an extra observer of migrations (e.g. the scheduler)."""
        self._extra_listeners.append(listener)
        owner = getattr(listener, "__self__", None)
        if not getattr(owner, "migration_ignores_same_plane", False):
            self._listeners_ignore_same_plane = False

    def track_request(self, request: MemoryRequest) -> None:
        """Start tracking a committed memory request for possible retargeting."""
        if request.address is None:
            return
        self._pending_index.setdefault(request.address, []).append(request)

    def untrack_request(self, request: MemoryRequest) -> None:
        """Stop tracking a request (it started executing or completed)."""
        if request.address is None:
            return
        bucket = self._pending_index.get(request.address)
        if not bucket:
            return
        # Delete in place instead of rebuilding the bucket: untrack runs once
        # per retired memory request, and the rebuild churned a fresh list
        # (plus a second dict lookup) every time.
        request_id = request.request_id
        for index, req in enumerate(bucket):
            if req.request_id == request_id:
                del bucket[index]
                break
        if not bucket:
            del self._pending_index[request.address]

    # ------------------------------------------------------------------
    # FTL migration listener
    # ------------------------------------------------------------------
    def on_migration(
        self, lpn: int, old: PhysicalPageAddress, new: PhysicalPageAddress
    ) -> None:
        """FTL listener: a live page moved from ``old`` to ``new``."""
        self.stats.migrations_observed += 1
        if not old.same_plane_as(new):
            self.stats.cross_resource_migrations += 1
        for listener in self._extra_listeners:
            listener(lpn, old, new)
        # The callback is only invoked for retargeting when data moved
        # between different flash internal resources (paper Section 4.3);
        # same-plane copyback keeps the resource layout unchanged.
        stale = self._pending_index.pop(old, None)
        if stale is None:
            return
        for request in stale:
            request.retarget(new)
            if self.enabled:
                self.stats.requests_retargeted += 1
            else:
                # Without the callback the scheduler keeps scheduling against
                # stale layout information; the request pays a re-translation
                # and re-issue penalty when it finally executes.
                request.penalty_ns += self.stale_penalty_ns
                self.stats.requests_penalized += 1
            self._pending_index.setdefault(new, []).append(request)

    def on_migrations(
        self,
        lpns: List[int],
        moves: List[tuple],
        *,
        all_same_plane: bool = False,
    ) -> None:
        """Batched :meth:`on_migration`: one call per garbage-collection pass.

        Semantics and counters are identical to calling :meth:`on_migration`
        once per ``(lpns[i], *moves[i])`` in order; the batch hoists the
        per-move attribute walks and, when every extra listener declared
        same-plane moves to be no-ops for it, skips their round trip for the
        in-plane copyback that dominates GC relocation.

        ``all_same_plane=True`` is the caller's guarantee that every move
        stays within its source plane (the FTL knows this from its
        allocation runs); the batch then skips the per-move plane
        comparison entirely and, when the listeners allow it, reduces to
        pure pending-index maintenance.
        """
        stats = self.stats
        stats.migrations_observed += len(moves)
        pending_pop = self._pending_index.pop
        pending_setdefault = self._pending_index.setdefault
        listeners = self._extra_listeners
        skip_same_plane = self._listeners_ignore_same_plane
        enabled = self.enabled
        penalty_ns = self.stale_penalty_ns
        if all_same_plane and (skip_same_plane or not listeners):
            # Fast path: no cross-resource counting, no listener round
            # trips - only in-flight requests aimed at a moved page need
            # attention, and when nothing is tracked at all the whole pass
            # is a no-op.
            pending = self._pending_index
            if not pending:
                return
            if len(pending) * 4 <= len(moves):
                # Far fewer tracked addresses than moves: probe the move
                # table from the pending side instead of walking every move.
                # dict(moves) builds at C speed; iteration order of the
                # stale buckets does not matter because each old address
                # retargets independently.
                move_map = dict(moves)
                move_get = move_map.get
                for old in list(pending):
                    new = move_get(old)
                    if new is None:
                        continue
                    stale = pending_pop(old)
                    for request in stale:
                        request.retarget(new)
                        if enabled:
                            stats.requests_retargeted += 1
                        else:
                            request.penalty_ns += penalty_ns
                            stats.requests_penalized += 1
                        pending_setdefault(new, []).append(request)
                return
            for old, new in moves:
                stale = pending_pop(old, None)
                if stale is None:
                    continue
                for request in stale:
                    request.retarget(new)
                    if enabled:
                        stats.requests_retargeted += 1
                    else:
                        request.penalty_ns += penalty_ns
                        stats.requests_penalized += 1
                    pending_setdefault(new, []).append(request)
            return
        for index, move in enumerate(moves):
            old, new = move
            same_plane = all_same_plane or (
                old[0] == new[0]
                and old[1] == new[1]
                and old[2] == new[2]
                and old[3] == new[3]
            )
            if not same_plane:
                stats.cross_resource_migrations += 1
            if listeners and not (same_plane and skip_same_plane):
                lpn = lpns[index]
                for listener in listeners:
                    listener(lpn, old, new)
            stale = pending_pop(old, None)
            if stale is None:
                continue
            for request in stale:
                request.retarget(new)
                if enabled:
                    stats.requests_retargeted += 1
                else:
                    request.penalty_ns += penalty_ns
                    stats.requests_penalized += 1
                pending_setdefault(new, []).append(request)

    # ------------------------------------------------------------------
    # Queries used by the simulator's penalty model
    # ------------------------------------------------------------------
    def tracked_requests(self) -> int:
        """Number of memory requests currently tracked."""
        return sum(len(bucket) for bucket in self._pending_index.values())

    def clear(self) -> None:
        """Drop all tracked state (between simulation runs)."""
        self._pending_index.clear()
