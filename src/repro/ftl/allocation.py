"""Page allocation strategies.

The order in which the FTL stripes consecutive logical pages across the
SSD's resources determines how much system-level and flash-level parallelism
a single I/O request can reach (the "page allocation schemes" the paper cites
[16, 36, 13]).  The default order - channel, then way (chip), then die, then
plane - maximises channel striping for sequential traffic, which is the
common choice in the literature and the layout the paper's examples assume.

The allocator owns one write point per plane and hands out free pages in the
configured striping order.  It is used both for the *static* layout (the
physical home of never-written logical pages) and for *dynamic* allocation of
new page versions on writes.
"""

from __future__ import annotations

import enum
import itertools
from typing import Dict, Iterator, Optional, Sequence

from repro.flash.chip import FlashChip, planes_by_key
from repro.flash.geometry import PhysicalPageAddress, SSDGeometry


class AllocationOrder(enum.Enum):
    """Striping order for consecutive allocations."""

    CHANNEL_WAY_DIE_PLANE = "channel_way_die_plane"
    WAY_CHANNEL_DIE_PLANE = "way_channel_die_plane"
    CHANNEL_DIE_PLANE_WAY = "channel_die_plane_way"
    PLANE_DIE_WAY_CHANNEL = "plane_die_way_channel"


def _dimension_sizes(geometry: SSDGeometry) -> Dict[str, int]:
    return {
        "channel": geometry.num_channels,
        "way": geometry.chips_per_channel,
        "die": geometry.dies_per_chip,
        "plane": geometry.planes_per_die,
    }


_ORDER_FIELDS = {
    AllocationOrder.CHANNEL_WAY_DIE_PLANE: ("channel", "way", "die", "plane"),
    AllocationOrder.WAY_CHANNEL_DIE_PLANE: ("way", "channel", "die", "plane"),
    AllocationOrder.CHANNEL_DIE_PLANE_WAY: ("channel", "die", "plane", "way"),
    AllocationOrder.PLANE_DIE_WAY_CHANNEL: ("plane", "die", "way", "channel"),
}


class PageAllocator:
    """Round-robin page allocator over the SSD's planes."""

    def __init__(
        self,
        geometry: SSDGeometry,
        chips: Dict[tuple, FlashChip],
        order: AllocationOrder = AllocationOrder.CHANNEL_WAY_DIE_PLANE,
    ) -> None:
        self.geometry = geometry
        self.chips = chips
        self.order = order
        self._plane_sequence = list(self._iter_plane_keys())
        self._cursor = 0
        # Hot-path constants (static_address runs once per translated read).
        self._num_planes = len(self._plane_sequence)
        self._pages_per_plane = geometry.pages_per_plane
        self._pages_per_block = geometry.pages_per_block
        # Direct plane lookup: allocation runs once per page write (see
        # repro.flash.chip.planes_by_key).
        self._planes_by_key = planes_by_key(chips)

    # ------------------------------------------------------------------
    # Plane traversal
    # ------------------------------------------------------------------
    def _iter_plane_keys(self) -> Iterator[tuple]:
        """Yield (channel, chip, die, plane) keys in the configured order."""
        sizes = _dimension_sizes(self.geometry)
        fields = _ORDER_FIELDS[self.order]
        # The first field varies fastest.
        ranges = [range(sizes[name]) for name in reversed(fields)]
        for combo in itertools.product(*ranges):
            values = dict(zip(reversed(fields), combo))
            yield (values["channel"], values["way"], values["die"], values["plane"])

    @property
    def plane_sequence(self) -> Sequence[tuple]:
        """The striping sequence of plane keys used by this allocator."""
        return tuple(self._plane_sequence)

    @property
    def cursor(self) -> int:
        """Index into :attr:`plane_sequence` of the next round-robin target."""
        return self._cursor

    @cursor.setter
    def cursor(self, value: int) -> None:
        """Reposition the round-robin cursor (fast-forward aging support).

        Setting the cursor to ``n % len(plane_sequence)`` leaves the
        allocator exactly where ``n`` fresh-device allocations would have,
        so bulk-programmed state stays bit-identical to a write-by-write
        replay.
        """
        if not 0 <= value < len(self._plane_sequence):
            raise ValueError(f"cursor {value} out of range")
        self._cursor = value

    def plane_for_stripe(self, stripe_index: int) -> tuple:
        """Plane key hosting the ``stripe_index``-th page of a striped layout."""
        return self._plane_sequence[stripe_index % len(self._plane_sequence)]

    # ------------------------------------------------------------------
    # Static layout
    # ------------------------------------------------------------------
    def static_address(self, lpn: int) -> PhysicalPageAddress:
        """Deterministic physical home of a logical page that was never written.

        Logical pages are striped across planes in the allocation order;
        within a plane they fill blocks sequentially.  The result is the
        layout a freshly-imaged SSD would exhibit, used to serve reads of
        never-written data.
        """
        if lpn < 0:
            raise ValueError("lpn must be non-negative")
        stripe, within_plane = lpn % self._num_planes, lpn // self._num_planes
        channel, chip, die, plane = self._plane_sequence[stripe]
        within_plane %= self._pages_per_plane
        block, page = divmod(within_plane, self._pages_per_block)
        return PhysicalPageAddress(channel, chip, die, plane, block, page)

    # ------------------------------------------------------------------
    # Dynamic allocation
    # ------------------------------------------------------------------
    def allocate(self, preferred_plane: Optional[tuple] = None) -> PhysicalPageAddress:
        """Allocate a free physical page for a new write.

        When ``preferred_plane`` is given (GC migrations stay inside their
        plane to keep copyback legal) the page is taken from that plane;
        otherwise the allocator round-robins across planes in striping order.
        Raises ``RuntimeError`` when the whole SSD is out of free pages.
        """
        if preferred_plane is not None:
            address = self._allocate_in_plane(preferred_plane)
            if address is not None:
                return address
            # Preferred plane full: fall through to the global round-robin.
        num_planes = len(self._plane_sequence)
        for step in range(num_planes):
            plane_key = self._plane_sequence[(self._cursor + step) % num_planes]
            address = self._allocate_in_plane(plane_key)
            if address is not None:
                self._cursor = (self._cursor + step + 1) % num_planes
                return address
        raise RuntimeError("SSD is out of free pages; garbage collection cannot keep up")

    def _allocate_in_plane(self, plane_key: tuple) -> Optional[PhysicalPageAddress]:
        plane_obj = self._planes_by_key[plane_key]
        # Ask the plane directly instead of pre-scanning free_pages: the
        # common case (active block has room) is O(1), and a full plane
        # reports itself via RuntimeError.  The free_pages scan was the
        # dominant cost of write-heavy bookkeeping (aging, GC migrations).
        try:
            block, page = plane_obj.allocate_page()
        except RuntimeError:
            return None
        channel, chip, die, plane = plane_key
        return PhysicalPageAddress(channel, chip, die, plane, block, page)

    def free_pages(self) -> int:
        """Total number of free pages across the SSD."""
        return sum(chip.free_pages for chip in self.chips.values())
