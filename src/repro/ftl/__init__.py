"""Flash Translation Layer substrate.

The FTL runs on the SSD's embedded core (paper Section 2.1): it translates
host logical page numbers into physical flash addresses, allocates pages for
writes, keeps valid/invalid bookkeeping, reclaims space through garbage
collection, tracks wear and remaps bad blocks, and - specific to Sprinkler -
invokes the *readdressing callback* so the device-level scheduler can follow
live data migrations.
"""

from repro.ftl.allocation import AllocationOrder, PageAllocator
from repro.ftl.mapping import PageMapFTL
from repro.ftl.garbage_collector import GarbageCollector, GCJob, GCStats
from repro.ftl.wear_leveling import WearLeveler, WearStats, wear_stats
from repro.ftl.bad_block import BadBlockManager
from repro.ftl.callbacks import ReaddressingCallback

__all__ = [
    "AllocationOrder",
    "PageAllocator",
    "PageMapFTL",
    "GarbageCollector",
    "GCJob",
    "GCStats",
    "WearLeveler",
    "WearStats",
    "wear_stats",
    "BadBlockManager",
    "ReaddressingCallback",
]
