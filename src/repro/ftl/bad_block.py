"""Bad block management.

NAND blocks wear out or arrive factory-bad; the firmware retires them and
remaps their live contents elsewhere.  The paper lists bad-block replacement
as the third source of live data migration handled by the readdressing
callback (Section 4.3).  :class:`BadBlockManager` supports both
factory-marked bad blocks (configured up front) and grown bad blocks
(injected at runtime, e.g. by tests or failure-injection experiments).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.flash.chip import FlashChip
from repro.flash.geometry import PhysicalPageAddress, SSDGeometry
from repro.ftl.mapping import PageMapFTL


@dataclass
class BadBlockRecord:
    """One retired block."""

    chip_key: tuple
    die: int
    plane: int
    block: int
    grown: bool
    pages_relocated: int


class BadBlockManager:
    """Tracks retired blocks and relocates their live data."""

    def __init__(
        self,
        geometry: SSDGeometry,
        ftl: PageMapFTL,
        chips: Dict[tuple, FlashChip],
    ) -> None:
        self.geometry = geometry
        self.ftl = ftl
        self.chips = chips
        self.records: List[BadBlockRecord] = []

    @property
    def bad_block_count(self) -> int:
        """Number of blocks retired so far."""
        return len(self.records)

    def is_bad(self, chip_key: tuple, die: int, plane: int, block: int) -> bool:
        """True when a block has been retired."""
        plane_obj = self.chips[chip_key].plane(die, plane)
        return plane_obj.blocks[block].is_bad

    def mark_factory_bad(self, chip_key: tuple, die: int, plane: int, block: int) -> None:
        """Retire a block that never held data (factory bad block)."""
        plane_obj = self.chips[chip_key].plane(die, plane)
        block_obj = plane_obj.blocks[block]
        if block_obj.write_pointer > 0:
            raise ValueError("factory bad blocks must be marked before any write")
        block_obj.mark_bad()
        self.records.append(
            BadBlockRecord(chip_key, die, plane, block, grown=False, pages_relocated=0)
        )

    def retire_block(
        self, chip_key: tuple, die: int, plane: int, block: int
    ) -> BadBlockRecord:
        """Retire a grown bad block, relocating any live pages first.

        Returns the record describing the retirement.  Live pages are moved
        through the FTL's migration path, so registered migration listeners
        (including the readdressing callback) observe every move.
        """
        channel, chip_idx = chip_key
        plane_obj = self.chips[chip_key].plane(die, plane)
        block_obj = plane_obj.blocks[block]
        relocated = 0
        for page in range(block_obj.pages_per_block):
            if not block_obj.is_valid(page):
                continue
            address = PhysicalPageAddress(
                channel=channel, chip=chip_idx, die=die, plane=plane, block=block, page=page
            )
            lpn = self.ftl.reverse_lookup(address)
            if lpn is None:
                block_obj.invalidate(page)
                continue
            self.ftl.migrate_page(lpn)
            relocated += 1
        block_obj.mark_bad()
        record = BadBlockRecord(
            chip_key, die, plane, block, grown=True, pages_relocated=relocated
        )
        self.records.append(record)
        return record

    def spare_capacity_pages(self) -> int:
        """Programmable pages remaining after excluding retired blocks."""
        return sum(chip.free_pages for chip in self.chips.values())
