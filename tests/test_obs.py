"""Tests for the observability package (``repro.obs``).

The contracts pinned here, in the order the package layers them:

* counters - the registry is a plain dict with aggregation semantics,
  and merging sums everything except the ``*.largest_batch`` maxima;
* tracing - a memory sink records spans, the null sink costs nothing,
  and a traced run's SimulationResult is digest-identical to an untraced
  run of the same job (tracing observes, never perturbs);
* windowed tails - the streaming per-window p50/p99/p999 series equals a
  brute-force full-history reference on every tiny-suite case;
* export - the Chrome-trace JSON validates, and its event count
  reconciles exactly with the counter registry;
* plumbing - ``--trace-dir`` artifacts from the engine and the
  checkpoint path, and the ``python -m repro.obs`` CLI.
"""

from __future__ import annotations

import json

import pytest

from repro.checkpoint.store import CheckpointStore, run_job_checkpointed
from repro.experiments.engine import ExecutionEngine
from repro.experiments.runner import (
    ExperimentScale,
    default_workload_specs,
    paper_config,
)
from repro.experiments.spec import ExperimentSpec
from repro.metrics.collector import MetricsCollector
from repro.metrics.report import SimulationResult
from repro.obs import (
    NULL_SINK,
    CounterRegistry,
    MemoryTraceSink,
    chrome_trace_document,
    load_trace,
    merge_counter_snapshots,
    reference_tail_windows,
    span_event_count,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.obs.__main__ import main as obs_main
from repro.obs.runner import run_traced
from repro.obs.windows import format_tail_windows
from repro.perf.compare import CaseDelta, Comparison
from repro.perf.suite import tiny_suite
from repro.sim.config import stable_fingerprint
from repro.sim.ssd import SSDSimulator
from repro.workloads.request import IOKind, IORequest

KB = 1024


def tiny_jobs():
    for case in tiny_suite():
        for job in case.jobs:
            yield case.name, job


def one_tiny_job(case_name="tiny-bursty"):
    for name, job in tiny_jobs():
        if name == case_name:
            return job
    raise AssertionError(f"no tiny-suite case named {case_name}")


class TestCounterRegistry:
    def test_increment_and_snapshot_sorted(self):
        counters = CounterRegistry()
        counters.increment("b.second")
        counters.increment("a.first", 3)
        counters.increment("b.second", 2)
        assert counters.snapshot() == {"a.first": 3, "b.second": 3}
        assert list(counters.snapshot()) == ["a.first", "b.second"]

    def test_record_max_keeps_high_water_mark(self):
        counters = CounterRegistry()
        counters.record_max("batch", 4)
        counters.record_max("batch", 2)
        assert counters.get("batch") == 4

    def test_update_overwrites_and_contains(self):
        counters = CounterRegistry({"x": 1})
        counters.update({"x": 2, "y": 5})
        assert "y" in counters
        assert counters.get("x") == 2
        assert len(counters) == 2

    def test_merge_sums_but_maxes_largest_batch(self):
        merged = merge_counter_snapshots(
            [
                {"events.processed": 10, "events.largest_batch": 4},
                {"events.processed": 7, "events.largest_batch": 9},
            ]
        )
        assert merged == {"events.processed": 17, "events.largest_batch": 9}


class TestTraceSinks:
    def test_null_sink_is_disabled_and_silent(self):
        assert NULL_SINK.enabled is False
        NULL_SINK.span("x", category="c", track="t", start_ns=0, duration_ns=1)
        NULL_SINK.instant("x", category="c", track="t", ts_ns=0)

    def test_memory_sink_records_and_ranks(self):
        sink = MemoryTraceSink()
        assert sink.enabled is True
        sink.span("short", category="c", track="t", start_ns=0, duration_ns=10)
        sink.span("long", category="c", track="t", start_ns=5, duration_ns=90)
        sink.instant("mark", category="c", track="t", ts_ns=7)
        assert sink.total_records == 3
        assert sink.counts_by_name() == {"short": 1, "long": 1, "mark": 1}
        longest = sink.longest(limit=1)
        assert [record.name for record in longest] == ["long"]


class TestWindowedTailsAgainstReference:
    @pytest.mark.parametrize(
        "case_name,job_index",
        [
            (case.name, index)
            for case in tiny_suite()
            for index in range(len(case.jobs))
        ],
    )
    def test_streaming_series_matches_full_history_reference(
        self, case_name, job_index
    ):
        case = {c.name: c for c in tiny_suite()}[case_name]
        result = case.jobs[job_index].execute()
        reference = reference_tail_windows(result.time_series)
        assert tuple(result.latency_windows) == tuple(reference)
        # Sanity: the windows partition all completions.
        assert sum(w.count for w in result.latency_windows) == result.completed_ios

    def test_windowed_collector_mode_keeps_exact_recent_windows(self):
        full = MetricsCollector(tail_window_ns=1_000)
        bounded = MetricsCollector(history="windowed", window=4, tail_window_ns=1_000)
        for i in range(200):
            io = IORequest(
                kind=IOKind.READ,
                offset_bytes=0,
                size_bytes=4 * KB,
                arrival_ns=i * 500,
            )
            for collector in (full, bounded):
                collector.on_io_arrival(io)
                collector.on_io_complete(io, io.arrival_ns + 2_000 + (i % 3) * 100)
        reference = full.tail.finish()
        retained = bounded.tail.finish()
        assert len(retained) == 4
        assert retained == reference[-4:]

    def test_format_tail_windows_renders_every_window(self):
        result = one_tiny_job().execute()
        table = format_tail_windows(result.latency_windows)
        assert len(table.splitlines()) == len(result.latency_windows) + 1


class TestTracingDoesNotPerturb:
    @pytest.mark.parametrize("case_name", sorted({c.name for c in tiny_suite()}))
    def test_traced_run_is_digest_identical(self, case_name):
        case = {c.name: c for c in tiny_suite()}[case_name]
        for job in case.jobs:
            plain = job.execute()
            traced, sink = run_traced(job)
            assert stable_fingerprint(traced) == stable_fingerprint(plain)
            assert sink.total_records > 0

    def test_traced_checkpoint_resume_is_digest_identical(self, tmp_path):
        job = one_tiny_job()
        plain = job.execute()
        store = CheckpointStore(tmp_path / "ckpt")
        result = run_job_checkpointed(
            job, store, every_events=150, trace_dir=tmp_path / "traces"
        )
        assert stable_fingerprint(result) == stable_fingerprint(plain)
        artifacts = list((tmp_path / "traces").glob("*.trace.json"))
        assert len(artifacts) == 1
        document = load_trace(artifacts[0])
        assert validate_chrome_trace(document) == []
        # Spans accumulated across checkpoint segments must reconcile with
        # the counter registry of the final result.
        assert span_event_count(document) == result.counters["trace.spans"]


class TestSpanCounterReconciliation:
    def test_span_counts_reconcile_with_counters(self):
        job = one_tiny_job()
        result, sink = run_traced(job)
        counts = sink.counts_by_name()
        assert counts["io"] == result.counters["io.completed"]
        assert counts["txn"] == result.counters["transactions.host"]
        assert counts.get("gc", 0) == result.counters["transactions.gc"]
        assert counts.get("gc.trigger", 0) == result.counters["gc.triggers"]
        assert sink.total_records == result.counters["trace.spans"]

    def test_gc_case_emits_gc_spans(self):
        result, sink = run_traced(one_tiny_job("tiny-gc"))
        counts = sink.counts_by_name()
        assert result.counters["gc.triggers"] > 0
        assert counts["gc.trigger"] == result.counters["gc.triggers"]
        assert counts["gc"] == result.counters["transactions.gc"] > 0

    def test_untraced_run_still_reports_counters(self):
        result = one_tiny_job().execute()
        assert result.counters["trace.spans"] == 0
        assert result.counters["io.completed"] == result.completed_ios
        assert result.counters["events.processed"] == result.events_processed
        assert result.events_processed > 0
        assert result.event_batches > 0
        assert result.largest_event_batch >= 1


class TestChromeTraceExport:
    def test_document_validates_and_counts(self, tmp_path):
        result, sink = run_traced(one_tiny_job())
        document = chrome_trace_document(sink, {"case": "tiny-bursty"})
        assert validate_chrome_trace(document) == []
        assert span_event_count(document) == sink.total_records
        path = write_chrome_trace(tmp_path / "out.trace.json", sink)
        loaded = load_trace(path)
        assert validate_chrome_trace(loaded) == []
        assert span_event_count(loaded) == sink.total_records

    def test_multi_sink_document_separates_processes(self):
        a, b = MemoryTraceSink(), MemoryTraceSink()
        a.span("x", category="c", track="t", start_ns=0, duration_ns=5)
        b.span("y", category="c", track="t", start_ns=0, duration_ns=5)
        document = chrome_trace_document([("job-a", a), ("job-b", b)])
        assert validate_chrome_trace(document) == []
        pids = {
            event["pid"]
            for event in document["traceEvents"]
            if event["ph"] in ("X", "i")
        }
        assert len(pids) == 2

    def test_validator_flags_malformed_documents(self):
        assert validate_chrome_trace({"traceEvents": "nope"})
        missing_keys = {
            "traceEvents": [{"ph": "X", "name": "n"}],
            "displayTimeUnit": "ns",
        }
        assert validate_chrome_trace(missing_keys)


class TestResultBackCompat:
    def test_old_results_default_observability_fields(self):
        result = one_tiny_job().execute()
        state = {
            key: value
            for key, value in result.__dict__.items()
            if key
            not in (
                "events_processed",
                "event_batches",
                "largest_event_batch",
                "counters",
                "latency_windows",
            )
        }
        old = object.__new__(SimulationResult)
        old.__dict__.update(state)
        assert old.events_processed == 0
        assert old.counters == {}
        assert old.latency_windows == ()
        with pytest.raises(AttributeError):
            old.not_a_field


class TestEngineTraceDir:
    def test_engine_writes_one_artifact_per_job(self, tmp_path):
        scale = ExperimentScale(
            requests_per_trace=24,
            requests_per_point=6,
            num_chips=16,
            traces=("cfs0",),
            seed=3,
        )
        spec = ExperimentSpec.matrix(
            "tiny-obs",
            default_workload_specs(scale).values(),
            ("SPK3",),
            paper_config(scale),
        )
        engine = ExecutionEngine("serial", trace_dir=tmp_path / "traces")
        plain = ExecutionEngine("serial").run(spec)
        traced = engine.run(spec)
        assert stable_fingerprint(traced) == stable_fingerprint(plain)
        artifacts = sorted((tmp_path / "traces").glob("*.trace.json"))
        assert len(artifacts) == len(spec.jobs)
        for path in artifacts:
            document = load_trace(path)
            assert validate_chrome_trace(document) == []
            assert span_event_count(document) > 0


class TestCompareFailureReasons:
    def make_comparison(self):
        slow = CaseDelta(
            name="slowpoke",
            baseline_eps=1000.0,
            current_eps=100.0,
            comparable=True,
            digests_match=True,
        )
        return Comparison(
            threshold=0.25,
            deltas=(slow,),
            missing=("vanished", "gone"),
            new=("fresh",),
        )

    def test_failure_reasons_name_the_cases(self):
        comparison = self.make_comparison()
        assert not comparison.ok
        reasons = comparison.failure_reasons()
        assert any("vanished, gone" in reason for reason in reasons)
        assert any("slowpoke" in reason for reason in reasons)

    def test_report_lists_reasons_on_fail_only(self):
        comparison = self.make_comparison()
        report = comparison.report()
        assert "FAIL: missing from current trajectory: vanished, gone" in report
        assert "FAIL: events/sec regressed: slowpoke (0.10x)" in report
        passing = Comparison(threshold=0.25, deltas=(), missing=(), new=())
        assert passing.ok
        assert "FAIL:" not in passing.report()
        assert passing.failure_reasons() == ()


class TestCli:
    def test_export_summarize_and_top_spans(self, tmp_path, capsys):
        out = tmp_path / "case.trace.json"
        assert (
            obs_main(["export", "--case", "tiny-grid", "--tiny", "-o", str(out)]) == 0
        )
        document = json.loads(out.read_text())
        assert validate_chrome_trace(document) == []
        assert obs_main(["summarize", str(out)]) == 0
        summary = capsys.readouterr().out
        assert "counters:" in summary
        assert "io" in summary
        assert obs_main(["top-spans", str(out), "-n", "3"]) == 0
        top = capsys.readouterr().out
        assert len(top.strip().splitlines()) == 4

    def test_export_unknown_case_fails_cleanly(self, tmp_path):
        code = obs_main(
            ["export", "--case", "no-such", "--tiny", "-o", str(tmp_path / "x.json")]
        )
        assert code == 2


class TestTracedSimulatorWiring:
    def test_sink_propagates_to_components(self, test_config):
        sink = MemoryTraceSink()
        simulator = SSDSimulator(test_config, "SPK3", trace_sink=sink)
        assert simulator.sink is sink
        assert simulator._tracing is True
        assert simulator.gc.sink is sink
        assert all(c.sink is sink for c in simulator.controllers.values())
        assert simulator.scheduler.sink is sink

    def test_default_is_null_sink(self, test_config):
        simulator = SSDSimulator(test_config, "SPK3")
        assert simulator.sink is NULL_SINK
        assert simulator._tracing is False
