"""Tests for the multi-SSD array layer (layout, host merge, array_scaling)."""

import pickle

import pytest

from repro.array.host import ArrayResult, ArraySimulation, merge_device_results
from repro.array.layout import ArrayLayout, split_trace
from repro.experiments import array_scaling
from repro.experiments.engine import ExecutionEngine
from repro.experiments.spec import ArraySpec, WorkloadSpec
from repro.sim.config import SimulationConfig
from repro.workloads.request import IOKind, IORequest

KB = 1024

SMALL_ARRAY_CONFIG = SimulationConfig.paper_scale(16).with_overrides(gc_enabled=False)


def demo_workload(num_requests=16, size_bytes=96 * KB, seed=5) -> WorkloadSpec:
    return WorkloadSpec.random(
        "array-demo",
        num_requests=num_requests,
        size_bytes=size_bytes,
        read_fraction=1.0,
        seed=seed,
    )


def one_request(offset, size, *, kind=IOKind.READ, arrival=0) -> IORequest:
    return IORequest(kind=kind, offset_bytes=offset, size_bytes=size, arrival_ns=arrival)


class TestArrayLayout:
    def test_validation(self):
        with pytest.raises(ValueError):
            ArrayLayout(num_devices=0)
        with pytest.raises(ValueError):
            ArrayLayout(num_devices=2, policy="raid6")
        with pytest.raises(ValueError):
            ArrayLayout(num_devices=2, chunk_bytes=0)
        with pytest.raises(ValueError):
            ArrayLayout(num_devices=2, policy="range", shard_bytes=-1)

    def test_stripe_round_robin_and_local_offsets(self):
        layout = ArrayLayout(num_devices=2, policy="stripe", chunk_bytes=4 * KB)
        # One request covering stripe units 0..3 -> units 0,2 on dev0 and
        # 1,3 on dev1, each pair contiguous in its device's local space.
        subs = split_trace([one_request(0, 16 * KB)], layout)
        assert [(io.offset_bytes, io.size_bytes) for io in subs[0]] == [(0, 8 * KB)]
        assert [(io.offset_bytes, io.size_bytes) for io in subs[1]] == [(0, 8 * KB)]

    def test_stripe_small_requests_stay_whole(self):
        layout = ArrayLayout(num_devices=4, policy="stripe", chunk_bytes=64 * KB)
        subs = split_trace([one_request(64 * KB * unit, 4 * KB) for unit in range(8)], layout)
        # Unit u -> device u % 4 at local unit u // 4.
        for device, sub in enumerate(subs):
            assert [io.offset_bytes for io in sub] == [0, 64 * KB]
            assert all(io.size_bytes == 4 * KB for io in sub)

    def test_range_sharding_keeps_locality(self):
        layout = ArrayLayout(num_devices=2, policy="range", shard_bytes=128 * KB)
        subs = split_trace(
            [one_request(0, 8 * KB), one_request(130 * KB, 8 * KB), one_request(126 * KB, 4 * KB)],
            layout,
        )
        # The 126KB request straddles the shard edge and splits.
        assert [(io.offset_bytes, io.size_bytes) for io in subs[0]] == [
            (0, 8 * KB),
            (126 * KB, 2 * KB),
        ]
        assert [(io.offset_bytes, io.size_bytes) for io in subs[1]] == [
            (2 * KB, 8 * KB),
            (0, 2 * KB),
        ]

    def test_range_offsets_past_last_shard_clamp(self):
        layout = ArrayLayout(num_devices=2, policy="range", shard_bytes=64 * KB)
        subs = split_trace([one_request(1024 * KB, 4 * KB)], layout)
        assert subs[0] == []
        assert subs[1][0].offset_bytes == 1024 * KB - 64 * KB

    @pytest.mark.parametrize("policy", ["stripe", "range", "hash"])
    def test_bytes_kinds_and_arrivals_conserved(self, policy):
        trace = demo_workload(num_requests=24).build()
        trace[3].kind = IOKind.WRITE
        subs = split_trace(trace, ArrayLayout(num_devices=3, policy=policy))
        assert sum(io.size_bytes for sub in subs for io in sub) == sum(
            io.size_bytes for io in trace
        )
        assert sum(io.size_bytes for sub in subs for io in sub if io.is_write) == sum(
            io.size_bytes for io in trace if io.is_write
        )
        assert {io.arrival_ns for sub in subs for io in sub} <= {io.arrival_ns for io in trace}

    @pytest.mark.parametrize("policy", ["stripe", "range", "hash"])
    def test_sub_traces_renumbered_and_deterministic(self, policy):
        trace = demo_workload(num_requests=24).build()
        layout = ArrayLayout(num_devices=3, policy=policy)
        first = split_trace(trace, layout)
        second = split_trace(trace, layout)
        for sub_a, sub_b in zip(first, second):
            assert [io.io_id for io in sub_a] == list(range(len(sub_a)))
            assert [(io.offset_bytes, io.size_bytes) for io in sub_a] == [
                (io.offset_bytes, io.size_bytes) for io in sub_b
            ]

    def test_single_device_stripe_is_identity(self):
        trace = demo_workload(num_requests=12).build()
        (sub,) = split_trace(trace, ArrayLayout(num_devices=1, policy="stripe"))
        assert [(io.offset_bytes, io.size_bytes) for io in sub] == [
            (io.offset_bytes, io.size_bytes) for io in trace
        ]

    def test_hash_packs_chunks_densely(self):
        layout = ArrayLayout(num_devices=2, policy="hash", chunk_bytes=4 * KB)
        trace = [one_request(4 * KB * unit, 4 * KB) for unit in range(16)]
        subs = split_trace(trace, layout)
        for sub in subs:
            assert sorted(io.offset_bytes for io in sub) == [
                4 * KB * index for index in range(len(sub))
            ]

    def test_describe_labels(self):
        assert ArrayLayout(num_devices=4).describe() == "stripe(4x64KB)"
        assert ArrayLayout(num_devices=2, policy="range").describe() == "range(2)"


class TestArraySpec:
    def test_fingerprint_tracks_every_axis(self):
        base = ArraySpec(
            workload=demo_workload(),
            num_devices=2,
            scheduler="SPK3",
            config=SMALL_ARRAY_CONFIG,
        )
        same = ArraySpec(
            workload=demo_workload(),
            num_devices=2,
            scheduler="SPK3",
            config=SMALL_ARRAY_CONFIG,
        )
        assert base.fingerprint() == same.fingerprint()
        variants = [
            base.__class__(**{**base.__dict__, "num_devices": 4}),
            base.__class__(**{**base.__dict__, "policy": "hash"}),
            base.__class__(**{**base.__dict__, "chunk_bytes": 16 * KB}),
            base.__class__(**{**base.__dict__, "scheduler": "VAS"}),
            base.__class__(**{**base.__dict__, "workload": demo_workload(seed=6)}),
        ]
        fingerprints = {spec.fingerprint() for spec in variants} | {base.fingerprint()}
        assert len(fingerprints) == len(variants) + 1

    def test_key_does_not_enter_fingerprint(self):
        kwargs = dict(
            workload=demo_workload(),
            num_devices=2,
            scheduler="SPK3",
            config=SMALL_ARRAY_CONFIG,
        )
        assert (
            ArraySpec(key=("a",), **kwargs).fingerprint()
            == ArraySpec(key=("b",), **kwargs).fingerprint()
        )

    def test_device_jobs_cover_all_devices(self):
        spec = ArraySpec(
            workload=demo_workload(),
            num_devices=3,
            scheduler="SPK1",
            config=SMALL_ARRAY_CONFIG,
            key=("cell",),
        )
        jobs = spec.device_jobs()
        assert len(jobs) == 3
        assert [job.key for job in jobs] == [("cell", 0), ("cell", 1), ("cell", 2)]
        assert all(job.scheduler == "SPK1" for job in jobs)
        rebuilt = [job.workload.build() for job in jobs]
        assert sum(len(sub) for sub in rebuilt) >= len(demo_workload().build())


class TestArraySimulation:
    def test_striped_read_bandwidth_is_sum_of_devices(self):
        # Acceptance criterion: for a striped read-only trace the array
        # aggregate bandwidth equals the sum of per-device bandwidths.
        sim = ArraySimulation(
            ArrayLayout(num_devices=3, policy="stripe"), SMALL_ARRAY_CONFIG, "SPK3"
        )
        workload = demo_workload(num_requests=18)
        result = sim.run(workload)
        assert result.num_devices == 3
        assert result.aggregate_bandwidth_kb_s == pytest.approx(
            sum(device.bandwidth_kb_s for device in result.device_results)
        )
        assert result.aggregate_iops == pytest.approx(
            sum(device.iops for device in result.device_results)
        )
        assert result.total_bytes == sum(io.size_bytes for io in workload.build())

    def test_merged_latency_and_utilization_pool_devices(self):
        sim = ArraySimulation(
            ArrayLayout(num_devices=2, policy="stripe"), SMALL_ARRAY_CONFIG, "SPK3"
        )
        result = sim.run(demo_workload(num_requests=12))
        assert result.latency.count == sum(
            device.latency.count for device in result.device_results
        )
        assert len(result.utilization.per_chip) == sum(
            len(device.utilization.per_chip) for device in result.device_results
        )
        assert result.makespan_ns == max(
            device.makespan_ns for device in result.device_results
        )

    def test_device_jobs_hit_the_result_cache(self, tmp_path):
        sim = ArraySimulation(
            ArrayLayout(num_devices=2, policy="stripe"), SMALL_ARRAY_CONFIG, "SPK3"
        )
        warm_engine = ExecutionEngine("serial", cache_dir=tmp_path)
        warm = sim.run(demo_workload(num_requests=12), engine=warm_engine)
        assert warm_engine.stats.jobs_executed == 2

        cached_engine = ExecutionEngine("serial", cache_dir=tmp_path)
        cached = sim.run(demo_workload(num_requests=12), engine=cached_engine)
        assert cached_engine.stats.jobs_executed == 0
        assert cached_engine.stats.cache_hits == 2
        for fresh, reloaded in zip(warm.device_results, cached.device_results):
            assert pickle.dumps(fresh) == pickle.dumps(reloaded)
        assert warm.summary_row() == cached.summary_row()

    def test_empty_device_is_tolerated(self):
        # Range sharding with everything in the first shard leaves device 1
        # with no work; the array must still merge cleanly.
        layout = ArrayLayout(num_devices=2, policy="range", shard_bytes=1024 * 1024 * KB)
        sim = ArraySimulation(layout, SMALL_ARRAY_CONFIG, "SPK3")
        result = sim.run(demo_workload(num_requests=8))
        assert result.device_results[1].completed_ios == 0
        assert result.byte_imbalance() == pytest.approx(2.0)
        assert result.aggregate_bandwidth_kb_s > 0.0

    def test_empty_array_result_sentinels(self):
        result = merge_device_results([], scheduler="SPK3", workload="none", policy="stripe")
        assert isinstance(result, ArrayResult)
        assert result.makespan_ns == 0
        assert result.byte_imbalance() == 0.0
        assert result.device_utilization_spread == 0.0


class TestArrayScaling:
    SMALL = dict(
        device_counts=(1, 2),
        policies=("stripe", "range"),
        schedulers=("VAS", "SPK3"),
        num_requests=8,
        size_kb=64,
        chips_per_device=16,
        seed=3,
    )

    def test_serial_and_process_backends_are_bit_identical(self):
        serial = array_scaling.run_array_scaling(**self.SMALL, engine=ExecutionEngine("serial"))
        parallel = array_scaling.run_array_scaling(
            **self.SMALL, engine=ExecutionEngine("process", max_workers=2)
        )
        assert pickle.dumps(serial) == pickle.dumps(parallel)

    def test_rows_cover_the_grid(self):
        rows = array_scaling.run_array_scaling(**self.SMALL)
        assert len(rows) == 8
        assert {(row["devices"], row["policy"], row["scheduler"]) for row in rows} == {
            (devices, policy, scheduler)
            for devices in (1, 2)
            for policy in ("stripe", "range")
            for scheduler in ("VAS", "SPK3")
        }
        assert all(row["bandwidth_mb_s"] > 0 for row in rows)

    def test_adding_devices_increases_aggregate_bandwidth(self):
        rows = array_scaling.run_array_scaling(**self.SMALL)
        by_cell = {
            (row["devices"], row["policy"], row["scheduler"]): row["bandwidth_mb_s"]
            for row in rows
        }
        assert by_cell[(2, "stripe", "SPK3")] > by_cell[(1, "stripe", "SPK3")]

    def test_scaling_efficiency_shape(self):
        rows = array_scaling.run_array_scaling(**self.SMALL)
        efficiency = array_scaling.scaling_efficiency(rows)
        assert set(efficiency) == {
            ("stripe", "VAS"),
            ("stripe", "SPK3"),
            ("range", "VAS"),
            ("range", "SPK3"),
        }
        assert all(value > 0 for value in efficiency.values())
