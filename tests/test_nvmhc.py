"""Tests for the NVMHC substrate: device queue, tags, DMA engine, bitmap."""

import pytest

from repro.flash.commands import FlashOp
from repro.flash.geometry import PhysicalPageAddress
from repro.flash.request import MemoryRequest
from repro.nvmhc.bitmap import CompletionBitmap
from repro.nvmhc.dma import DmaEngine
from repro.nvmhc.queue import DeviceQueue
from repro.nvmhc.tag import Tag
from repro.workloads.request import IOKind, IORequest


def make_io(arrival=0, size=4096, kind=IOKind.READ, offset=0):
    return IORequest(kind=kind, offset_bytes=offset, size_bytes=size, arrival_ns=arrival)


def make_request(io_id, chip=(0, 0), die=0, plane=0, page=0):
    channel, chip_idx = chip
    return MemoryRequest(
        io_id=io_id,
        op=FlashOp.READ,
        lpn=page,
        size_bytes=2048,
        address=PhysicalPageAddress(channel, chip_idx, die, plane, 0, page),
    )


class TestDeviceQueue:
    def test_submit_within_depth(self):
        queue = DeviceQueue(depth=2)
        tag = queue.submit(make_io(), 10)
        assert tag is not None
        assert queue.occupancy == 1
        assert tag.io.enqueued_at_ns == 10

    def test_submit_overflow_goes_to_backlog(self):
        queue = DeviceQueue(depth=1)
        queue.submit(make_io(), 0)
        overflow = queue.submit(make_io(), 0)
        assert overflow is None
        assert queue.backlog_size == 1
        assert queue.is_full
        assert queue.stats.stalled_requests == 1

    def test_admit_from_backlog_after_retire(self):
        queue = DeviceQueue(depth=1)
        first = queue.submit(make_io(arrival=0), 0)
        queue.submit(make_io(arrival=5), 5)
        queue.retire(first.io_id)
        admitted = queue.admit_from_backlog(100)
        assert len(admitted) == 1
        assert queue.backlog_size == 0
        assert queue.stats.total_backlog_wait_ns == 95

    def test_tags_in_arrival_order(self):
        queue = DeviceQueue(depth=4)
        tags = [queue.submit(make_io(arrival=i), i) for i in range(3)]
        assert [tag.io_id for tag in queue.tags_in_order()] == [tag.io_id for tag in tags]

    def test_retire_frees_slot(self):
        queue = DeviceQueue(depth=1)
        tag = queue.submit(make_io(), 0)
        queue.retire(tag.io_id)
        assert queue.is_empty
        assert not queue.has_work
        assert queue.stats.completed == 1

    def test_has_work_with_backlog_only(self):
        queue = DeviceQueue(depth=1)
        tag = queue.submit(make_io(), 0)
        queue.submit(make_io(), 0)
        queue.retire(tag.io_id)
        assert queue.has_work

    def test_get_and_len(self):
        queue = DeviceQueue(depth=2)
        tag = queue.submit(make_io(), 0)
        assert queue.get(tag.io_id) is tag
        assert len(queue) == 1

    def test_invalid_depth(self):
        with pytest.raises(ValueError):
            DeviceQueue(depth=0)


class TestTag:
    def make_tag(self, num_requests=3):
        io = make_io(size=num_requests * 2048)
        tag = Tag(io=io, enqueued_at_ns=0)
        for page in range(num_requests):
            request = make_request(io.io_id, page=page, plane=page % 2)
            tag.memory_requests.append(request)
            tag.by_chip.setdefault(request.chip_key, []).append(request)
        return tag

    def test_counts(self):
        tag = self.make_tag(3)
        assert tag.total_requests == 3
        assert not tag.fully_composed
        assert not tag.fully_completed

    def test_next_uncomposed_advances(self):
        tag = self.make_tag(2)
        first = tag.next_uncomposed()
        first.composed_at_ns = 10
        second = tag.next_uncomposed()
        assert second is not first
        second.composed_at_ns = 20
        assert tag.next_uncomposed() is None

    def test_uncomposed_requests_filter(self):
        tag = self.make_tag(2)
        tag.memory_requests[0].composed_at_ns = 1
        assert len(tag.uncomposed_requests()) == 1

    def test_fully_flags(self):
        tag = self.make_tag(2)
        tag.composed_count = 2
        tag.completed_count = 2
        assert tag.fully_composed
        assert tag.fully_completed

    def test_connectivity_and_footprint(self):
        tag = self.make_tag(3)
        assert tag.chip_footprint == [(0, 0)]
        assert tag.connectivity((0, 0)) == 3
        assert tag.connectivity((1, 1)) == 0

    def test_uncomposed_for_chip(self):
        tag = self.make_tag(2)
        tag.memory_requests[0].composed_at_ns = 5
        assert len(tag.uncomposed_for_chip((0, 0))) == 1


class TestDmaEngine:
    def test_composition_cost(self):
        dma = DmaEngine(per_request_ns=500)
        assert dma.composition_cost_ns(2048) == 500

    def test_per_byte_cost(self):
        dma = DmaEngine(per_request_ns=0, per_byte_ns_x1000=1000)
        assert dma.composition_cost_ns(2048) == 2048

    def test_begin_sets_busy(self):
        dma = DmaEngine(per_request_ns=100)
        done = dma.begin(50, 2048)
        assert done == 150
        assert dma.is_busy(100)
        assert not dma.is_busy(150)

    def test_begin_while_busy_raises(self):
        dma = DmaEngine(per_request_ns=100)
        dma.begin(0, 2048)
        with pytest.raises(RuntimeError):
            dma.begin(50, 2048)

    def test_stats(self):
        dma = DmaEngine(per_request_ns=100)
        dma.begin(0, 2048)
        assert dma.stats.requests_composed == 1
        assert dma.stats.bytes_moved == 2048
        assert dma.stats.busy_time_ns == 100

    def test_reset(self):
        dma = DmaEngine(per_request_ns=100)
        dma.begin(0, 2048)
        dma.reset()
        assert not dma.is_busy(10)

    def test_negative_cost_rejected(self):
        with pytest.raises(ValueError):
            DmaEngine(per_request_ns=-1)


class TestCompletionBitmap:
    def test_initial_state(self):
        bitmap = CompletionBitmap(4)
        assert not bitmap.all_completed
        assert bitmap.completed_count == 0
        assert all(bitmap.is_outstanding(i) for i in range(4))

    def test_clear_marks_completed(self):
        bitmap = CompletionBitmap(4)
        bitmap.clear(2)
        assert not bitmap.is_outstanding(2)
        assert bitmap.completed_count == 1

    def test_all_completed(self):
        bitmap = CompletionBitmap(3)
        for i in range(3):
            bitmap.clear(i)
        assert bitmap.all_completed

    def test_in_order_delivery(self):
        bitmap = CompletionBitmap(3)
        bitmap.clear(1)
        assert bitmap.deliverable_payloads() == []
        bitmap.clear(0)
        assert bitmap.deliverable_payloads() == [0, 1]
        bitmap.clear(2)
        assert bitmap.deliverable_payloads() == [2]
        assert bitmap.delivered_count == 3

    def test_each_payload_delivered_once(self):
        bitmap = CompletionBitmap(2)
        bitmap.clear(0)
        assert bitmap.deliverable_payloads() == [0]
        assert bitmap.deliverable_payloads() == []

    def test_out_of_range(self):
        bitmap = CompletionBitmap(2)
        with pytest.raises(IndexError):
            bitmap.clear(2)
        with pytest.raises(IndexError):
            bitmap.is_outstanding(-1)

    def test_requires_positive_size(self):
        with pytest.raises(ValueError):
            CompletionBitmap(0)
