"""Tests for wear levelling and bad block management."""

import random

import pytest

from repro.ftl.bad_block import BadBlockManager
from repro.ftl.garbage_collector import GarbageCollector
from repro.ftl.mapping import PageMapFTL
from repro.ftl.wear_leveling import WearLeveler, wear_stats
from repro.lifetime.state import DeviceState, apply_device_state
from repro.lifetime.steady import age_to_steady_state


@pytest.fixture
def ftl(small_geometry, small_chips):
    return PageMapFTL(small_geometry, small_chips)


@pytest.fixture
def aged_ftl(small_geometry, small_chips, fast_timing):
    """An FTL fast-forwarded to the steady-state GC plateau (non-trivial wear)."""
    ftl = PageMapFTL(small_geometry, small_chips)
    gc = GarbageCollector(small_geometry, fast_timing, ftl, small_chips)
    state = DeviceState(
        fill_fraction=0.85, invalid_fraction=0.3, seed=7, steady_state=True
    )
    rng = random.Random(state.seed)
    report = apply_device_state(
        ftl, state, logical_pages=small_geometry.total_pages, rng=rng
    )
    age_to_steady_state(ftl, gc, state, live_pages=report.live_pages, rng=rng)
    return ftl


class TestWearLeveler:
    def test_fresh_drive_has_zero_wear(self, small_geometry, small_chips, ftl):
        leveler = WearLeveler(small_geometry, ftl, small_chips)
        stats = leveler.wear_stats()
        assert stats.total_erases == 0
        assert stats.spread == 0

    def test_wear_stats_track_erases(self, small_geometry, small_chips, ftl):
        leveler = WearLeveler(small_geometry, ftl, small_chips)
        block = small_chips[(0, 0)].plane(0, 0).blocks[0]
        block.erase()
        block.erase()
        stats = leveler.wear_stats()
        assert stats.max_erase_count == 2
        assert stats.total_erases == 2
        assert stats.spread == 2

    def test_needs_leveling_threshold(self, small_geometry, small_chips, ftl):
        leveler = WearLeveler(small_geometry, ftl, small_chips, spread_threshold=3)
        block = small_chips[(0, 0)].plane(0, 0).blocks[0]
        for _ in range(2):
            block.erase()
        assert not leveler.needs_leveling((0, 0), 0, 0)
        block.erase()
        assert leveler.needs_leveling((0, 0), 0, 0)

    def test_disabled_leveler_never_triggers(self, small_geometry, small_chips, ftl):
        leveler = WearLeveler(small_geometry, ftl, small_chips, spread_threshold=1, enabled=False)
        small_chips[(0, 0)].plane(0, 0).blocks[0].erase()
        assert not leveler.needs_leveling((0, 0), 0, 0)

    def test_level_plane_moves_cold_data(self, small_geometry, small_chips, ftl):
        leveler = WearLeveler(small_geometry, ftl, small_chips, spread_threshold=2)
        # Write data that lands (among others) on plane (0,0,0,0).
        target_lpns = []
        for lpn in range(small_geometry.num_planes * 2):
            address = ftl.translate_write(lpn)
            if address.plane_key == (0, 0, 0, 0):
                target_lpns.append(lpn)
        # Make another block of that plane look heavily worn.
        plane = small_chips[(0, 0)].plane(0, 0)
        for _ in range(3):
            plane.blocks[-1].erase()
        moves = leveler.level_plane((0, 0), 0, 0)
        assert leveler.needs_leveling((0, 0), 0, 0) in (True, False)
        assert isinstance(moves, list)
        if target_lpns:
            assert moves, "expected the cold block's live data to be migrated"
            assert leveler.swaps_performed == 1

    def test_level_plane_noop_when_balanced(self, small_geometry, small_chips, ftl):
        leveler = WearLeveler(small_geometry, ftl, small_chips, spread_threshold=5)
        assert leveler.level_plane((0, 0), 0, 0) == []


class TestBadBlockManager:
    def test_factory_bad_block_excluded_from_allocation(self, small_geometry, small_chips, ftl):
        manager = BadBlockManager(small_geometry, ftl, small_chips)
        manager.mark_factory_bad((0, 0), 0, 0, 0)
        assert manager.bad_block_count == 1
        assert manager.is_bad((0, 0), 0, 0, 0)
        plane = small_chips[(0, 0)].plane(0, 0)
        for _ in range(plane.free_pages):
            block_id, _ = plane.allocate_page()
            assert block_id != 0

    def test_factory_bad_rejected_after_writes(self, small_geometry, small_chips, ftl):
        manager = BadBlockManager(small_geometry, ftl, small_chips)
        address = ftl.translate_write(0)
        with pytest.raises(ValueError):
            manager.mark_factory_bad(address.chip_key, address.die, address.plane, address.block)

    def test_retire_block_relocates_live_data(self, small_geometry, small_chips, ftl):
        manager = BadBlockManager(small_geometry, ftl, small_chips)
        address = ftl.translate_write(5)
        record = manager.retire_block(address.chip_key, address.die, address.plane, address.block)
        assert record.grown
        assert record.pages_relocated == 1
        new_address = ftl.lookup(5)
        assert new_address is not None
        assert new_address != address
        assert manager.is_bad(address.chip_key, address.die, address.plane, address.block)

    def test_retire_empty_block(self, small_geometry, small_chips, ftl):
        manager = BadBlockManager(small_geometry, ftl, small_chips)
        record = manager.retire_block((0, 0), 0, 0, 3)
        assert record.pages_relocated == 0

    def test_spare_capacity_shrinks(self, small_geometry, small_chips, ftl):
        manager = BadBlockManager(small_geometry, ftl, small_chips)
        before = manager.spare_capacity_pages()
        manager.mark_factory_bad((0, 0), 0, 0, 1)
        assert manager.spare_capacity_pages() == before - small_geometry.pages_per_block


class TestAgedDeviceStates:
    """Wear levelling and bad-block handling on non-fresh (aged) devices."""

    def test_aged_device_has_real_wear(self, aged_ftl):
        stats = wear_stats(aged_ftl.chips)
        assert stats.total_erases > 0
        assert stats.max_erase_count >= 1

    def test_level_plane_on_aged_device(self, small_geometry, small_chips, aged_ftl):
        leveler = WearLeveler(
            small_geometry, aged_ftl, small_chips, spread_threshold=1
        )
        live_before = aged_ftl.mapped_pages
        levelled = 0
        for chip_key in small_chips:
            for die in range(small_geometry.dies_per_chip):
                for plane in range(small_geometry.planes_per_die):
                    if not leveler.needs_leveling(chip_key, die, plane):
                        continue
                    moves = leveler.level_plane(chip_key, die, plane)
                    levelled += 1
                    for old, new in moves:
                        lpn = aged_ftl.reverse_lookup(new)
                        assert lpn is not None
                        assert aged_ftl.lookup(lpn) == new
                        assert aged_ftl.reverse_lookup(old) is None
        assert levelled > 0, "steady-state aging should leave uneven wear"
        # Levelling relocates live data; it never loses or duplicates any.
        assert aged_ftl.mapped_pages == live_before

    def test_level_plane_deterministic_on_aged_device(
        self, small_geometry, fast_timing
    ):
        from repro.flash.chip import FlashChip

        def run():
            chips = {
                key: FlashChip(key, small_geometry)
                for key in small_geometry.iter_chip_keys()
            }
            ftl = PageMapFTL(small_geometry, chips)
            gc = GarbageCollector(small_geometry, fast_timing, ftl, chips)
            state = DeviceState(
                fill_fraction=0.85, invalid_fraction=0.3, seed=7, steady_state=True
            )
            rng = random.Random(state.seed)
            report = apply_device_state(
                ftl, state, logical_pages=small_geometry.total_pages, rng=rng
            )
            age_to_steady_state(ftl, gc, state, live_pages=report.live_pages, rng=rng)
            leveler = WearLeveler(small_geometry, ftl, chips, spread_threshold=1)
            return leveler.level_plane((0, 0), 0, 0)

        assert run() == run()

    def test_retire_block_on_aged_device(self, small_geometry, small_chips, aged_ftl):
        manager = BadBlockManager(small_geometry, aged_ftl, small_chips)
        # Retire a block that holds live data on the aged device.
        plane_obj = small_chips[(0, 0)].plane(0, 0)
        victim = next(block for block in plane_obj.blocks if block.valid_count > 0)
        live_before = aged_ftl.mapped_pages
        record = manager.retire_block((0, 0), 0, 0, victim.block_id)
        assert record.grown
        assert record.pages_relocated > 0
        assert aged_ftl.mapped_pages == live_before
        assert victim.is_bad
        # The retired block never serves future allocations.
        for _ in range(min(plane_obj.free_pages, small_geometry.pages_per_block)):
            block_id, _ = plane_obj.allocate_page()
            assert block_id != victim.block_id

    def test_gc_after_bad_block_has_no_orphans(
        self, small_geometry, small_chips, aged_ftl, fast_timing
    ):
        gc = GarbageCollector(small_geometry, fast_timing, aged_ftl, small_chips)
        manager = BadBlockManager(small_geometry, aged_ftl, small_chips)
        plane_obj = small_chips[(0, 0)].plane(0, 0)
        victim = next(block for block in plane_obj.blocks if block.valid_count > 0)
        manager.retire_block((0, 0), 0, 0, victim.block_id)
        # Collect every plane that is collectable; bookkeeping must stay
        # consistent (no valid page without an owner).
        for chip_key in small_chips:
            gc.collect_if_needed(chip_key)
        assert gc.stats.orphaned_pages == 0
