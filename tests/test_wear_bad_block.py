"""Tests for wear levelling and bad block management."""

import pytest

from repro.ftl.bad_block import BadBlockManager
from repro.ftl.mapping import PageMapFTL
from repro.ftl.wear_leveling import WearLeveler


@pytest.fixture
def ftl(small_geometry, small_chips):
    return PageMapFTL(small_geometry, small_chips)


class TestWearLeveler:
    def test_fresh_drive_has_zero_wear(self, small_geometry, small_chips, ftl):
        leveler = WearLeveler(small_geometry, ftl, small_chips)
        stats = leveler.wear_stats()
        assert stats.total_erases == 0
        assert stats.spread == 0

    def test_wear_stats_track_erases(self, small_geometry, small_chips, ftl):
        leveler = WearLeveler(small_geometry, ftl, small_chips)
        block = small_chips[(0, 0)].plane(0, 0).blocks[0]
        block.erase()
        block.erase()
        stats = leveler.wear_stats()
        assert stats.max_erase_count == 2
        assert stats.total_erases == 2
        assert stats.spread == 2

    def test_needs_leveling_threshold(self, small_geometry, small_chips, ftl):
        leveler = WearLeveler(small_geometry, ftl, small_chips, spread_threshold=3)
        block = small_chips[(0, 0)].plane(0, 0).blocks[0]
        for _ in range(2):
            block.erase()
        assert not leveler.needs_leveling((0, 0), 0, 0)
        block.erase()
        assert leveler.needs_leveling((0, 0), 0, 0)

    def test_disabled_leveler_never_triggers(self, small_geometry, small_chips, ftl):
        leveler = WearLeveler(small_geometry, ftl, small_chips, spread_threshold=1, enabled=False)
        small_chips[(0, 0)].plane(0, 0).blocks[0].erase()
        assert not leveler.needs_leveling((0, 0), 0, 0)

    def test_level_plane_moves_cold_data(self, small_geometry, small_chips, ftl):
        leveler = WearLeveler(small_geometry, ftl, small_chips, spread_threshold=2)
        # Write data that lands (among others) on plane (0,0,0,0).
        target_lpns = []
        for lpn in range(small_geometry.num_planes * 2):
            address = ftl.translate_write(lpn)
            if address.plane_key == (0, 0, 0, 0):
                target_lpns.append(lpn)
        # Make another block of that plane look heavily worn.
        plane = small_chips[(0, 0)].plane(0, 0)
        for _ in range(3):
            plane.blocks[-1].erase()
        moves = leveler.level_plane((0, 0), 0, 0)
        assert leveler.needs_leveling((0, 0), 0, 0) in (True, False)
        assert isinstance(moves, list)
        if target_lpns:
            assert moves, "expected the cold block's live data to be migrated"
            assert leveler.swaps_performed == 1

    def test_level_plane_noop_when_balanced(self, small_geometry, small_chips, ftl):
        leveler = WearLeveler(small_geometry, ftl, small_chips, spread_threshold=5)
        assert leveler.level_plane((0, 0), 0, 0) == []


class TestBadBlockManager:
    def test_factory_bad_block_excluded_from_allocation(self, small_geometry, small_chips, ftl):
        manager = BadBlockManager(small_geometry, ftl, small_chips)
        manager.mark_factory_bad((0, 0), 0, 0, 0)
        assert manager.bad_block_count == 1
        assert manager.is_bad((0, 0), 0, 0, 0)
        plane = small_chips[(0, 0)].plane(0, 0)
        for _ in range(plane.free_pages):
            block_id, _ = plane.allocate_page()
            assert block_id != 0

    def test_factory_bad_rejected_after_writes(self, small_geometry, small_chips, ftl):
        manager = BadBlockManager(small_geometry, ftl, small_chips)
        address = ftl.translate_write(0)
        with pytest.raises(ValueError):
            manager.mark_factory_bad(address.chip_key, address.die, address.plane, address.block)

    def test_retire_block_relocates_live_data(self, small_geometry, small_chips, ftl):
        manager = BadBlockManager(small_geometry, ftl, small_chips)
        address = ftl.translate_write(5)
        record = manager.retire_block(address.chip_key, address.die, address.plane, address.block)
        assert record.grown
        assert record.pages_relocated == 1
        new_address = ftl.lookup(5)
        assert new_address is not None
        assert new_address != address
        assert manager.is_bad(address.chip_key, address.die, address.plane, address.block)

    def test_retire_empty_block(self, small_geometry, small_chips, ftl):
        manager = BadBlockManager(small_geometry, ftl, small_chips)
        record = manager.retire_block((0, 0), 0, 0, 3)
        assert record.pages_relocated == 0

    def test_spare_capacity_shrinks(self, small_geometry, small_chips, ftl):
        manager = BadBlockManager(small_geometry, ftl, small_chips)
        before = manager.spare_capacity_pages()
        manager.mark_factory_bad((0, 0), 0, 0, 1)
        assert manager.spare_capacity_pages() == before - small_geometry.pages_per_block
