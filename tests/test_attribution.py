"""Tests for attributed telemetry: provenance tags, health sampling, reports.

The contracts pinned here, in dependency order:

* stamping - the scenario engine tags every built request with its tenant
  and phase, transforms carry the tags, and non-scenario generators leave
  them ``None``;
* attribution - per-(tenant, phase) counts, bytes and pooled percentile
  inputs reconcile *exactly* with the aggregate stats on every tiny-suite
  scenario case, and tagging never perturbs the result digest;
* health sampling - the periodic series is bounded, deterministic across
  checkpoint/resume, and digest-inert;
* run reports - markdown and HTML renderings carry the tenant table, SLO
  verdicts and health sparklines, and the CLI writes them end to end;
* plumbing - array results keep device-namespaced counter snapshots, the
  engine marks cache-hit jobs in the trace dir, and ``--progress`` prints
  a heartbeat.
"""

from __future__ import annotations

import json

import pytest

from repro.array.host import merge_device_results
from repro.experiments.engine import (
    ExecutionEngine,
    engine_from_cli,
)
from repro.experiments.spec import WorkloadSpec
from repro.metrics.attribution import (
    AttributionTracker,
    reconcile_attribution,
)
from repro.metrics.report import SimulationResult
from repro.obs import DEFAULT_MAX_HEALTH_SAMPLES, HealthSampler, MemoryTraceSink
from repro.obs.__main__ import main as obs_main
from repro.obs.export import SKIPPED_TRACE_SUFFIX
from repro.obs.report import (
    SLOThresholds,
    run_report_html,
    run_report_markdown,
    slo_verdicts,
    sparkline,
    write_run_report,
)
from repro.perf.suite import tiny_suite
from repro.scenarios.library import bursty_multitenant_scenario
from repro.scenarios.transforms import copy_request
from repro.sim.config import stable_fingerprint
from repro.sim.ssd import SSDSimulator
from repro.workloads.request import IOKind, IORequest

KB = 1024


def tiny_case(name):
    for case in tiny_suite():
        if case.name == name:
            return case
    raise AssertionError(f"no tiny-suite case named {name}")


def bursty_job():
    return tiny_case("tiny-bursty").jobs[0]


def strip_tags(requests):
    for io in requests:
        io.tenant = None
        io.phase_index = None
    return requests


class TestProvenanceStamping:
    def test_scenario_build_tags_every_request(self):
        scenario = bursty_multitenant_scenario(requests_per_tenant=8, seed=11)
        requests = scenario.build()
        assert requests
        assert all(io.tenant is not None for io in requests)
        assert all(io.phase_index is not None for io in requests)
        tenants = {io.tenant for io in requests}
        assert tenants == {"reader", "writer"}
        # Phase indices match positions in the scenario's phase list.
        assert {io.phase_index for io in requests} <= set(
            range(len(scenario.phases))
        )

    def test_copy_request_carries_tags(self):
        io = IORequest(
            kind=IOKind.READ,
            offset_bytes=0,
            size_bytes=4 * KB,
            arrival_ns=0,
            tenant="a",
            phase_index=2,
        )
        clone = copy_request(io, arrival_ns=99)
        assert (clone.tenant, clone.phase_index) == ("a", 2)
        retagged = copy_request(io, tenant="b", phase_index=0)
        assert (retagged.tenant, retagged.phase_index) == ("b", 0)

    def test_non_scenario_generators_leave_tags_none(self):
        spec = WorkloadSpec.random(
            "plain", num_requests=4, size_bytes=4 * KB, seed=3
        )
        assert all(io.tenant is None for io in spec.build())
        assert all(io.phase_index is None for io in spec.build())


class TestAttributionReconciliation:
    @pytest.mark.parametrize("case_name", sorted({c.name for c in tiny_suite()}))
    def test_reconciles_exactly_on_tiny_suite(self, case_name):
        for job in tiny_case(case_name).jobs:
            result = job.execute()
            if job.workload.generator == "scenario":
                assert result.attribution is not None
                assert reconcile_attribution(result) == []
            else:
                assert result.attribution is None
                assert reconcile_attribution(result)

    def test_scenario_cases_exist(self):
        generators = {
            job.workload.generator for case in tiny_suite() for job in case.jobs
        }
        assert "scenario" in generators  # the parametrization above has teeth

    def test_pooled_samples_equal_aggregate_population(self):
        result = bursty_job().execute()
        report = result.attribution
        assert report.untagged_ios == 0
        assert sorted(report.pooled_samples()) == sorted(result.latency.samples_ns)

    def test_counter_slices_ride_in_the_registry(self):
        result = bursty_job().execute()
        report = result.attribution
        for entry in report.tenant_totals():
            prefix = f"tenant.{entry.tenant}"
            assert result.counters[f"{prefix}.io.completed"] == entry.completed_ios
            assert result.counters[f"{prefix}.bytes.read"] == entry.read_bytes
            assert result.counters[f"{prefix}.bytes.written"] == entry.write_bytes
        tagged = sum(
            value
            for name, value in result.counters.items()
            if name.startswith("tenant.") and name.endswith(".io.completed")
        )
        assert tagged + report.untagged_ios == result.completed_ios

    def test_tenant_rollup_pools_phases(self):
        result = bursty_job().execute()
        report = result.attribution
        for tenant in report.tenants():
            pooled = report.by_tenant(tenant)
            slices = [e for e in report.entries if e.tenant == tenant]
            assert pooled.phase_index == -1
            assert pooled.completed_ios == sum(e.completed_ios for e in slices)
            assert pooled.total_bytes == sum(e.total_bytes for e in slices)
            assert pooled.latency.count == pooled.completed_ios
        with pytest.raises(KeyError):
            report.by_tenant("nobody")

    def test_untagged_remainder_derived_for_partial_tagging(self):
        tracker = AttributionTracker()
        tracker.record("a", 0, False, 4 * KB, now_ns=1_000, latency_ns=500)
        tracker.record("a", 0, True, 8 * KB, now_ns=2_000, latency_ns=700)
        report = tracker.finish(total_ios=5, total_bytes=64 * KB)
        assert report.untagged_ios == 3
        assert report.untagged_bytes == 64 * KB - 12 * KB
        (entry,) = report.entries
        assert (entry.reads, entry.writes) == (1, 1)
        assert (entry.read_bytes, entry.write_bytes) == (4 * KB, 8 * KB)

    def test_nothing_tagged_yields_no_report(self):
        assert AttributionTracker().finish(total_ios=7, total_bytes=1) is None

    def test_windowed_history_mode_still_reconciles_counts(self):
        job = bursty_job()
        simulator = SSDSimulator(
            job.config, job.scheduler, metrics_history="windowed"
        )
        result = simulator.run(job.workload.build(), workload_name="bursty")
        report = result.attribution
        assert report is not None
        tagged = sum(entry.completed_ios for entry in report.entries)
        assert tagged + report.untagged_ios == result.completed_ios
        for entry in report.entries:
            assert entry.latency.count == entry.completed_ios


class TestAttributionDoesNotPerturb:
    def test_tagged_run_is_digest_identical_to_untagged(self):
        job = bursty_job()
        tagged = SSDSimulator(job.config, job.scheduler).run(
            job.workload.build(), workload_name="bursty"
        )
        untagged = SSDSimulator(job.config, job.scheduler).run(
            strip_tags(job.workload.build()), workload_name="bursty"
        )
        assert stable_fingerprint(tagged) == stable_fingerprint(untagged)
        assert tagged.attribution is not None
        assert untagged.attribution is None

    def test_health_sampled_run_is_digest_identical(self):
        job = bursty_job()
        plain = job.execute()
        sampled = SSDSimulator(
            job.config, job.scheduler, health_interval_ns=50_000
        ).run(job.workload.build(), workload_name=plain.workload)
        assert stable_fingerprint(sampled) == stable_fingerprint(plain)
        assert len(sampled.health) > 0
        assert plain.health == ()


class TestHealthSampler:
    def test_rejects_non_positive_knobs(self):
        with pytest.raises(ValueError):
            HealthSampler(0)
        with pytest.raises(ValueError):
            HealthSampler(1_000, max_samples=0)

    def test_series_is_monotonic_and_gauges_sane(self):
        job = bursty_job()
        result = SSDSimulator(
            job.config, job.scheduler, health_interval_ns=50_000
        ).run(job.workload.build(), workload_name="bursty")
        samples = result.health
        assert len(samples) > 1
        times = [sample.t_ns for sample in samples]
        assert times == sorted(times)
        assert len(set(times)) == len(times)
        for sample in samples:
            assert sample.t_ns >= 50_000
            assert 0.0 <= sample.chip_busy_fraction <= 1.0
            geometry = job.config.geometry
            assert (
                sample.busy_chips
                <= geometry.num_channels * geometry.chips_per_channel
            )
            assert sample.min_free_blocks <= sample.total_free_blocks

    def test_retention_is_bounded_ring_buffer_style(self):
        job = bursty_job()
        bounded = SSDSimulator(
            job.config,
            job.scheduler,
            health_interval_ns=50_000,
            health_max_samples=8,
        ).run(job.workload.build(), workload_name="bursty")
        full = SSDSimulator(
            job.config, job.scheduler, health_interval_ns=50_000
        ).run(job.workload.build(), workload_name="bursty")
        assert len(full.health) > 8
        assert len(bounded.health) == 8
        assert bounded.health == full.health[-8:]  # oldest dropped first
        assert len(full.health) <= DEFAULT_MAX_HEALTH_SAMPLES

    def test_checkpoint_resume_produces_identical_series(self):
        job = bursty_job()

        def sampled_simulator():
            return SSDSimulator(
                job.config, job.scheduler, health_interval_ns=50_000
            )

        straight = sampled_simulator().run(
            job.workload.build(), workload_name="bursty"
        )
        paused = sampled_simulator()
        pause_at = max(1, straight.events_processed // 2)
        assert (
            paused.run(job.workload.build(), "bursty", max_events=pause_at) is None
        )
        resumed = SSDSimulator.resume(paused.checkpoint())
        result = resumed.run_to_completion()
        assert stable_fingerprint(result) == stable_fingerprint(straight)
        assert result.health == straight.health


class TestResultBackCompat:
    def test_old_results_default_attribution_and_health(self):
        result = bursty_job().execute()
        state = {
            key: value
            for key, value in result.__dict__.items()
            if key not in ("attribution", "health")
        }
        old = object.__new__(SimulationResult)
        old.__dict__.update(state)
        assert old.attribution is None
        assert old.health == ()
        with pytest.raises(AttributeError):
            old.not_a_field


class TestRunReports:
    def attributed_result(self):
        job = bursty_job()
        sink = MemoryTraceSink()
        simulator = SSDSimulator(
            job.config, job.scheduler, trace_sink=sink, health_interval_ns=50_000
        )
        return simulator.run(job.workload.build(), workload_name="bursty"), sink

    def test_markdown_report_carries_every_section(self):
        result, sink = self.attributed_result()
        text = run_report_markdown(
            result, slo=SLOThresholds(p99_us=0.001), sink=sink
        )
        for tenant in result.attribution.tenants():
            assert f" {tenant} " in text
        assert "(all)" in text  # per-tenant roll-up rows
        assert "Reconciliation: per-tenant counts" in text
        assert "FAIL" in text  # sub-microsecond p99 ceiling cannot pass
        assert "## Health" in text
        assert "## Counters" in text
        assert "## Top spans" in text

    def test_html_report_carries_every_section(self):
        result, sink = self.attributed_result()
        text = run_report_html(result, slo=SLOThresholds(p99_us=1e9), sink=sink)
        assert text.startswith("<!DOCTYPE html>")
        for tenant in result.attribution.tenants():
            assert f"<td>{tenant}</td>" in text
        assert '<span class="pass">PASS</span>' in text  # generous ceiling passes
        assert "<svg" in text  # health sparklines are inline SVG
        assert "Reconciliation: per-tenant counts" in text

    def test_report_without_attribution_says_so(self):
        result = tiny_case("tiny-grid").jobs[0].execute()
        text = run_report_markdown(result)
        assert "No provenance tags recorded" in text
        assert slo_verdicts(result, SLOThresholds(p99_us=1.0)) == []

    def test_write_run_report_dispatches_on_suffix(self, tmp_path):
        result, _ = self.attributed_result()
        html_path = write_run_report(tmp_path / "run.html", result)
        md_path = write_run_report(tmp_path / "run.md", result)
        forced = write_run_report(tmp_path / "run.txt", result, fmt="html")
        assert html_path.read_text(encoding="utf-8").startswith("<!DOCTYPE html>")
        assert md_path.read_text(encoding="utf-8").startswith("# ")
        assert forced.read_text(encoding="utf-8").startswith("<!DOCTYPE html>")
        with pytest.raises(ValueError, match="unknown report format"):
            write_run_report(tmp_path / "run.md", result, fmt="pdf")

    def test_slo_thresholds_check_each_configured_gauge(self):
        result, _ = self.attributed_result()
        slo = SLOThresholds(mean_us=1e9, p99_us=0.001)
        checks = slo_verdicts(result, slo)
        by_metric = {(c.tenant, c.metric): c for c in checks}
        for tenant in result.attribution.tenants():
            assert by_metric[(tenant, "mean")].ok
            assert not by_metric[(tenant, "p99")].ok
        assert not SLOThresholds()
        assert slo_verdicts(result, SLOThresholds()) == []

    def test_sparkline_shapes(self):
        assert sparkline([]) == ""
        assert sparkline([3, 3, 3]) == "▁▁▁"
        line = sparkline([0, 1, 2, 3, 4, 5, 6, 7])
        assert line == "▁▂▃▄▅▆▇█"

    def test_report_cli_writes_artifact(self, tmp_path):
        target = tmp_path / "bursty.md"
        code = obs_main(
            [
                "report",
                "--scenario",
                "bursty",
                "-o",
                str(target),
                "--chips",
                "8",
                "--slo-p99-us",
                "5000",
            ]
        )
        assert code == 0
        text = target.read_text(encoding="utf-8")
        assert "## Tenants" in text
        assert "## SLO checks" in text

    def test_report_cli_rejects_unknown_scenario(self, tmp_path, capsys):
        code = obs_main(
            ["report", "--scenario", "nope", "-o", str(tmp_path / "x.md")]
        )
        assert code == 2
        assert "unknown scenario" in capsys.readouterr().err


class TestArrayCounterSnapshots:
    def device_results(self):
        return [job.execute() for job in tiny_case("tiny-array").jobs]

    def test_merge_namespaces_per_device(self):
        results = self.device_results()
        merged = merge_device_results(
            results, scheduler="SPK3", workload="tiny-array-base", policy="striped"
        )
        for index, result in enumerate(results):
            for name, value in result.counters.items():
                assert merged.counters[f"dev{index}.{name}"] == value
        # Nothing beyond the namespaced per-device snapshots.
        assert len(merged.counters) == sum(len(r.counters) for r in results)

    def test_aggregate_counters_sum_across_devices(self):
        results = self.device_results()
        merged = merge_device_results(
            results, scheduler="SPK3", workload="tiny-array-base", policy="striped"
        )
        aggregate = merged.aggregate_counters()
        assert aggregate["io.completed"] == sum(
            r.counters["io.completed"] for r in results
        )
        assert aggregate["io.completed"] == merged.completed_ios


class TestEngineSkippedTraceMarker:
    def run_engine(self, tmp_path, trace_subdir, **kwargs):
        engine = ExecutionEngine(
            "serial",
            cache_dir=tmp_path / "cache",
            trace_dir=tmp_path / trace_subdir,
            **kwargs,
        )
        results = engine.run_jobs([bursty_job()])
        return engine, results

    def test_cache_hit_writes_skipped_marker(self, tmp_path):
        self.run_engine(tmp_path, "first")
        engine, results = self.run_engine(tmp_path, "second")
        assert engine.stats.cache_hits == 1
        markers = list((tmp_path / "second").glob(f"*{SKIPPED_TRACE_SUFFIX}"))
        assert len(markers) == 1
        marker = json.loads(markers[0].read_text(encoding="utf-8"))
        assert marker["status"] == "skipped-cache-hit"
        assert marker["job_fingerprint"] == bursty_job().fingerprint()
        assert marker["completed_ios"] == results[0].completed_ios

    def test_no_marker_when_trace_already_exists(self, tmp_path):
        self.run_engine(tmp_path, "traces")
        self.run_engine(tmp_path, "traces")  # cache hit, but trace is present
        directory = tmp_path / "traces"
        assert list(directory.glob("*.trace.json"))
        assert list(directory.glob(f"*{SKIPPED_TRACE_SUFFIX}")) == []


class TestProgressHeartbeat:
    def test_heartbeat_prints_per_job_lines(self, tmp_path, capsys):
        engine = ExecutionEngine("serial", progress=True)
        engine.run_jobs(list(tiny_case("tiny-array").jobs))
        err = capsys.readouterr().err
        lines = [line for line in err.splitlines() if line.startswith("[engine]")]
        assert len(lines) == 2
        assert "1/2" in lines[0] and "2/2" in lines[1]
        assert "events/s" in lines[0]
        assert "eta" in lines[0]

    def test_quiet_by_default(self, capsys):
        ExecutionEngine("serial").run_jobs([bursty_job()])
        assert "[engine]" not in capsys.readouterr().err

    def test_cli_flag_round_trips(self):
        engine = engine_from_cli("test", ["--progress"])
        assert engine.progress is True
        assert engine_from_cli("test", []).progress is False
