"""Smoke tests for the per-figure experiment harnesses (small scale)."""

import pytest

from repro.experiments import (
    ExperimentScale,
    figure01,
    figure06,
    figure10,
    figure11,
    figure12,
    figure13,
    figure14,
    figure15,
    figure16,
    figure17,
    table01,
)
from repro.experiments.runner import clone_workload, default_trace_set, run_single, paper_config
from repro.workloads.synthetic import generate_random_workload

TINY = ExperimentScale(
    requests_per_trace=40,
    requests_per_point=8,
    num_chips=16,
    traces=("cfs0", "msnfs1"),
    seed=3,
)


class TestRunnerHelpers:
    def test_clone_workload_produces_fresh_objects(self):
        workload = generate_random_workload(num_requests=4, size_bytes=4096)
        cloned = clone_workload(workload)
        assert len(cloned) == 4
        assert all(a is not b for a, b in zip(workload, cloned))
        assert [a.offset_bytes for a in workload] == [b.offset_bytes for b in cloned]

    def test_default_trace_set_respects_scale(self):
        traces = default_trace_set(TINY)
        assert set(traces) == {"cfs0", "msnfs1"}
        assert all(len(workload) == 40 for workload in traces.values())

    def test_run_single_labels_result(self):
        workload = generate_random_workload(num_requests=4, size_bytes=4096)
        result = run_single(workload, "SPK3", paper_config(TINY), "demo")
        assert result.workload == "demo"
        assert result.scheduler == "SPK3"

    def test_scales(self):
        assert ExperimentScale.quick().requests_per_trace < ExperimentScale.paper().requests_per_trace


class TestTable01:
    def test_rows_cover_all_traces(self):
        rows = table01.run_table01(scale=TINY)
        assert len(rows) == 16
        assert {row["trace"] for row in rows} == set(
            table01.DATACENTER_TRACE_NAMES
        )

    def test_measured_statistics_close_to_profile(self):
        rows = table01.run_table01(scale=ExperimentScale(requests_per_trace=300), traces=("hm1",))
        row = rows[0]
        assert abs(row["measured_read_fraction"] - row["target_read_fraction"]) < 0.1


class TestFigure01:
    def test_bandwidth_grows_sublinearly(self):
        rows = figure01.run_figure01(
            die_counts=(16, 64), transfer_sizes_kb=(16,), requests_per_point=8
        )
        assert len(rows) == 2
        summary = figure01.stagnation_summary(rows)
        # 4x the dies must not give 4x the bandwidth (stagnation).
        assert summary[16] < 4.0

    def test_utilization_drops_with_more_dies(self):
        rows = figure01.run_figure01(
            die_counts=(16, 128), transfer_sizes_kb=(16,), requests_per_point=8
        )
        small, big = rows[0], rows[1]
        assert big["chip_utilization_pct"] < small["chip_utilization_pct"]
        assert big["idleness_pct"] > small["idleness_pct"]


class TestTraceDrivenFigures:
    @pytest.fixture(scope="class")
    def fig10_rows(self):
        return figure10.run_figure10(scale=TINY)

    def test_figure10_has_all_rows(self, fig10_rows):
        assert len(fig10_rows) == len(TINY.traces) * 5

    def test_figure10_spk3_beats_vas(self, fig10_rows):
        speedups = figure10.speedups_over(fig10_rows, "VAS", "SPK3")
        assert all(ratio > 1.0 for ratio in speedups.values())

    def test_figure10_latency_reduction_positive(self, fig10_rows):
        reductions = figure10.latency_reduction(fig10_rows, "VAS", "SPK3")
        assert all(value > 0.0 for value in reductions.values())

    def test_figure06_utilization_ordering(self):
        rows = figure06.run_figure06(scale=TINY)
        for row in rows:
            assert row["utilization_potential_pct"] >= row["utilization_vas_pct"]
        averages = figure06.averages(rows)
        assert averages["utilization_potential_pct"] > averages["utilization_vas_pct"]

    def test_figure11_idleness_shape(self):
        rows = figure11.run_figure11(scale=TINY, schedulers=("VAS", "SPK3"))
        reduction = figure11.average_reduction(
            rows, "inter_chip_idleness_pct", "VAS", "SPK3"
        )
        assert reduction > 0.0

    def test_figure13_fractions_sum_to_100(self):
        rows = figure13.run_figure13(scale=TINY, schedulers=("PAS", "SPK3"))
        for row in rows:
            total = (
                row["bus_operation_pct"]
                + row["bus_contention_pct"]
                + row["memory_operation_pct"]
                + row["system_idle_pct"]
            )
            assert total == pytest.approx(100.0, abs=0.5)

    def test_figure14_fractions_and_ordering(self):
        rows = figure14.run_figure14(scale=TINY, schedulers=("PAS", "SPK3"))
        for row in rows:
            total = row["non_pal_pct"] + row["pal1_pct"] + row["pal2_pct"] + row["pal3_pct"]
            assert total == pytest.approx(100.0, abs=0.5)
        averages = figure14.average_high_flp(rows)
        assert averages["SPK3"] >= averages["PAS"]

    def test_figure12_series_and_reductions(self):
        data = figure12.run_figure12(trace_name="msnfs1", num_requests=60, num_chips=16)
        assert set(data["series"]) == {"VAS", "PAS", "SPK3"}
        assert all(len(series) == 60 for series in data["series"].values())
        assert data["latency_reduction"]["SPK3_vs_VAS"] > 0.0
        rows = figure12.summary_rows(data)
        assert len(rows) == 3


class TestSweepFigures:
    def test_figure15_spk3_beats_vas_on_average(self):
        rows = figure15.run_figure15(
            chip_counts=(16,),
            transfer_sizes_kb=(16, 64),
            schedulers=("VAS", "SPK3"),
            requests_per_point=8,
        )
        averages = figure15.average_utilization(rows)
        assert averages[(16, "SPK3")] > averages[(16, "VAS")]

    def test_figure16_transaction_reduction(self):
        rows = figure16.run_figure16(
            chip_counts=(16,),
            transfer_sizes_kb=(64,),
            schedulers=("VAS", "SPK3"),
            requests_per_point=8,
        )
        reductions = figure16.reduction_vs_vas(rows)
        assert reductions[(16, 64, "SPK3")] > 0.0

    def test_scenario_matrix_shapes_and_ranking(self):
        from repro.experiments import scenario_matrix
        from repro.scenarios.library import default_scenarios

        scenarios = default_scenarios(scale=0.2, seed=3)
        rows = scenario_matrix.run_scenario_matrix(
            scenarios,
            schedulers=("VAS", "SPK3"),
            device_counts=(1, 2),
            chips_per_device=16,
        )
        assert len(rows) == len(scenarios) * 2 * 2
        by_cell = {
            (row["scenario"], row["devices"], row["scheduler"]): row["bandwidth_mb_s"]
            for row in rows
        }
        # The paper's headline holds on every scenario at one device ...
        for scenario in scenarios:
            assert by_cell[(scenario.name, 1, "SPK3")] > by_cell[(scenario.name, 1, "VAS")]
        ranking = scenario_matrix.scheduler_ranking(rows)
        assert ranking[("steady", 1)][0] == "SPK3"
        # ... and the characterization table carries per-phase + overall rows.
        char_rows = scenario_matrix.characterization_rows(scenarios)
        assert sum(1 for row in char_rows if row["phase"] == "(overall)") == len(scenarios)

    def test_figure17_gc_hurts_and_spk3_stays_ahead(self):
        rows = figure17.run_figure17(
            chip_counts=(16,),
            transfer_sizes_kb=(32,),
            schedulers=("VAS", "SPK3"),
            requests_per_point=12,
        )
        degradation = figure17.gc_degradation(rows)
        assert all(0.0 < value < 1.0 for value in degradation.values())
        advantage = figure17.fragmented_advantage(rows)
        assert all(value >= 1.0 for value in advantage.values())
        fragmented = [row for row in rows if row["state"] == "fragmented"]
        assert all(row["gc_invocations"] > 0 for row in fragmented)
