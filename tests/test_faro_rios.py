"""Tests for the FARO priority policy and the RIOS traversal."""


from repro.core.faro import FaroPolicy, connectivity, overlap_depth
from repro.core.rios import RiosTraversal
from repro.flash.commands import FlashOp
from repro.flash.geometry import PhysicalPageAddress, SSDGeometry
from repro.flash.request import MemoryRequest


def make_request(io_id=1, op=FlashOp.READ, die=0, plane=0, page=0, chip=(0, 0)):
    channel, chip_idx = chip
    return MemoryRequest(
        io_id=io_id,
        op=op,
        lpn=page,
        size_bytes=2048,
        address=PhysicalPageAddress(channel, chip_idx, die, plane, 0, page),
    )


class TestFaroMetrics:
    def test_overlap_depth_counts_distinct_targets(self):
        requests = [
            make_request(die=0, plane=0),
            make_request(die=0, plane=1),
            make_request(die=1, plane=0),
            make_request(die=0, plane=0, page=9),  # duplicate plane target
        ]
        assert overlap_depth(requests) == 3

    def test_overlap_depth_ignores_untranslated(self):
        untranslated = MemoryRequest(io_id=1, op=FlashOp.READ, lpn=0, size_bytes=2048)
        assert overlap_depth([untranslated]) == 0

    def test_connectivity_max_same_io(self):
        requests = [
            make_request(io_id=1),
            make_request(io_id=1, page=1),
            make_request(io_id=2, page=2),
        ]
        assert connectivity(requests) == 2

    def test_connectivity_empty(self):
        assert connectivity([]) == 0


class TestFaroPolicy:
    def test_best_chip_prefers_higher_overlap_depth(self):
        policy = FaroPolicy()
        candidates = {
            (0, 0): [make_request(die=0, plane=0), make_request(die=1, plane=1, page=1)],
            (0, 1): [make_request(chip=(0, 1))],
        }
        assert policy.best_chip(candidates) == (0, 0)

    def test_best_chip_ties_broken_by_connectivity(self):
        policy = FaroPolicy()
        # Both chips have overlap depth 1; chip (0,1) has two requests of the
        # same I/O (connectivity 2).
        candidates = {
            (0, 0): [make_request(io_id=1)],
            (0, 1): [
                make_request(io_id=2, chip=(0, 1), die=0, plane=0, page=0),
                make_request(io_id=2, chip=(0, 1), die=0, plane=0, page=1),
            ],
        }
        assert policy.best_chip(candidates) == (0, 1)

    def test_best_chip_empty(self):
        assert FaroPolicy().best_chip({}) is None
        assert FaroPolicy().best_chip({(0, 0): []}) is None

    def test_order_requests_extends_coverage_first(self):
        policy = FaroPolicy()
        requests = [
            make_request(io_id=1, die=0, plane=0, page=0),
            make_request(io_id=1, die=0, plane=0, page=1),  # duplicate plane
            make_request(io_id=2, die=1, plane=1, page=2),
        ]
        ordered = policy.order_requests(requests)
        first_two_targets = {(req.address.die, req.address.plane) for req in ordered[:2]}
        assert first_two_targets == {(0, 0), (1, 1)}
        assert len(ordered) == 3

    def test_order_requests_reads_before_writes(self):
        policy = FaroPolicy(read_before_write=True)
        write = make_request(io_id=1, op=FlashOp.PROGRAM, die=0, plane=0)
        read = make_request(io_id=2, op=FlashOp.READ, die=0, plane=0, page=3)
        ordered = policy.order_requests([write, read])
        assert ordered[0] is read

    def test_order_requests_keeps_fifo_when_hazard_disabled(self):
        policy = FaroPolicy(read_before_write=False)
        write = make_request(io_id=1, op=FlashOp.PROGRAM, die=0, plane=0)
        read = make_request(io_id=2, op=FlashOp.READ, die=0, plane=0, page=3)
        ordered = policy.order_requests([write, read])
        assert ordered[0] is write

    def test_chip_priority_dataclass(self):
        policy = FaroPolicy()
        priority = policy.chip_priority((0, 0), [make_request(), make_request(die=1, page=1)])
        assert priority.overlap_depth == 2
        assert priority.connectivity == 2
        assert priority.sort_key == (2, 2)


class TestRiosTraversal:
    def make_geometry(self):
        return SSDGeometry(
            num_channels=2,
            chips_per_channel=3,
            dies_per_chip=2,
            planes_per_die=2,
            blocks_per_plane=4,
            pages_per_block=8,
        )

    def test_order_is_offset_major(self):
        traversal = RiosTraversal(self.make_geometry())
        assert traversal.order[:4] == ((0, 0), (1, 0), (0, 1), (1, 1))
        assert len(traversal) == 6

    def test_channel_first_option(self):
        traversal = RiosTraversal(self.make_geometry(), channel_first=True)
        assert traversal.order[:3] == ((0, 0), (0, 1), (0, 2))

    def test_next_chip_skips_idle(self):
        traversal = RiosTraversal(self.make_geometry())
        target = (0, 1)
        found = traversal.next_chip(lambda key: key == target)
        assert found == target

    def test_next_chip_round_robins(self):
        traversal = RiosTraversal(self.make_geometry())
        first = traversal.next_chip(lambda key: True)
        second = traversal.next_chip(lambda key: True)
        assert first != second

    def test_next_chip_none_without_work(self):
        traversal = RiosTraversal(self.make_geometry())
        assert traversal.next_chip(lambda key: False) is None

    def test_reset(self):
        traversal = RiosTraversal(self.make_geometry())
        traversal.next_chip(lambda key: True)
        traversal.reset()
        assert traversal.cursor == 0

    def test_cursor_wraps(self):
        traversal = RiosTraversal(self.make_geometry())
        for _ in range(len(traversal) + 1):
            traversal.next_chip(lambda key: True)
        assert 0 <= traversal.cursor < len(traversal)
