"""Tests for the device zoo (``repro.devices``).

Covers the four contract surfaces:

* loader validation: every malformed definition fails with a single
  :class:`DeviceConfigError` naming the file, the key and what was expected;
* registry semantics: the shipped zoo loads completely, ids resolve, unknown
  ids and duplicate names are rejected;
* fingerprint flow: zoo devices enter job fingerprints by *resolved
  content*, so a zoo job and an equivalent explicit-config job share a
  fingerprint, and editing a definition changes exactly that device's
  fingerprint;
* heterogeneous arrays: per-slot device ids expand into per-device jobs and
  survive the serial/process bit-identity contract.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.devices import (
    ZOO_DIR,
    DeviceConfigError,
    DeviceRegistry,
    default_registry,
    device_config,
    device_model,
    load_device_file,
)
from repro.devices.loader import _parse_toml_minimal
from repro.experiments.engine import ExecutionEngine
from repro.experiments.spec import ArraySpec, SimJob, WorkloadSpec

SHIPPED_DEVICES = ("mlc-gen1", "mlc-gen2", "slc-gen1", "tlc-gen3")

BASE_TOML = (ZOO_DIR / "slc-gen1.toml").read_text(encoding="utf-8")


def write_device(tmp_path: Path, text: str, name: str = "device.toml") -> Path:
    path = tmp_path / name
    path.write_text(text, encoding="utf-8")
    return path


class TestShippedZoo:
    def test_every_shipped_definition_loads(self):
        registry = DeviceRegistry(ZOO_DIR)
        assert registry.names() == SHIPPED_DEVICES
        assert len(registry) == len(SHIPPED_DEVICES)

    def test_default_registry_is_cached_and_refreshable(self):
        first = default_registry()
        assert default_registry() is first
        assert default_registry(refresh=True) is not first

    def test_models_resolve_to_valid_configs(self):
        for name in SHIPPED_DEVICES:
            config = device_config(name)
            assert config.geometry.total_pages > 0
            assert config.timing.read_ns > 0

    def test_paper_device_matches_paper_shape(self):
        # mlc-gen2 is the paper's evaluation device: 8 channels x 8 chips.
        model = device_model("mlc-gen2")
        assert model.geometry.num_channels == 8
        assert model.geometry.num_chips == 64
        assert "paper" in model.tags

    def test_fingerprints_stable_across_reloads(self):
        first = {m.name: m.fingerprint() for m in DeviceRegistry(ZOO_DIR).models()}
        second = {m.name: m.fingerprint() for m in DeviceRegistry(ZOO_DIR).models()}
        assert first == second
        assert len(set(first.values())) == len(first)

    def test_unknown_device_lists_the_zoo(self):
        with pytest.raises(DeviceConfigError, match="mlc-gen2"):
            device_model("quantum-gen9")

    def test_summary_rows_cover_identity_and_shape(self):
        row = device_model("tlc-gen3").summary_row()
        assert row["name"] == "tlc-gen3"
        assert row["cell"] == "TLC"
        assert row["capacity_mb"] > 0


class TestLoaderValidation:
    def test_unknown_geometry_key_rejected(self, tmp_path):
        path = write_device(tmp_path, BASE_TOML.replace("num_channels", "num_chanels"))
        with pytest.raises(DeviceConfigError) as excinfo:
            load_device_file(path)
        message = str(excinfo.value)
        assert str(path) in message
        assert "geometry.num_chanels" in message
        assert "unknown key" in message

    def test_wrong_type_names_file_key_and_expectation(self, tmp_path):
        path = write_device(tmp_path, BASE_TOML.replace("queue_depth = 32", 'queue_depth = "big"'))
        with pytest.raises(DeviceConfigError) as excinfo:
            load_device_file(path)
        message = str(excinfo.value)
        assert str(path) in message
        assert "config.queue_depth" in message
        assert "expected int" in message

    def test_bool_rejected_where_int_expected(self, tmp_path):
        path = write_device(tmp_path, BASE_TOML.replace("queue_depth = 32", "queue_depth = true"))
        with pytest.raises(DeviceConfigError, match="got bool"):
            load_device_file(path)

    def test_missing_device_section_rejected(self, tmp_path):
        text = BASE_TOML.replace("[device]", "[geometry2]", 1)
        path = write_device(tmp_path, text)
        with pytest.raises(DeviceConfigError, match="unknown section"):
            load_device_file(path)

    def test_missing_required_name_rejected(self, tmp_path):
        path = write_device(tmp_path, BASE_TOML.replace('name = "slc-gen1"\n', ""))
        with pytest.raises(DeviceConfigError, match="device.name.*required"):
            load_device_file(path)

    def test_bad_cell_rejected(self, tmp_path):
        path = write_device(tmp_path, BASE_TOML.replace('cell = "SLC"', 'cell = "QLC"'))
        with pytest.raises(DeviceConfigError, match="device.cell"):
            load_device_file(path)

    def test_non_string_tag_rejected(self, tmp_path):
        path = write_device(
            tmp_path, BASE_TOML.replace('tags = ["slc", "gen1", "small", "low-latency"]', "tags = [1, 2]")
        )
        with pytest.raises(DeviceConfigError, match="device.tags"):
            load_device_file(path)

    def test_bad_allocation_order_lists_members(self, tmp_path):
        path = write_device(
            tmp_path, BASE_TOML + '\nallocation_order = "sideways"\n'
        )
        with pytest.raises(DeviceConfigError, match="allocation_order"):
            load_device_file(path)

    def test_unsupported_suffix_rejected(self, tmp_path):
        path = write_device(tmp_path, BASE_TOML, name="device.yaml")
        with pytest.raises(DeviceConfigError, match="suffix"):
            load_device_file(path)

    def test_invalid_geometry_combination_is_a_loader_error(self, tmp_path):
        path = write_device(tmp_path, BASE_TOML.replace("num_channels = 4", "num_channels = 0"))
        with pytest.raises(DeviceConfigError) as excinfo:
            load_device_file(path)
        assert str(path) in str(excinfo.value)

    def test_json_device_file_loads(self, tmp_path):
        document = {
            "device": {"name": "json-dev", "cell": "MLC", "generation": 1, "tags": ["json"]},
            "geometry": {"num_channels": 2, "chips_per_channel": 2},
            "timing": {"read_ns": 20000},
            "config": {"queue_depth": 16},
        }
        path = write_device(tmp_path, json.dumps(document), name="json-dev.json")
        model = load_device_file(path)
        assert model.name == "json-dev"
        assert model.to_config().queue_depth == 16

    def test_invalid_json_rejected(self, tmp_path):
        path = write_device(tmp_path, "{not json", name="bad.json")
        with pytest.raises(DeviceConfigError, match="invalid JSON"):
            load_device_file(path)


class TestMinimalTomlParser:
    """The 3.10 fallback parser must agree with tomllib on shipped files."""

    @pytest.mark.parametrize("name", SHIPPED_DEVICES)
    def test_parity_with_tomllib_on_shipped_files(self, name):
        tomllib = pytest.importorskip("tomllib")
        path = ZOO_DIR / f"{name}.toml"
        text = path.read_text(encoding="utf-8")
        assert _parse_toml_minimal(text, path) == tomllib.loads(text)

    def test_duplicate_section_rejected(self, tmp_path):
        with pytest.raises(DeviceConfigError, match="duplicate section"):
            _parse_toml_minimal("[a]\nx = 1\n[a]\ny = 2\n", tmp_path / "d.toml")

    def test_assignment_before_section_rejected(self, tmp_path):
        with pytest.raises(DeviceConfigError, match="before any"):
            _parse_toml_minimal("x = 1\n", tmp_path / "d.toml")

    def test_garbage_line_rejected(self, tmp_path):
        with pytest.raises(DeviceConfigError, match="key = value"):
            _parse_toml_minimal("[a]\nnot an assignment\n", tmp_path / "d.toml")


class TestRegistryDirectories:
    def test_missing_directory_rejected(self, tmp_path):
        with pytest.raises(DeviceConfigError, match="does not exist"):
            DeviceRegistry(tmp_path / "nope")

    def test_empty_directory_rejected(self, tmp_path):
        with pytest.raises(DeviceConfigError, match="no .toml"):
            DeviceRegistry(tmp_path)

    def test_duplicate_device_names_rejected(self, tmp_path):
        write_device(tmp_path, BASE_TOML, name="a.toml")
        write_device(tmp_path, BASE_TOML, name="b.toml")
        with pytest.raises(DeviceConfigError, match="duplicate device name"):
            DeviceRegistry(tmp_path)

    def test_editing_a_definition_changes_its_fingerprint(self, tmp_path):
        write_device(tmp_path, BASE_TOML, name="slc-gen1.toml")
        before = DeviceRegistry(tmp_path).get("slc-gen1")
        write_device(
            tmp_path,
            BASE_TOML.replace("queue_depth = 32", "queue_depth = 64"),
            name="slc-gen1.toml",
        )
        after = DeviceRegistry(tmp_path).get("slc-gen1")
        assert before.fingerprint() != after.fingerprint()
        assert before.to_config().fingerprint() != after.to_config().fingerprint()

    def test_source_path_is_not_part_of_the_fingerprint(self, tmp_path):
        write_device(tmp_path, BASE_TOML, name="slc-gen1.toml")
        moved = DeviceRegistry(tmp_path).get("slc-gen1")
        shipped = device_model("slc-gen1")
        assert moved.source != shipped.source
        assert moved.fingerprint() == shipped.fingerprint()


class TestJobIntegration:
    WORKLOAD = WorkloadSpec.random("zoo-io", num_requests=8, size_bytes=16 * 1024, seed=7)

    def test_exactly_one_of_config_or_device_required(self):
        with pytest.raises(ValueError, match="exactly one"):
            SimJob(workload=self.WORKLOAD, scheduler="SPK3")
        with pytest.raises(ValueError, match="exactly one"):
            SimJob(
                workload=self.WORKLOAD,
                scheduler="SPK3",
                config=device_config("slc-gen1"),
                device="slc-gen1",
            )

    def test_overrides_require_a_device(self):
        with pytest.raises(ValueError, match="device_overrides"):
            SimJob(
                workload=self.WORKLOAD,
                scheduler="SPK3",
                config=device_config("slc-gen1"),
                device_overrides=(("queue_depth", 8),),
            )

    def test_zoo_job_fingerprint_matches_equivalent_config_job(self):
        zoo_job = SimJob(workload=self.WORKLOAD, scheduler="SPK3", device="mlc-gen1")
        config_job = SimJob(
            workload=self.WORKLOAD, scheduler="SPK3", config=device_config("mlc-gen1")
        )
        assert zoo_job.fingerprint() == config_job.fingerprint()

    def test_device_overrides_enter_the_fingerprint(self):
        base = SimJob(workload=self.WORKLOAD, scheduler="SPK3", device="mlc-gen1")
        tuned = SimJob(
            workload=self.WORKLOAD,
            scheduler="SPK3",
            device="mlc-gen1",
            device_overrides=(("queue_depth", 8),),
        )
        assert base.fingerprint() != tuned.fingerprint()
        assert tuned.resolved_config.queue_depth == 8

    def test_zoo_job_executes(self):
        job = SimJob(workload=self.WORKLOAD, scheduler="SPK3", device="slc-gen1")
        result = job.execute()
        assert result.completed_ios == 8

    def test_zoo_jobs_share_cache_entries_with_config_jobs(self, tmp_path):
        engine = ExecutionEngine(cache_dir=tmp_path / "cache")
        zoo_job = SimJob(workload=self.WORKLOAD, scheduler="SPK3", device="slc-gen1")
        config_job = SimJob(
            workload=self.WORKLOAD, scheduler="SPK3", config=device_config("slc-gen1")
        )
        engine.run_jobs([zoo_job])
        engine.run_jobs([config_job])
        assert engine.stats.jobs_executed == 1
        assert engine.stats.cache_hits == 1


class TestHeterogeneousArrays:
    WORKLOAD = WorkloadSpec.random(
        "array-io", num_requests=12, size_bytes=64 * 1024, address_space_bytes=64 * 1024 * 1024, seed=7
    )

    def spec(self) -> ArraySpec:
        return ArraySpec(
            workload=self.WORKLOAD,
            num_devices=2,
            scheduler="SPK3",
            devices=("slc-gen1", "mlc-gen1"),
            key=("hetero",),
        )

    def test_exactly_one_of_config_or_devices_required(self):
        with pytest.raises(ValueError, match="exactly one"):
            ArraySpec(workload=self.WORKLOAD, num_devices=2, scheduler="SPK3")

    def test_devices_must_cover_every_slot(self):
        with pytest.raises(ValueError, match="2 ids for 3 slots"):
            ArraySpec(
                workload=self.WORKLOAD,
                num_devices=3,
                scheduler="SPK3",
                devices=("slc-gen1", "mlc-gen1"),
            )

    def test_slots_resolve_their_own_devices(self):
        spec = self.spec()
        assert spec.slot_config(0) == device_config("slc-gen1")
        assert spec.slot_config(1) == device_config("mlc-gen1")
        jobs = spec.device_jobs()
        assert [job.device for job in jobs] == ["slc-gen1", "mlc-gen1"]
        assert jobs[0].resolved_config.geometry != jobs[1].resolved_config.geometry

    def test_fingerprint_differs_from_swapped_slots(self):
        forward = self.spec().fingerprint()
        swapped = ArraySpec(
            workload=self.WORKLOAD,
            num_devices=2,
            scheduler="SPK3",
            devices=("mlc-gen1", "slc-gen1"),
            key=("hetero",),
        ).fingerprint()
        assert forward != swapped

    def test_fingerprints_are_stable(self):
        assert self.spec().fingerprint() == self.spec().fingerprint()

    def test_serial_and_process_runs_are_bit_identical(self):
        from repro.sim.config import stable_fingerprint

        jobs = list(self.spec().device_jobs())
        serial = ExecutionEngine("serial").run_jobs(jobs)
        process = ExecutionEngine("process", max_workers=2).run_jobs(jobs)
        assert [stable_fingerprint(r) for r in serial] == [
            stable_fingerprint(r) for r in process
        ]

    def test_array_simulation_accepts_devices(self):
        from repro.array.host import ArraySimulation
        from repro.array.layout import ArrayLayout

        simulation = ArraySimulation(
            ArrayLayout(num_devices=2, policy="stripe", chunk_bytes=64 * 1024),
            devices=("slc-gen1", "mlc-gen1"),
        )
        result = simulation.run(self.WORKLOAD)
        assert result.num_devices == 2
        assert result.completed_ios > 0
