"""Tests for the flash controller (commit queues, transaction phases)."""

import pytest

from repro.flash.channel import Channel
from repro.flash.chip import FlashChip
from repro.flash.commands import FlashOp, ParallelismClass, TransactionKind
from repro.flash.controller import FlashController
from repro.flash.geometry import PhysicalPageAddress
from repro.flash.request import MemoryRequest
from repro.flash.transaction import FlashTransaction, TransactionBuilder


@pytest.fixture
def controller(small_geometry, fast_timing):
    channel = Channel(0)
    chips = {
        key: FlashChip(key, small_geometry)
        for key in small_geometry.iter_chip_keys()
        if key[0] == 0
    }
    builder = TransactionBuilder(small_geometry, fast_timing)
    return FlashController(channel, chips, builder)


def make_request(io_id=1, op=FlashOp.READ, die=0, plane=0, page=0, chip=(0, 0)):
    channel, chip_idx = chip
    return MemoryRequest(
        io_id=io_id,
        op=op,
        lpn=page,
        size_bytes=2048,
        address=PhysicalPageAddress(
            channel=channel, chip=chip_idx, die=die, plane=plane, block=0, page=page
        ),
    )


class TestCommitQueues:
    def test_commit_tracks_pending(self, controller):
        request = make_request()
        controller.commit(request, 100)
        assert controller.pending_count((0, 0)) == 1
        assert controller.outstanding_count((0, 0)) == 1
        assert controller.has_outstanding((0, 0))
        assert request.committed_at_ns == 100

    def test_commit_to_unknown_chip_raises(self, controller):
        request = make_request(chip=(1, 0))  # channel 1 is not on this controller
        with pytest.raises(KeyError):
            controller.commit(request, 0)

    def test_pending_requests_view(self, controller):
        request = make_request()
        controller.commit(request, 0)
        assert controller.pending_requests((0, 0)) == (request,)

    def test_retarget_pending_removes_filtered(self, controller):
        first, second = make_request(page=0), make_request(page=1)
        controller.commit(first, 0)
        controller.commit(second, 0)
        removed = controller.retarget_pending((0, 0), lambda req: req is first)
        assert removed == 1
        assert controller.pending_count((0, 0)) == 1


class TestTransactionExecution:
    def test_start_transaction_selects_and_removes(self, controller):
        for plane in range(2):
            controller.commit(make_request(die=0, plane=plane, page=plane), 0)
        schedule = controller.start_transaction((0, 0), 0)
        assert schedule is not None
        assert schedule.transaction.num_requests == 2
        assert controller.pending_count((0, 0)) == 0
        assert controller.active[(0, 0)] is schedule.transaction

    def test_start_transaction_none_when_empty(self, controller):
        assert controller.start_transaction((0, 0), 0) is None

    def test_start_transaction_none_when_busy(self, controller):
        controller.commit(make_request(), 0)
        first = controller.start_transaction((0, 0), 0)
        assert first is not None
        controller.commit(make_request(page=5), 0)
        assert controller.start_transaction((0, 0), 0) is None

    def test_read_phases_cell_before_bus(self, controller):
        controller.commit(make_request(op=FlashOp.READ), 0)
        schedule = controller.start_transaction((0, 0), 0)
        assert schedule.cell_start_ns == 0
        assert schedule.bus_start_ns >= schedule.cell_end_ns
        assert schedule.complete_ns == schedule.bus_end_ns

    def test_write_phases_bus_before_cell(self, controller):
        controller.commit(make_request(op=FlashOp.PROGRAM), 0)
        schedule = controller.start_transaction((0, 0), 0)
        assert schedule.bus_start_ns == 0
        assert schedule.cell_start_ns == schedule.bus_end_ns
        assert schedule.complete_ns == schedule.cell_end_ns

    def test_chip_is_busy_for_whole_transaction(self, controller):
        controller.commit(make_request(), 0)
        schedule = controller.start_transaction((0, 0), 0)
        chip = controller.chips[(0, 0)]
        assert chip.is_busy(schedule.complete_ns - 1)
        assert not chip.is_busy(schedule.complete_ns)

    def test_bus_contention_between_chips_on_channel(self, controller):
        controller.commit(make_request(op=FlashOp.PROGRAM, chip=(0, 0)), 0)
        controller.commit(make_request(op=FlashOp.PROGRAM, chip=(0, 1)), 0)
        first = controller.start_transaction((0, 0), 0)
        second = controller.start_transaction((0, 1), 0)
        assert second.bus_start_ns >= first.bus_end_ns
        assert second.bus_wait_ns > 0

    def test_finish_transaction_completes_requests(self, controller):
        request = make_request()
        controller.commit(request, 0)
        schedule = controller.start_transaction((0, 0), 0)
        transaction = controller.finish_transaction((0, 0), schedule.complete_ns)
        assert transaction is schedule.transaction
        assert request.completed_at_ns == schedule.complete_ns
        assert controller.active[(0, 0)] is None

    def test_finish_without_active_raises(self, controller):
        with pytest.raises(RuntimeError):
            controller.finish_transaction((0, 0), 0)

    def test_transaction_counter(self, controller):
        controller.commit(make_request(), 0)
        controller.start_transaction((0, 0), 0)
        assert controller.total_transactions == 1
        assert controller.total_committed == 1


class TestPrebuiltExecution:
    def test_execute_prebuilt_gc_occupies_cell_only(self, controller):
        placeholder = make_request(op=FlashOp.ERASE)
        placeholder.is_gc = True
        transaction = FlashTransaction(
            chip_key=(0, 0),
            requests=[placeholder],
            kind=TransactionKind.ERASE,
            parallelism=ParallelismClass.NON_PAL,
        )
        transaction.is_gc = True
        transaction.cell_time_ns = 5_000_000
        transaction.bus_time_ns = 0
        schedule = controller.execute_prebuilt((0, 0), transaction, 10)
        assert schedule.complete_ns == 10 + 5_000_000
        assert schedule.bus_wait_ns == 0
        assert controller.chips[(0, 0)].stats.gc_transactions == 1

    def test_execute_prebuilt_refused_when_busy(self, controller):
        controller.commit(make_request(), 0)
        controller.start_transaction((0, 0), 0)
        other = FlashTransaction(
            chip_key=(0, 0),
            requests=[make_request(page=9)],
            kind=TransactionKind.LEGACY,
            parallelism=ParallelismClass.NON_PAL,
        )
        assert controller.execute_prebuilt((0, 0), other, 0) is None
