"""Tests for the page-mapped FTL."""

import pytest

from repro.ftl.mapping import PageMapFTL


@pytest.fixture
def ftl(small_geometry, small_chips):
    return PageMapFTL(small_geometry, small_chips)


class TestTranslation:
    def test_read_of_unwritten_page_uses_static_layout(self, ftl):
        address = ftl.translate_read(42)
        assert address == ftl.allocator.static_address(42)

    def test_write_then_read_hits_mapping(self, ftl):
        written = ftl.translate_write(7)
        assert ftl.translate_read(7) == written
        assert ftl.lookup(7) == written

    def test_lookup_none_for_unwritten(self, ftl):
        assert ftl.lookup(99) is None

    def test_rewrite_invalidates_old_page(self, ftl, small_chips):
        first = ftl.translate_write(3)
        second = ftl.translate_write(3)
        assert first != second
        plane = small_chips[first.chip_key].plane(first.die, first.plane)
        assert not plane.blocks[first.block].is_valid(first.page)
        assert ftl.reverse_lookup(first) is None
        assert ftl.reverse_lookup(second) == 3

    def test_mapped_pages_counts_live_mappings(self, ftl):
        ftl.translate_write(1)
        ftl.translate_write(2)
        ftl.translate_write(1)
        assert ftl.mapped_pages == 2

    def test_stats_counters(self, ftl):
        ftl.translate_write(1)
        ftl.translate_read(1)
        ftl.translate_write(1)
        assert ftl.stats.host_writes == 2
        assert ftl.stats.host_reads == 1
        assert ftl.stats.invalidations == 1


class TestMigration:
    def test_migrate_updates_both_maps(self, ftl):
        original = ftl.translate_write(5)
        old, new = ftl.migrate_page(5)
        assert old == original
        assert new != original
        assert ftl.lookup(5) == new
        assert ftl.reverse_lookup(new) == 5
        assert ftl.reverse_lookup(old) is None

    def test_migrate_unmapped_raises(self, ftl):
        with pytest.raises(KeyError):
            ftl.migrate_page(77)

    def test_migrate_prefers_plane(self, ftl):
        ftl.translate_write(5)
        preferred = (1, 1, 0, 1)
        _, new = ftl.migrate_page(5, preferred_plane=preferred)
        assert new.plane_key == preferred

    def test_migration_listener_invoked(self, ftl):
        events = []
        ftl.add_migration_listener(lambda lpn, old, new: events.append((lpn, old, new)))
        ftl.translate_write(9)
        ftl.migrate_page(9)
        assert len(events) == 1
        assert events[0][0] == 9

    def test_migration_counters(self, ftl):
        ftl.translate_write(4)
        ftl.migrate_page(4)
        assert ftl.stats.migrations == 1
        assert ftl.stats.gc_writes == 1


class TestEraseBlock:
    def test_erase_clears_mappings_and_block(self, ftl, small_chips):
        address = ftl.translate_write(11)
        ftl.erase_block(address.chip_key, address.die, address.plane, address.block)
        assert ftl.lookup(11) is None
        assert ftl.reverse_lookup(address) is None
        plane = small_chips[address.chip_key].plane(address.die, address.plane)
        assert plane.blocks[address.block].is_free
        assert plane.blocks[address.block].erase_count == 1


class TestFill:
    def test_fill_writes_requested_fraction(self, ftl, small_geometry):
        written = ftl.fill(0.5)
        assert written == int(small_geometry.total_pages * 0.5)
        assert ftl.utilization() == pytest.approx(0.5, abs=0.01)

    def test_fill_with_overwrites_creates_invalid_pages(self, small_geometry, small_chips):
        ftl = PageMapFTL(small_geometry, small_chips)
        ftl.fill(0.8, overwrite_fraction=0.4)
        invalid = 0
        for chip in small_chips.values():
            for plane in chip.iter_planes():
                for block in plane.blocks:
                    invalid += block.invalid_count
        assert invalid > 0
        # Live data is less than the total pages written.
        assert ftl.utilization() < 0.8

    def test_fill_rejects_bad_fraction(self, ftl):
        with pytest.raises(ValueError):
            ftl.fill(1.5)
        with pytest.raises(ValueError):
            ftl.fill(0.5, overwrite_fraction=1.0)

    def test_fill_zero_is_noop(self, ftl):
        assert ftl.fill(0.0) == 0
        assert ftl.utilization() == 0.0

    def test_utilization_empty(self, ftl):
        assert ftl.utilization() == 0.0


class TestBaseLayout:
    """The implicit (lazy) base layout behind fast-forward aging."""

    def install(self, ftl, small_geometry, live=64):
        # Bulk-program the blocks the base layout claims, like
        # apply_device_state does, so block state and mapping agree.
        sequence = ftl.allocator.plane_sequence
        num_planes = len(sequence)
        per_plane, extra = divmod(live, num_planes)
        for index, (channel, chip, die, plane) in enumerate(sequence):
            count = per_plane + (1 if index < extra else 0)
            if count == 0:
                continue
            plane_obj = ftl.chips[(channel, chip)].plane(die, plane)
            ppb = small_geometry.pages_per_block
            full, rem = divmod(count, ppb)
            for block_id in range(full):
                plane_obj.blocks[block_id].program_bulk(ppb)
            if rem:
                plane_obj.blocks[full].program_bulk(rem)
            plane_obj.active_block_id = (count - 1) // ppb
        ftl.install_base_layout(live)
        ftl.allocator.cursor = live % num_planes
        return live

    def test_base_pages_resolve_like_written_pages(self, ftl, small_geometry):
        live = self.install(ftl, small_geometry)
        assert ftl.mapped_pages == live
        for lpn in range(live):
            address = ftl.lookup(lpn)
            assert address == ftl.allocator.static_address(lpn)
            assert ftl.reverse_lookup(address) == lpn
        assert ftl.lookup(live) is None

    def test_mapping_items_merge_base_and_overlay(self, ftl, small_geometry):
        live = self.install(ftl, small_geometry)
        rewritten = ftl.translate_write(3)
        items = dict(ftl.mapping_items())
        assert len(items) == live
        assert items[3] == rewritten
        assert items[4] == ftl.allocator.static_address(4)

    def test_overwrite_invalidates_base_page(self, ftl, small_geometry):
        self.install(ftl, small_geometry)
        old = ftl.lookup(5)
        new = ftl.translate_write(5)
        assert new != old
        assert ftl.reverse_lookup(old) is None
        assert ftl.reverse_lookup(new) == 5
        assert ftl.lookup(5) == new
        block = ftl.chips[old.chip_key].plane(old.die, old.plane).blocks[old.block]
        assert not block.is_valid(old.page)

    def test_migrate_base_page(self, ftl, small_geometry):
        self.install(ftl, small_geometry)
        old, new = ftl.migrate_page(2)
        assert old == ftl.allocator.static_address(2)
        assert ftl.lookup(2) == new
        assert ftl.reverse_lookup(old) is None

    def test_erase_block_removes_base_stragglers(self, ftl, small_geometry):
        live = self.install(ftl, small_geometry)
        victim = ftl.allocator.static_address(0)
        before = ftl.mapped_pages
        ftl.erase_block(victim.chip_key, victim.die, victim.plane, victim.block)
        assert ftl.lookup(0) is None
        assert ftl.reverse_lookup(victim) is None
        assert ftl.mapped_pages < before

    def test_install_requires_fresh_ftl(self, ftl, small_geometry):
        ftl.translate_write(0)
        with pytest.raises(ValueError):
            ftl.install_base_layout(16)

    def test_install_rejects_out_of_range(self, ftl, small_geometry):
        with pytest.raises(ValueError):
            ftl.install_base_layout(small_geometry.total_pages + 1)
