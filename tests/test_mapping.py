"""Tests for the page-mapped FTL."""

import pytest

from repro.flash.chip import FlashChip
from repro.ftl.mapping import PageMapFTL


@pytest.fixture
def ftl(small_geometry, small_chips):
    return PageMapFTL(small_geometry, small_chips)


class TestTranslation:
    def test_read_of_unwritten_page_uses_static_layout(self, ftl):
        address = ftl.translate_read(42)
        assert address == ftl.allocator.static_address(42)

    def test_write_then_read_hits_mapping(self, ftl):
        written = ftl.translate_write(7)
        assert ftl.translate_read(7) == written
        assert ftl.lookup(7) == written

    def test_lookup_none_for_unwritten(self, ftl):
        assert ftl.lookup(99) is None

    def test_rewrite_invalidates_old_page(self, ftl, small_chips):
        first = ftl.translate_write(3)
        second = ftl.translate_write(3)
        assert first != second
        plane = small_chips[first.chip_key].plane(first.die, first.plane)
        assert not plane.blocks[first.block].is_valid(first.page)
        assert ftl.reverse_lookup(first) is None
        assert ftl.reverse_lookup(second) == 3

    def test_mapped_pages_counts_live_mappings(self, ftl):
        ftl.translate_write(1)
        ftl.translate_write(2)
        ftl.translate_write(1)
        assert ftl.mapped_pages == 2

    def test_stats_counters(self, ftl):
        ftl.translate_write(1)
        ftl.translate_read(1)
        ftl.translate_write(1)
        assert ftl.stats.host_writes == 2
        assert ftl.stats.host_reads == 1
        assert ftl.stats.invalidations == 1


class TestMigration:
    def test_migrate_updates_both_maps(self, ftl):
        original = ftl.translate_write(5)
        old, new = ftl.migrate_page(5)
        assert old == original
        assert new != original
        assert ftl.lookup(5) == new
        assert ftl.reverse_lookup(new) == 5
        assert ftl.reverse_lookup(old) is None

    def test_migrate_unmapped_raises(self, ftl):
        with pytest.raises(KeyError):
            ftl.migrate_page(77)

    def test_migrate_prefers_plane(self, ftl):
        ftl.translate_write(5)
        preferred = (1, 1, 0, 1)
        _, new = ftl.migrate_page(5, preferred_plane=preferred)
        assert new.plane_key == preferred

    def test_migration_listener_invoked(self, ftl):
        events = []
        ftl.add_migration_listener(lambda lpn, old, new: events.append((lpn, old, new)))
        ftl.translate_write(9)
        ftl.migrate_page(9)
        assert len(events) == 1
        assert events[0][0] == 9

    def test_migration_counters(self, ftl):
        ftl.translate_write(4)
        ftl.migrate_page(4)
        assert ftl.stats.migrations == 1
        assert ftl.stats.gc_writes == 1


class TestEraseBlock:
    def test_erase_clears_mappings_and_block(self, ftl, small_chips):
        address = ftl.translate_write(11)
        ftl.erase_block(address.chip_key, address.die, address.plane, address.block)
        assert ftl.lookup(11) is None
        assert ftl.reverse_lookup(address) is None
        plane = small_chips[address.chip_key].plane(address.die, address.plane)
        assert plane.blocks[address.block].is_free
        assert plane.blocks[address.block].erase_count == 1


class TestFill:
    def test_fill_writes_requested_fraction(self, ftl, small_geometry):
        written = ftl.fill(0.5)
        assert written == int(small_geometry.total_pages * 0.5)
        assert ftl.utilization() == pytest.approx(0.5, abs=0.01)

    def test_fill_with_overwrites_creates_invalid_pages(self, small_geometry, small_chips):
        ftl = PageMapFTL(small_geometry, small_chips)
        ftl.fill(0.8, overwrite_fraction=0.4)
        invalid = 0
        for chip in small_chips.values():
            for plane in chip.iter_planes():
                for block in plane.blocks:
                    invalid += block.invalid_count
        assert invalid > 0
        # Live data is less than the total pages written.
        assert ftl.utilization() < 0.8

    def test_fill_rejects_bad_fraction(self, ftl):
        with pytest.raises(ValueError):
            ftl.fill(1.5)
        with pytest.raises(ValueError):
            ftl.fill(0.5, overwrite_fraction=1.0)

    def test_fill_zero_is_noop(self, ftl):
        assert ftl.fill(0.0) == 0
        assert ftl.utilization() == 0.0

    def test_utilization_empty(self, ftl):
        assert ftl.utilization() == 0.0
