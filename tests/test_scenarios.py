"""Tests for the scenario engine: arrivals, transforms, DSL, engine flow."""

import random

import pytest

from repro.experiments.engine import ExecutionEngine
from repro.experiments.spec import ExperimentSpec, SimJob, WorkloadSpec
from repro.scenarios import (
    BurstyArrivals,
    DiurnalArrivals,
    FixedArrivals,
    Phase,
    PoissonArrivals,
    Scenario,
    Tenant,
    characterize,
    clip_window,
    merge_streams,
    remap_offsets,
    time_dilate,
)
from repro.scenarios.library import (
    bursty_multitenant_scenario,
    default_scenarios,
    diurnal_scenario,
    steady_scenario,
)
from repro.sim.config import SimulationConfig
from repro.workloads.request import IOKind, IORequest
from repro.workloads.synthetic import generate_random_workload, generate_sequential_workload

KB = 1024
MB = 1024 * KB

ALL_PROCESSES = [
    FixedArrivals(interarrival_ns=1_000),
    PoissonArrivals(mean_interarrival_ns=1_500.0),
    BurstyArrivals(),
    DiurnalArrivals(),
]


def request_values(requests):
    """Value tuples for comparing request lists across builds/processes."""
    return [
        (io.io_id, io.kind.value, io.offset_bytes, io.size_bytes, io.arrival_ns)
        for io in requests
    ]


class TestArrivalProcesses:
    @pytest.mark.parametrize("process", ALL_PROCESSES, ids=lambda p: type(p).__name__)
    def test_monotone_and_deterministic(self, process):
        first = process.sample(64, random.Random(7))
        second = process.sample(64, random.Random(7))
        assert first == second
        assert len(first) == 64
        assert all(t >= 0 for t in first)
        assert first == sorted(first)

    @pytest.mark.parametrize("process", ALL_PROCESSES, ids=lambda p: type(p).__name__)
    def test_different_seeds_differ(self, process):
        if isinstance(process, FixedArrivals):
            pytest.skip("fixed gaps are seed-independent by design")
        assert process.sample(64, random.Random(1)) != process.sample(64, random.Random(2))

    def test_fixed_matches_legacy_gap(self):
        times = FixedArrivals(interarrival_ns=2_000).sample(5, random.Random(0))
        assert times == [0, 2_000, 4_000, 6_000, 8_000]

    def test_poisson_mean_approximates_parameter(self):
        times = PoissonArrivals(mean_interarrival_ns=1_000.0).sample(4_000, random.Random(3))
        mean_gap = times[-1] / (len(times) - 1)
        assert mean_gap == pytest.approx(1_000.0, rel=0.1)

    def test_bursty_produces_bimodal_gaps(self):
        process = BurstyArrivals(
            burst_interarrival_ns=200.0,
            idle_interarrival_ns=50_000.0,
            mean_burst_length=16.0,
            mean_idle_length=2.0,
        )
        times = process.sample(2_000, random.Random(5))
        gaps = [b - a for a, b in zip(times, times[1:])]
        short = sum(1 for gap in gaps if gap < 2_000)
        long = sum(1 for gap in gaps if gap > 10_000)
        # Most gaps are burst-dense, but a solid tail of idle gaps exists.
        assert short > len(gaps) * 0.5
        assert long > len(gaps) * 0.02

    def test_bursty_gap_cv_exceeds_poisson(self):
        rng = random.Random(9)
        bursty = BurstyArrivals().sample(1_000, rng)
        poisson = PoissonArrivals(mean_interarrival_ns=2_000.0).sample(1_000, random.Random(9))
        make = lambda times: [
            IORequest(kind=IOKind.READ, offset_bytes=0, size_bytes=512, arrival_ns=t)
            for t in times
        ]
        assert characterize(make(bursty)).interarrival_cv > characterize(make(poisson)).interarrival_cv

    def test_diurnal_rate_tracks_curve(self):
        process = DiurnalArrivals(
            base_interarrival_ns=1_000.0, amplitude=0.9, period_ns=1_000_000.0
        )
        # Rate at the sinusoid peak is (1+a)/base, at the trough (1-a)/base.
        assert process.rate_at(250_000.0) == pytest.approx(1.9e-3, rel=1e-6)
        assert process.rate_at(750_000.0) == pytest.approx(0.1e-3, rel=1e-6)

    @pytest.mark.parametrize(
        "factory",
        [
            lambda: FixedArrivals(interarrival_ns=-1),
            lambda: PoissonArrivals(mean_interarrival_ns=0.0),
            lambda: BurstyArrivals(burst_interarrival_ns=0.0),
            lambda: BurstyArrivals(burst_interarrival_ns=5_000.0, idle_interarrival_ns=100.0),
            lambda: BurstyArrivals(mean_burst_length=0.5),
            lambda: DiurnalArrivals(amplitude=1.5),
            lambda: DiurnalArrivals(period_ns=0.0),
        ],
    )
    def test_parameter_validation(self, factory):
        with pytest.raises(ValueError):
            factory()


class TestTransforms:
    def make_stream(self, arrivals, *, offset=0, size=4 * KB, kind=IOKind.READ):
        return [
            IORequest(kind=kind, offset_bytes=offset + i * size, size_bytes=size, arrival_ns=t)
            for i, t in enumerate(arrivals)
        ]

    def test_merge_orders_by_arrival(self):
        a = self.make_stream([0, 100, 300])
        b = self.make_stream([50, 200], kind=IOKind.WRITE)
        merged = merge_streams([a, b])
        assert [io.arrival_ns for io in merged] == [0, 50, 100, 200, 300]
        assert sum(io.size_bytes for io in merged) == sum(
            io.size_bytes for io in a + b
        )

    def test_merge_tie_break_is_stream_order(self):
        a = self.make_stream([100], offset=0)
        b = self.make_stream([100], offset=1 * MB, kind=IOKind.WRITE)
        merged = merge_streams([a, b])
        assert [io.offset_bytes for io in merged] == [0, 1 * MB]
        # Swapping stream order swaps the tie-break deterministically.
        swapped = merge_streams([b, a])
        assert [io.offset_bytes for io in swapped] == [1 * MB, 0]

    def test_merge_copies_requests(self):
        a = self.make_stream([0, 10])
        merged = merge_streams([a])
        assert merged[0] is not a[0]
        merged[0].arrival_ns = 999
        assert a[0].arrival_ns == 0

    def test_time_dilate_scales_and_preserves_order(self):
        stream = self.make_stream([0, 100, 250])
        compressed = time_dilate(stream, 0.5)
        assert [io.arrival_ns for io in compressed] == [0, 50, 125]
        stretched = time_dilate(stream, 2.0)
        assert [io.arrival_ns for io in stretched] == [0, 200, 500]
        with pytest.raises(ValueError):
            time_dilate(stream, 0.0)

    def test_clip_window_bounds_and_rebase(self):
        stream = self.make_stream([0, 100, 200, 300])
        clipped = clip_window(stream, start_ns=100, end_ns=300)
        assert [io.arrival_ns for io in clipped] == [0, 100]
        unrebased = clip_window(stream, start_ns=100, end_ns=300, rebase=False)
        assert [io.arrival_ns for io in unrebased] == [100, 200]
        with pytest.raises(ValueError):
            clip_window(stream, start_ns=300, end_ns=100)

    def test_remap_confines_to_slice(self):
        stream = generate_random_workload(
            num_requests=64, size_bytes=16 * KB, address_space_bytes=512 * MB, seed=4
        )
        remapped = remap_offsets(
            stream, base_bytes=64 * MB, span_bytes=32 * MB, align_bytes=2 * KB
        )
        assert len(remapped) == len(stream)
        for io in remapped:
            assert 64 * MB <= io.offset_bytes
            assert io.end_offset_bytes <= 64 * MB + 32 * MB
            assert io.offset_bytes % (2 * KB) == 0
            assert io.size_bytes % (2 * KB) == 0

    def test_remap_validation(self):
        stream = self.make_stream([0])
        with pytest.raises(ValueError):
            remap_offsets(stream, base_bytes=-1, span_bytes=1 * MB)
        with pytest.raises(ValueError):
            remap_offsets(stream, base_bytes=0, span_bytes=3_000, align_bytes=2 * KB)
        # align_bytes=0 must raise, not silently degrade to byte granularity.
        with pytest.raises(ValueError):
            remap_offsets(stream, base_bytes=0, span_bytes=4 * KB, align_bytes=0)


class TestCharacterize:
    def test_empty_stream(self):
        stats = characterize([])
        assert stats.num_requests == 0
        assert stats.mean_queue_depth == 0.0

    def test_sequential_stream_statistics(self):
        stream = generate_sequential_workload(
            num_requests=16, size_bytes=8 * KB, interarrival_ns=1_000
        )
        stats = characterize(stream, page_size_bytes=4 * KB)
        assert stats.num_requests == 16
        assert stats.total_bytes == 16 * 8 * KB
        assert stats.read_fraction == 1.0
        assert stats.sequentiality == 1.0
        assert stats.working_set_bytes == 16 * 8 * KB
        assert stats.interarrival_cv == 0.0
        assert stats.duration_ns == 15_000

    def test_queue_depth_against_nominal_service(self):
        # 4 requests at t=0; nominal service 10us: all outstanding together.
        burst = [
            IORequest(kind=IOKind.READ, offset_bytes=i * 4 * KB, size_bytes=4 * KB, arrival_ns=0)
            for i in range(4)
        ]
        stats = characterize(burst, nominal_service_ns=10_000)
        assert stats.max_queue_depth == 4
        # Same 4 requests spread far apart: never more than one outstanding.
        sparse = [
            IORequest(
                kind=IOKind.READ,
                offset_bytes=i * 4 * KB,
                size_bytes=4 * KB,
                arrival_ns=i * 100_000,
            )
            for i in range(4)
        ]
        assert characterize(sparse, nominal_service_ns=10_000).max_queue_depth == 1

    def test_read_fraction_and_working_set_overlap(self):
        # Two requests on the same page: working set counts the page once.
        stream = [
            IORequest(kind=IOKind.READ, offset_bytes=0, size_bytes=4 * KB, arrival_ns=0),
            IORequest(kind=IOKind.WRITE, offset_bytes=0, size_bytes=4 * KB, arrival_ns=100),
        ]
        stats = characterize(stream, page_size_bytes=4 * KB)
        assert stats.read_fraction == 0.5
        assert stats.working_set_bytes == 4 * KB

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            characterize([], page_size_bytes=0)
        with pytest.raises(ValueError):
            characterize([], nominal_service_ns=0)


class TestScenarioDSL:
    def two_phase_scenario(self, seed=13):
        return bursty_multitenant_scenario(requests_per_tenant=24, seed=seed)

    def test_build_is_deterministic(self):
        scenario = self.two_phase_scenario()
        assert request_values(scenario.build()) == request_values(scenario.build())

    def test_ids_renumbered_from_zero(self):
        requests = self.two_phase_scenario().build()
        assert [io.io_id for io in requests] == list(range(len(requests)))

    def test_arrivals_monotone_across_phases(self):
        requests = self.two_phase_scenario().build()
        arrivals = [io.arrival_ns for io in requests]
        assert arrivals == sorted(arrivals)

    def test_phases_are_time_ordered(self):
        scenario = self.two_phase_scenario()
        built = scenario.build_with_report()
        warmup = next(stats for name, stats in built.report.phases if name == "warmup")
        # Warm-up has 24 single-tenant requests; the burst phase interleaves
        # both tenants after them.
        assert warmup.num_requests == 24
        assert built.report.overall.num_requests == len(built.requests) == 72

    def test_multi_tenant_interleaving_and_isolation(self):
        built = self.two_phase_scenario().build_with_report()
        burst_slice = built.requests[24:]
        reads = [io for io in burst_slice if not io.is_write]
        writes = [io for io in burst_slice if io.is_write]
        assert reads and writes
        # Tenants are confined to their disjoint address slices.
        assert all(io.end_offset_bytes <= 64 * MB for io in reads)
        assert all(64 * MB <= io.offset_bytes for io in writes)
        # And genuinely interleaved: the write tenant does not simply queue
        # up after the read tenant.
        first_write = min(io.arrival_ns for io in writes)
        last_read = max(io.arrival_ns for io in reads)
        assert first_write < last_read

    def test_seed_changes_trace(self):
        assert request_values(self.two_phase_scenario(seed=1).build()) != request_values(
            self.two_phase_scenario(seed=2).build()
        )

    def test_fingerprint_stable_and_sensitive(self):
        a = self.two_phase_scenario(seed=5)
        b = self.two_phase_scenario(seed=5)
        c = self.two_phase_scenario(seed=6)
        assert a.fingerprint() == b.fingerprint()
        assert a.fingerprint() != c.fingerprint()
        # Changing an arrival-process knob inside a phase changes the print.
        tweaked = Scenario(
            name=a.name,
            seed=a.seed,
            phases=(
                a.phases[0],
                Phase(
                    name=a.phases[1].name,
                    tenants=a.phases[1].tenants,
                    arrivals=BurstyArrivals(burst_interarrival_ns=401.0,
                                            idle_interarrival_ns=30_000.0,
                                            mean_burst_length=12.0,
                                            mean_idle_length=2.0),
                ),
            ),
        )
        assert tweaked.fingerprint() != a.fingerprint()

    def test_phase_gap_shifts_later_phases(self):
        base = self.two_phase_scenario()
        gapped = Scenario(
            name=base.name, phases=base.phases, seed=base.seed, phase_gap_ns=1_000_000
        )
        base_burst_start = base.build()[24].arrival_ns
        gapped_burst_start = gapped.build()[24].arrival_ns
        assert gapped_burst_start == base_burst_start + 1_000_000

    def test_phase_transforms_apply(self):
        tenant = Tenant.random("t", num_requests=32, size_bytes=4 * KB, seed=3)
        plain = Scenario(
            name="plain",
            phases=(Phase(name="p", tenants=(tenant,), arrivals=FixedArrivals(1_000)),),
        ).build()
        dilated = Scenario(
            name="dilated",
            phases=(
                Phase(
                    name="p",
                    tenants=(tenant,),
                    arrivals=FixedArrivals(1_000),
                    time_scale=2.0,
                ),
            ),
        ).build()
        assert [io.arrival_ns for io in dilated] == [2 * io.arrival_ns for io in plain]
        clipped = Scenario(
            name="clipped",
            phases=(
                Phase(
                    name="p",
                    tenants=(tenant,),
                    arrivals=FixedArrivals(1_000),
                    clip_ns=10_500,
                ),
            ),
        ).build()
        assert len(clipped) == 11
        assert all(io.arrival_ns < 10_500 for io in clipped)

    def test_generator_align_bytes_reaches_the_source(self):
        # ``align_bytes`` is a generator option (SyntheticWorkloadConfig /
        # records_to_requests), distinct from the tenant's remap clamp
        # granularity - it must flow through to the source untouched.
        tenant = Tenant.mixed(
            "aligned",
            num_requests=32,
            size_bytes=8 * KB,
            address_space_bytes=64 * MB,
            align_bytes=8 * KB,
            seed=3,
        )
        assert dict(tenant.params)["align_bytes"] == 8 * KB
        assert all(io.offset_bytes % (8 * KB) == 0 for io in tenant.build_stream())

    def test_msr_tenant_align_bytes_reaches_replay(self, tmp_path):
        path = tmp_path / "trace.csv"
        # Offset wraps to 4 KB under the end of a 64 KB space; with a 4 KB
        # replay alignment the 16 KB request clamps to one whole 4 KB unit.
        path.write_text("1000,host,0,Read,126976,16384,10")
        tenant = Tenant.msr(
            "replay", path=str(path), address_space_bytes=65536, align_bytes=4096
        )
        (io,) = tenant.build_stream()
        assert io.offset_bytes == 61440
        assert io.size_bytes == 4096

    def test_msr_tenant_replays_trace_file(self, tmp_path):
        path = tmp_path / "trace.csv"
        path.write_text(
            "\n".join(
                [
                    "1000,host,0,Read,0,4096,10",
                    "2000,host,0,Write,8192,4096,10",
                    "3000,host,0,Read,16384,4096,10",
                ]
            )
        )
        scenario = Scenario(
            name="replay",
            phases=(
                Phase(
                    name="replay",
                    tenants=(Tenant.msr("msr", path=str(path)),),
                    arrivals=FixedArrivals(interarrival_ns=500),
                ),
            ),
        )
        requests = scenario.build()
        assert [io.kind for io in requests] == [IOKind.READ, IOKind.WRITE, IOKind.READ]
        # Source arrivals (filetime-derived) are replaced by the phase's.
        assert [io.arrival_ns for io in requests] == [0, 500, 1_000]

    @pytest.mark.parametrize(
        "factory",
        [
            lambda: Scenario(name="empty", phases=()),
            lambda: Scenario(
                name="dup",
                phases=(
                    Phase(name="p", tenants=(Tenant.random("t", num_requests=1, size_bytes=4 * KB),), arrivals=FixedArrivals()),
                    Phase(name="p", tenants=(Tenant.random("t", num_requests=1, size_bytes=4 * KB),), arrivals=FixedArrivals()),
                ),
            ),
            lambda: Phase(name="no-tenants", tenants=(), arrivals=FixedArrivals()),
            lambda: Phase(
                name="bad-scale",
                tenants=(Tenant.random("t", num_requests=1, size_bytes=4 * KB),),
                arrivals=FixedArrivals(),
                time_scale=0.0,
            ),
            lambda: Tenant.random(
                "half-remap", num_requests=1, size_bytes=4 * KB, address_base_bytes=0
            ),
        ],
    )
    def test_dsl_validation(self, factory):
        with pytest.raises(ValueError):
            factory()

    def test_library_scenarios_build(self):
        for scenario in default_scenarios(scale=0.25):
            requests = scenario.build()
            assert requests
            arrivals = [io.arrival_ns for io in requests]
            assert arrivals == sorted(arrivals)
        assert steady_scenario().name == "steady"
        assert diurnal_scenario().name == "diurnal"


class TestScenarioThroughEngine:
    """Acceptance: a 2-phase, bursty, 2-tenant scenario through the engine."""

    def scenario(self):
        return bursty_multitenant_scenario(requests_per_tenant=16, seed=9)

    def spec(self):
        config = SimulationConfig.small(gc_enabled=False)
        return ExperimentSpec(
            "scenario-accept",
            tuple(
                SimJob(
                    workload=WorkloadSpec.scenario(self.scenario()),
                    scheduler=scheduler,
                    config=config,
                    key=(scheduler,),
                )
                for scheduler in ("VAS", "SPK3")
            ),
        )

    def test_workload_spec_build_matches_scenario_build(self):
        direct = self.scenario().build()
        via_spec = WorkloadSpec.scenario(self.scenario()).build()
        assert request_values(via_spec) == request_values(direct)

    def test_workload_spec_fingerprint_stable_and_sensitive(self):
        a = WorkloadSpec.scenario(self.scenario())
        b = WorkloadSpec.scenario(self.scenario())
        c = WorkloadSpec.scenario(bursty_multitenant_scenario(requests_per_tenant=16, seed=10))
        assert a.fingerprint() == b.fingerprint()
        assert a.fingerprint() != c.fingerprint()

    def test_serial_and_process_backends_bit_identical(self):
        serial = ExecutionEngine("serial").run(self.spec())
        parallel = ExecutionEngine("process", max_workers=2).run(self.spec())
        assert serial == parallel

    def test_cache_hits_on_rerun(self, tmp_path):
        cache_dir = tmp_path / "cache"
        cold = ExecutionEngine("serial", cache_dir=cache_dir)
        first = cold.run(self.spec())
        assert cold.stats.jobs_executed == 2
        assert cold.stats.cache_stores == 2
        warm = ExecutionEngine("serial", cache_dir=cache_dir)
        second = warm.run(self.spec())
        assert warm.stats.cache_hits == 2
        assert warm.stats.jobs_executed == 0
        assert first == second

    def test_scenario_results_differ_across_schedulers(self):
        results = ExecutionEngine().run(self.spec())
        assert results[("VAS",)].makespan_ns != results[("SPK3",)].makespan_ns
