"""Tests for the metrics collector, the result container and the
pure helper functions of the experiment modules."""

import pytest

from repro.experiments import figure06, figure10, figure11, figure16, figure17
from repro.flash.chip import FlashChip
from repro.flash.channel import Channel
from repro.flash.commands import FlashOp, ParallelismClass, TransactionKind
from repro.flash.geometry import PhysicalPageAddress
from repro.flash.request import MemoryRequest
from repro.flash.transaction import FlashTransaction
from repro.metrics.breakdown import ExecutionBreakdown
from repro.metrics.collector import MetricsCollector
from repro.metrics.latency import LatencyStats
from repro.metrics.parallelism import FLPBreakdown
from repro.metrics.report import SimulationResult
from repro.metrics.utilization import IdlenessReport, UtilizationReport
from repro.workloads.request import IOKind, IORequest


def make_transaction(num_requests=2, is_gc=False, parallelism=ParallelismClass.PAL2):
    requests = [
        MemoryRequest(
            io_id=1,
            op=FlashOp.READ,
            lpn=i,
            size_bytes=2048,
            address=PhysicalPageAddress(0, 0, i % 2, 0, 0, i),
        )
        for i in range(num_requests)
    ]
    txn = FlashTransaction(
        chip_key=(0, 0),
        requests=requests,
        kind=TransactionKind.INTERLEAVE,
        parallelism=parallelism,
    )
    txn.is_gc = is_gc
    txn.cell_time_ns = 1000
    return txn


class TestMetricsCollector:
    def test_io_lifecycle(self):
        collector = MetricsCollector()
        io = IORequest(kind=IOKind.READ, offset_bytes=0, size_bytes=4096, arrival_ns=100)
        collector.on_io_arrival(io)
        collector.on_io_complete(io, 1100)
        assert collector.completed_ios == 1
        assert collector.completed_reads == 1
        assert collector.total_bytes == 4096
        assert collector.makespan_ns == 1000
        assert collector.latency.mean_ns == 1000
        assert len(collector.time_series) == 1

    def test_write_accounting(self):
        collector = MetricsCollector()
        io = IORequest(kind=IOKind.WRITE, offset_bytes=0, size_bytes=2048, arrival_ns=0)
        collector.on_io_arrival(io)
        collector.on_io_complete(io, 50)
        assert collector.completed_writes == 1
        assert collector.write_bytes == 2048
        assert collector.read_bytes == 0

    def test_transaction_accounting_separates_gc(self):
        collector = MetricsCollector()
        collector.on_transaction_complete(make_transaction(num_requests=3))
        collector.on_transaction_complete(make_transaction(num_requests=1, is_gc=True))
        assert collector.memory_requests_served == 3
        assert collector.flp.total_transactions == 1
        assert collector.gc_transactions == 1
        assert collector.gc_time_ns == 1000

    def test_queue_stall_hook(self):
        collector = MetricsCollector()
        collector.on_queue_stall(500)
        collector.on_queue_stall(0)
        assert collector.queue_stall_time_ns == 500
        assert collector.stalled_requests == 1

    def test_makespan_empty(self):
        assert MetricsCollector().makespan_ns == 0

    def test_utilization_and_idleness_reports(self, small_geometry):
        collector = MetricsCollector()
        io = IORequest(kind=IOKind.READ, offset_bytes=0, size_bytes=2048, arrival_ns=0)
        collector.on_io_arrival(io)
        collector.on_io_complete(io, 1000)
        chips = {key: FlashChip(key, small_geometry) for key in small_geometry.iter_chip_keys()}
        first = chips[(0, 0)]
        first.occupy(0, 500)
        first.record_transaction(
            num_requests=1, num_dies=1, cell_time_ns=400, bus_time_ns=50,
            bus_wait_ns=10, die_active_time_ns=400,
        )
        utilization = collector.utilization_report(chips)
        assert utilization.per_chip[(0, 0)] == pytest.approx(0.5)
        idleness = collector.idleness_report(chips)
        assert 0.0 < idleness.inter_chip < 1.0
        breakdown = collector.execution_breakdown(chips, {0: Channel(0)})
        assert breakdown.memory_operation_ns == 400
        assert breakdown.total_chip_time_ns == 1000 * len(chips)


def make_result(**overrides):
    latency = LatencyStats()
    latency.add(1000)
    latency.add(3000)
    utilization = UtilizationReport()
    utilization.add((0, 0), 0.5)
    flp = FLPBreakdown()
    flp.record(ParallelismClass.PAL3, 4)
    flp.record(ParallelismClass.NON_PAL, 1)
    values = dict(
        scheduler="SPK3",
        workload="unit",
        num_ios=2,
        completed_ios=2,
        total_bytes=1024 * 1024,
        makespan_ns=1_000_000,
        latency=latency,
        utilization=utilization,
        idleness=IdlenessReport(inter_chip=0.3, intra_chip=0.2),
        flp=flp,
        breakdown=ExecutionBreakdown(100, 50, 300, 1000),
        queue_stall_time_ns=100_000,
        memory_requests_composed=5,
        memory_requests_served=5,
        transactions=2,
        gc_transactions=0,
        gc_time_ns=0,
    )
    values.update(overrides)
    return SimulationResult(**values)


class TestSimulationResult:
    def test_bandwidth_and_iops(self):
        result = make_result()
        assert result.bandwidth_kb_s == pytest.approx(1024 * 1000)
        assert result.iops == pytest.approx(2000)

    def test_latency_and_stall(self):
        result = make_result()
        assert result.avg_latency_ns == pytest.approx(2000)
        assert result.queue_stall_fraction == pytest.approx(0.1)

    def test_idleness_properties(self):
        result = make_result()
        assert result.inter_chip_idleness == 0.3
        assert result.intra_chip_idleness == 0.2

    def test_transaction_reduction_and_coalescing(self):
        result = make_result()
        assert result.transaction_reduction == pytest.approx(1 - 2 / 5)
        assert result.coalescing_degree == pytest.approx(2.5)

    def test_zero_makespan_guards(self):
        result = make_result(makespan_ns=0)
        assert result.bandwidth_kb_s == 0.0
        assert result.iops == 0.0
        assert result.queue_stall_fraction == 0.0

    def test_summary_row(self):
        row = make_result().summary_row()
        assert row["scheduler"] == "SPK3"
        assert row["workload"] == "unit"
        assert row["transactions"] == 2


class TestExperimentHelperFunctions:
    def make_fig10_rows(self):
        return [
            {"trace": "t", "scheduler": "VAS", "bandwidth_kb_s": 100.0, "iops": 10, "avg_latency_ns": 1000, "queue_stall_norm": 1.0},
            {"trace": "t", "scheduler": "PAS", "bandwidth_kb_s": 150.0, "iops": 15, "avg_latency_ns": 800, "queue_stall_norm": 0.8},
            {"trace": "t", "scheduler": "SPK3", "bandwidth_kb_s": 250.0, "iops": 25, "avg_latency_ns": 400, "queue_stall_norm": 0.2},
        ]

    def test_speedups_and_latency_reduction(self):
        rows = self.make_fig10_rows()
        assert figure10.speedups_over(rows, "VAS", "SPK3") == {"t": 2.5}
        assert figure10.latency_reduction(rows, "VAS", "SPK3") == {"t": 0.6}

    def test_figure06_averages(self):
        rows = [
            {"trace": "a", "utilization_vas_pct": 10.0, "utilization_pas_pct": 20.0, "utilization_potential_pct": 40.0},
            {"trace": "b", "utilization_vas_pct": 30.0, "utilization_pas_pct": 40.0, "utilization_potential_pct": 60.0},
        ]
        averages = figure06.averages(rows)
        assert averages["utilization_vas_pct"] == 20.0
        assert averages["utilization_potential_pct"] == 50.0

    def test_figure11_average_reduction(self):
        rows = [
            {"trace": "a", "scheduler": "VAS", "inter_chip_idleness_pct": 50.0, "intra_chip_idleness_pct": 40.0},
            {"trace": "a", "scheduler": "SPK3", "inter_chip_idleness_pct": 25.0, "intra_chip_idleness_pct": 30.0},
        ]
        assert figure11.average_reduction(rows, "inter_chip_idleness_pct", "VAS", "SPK3") == 0.5

    def test_figure16_reduction_vs_vas(self):
        rows = [
            {"num_chips": 64, "transfer_kb": 16, "scheduler": "VAS", "transactions": 100},
            {"num_chips": 64, "transfer_kb": 16, "scheduler": "SPK3", "transactions": 50},
        ]
        assert figure16.reduction_vs_vas(rows)[(64, 16, "SPK3")] == 0.5

    def test_figure17_degradation_and_advantage(self):
        rows = [
            {"num_chips": 64, "transfer_kb": 16, "scheduler": "VAS", "state": "pristine", "bandwidth_kb_s": 200.0},
            {"num_chips": 64, "transfer_kb": 16, "scheduler": "VAS", "state": "fragmented", "bandwidth_kb_s": 100.0},
            {"num_chips": 64, "transfer_kb": 16, "scheduler": "SPK3", "state": "pristine", "bandwidth_kb_s": 400.0},
            {"num_chips": 64, "transfer_kb": 16, "scheduler": "SPK3", "state": "fragmented", "bandwidth_kb_s": 250.0},
        ]
        degradation = figure17.gc_degradation(rows)
        assert degradation[(64, 16, "VAS")] == 0.5
        advantage = figure17.fragmented_advantage(rows)
        assert advantage[(64, 16)] == 2.5
