"""Tests for simulator checkpoint/restore (``repro.checkpoint``).

The load-bearing contract is digest identity: a run paused at any event
boundary, checkpointed, restored (optionally through disk) and run to
completion must produce a :class:`SimulationResult` whose stable fingerprint
is identical to an uninterrupted run.  Everything else - the envelope
schema, the store's ``(fingerprint, T)`` keying, the engine integration -
exists to make that contract operational, and is tested around it.
"""

from __future__ import annotations

import dataclasses
import pickle

import pytest

from repro.checkpoint import (
    CHECKPOINT_VERSION,
    CheckpointError,
    CheckpointStore,
    SimulatorCheckpoint,
    run_job_checkpointed,
)
from repro.experiments.engine import ExecutionEngine, engine_from_cli
from repro.experiments.spec import SimJob, WorkloadSpec
from repro.perf.suite import tiny_suite
from repro.scenarios.library import aged_device_state
from repro.sim.config import SimulationConfig, stable_fingerprint
from repro.sim.ssd import SSDSimulator
from repro.workloads.synthetic import generate_mixed_workload, SyntheticWorkloadConfig

KB = 1024


def gc_config() -> SimulationConfig:
    """A small, GC-enabled, prefilled device: every run exercises collection."""
    base = SimulationConfig.small()
    return base.with_overrides(
        geometry=base.geometry.scaled(blocks_per_plane=8, pages_per_block=16),
        gc_enabled=True,
        prefill_fraction=0.9,
    )


def overwrite_workload(num_requests: int = 60, seed: int = 7):
    config = gc_config()
    address_space = int(
        config.geometry.total_pages * config.geometry.page_size_bytes * 0.5
    )
    requests = generate_mixed_workload(
        SyntheticWorkloadConfig(
            num_requests=num_requests,
            size_bytes=4 * KB,
            address_space_bytes=address_space,
            read_fraction=0.1,
            randomness=1.0,
            interarrival_ns=2_000,
            seed=seed,
        )
    )
    # Renumber like WorkloadSpec.build: successive builds must be identical
    # traces, independent of the process-global io_id counter.
    for index, io in enumerate(requests):
        io.io_id = index
    return requests


def straight_run():
    simulator = SSDSimulator(gc_config(), "SPK3")
    result = simulator.run(overwrite_workload(), workload_name="straight")
    return simulator, result


class TestPausableRun:
    def test_run_returns_none_when_paused(self):
        simulator = SSDSimulator(gc_config(), "SPK3")
        assert simulator.run(overwrite_workload(), max_events=10) is None
        assert simulator.events.processed >= 10

    def test_run_to_completion_finishes_a_paused_run(self):
        _, expected = straight_run()
        simulator = SSDSimulator(gc_config(), "SPK3")
        assert simulator.run(overwrite_workload(), "straight", max_events=10) is None
        result = simulator.run_to_completion()
        assert stable_fingerprint(result) == stable_fingerprint(expected)

    def test_run_to_completion_requires_an_active_run(self):
        simulator = SSDSimulator(gc_config(), "SPK3")
        with pytest.raises(RuntimeError, match="no run in progress"):
            simulator.run_to_completion()

    def test_run_rejects_overlapping_runs(self):
        simulator = SSDSimulator(gc_config(), "SPK3")
        simulator.run(overwrite_workload(), max_events=10)
        with pytest.raises(RuntimeError, match="in progress"):
            simulator.run(overwrite_workload())

    def test_completed_run_allows_a_fresh_run(self):
        simulator = SSDSimulator(gc_config(), "SPK3")
        simulator.run(overwrite_workload(), max_events=10)
        simulator.run_to_completion()
        # A second run on the same simulator is not part of the determinism
        # contract, but starting one must not raise.
        assert simulator.run(overwrite_workload(num_requests=1)) is not None


class TestDigestIdentity:
    @pytest.mark.parametrize("fraction", [0.1, 0.5, 0.9])
    def test_checkpoint_resume_matches_straight_run(self, fraction):
        reference, expected = straight_run()
        pause_at = max(1, int(reference.events.processed * fraction))
        simulator = SSDSimulator(gc_config(), "SPK3")
        assert simulator.run(overwrite_workload(), "straight", max_events=pause_at) is None
        resumed = SSDSimulator.resume(simulator.checkpoint())
        result = resumed.run_to_completion()
        assert stable_fingerprint(result) == stable_fingerprint(expected)

    def test_round_trip_through_disk(self, tmp_path):
        _, expected = straight_run()
        simulator = SSDSimulator(gc_config(), "SPK3")
        simulator.run(overwrite_workload(), "straight", max_events=50)
        path = simulator.checkpoint().save(tmp_path / "run.ckpt")
        resumed = SSDSimulator.resume(SimulatorCheckpoint.load(path))
        result = resumed.run_to_completion()
        assert stable_fingerprint(result) == stable_fingerprint(expected)

    def test_checkpoint_mid_garbage_collection(self):
        # Pause after GC has demonstrably fired, so the snapshot carries
        # live GC state (victim bookkeeping, relocated pages, backlog).
        reference, expected = straight_run()
        assert reference.gc.stats.invocations > 0
        pause_at = reference.events.processed // 2
        simulator = SSDSimulator(gc_config(), "SPK3")
        simulator.run(overwrite_workload(), "straight", max_events=pause_at)
        assert simulator.gc.stats.invocations > 0
        resumed = SSDSimulator.resume(simulator.checkpoint())
        result = resumed.run_to_completion()
        assert stable_fingerprint(result) == stable_fingerprint(expected)

    def test_checkpoint_of_aged_device(self):
        config = gc_config().with_overrides(
            prefill_fraction=0.0,
            overprovisioning_fraction=0.15,
            device_state=aged_device_state(seed=11),
        )
        workload = overwrite_workload(num_requests=24, seed=11)
        reference = SSDSimulator(config, "SPK3")
        expected = reference.run(list(workload), "aged")
        simulator = SSDSimulator(config, "SPK3")
        simulator.run(list(workload), "aged", max_events=reference.events.processed // 2)
        resumed = SSDSimulator.resume(simulator.checkpoint())
        assert stable_fingerprint(resumed.run_to_completion()) == stable_fingerprint(expected)

    @pytest.mark.parametrize("case_name", [case.name for case in tiny_suite()])
    def test_tiny_suite_checkpointed_runs_match_straight_runs(self, case_name, tmp_path):
        case = {c.name: c for c in tiny_suite()}[case_name]
        store = CheckpointStore(tmp_path / "store")
        for job in case.jobs:
            expected = stable_fingerprint(job.execute())
            checkpointed = run_job_checkpointed(job, store, every_events=40)
            assert stable_fingerprint(checkpointed) == expected


class TestCaptureValidation:
    def test_checkpoint_requires_a_paused_run(self):
        simulator = SSDSimulator(gc_config(), "SPK3")
        with pytest.raises(CheckpointError, match="paused in-progress run"):
            simulator.checkpoint()

    def test_checkpoint_after_completion_rejected(self):
        simulator, _ = straight_run()
        with pytest.raises(CheckpointError, match="paused in-progress run"):
            simulator.checkpoint()

    def test_unschematized_attribute_is_a_loud_error(self):
        simulator = SSDSimulator(gc_config(), "SPK3")
        simulator.run(overwrite_workload(), max_events=10)
        simulator.surprise = 1
        with pytest.raises(CheckpointError, match="surprise"):
            simulator.checkpoint()

    def test_envelope_metadata_matches_the_pause_point(self):
        simulator = SSDSimulator(gc_config(), "SPK3")
        simulator.run(overwrite_workload(), "meta", max_events=25)
        checkpoint = simulator.checkpoint()
        assert checkpoint.version == CHECKPOINT_VERSION
        assert checkpoint.scheduler == "SPK3"
        assert checkpoint.workload_name == "meta"
        assert checkpoint.events_processed == simulator.events.processed
        assert checkpoint.now_ns == simulator.now_ns
        assert checkpoint.config_fingerprint == gc_config().fingerprint()


class TestRestoreValidation:
    def paused_checkpoint(self) -> SimulatorCheckpoint:
        simulator = SSDSimulator(gc_config(), "SPK3")
        simulator.run(overwrite_workload(), max_events=20)
        return simulator.checkpoint()

    def test_non_checkpoint_object_rejected(self):
        with pytest.raises(CheckpointError, match="SimulatorCheckpoint"):
            SSDSimulator.resume({"payload": b""})

    def test_version_mismatch_rejected(self):
        checkpoint = dataclasses.replace(self.paused_checkpoint(), version=99)
        with pytest.raises(CheckpointError, match="version 99"):
            SSDSimulator.resume(checkpoint)

    def test_corrupted_payload_rejected(self):
        checkpoint = self.paused_checkpoint()
        corrupted = dataclasses.replace(
            checkpoint, payload=checkpoint.payload[:-1] + b"\x00"
        )
        with pytest.raises(CheckpointError, match="SHA-256"):
            SSDSimulator.resume(corrupted)

    def _with_payload(self, checkpoint: SimulatorCheckpoint, state) -> SimulatorCheckpoint:
        import hashlib

        payload = pickle.dumps(state, protocol=pickle.HIGHEST_PROTOCOL)
        return dataclasses.replace(
            checkpoint,
            payload=payload,
            payload_sha256=hashlib.sha256(payload).hexdigest(),
        )

    def test_unknown_state_field_rejected(self):
        checkpoint = self.paused_checkpoint()
        state = pickle.loads(checkpoint.payload)
        state["extra_field"] = 1
        with pytest.raises(CheckpointError, match="extra_field"):
            SSDSimulator.resume(self._with_payload(checkpoint, state))

    def test_missing_state_field_rejected(self):
        checkpoint = self.paused_checkpoint()
        state = pickle.loads(checkpoint.payload)
        del state["ftl"]
        with pytest.raises(CheckpointError, match="ftl"):
            SSDSimulator.resume(self._with_payload(checkpoint, state))

    def test_mistyped_state_field_rejected(self):
        checkpoint = self.paused_checkpoint()
        state = pickle.loads(checkpoint.payload)
        state["ftl"] = "not an FTL"
        with pytest.raises(CheckpointError, match="'ftl'"):
            SSDSimulator.resume(self._with_payload(checkpoint, state))

    def test_payload_config_must_match_envelope_fingerprint(self):
        checkpoint = self.paused_checkpoint()
        state = pickle.loads(checkpoint.payload)
        state["config"] = SimulationConfig.small()
        with pytest.raises(CheckpointError, match="fingerprint"):
            SSDSimulator.resume(self._with_payload(checkpoint, state))

    def test_non_checkpoint_file_rejected(self, tmp_path):
        path = tmp_path / "junk.ckpt"
        path.write_bytes(pickle.dumps({"something": "else"}))
        with pytest.raises(CheckpointError, match="not a simulator checkpoint"):
            SimulatorCheckpoint.load(path)

    def test_truncated_file_rejected(self, tmp_path):
        checkpoint = self.paused_checkpoint()
        path = checkpoint.save(tmp_path / "run.ckpt")
        path.write_bytes(path.read_bytes()[:40])
        with pytest.raises(CheckpointError, match="unreadable"):
            SimulatorCheckpoint.load(path)

    def test_envelope_with_extra_keys_rejected(self, tmp_path):
        checkpoint = self.paused_checkpoint()
        path = checkpoint.save(tmp_path / "run.ckpt")
        document = pickle.loads(path.read_bytes())
        document["bonus"] = 1
        path.write_bytes(pickle.dumps(document))
        with pytest.raises(CheckpointError, match="bonus"):
            SimulatorCheckpoint.load(path)


class TestCheckpointStore:
    def job(self, seed: int = 7) -> SimJob:
        return SimJob(
            workload=WorkloadSpec.mixed(
                "store-io",
                num_requests=24,
                size_bytes=4 * KB,
                read_fraction=0.2,
                seed=seed,
            ),
            scheduler="SPK3",
            config=gc_config(),
        )

    def paused_checkpoint(self) -> SimulatorCheckpoint:
        job = self.job()
        simulator = SSDSimulator(job.resolved_config, job.scheduler)
        simulator.run(job.workload.build(), max_events=20)
        return simulator.checkpoint()

    def test_save_load_round_trip(self, tmp_path):
        store = CheckpointStore(tmp_path)
        checkpoint = self.paused_checkpoint()
        fingerprint = self.job().fingerprint()
        path = store.save(fingerprint, checkpoint)
        assert path.name == f"{fingerprint}.{checkpoint.events_processed:012d}.ckpt"
        loaded = store.load(fingerprint, checkpoint.events_processed)
        assert loaded == checkpoint

    def test_latest_picks_highest_event_count(self, tmp_path):
        store = CheckpointStore(tmp_path)
        fingerprint = self.job().fingerprint()
        early = self.paused_checkpoint()
        late = dataclasses.replace(early, events_processed=early.events_processed + 50)
        store.save(fingerprint, early)
        store.save(fingerprint, late)
        assert store.events_available(fingerprint) == [
            early.events_processed,
            late.events_processed,
        ]
        events, loaded = store.latest(fingerprint)
        assert events == late.events_processed
        assert loaded.events_processed == late.events_processed

    def test_latest_falls_back_past_a_corrupt_newest(self, tmp_path):
        store = CheckpointStore(tmp_path)
        fingerprint = self.job().fingerprint()
        early = self.paused_checkpoint()
        store.save(fingerprint, early)
        corrupt = store.path(fingerprint, early.events_processed + 100)
        corrupt.write_bytes(b"torn write")
        events, _ = store.latest(fingerprint)
        assert events == early.events_processed

    def test_latest_of_unknown_fingerprint_is_none(self, tmp_path):
        assert CheckpointStore(tmp_path).latest("f" * 64) is None

    def test_discard_removes_only_that_fingerprint(self, tmp_path):
        store = CheckpointStore(tmp_path)
        checkpoint = self.paused_checkpoint()
        store.save("a" * 64, checkpoint)
        store.save("b" * 64, checkpoint)
        assert store.discard("a" * 64) == 1
        assert store.fingerprints() == ["b" * 64]
        assert len(store) == 1

    def test_unusable_directory_rejected(self, tmp_path):
        blocker = tmp_path / "file"
        blocker.write_text("x")
        with pytest.raises(ValueError, match="not usable"):
            CheckpointStore(blocker / "store")

    def test_run_job_checkpointed_matches_execute(self, tmp_path):
        job = self.job()
        store = CheckpointStore(tmp_path)
        result = run_job_checkpointed(job, store, every_events=30)
        assert stable_fingerprint(result) == stable_fingerprint(job.execute())
        # Completed jobs clean up their snapshot trail by default.
        assert len(store) == 0

    def test_run_job_checkpointed_keeps_snapshots_when_asked(self, tmp_path):
        job = self.job()
        store = CheckpointStore(tmp_path)
        run_job_checkpointed(job, store, every_events=30, keep_checkpoints=True)
        assert store.events_available(job.fingerprint())

    def test_run_job_checkpointed_resumes_from_existing_snapshot(self, tmp_path):
        job = self.job()
        expected = stable_fingerprint(job.execute())
        store = CheckpointStore(tmp_path)
        # Simulate an interrupted run: pause, persist, abandon the simulator.
        simulator = SSDSimulator(job.resolved_config, job.scheduler)
        simulator.run(job.workload.build(), job.workload.name, max_events=40)
        store.save(job.fingerprint(), simulator.checkpoint())
        result = run_job_checkpointed(job, store, every_events=30)
        assert stable_fingerprint(result) == expected

    def test_invalid_cadence_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="every_events"):
            run_job_checkpointed(self.job(), CheckpointStore(tmp_path), every_events=0)


class TestEngineIntegration:
    def jobs(self):
        workload = WorkloadSpec.mixed(
            "engine-io", num_requests=24, size_bytes=4 * KB, read_fraction=0.2, seed=7
        )
        return [
            SimJob(workload=workload, scheduler=scheduler, config=gc_config())
            for scheduler in ("VAS", "SPK3")
        ]

    def test_checkpointing_engine_is_bit_identical(self, tmp_path):
        jobs = self.jobs()
        plain = ExecutionEngine("serial").run_jobs(jobs)
        checkpointed = ExecutionEngine(
            "serial", checkpoint_dir=tmp_path / "ckpt", checkpoint_every=30
        ).run_jobs(jobs)
        assert [stable_fingerprint(r) for r in plain] == [
            stable_fingerprint(r) for r in checkpointed
        ]

    def test_process_backend_composes_with_checkpointing(self, tmp_path):
        jobs = self.jobs()
        plain = ExecutionEngine("serial").run_jobs(jobs)
        checkpointed = ExecutionEngine(
            "process",
            max_workers=2,
            checkpoint_dir=tmp_path / "ckpt",
            checkpoint_every=30,
        ).run_jobs(jobs)
        assert [stable_fingerprint(r) for r in plain] == [
            stable_fingerprint(r) for r in checkpointed
        ]

    def test_invalid_cadence_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="checkpoint_every"):
            ExecutionEngine(checkpoint_dir=tmp_path, checkpoint_every=0)

    def test_cli_flags_configure_the_engine(self, tmp_path):
        engine = engine_from_cli(
            "test",
            ["--checkpoint-dir", str(tmp_path / "ckpt"), "--checkpoint-every", "123"],
        )
        assert engine.checkpoint_dir == tmp_path / "ckpt"
        assert engine.checkpoint_every == 123
        assert (tmp_path / "ckpt").is_dir()

    def test_cli_defaults_leave_checkpointing_off(self):
        engine = engine_from_cli("test", [])
        assert engine.checkpoint_dir is None
